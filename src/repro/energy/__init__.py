"""Neuromorphic energy estimation (Table 2's "Normalized energy" columns).

The paper estimates inference energy on two neuromorphic architectures
(TrueNorth [6] and SpiNNaker [7]) by splitting total energy into computation,
routing and static components and scaling each proportionally to the number of
spikes, the spiking density, and the latency respectively, then normalising
against a per-dataset baseline.  This package implements exactly that
proportional model.
"""

from repro.energy.architectures import ArchitectureEnergyModel, TRUENORTH, SPINNAKER, get_architecture
from repro.energy.estimator import EnergyEstimate, EnergyWorkload, estimate_energy, normalized_energy

__all__ = [
    "ArchitectureEnergyModel",
    "TRUENORTH",
    "SPINNAKER",
    "get_architecture",
    "EnergyEstimate",
    "EnergyWorkload",
    "estimate_energy",
    "normalized_energy",
]
