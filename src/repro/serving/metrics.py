"""Thread-safe serving metrics: counters, batch-size histogram, latencies.

One :class:`ServerMetrics` instance is shared by every micro-batcher of a
:class:`~repro.serving.engine.ServingEngine`; the HTTP front end renders
:meth:`ServerMetrics.snapshot` as the ``/metrics`` response.  Latency and
queue-wait quantiles are computed over **bounded rolling windows** of the
most recent observations (default 2048 samples), so a long-lived server
neither grows without bound nor reports stale percentiles: p50/p95/p99
always reflect the current load, not the whole process lifetime.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List, Optional


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100])."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1)))))
    return float(ordered[rank])


def _quantile_summary(values: List[float]) -> Dict[str, object]:
    """The rolling-window ``{count, p50, p95, p99}`` rendering."""
    return {
        "count": len(values),
        "p50": round(percentile(values, 50.0), 3),
        "p95": round(percentile(values, 95.0), 3),
        "p99": round(percentile(values, 99.0), 3),
    }


class ServerMetrics:
    """Aggregated serving statistics, safe to update from batcher threads."""

    def __init__(self, latency_window: int = 2048) -> None:
        self._lock = threading.Lock()
        self._requests_total = 0
        self._rejected_total = 0
        self._shed_total = 0
        self._rate_limited_total = 0
        self._errors_total = 0
        self._batches_total = 0
        self._images_total = 0
        self._batch_size_histogram: Dict[int, int] = {}
        self._latencies_ms: Deque[float] = deque(maxlen=latency_window)
        self._queue_wait_ms: Deque[float] = deque(maxlen=latency_window)

    # -- recording (called by the scheduler) -------------------------------
    def record_submit(self) -> None:
        """One request admitted to a queue."""
        with self._lock:
            self._requests_total += 1

    def record_reject(self) -> None:
        """One request turned away by admission control (bounded queue full)."""
        with self._lock:
            self._rejected_total += 1

    def record_shed(self) -> None:
        """One queued low-priority request shed to admit higher-priority work."""
        with self._lock:
            self._shed_total += 1

    def record_rate_limited(self) -> None:
        """One request bounced by a per-client rate limit or quota."""
        with self._lock:
            self._rate_limited_total += 1

    def record_batch(
        self,
        size: int,
        latencies_ms: Optional[List[float]] = None,
        error: bool = False,
        queue_ms: Optional[List[float]] = None,
    ) -> None:
        """One executed micro-batch of ``size`` requests.

        ``latencies_ms`` are the per-request end-to-end latencies (queue wait
        plus batch execution) and ``queue_ms`` the queue-wait components;
        both feed bounded rolling windows behind the p50/p95/p99 estimates.
        """
        with self._lock:
            self._batches_total += 1
            self._images_total += size
            self._batch_size_histogram[size] = self._batch_size_histogram.get(size, 0) + 1
            if error:
                self._errors_total += size
            for latency in latencies_ms or ():
                self._latencies_ms.append(float(latency))
            for wait in queue_ms or ():
                self._queue_wait_ms.append(float(wait))

    # -- reading -----------------------------------------------------------
    @property
    def requests_total(self) -> int:
        with self._lock:
            return self._requests_total

    @property
    def rejected_total(self) -> int:
        with self._lock:
            return self._rejected_total

    @property
    def shed_total(self) -> int:
        with self._lock:
            return self._shed_total

    @property
    def rate_limited_total(self) -> int:
        with self._lock:
            return self._rate_limited_total

    def batch_size_histogram(self) -> Dict[int, int]:
        """Copy of the ``{batch_size: count}`` histogram."""
        with self._lock:
            return dict(self._batch_size_histogram)

    def max_batch_size_seen(self) -> int:
        """Largest micro-batch executed so far (0 before the first batch)."""
        with self._lock:
            return max(self._batch_size_histogram) if self._batch_size_histogram else 0

    def snapshot(self, queue_depth: int = 0) -> Dict[str, object]:
        """JSON-ready metrics view (the ``/metrics`` response body)."""
        with self._lock:
            latencies = list(self._latencies_ms)
            queue_waits = list(self._queue_wait_ms)
            return {
                "requests_total": self._requests_total,
                "rejected_total": self._rejected_total,
                "shed_total": self._shed_total,
                "rate_limited_total": self._rate_limited_total,
                "errors_total": self._errors_total,
                "batches_total": self._batches_total,
                "images_total": self._images_total,
                "queue_depth": int(queue_depth),
                "batch_size_histogram": {
                    str(size): count
                    for size, count in sorted(self._batch_size_histogram.items())
                },
                "latency_ms": _quantile_summary(latencies),
                "queue_wait_ms": _quantile_summary(queue_waits),
            }
