"""Micro-benchmarks of the simulator's hot paths.

Unlike the table/figure benches (which run once and print the reproduced
table), these use pytest-benchmark's statistical timing to track the
throughput of the per-time-step kernels: the spiking dense / conv layer
step, the input encoders and the ANN convolution forward pass.  They guard
against performance regressions in the code every experiment depends on.
"""

import numpy as np
import pytest

from repro.ann.layers import Conv2D
from repro.snn.encoding import PhaseEncoder, RateEncoder
from repro.snn.layers import SpikingConv2D, SpikingDense
from repro.snn.thresholds import BurstThreshold, ConstantThreshold


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


class TestSpikingLayerThroughput:
    def test_bench_spiking_dense_step(self, benchmark, rng):
        layer = SpikingDense(
            rng.normal(size=(512, 256)) * 0.05, None, ConstantThreshold(1.0)
        )
        layer.reset(batch_size=32)
        incoming = rng.uniform(0, 0.2, size=(32, 512))
        counter = iter(range(10**9))
        benchmark(lambda: layer.step(incoming, next(counter)))

    def test_bench_spiking_dense_burst_step(self, benchmark, rng):
        layer = SpikingDense(
            rng.normal(size=(512, 256)) * 0.05, None, BurstThreshold(v_th=0.125, beta=2.0)
        )
        layer.reset(batch_size=32)
        incoming = rng.uniform(0, 0.2, size=(32, 512))
        counter = iter(range(10**9))
        benchmark(lambda: layer.step(incoming, next(counter)))

    def test_bench_spiking_conv_step(self, benchmark, rng):
        layer = SpikingConv2D(
            rng.normal(size=(16, 8, 3, 3)) * 0.05,
            None,
            BurstThreshold(v_th=0.125),
            stride=1,
            padding=1,
            input_shape=(8, 16, 16),
        )
        layer.reset(batch_size=8)
        incoming = rng.uniform(0, 0.2, size=(8, 8, 16, 16))
        counter = iter(range(10**9))
        benchmark(lambda: layer.step(incoming, next(counter)))


class TestEncoderThroughput:
    def test_bench_rate_encoder_step(self, benchmark, rng):
        encoder = RateEncoder()
        encoder.reset(rng.uniform(size=(32, 3, 32, 32)))
        counter = iter(range(10**9))
        benchmark(lambda: encoder.step(next(counter)))

    def test_bench_phase_encoder_step(self, benchmark, rng):
        encoder = PhaseEncoder(period=8)
        encoder.reset(rng.uniform(size=(32, 3, 32, 32)))
        counter = iter(range(10**9))
        benchmark(lambda: encoder.step(next(counter)))


class TestAnnThroughput:
    def test_bench_conv2d_forward(self, benchmark, rng):
        layer = Conv2D(8, 16, kernel_size=3, padding=1, seed=0)
        x = rng.uniform(size=(8, 8, 16, 16))
        benchmark(lambda: layer.forward(x))
