"""Tests for the information-transmission analysis (repro.analysis.information)."""

import numpy as np
import pytest

from repro.analysis.information import (
    compare_codings,
    reconstruction_error,
    transmission_efficiency,
    transmission_trace,
)


class TestTransmissionTrace:
    def test_shapes_and_monotonicity(self):
        trace = transmission_trace("rate", 0.3, time_steps=64)
        assert trace.cumulative_transmitted.shape == (64,)
        assert trace.cumulative_spikes.shape == (64,)
        assert np.all(np.diff(trace.cumulative_transmitted) >= 0)
        assert np.all(np.diff(trace.cumulative_spikes) >= 0)

    def test_rate_coding_transmits_value_asymptotically(self):
        trace = transmission_trace("rate", 0.4, time_steps=400)
        assert trace.estimate_at(400) == pytest.approx(0.4, abs=0.01)

    def test_burst_coding_transmits_value(self):
        trace = transmission_trace("burst", 0.7, time_steps=200, v_th=0.125)
        assert trace.estimate_at(200) == pytest.approx(0.7, abs=0.05)

    def test_phase_coding_transmits_value(self):
        trace = transmission_trace("phase", 0.6, time_steps=256)
        # phase hidden coding can transmit at most ~1/period per step; for
        # values above that capacity the estimate saturates near 1/8
        assert trace.estimate_at(256) <= 0.6 + 1e-9

    def test_zero_value_never_spikes(self):
        trace = transmission_trace("burst", 0.0, time_steps=50)
        assert trace.cumulative_spikes[-1] == 0
        assert trace.cumulative_transmitted[-1] == 0.0

    def test_estimate_at_bounds(self):
        trace = transmission_trace("rate", 0.5, time_steps=10)
        with pytest.raises(ValueError):
            trace.estimate_at(0)
        with pytest.raises(ValueError):
            trace.estimate_at(11)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            transmission_trace("rate", -0.1)
        with pytest.raises(ValueError):
            transmission_trace("rate", 0.5, time_steps=0)


class TestReconstructionError:
    def test_error_decreases_for_rate_coding(self):
        trace = transmission_trace("rate", 0.37, time_steps=256)
        errors = reconstruction_error(trace)
        assert errors[-1] < errors[0]
        assert errors[-1] < 0.01

    def test_error_non_negative(self):
        trace = transmission_trace("burst", 0.5, time_steps=64, v_th=0.125)
        assert np.all(reconstruction_error(trace) >= 0.0)


class TestTransmissionEfficiency:
    def test_summary_fields(self):
        trace = transmission_trace("burst", 0.5, time_steps=128, v_th=0.125)
        summary = transmission_efficiency(trace, target_error=0.05)
        assert summary.coding == "burst"
        assert summary.total_spikes > 0
        assert summary.bits_per_spike > 0
        assert summary.steps_to_target is not None
        assert summary.spikes_to_target is not None
        assert summary.spikes_to_target <= summary.total_spikes

    def test_silent_neuron_zero_bits(self):
        trace = transmission_trace("rate", 0.0, time_steps=32)
        summary = transmission_efficiency(trace)
        assert summary.total_spikes == 0
        assert summary.bits_per_spike == 0.0
        assert summary.steps_to_target == 1  # error is exactly 0 from the start

    def test_invalid_target(self):
        trace = transmission_trace("rate", 0.3, time_steps=16)
        with pytest.raises(ValueError):
            transmission_efficiency(trace, target_error=0.0)

    def test_burst_needs_fewer_spikes_than_rate_for_large_values(self):
        """The paper's efficiency claim, stated quantitatively: to transmit a
        large activation at moderate precision, burst coding needs fewer
        spikes than rate coding with the same base threshold."""
        rate_trace = transmission_trace("rate", 0.9, time_steps=256, v_th=0.125)
        burst_trace = transmission_trace("burst", 0.9, time_steps=256, v_th=0.125)
        rate_summary = transmission_efficiency(rate_trace, target_error=0.05)
        burst_summary = transmission_efficiency(burst_trace, target_error=0.05)
        assert burst_summary.total_spikes < rate_summary.total_spikes
        assert burst_summary.bits_per_spike > rate_summary.bits_per_spike


class TestCompareCodings:
    def test_structure(self):
        table = compare_codings([0.2, 0.8], codings=("rate", "burst"), time_steps=64)
        assert set(table) == {"rate", "burst"}
        assert set(table["rate"]) == {0.2, 0.8}

    def test_rate_coding_slowest_to_fine_precision(self):
        """Rate coding needs ~2^k steps for k-bit precision; phase and burst
        get there much sooner (the motivation in Section 2.2)."""
        table = compare_codings([0.3], codings=("rate", "phase", "burst"), time_steps=256,
                                target_error=1 / 64)
        rate_steps = table["rate"][0.3].steps_to_target
        burst_steps = table["burst"][0.3].steps_to_target
        assert rate_steps is None or burst_steps is None or burst_steps <= rate_steps
