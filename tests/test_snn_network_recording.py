"""Tests for the SNN engine (SpikingNetwork) and spike recording."""

import numpy as np
import pytest

from repro.snn.encoding import RateEncoder, RealEncoder
from repro.snn.layers import OutputAccumulator, SpikingDense
from repro.snn.network import SimulationConfig, SpikingNetwork
from repro.snn.recording import LayerRecord, SpikeRecord
from repro.snn.thresholds import ConstantThreshold


def _toy_network(encoder=None, v_th=0.5):
    """Input(2) -> spiking dense(3) -> output(2)."""
    rng = np.random.default_rng(0)
    hidden_weight = rng.uniform(0.2, 0.8, size=(2, 3))
    output_weight = rng.uniform(-0.5, 0.5, size=(3, 2))
    layers = [
        SpikingDense(hidden_weight, None, ConstantThreshold(v_th), name="hidden"),
        OutputAccumulator(output_weight, None, name="out"),
    ]
    return SpikingNetwork(layers, encoder or RealEncoder(), input_shape=(2,), name="toy")


class TestSimulationConfig:
    def test_defaults_valid(self):
        SimulationConfig()

    def test_invalid_time_steps(self):
        with pytest.raises(ValueError):
            SimulationConfig(time_steps=0)

    def test_invalid_sample_fraction(self):
        with pytest.raises(ValueError):
            SimulationConfig(sample_fraction=0.0)


class TestSpikingNetworkStructure:
    def test_requires_output_accumulator_last(self):
        layer = SpikingDense(np.ones((2, 2)), None, ConstantThreshold())
        with pytest.raises(ValueError):
            SpikingNetwork([layer], RealEncoder(), input_shape=(2,))

    def test_requires_layers(self):
        with pytest.raises(ValueError):
            SpikingNetwork([], RealEncoder(), input_shape=(2,))

    def test_neuron_count(self):
        net = _toy_network()
        assert net.num_input_neurons() == 2
        assert net.num_neurons(include_input=True) == 5
        assert net.num_neurons(include_input=False) == 3

    def test_num_classes(self):
        assert _toy_network().num_classes == 2

    def test_summary_text(self):
        text = _toy_network().summary()
        assert "hidden" in text and "total spiking neurons" in text


class TestSpikingNetworkRun:
    def test_rejects_wrong_input_shape(self):
        net = _toy_network()
        with pytest.raises(ValueError):
            net.run(np.zeros((1, 3)), SimulationConfig(time_steps=2))

    def test_rejects_empty_batch(self):
        net = _toy_network()
        with pytest.raises(ValueError):
            net.run(np.zeros((0, 2)), SimulationConfig(time_steps=2))

    def test_output_history_shape(self):
        net = _toy_network()
        result = net.run(np.full((3, 2), 0.5), SimulationConfig(time_steps=10))
        assert result.output_history.shape == (10, 3, 2)
        assert result.recorded_steps[-1] == 10
        assert result.batch_size == 3

    def test_record_outputs_every(self):
        net = _toy_network()
        result = net.run(np.full((1, 2), 0.5), SimulationConfig(time_steps=10, record_outputs_every=4))
        assert list(result.recorded_steps) == [4, 8, 10]

    def test_outputs_accumulate_monotonically_in_steps(self):
        net = _toy_network()
        result = net.run(np.full((1, 2), 0.9), SimulationConfig(time_steps=20))
        # the output accumulator never resets, so the history at later steps
        # is the running sum (here just check it changes over time)
        assert not np.allclose(result.output_history[0], result.output_history[-1])

    def test_deterministic_given_seed(self):
        net1 = _toy_network(RateEncoder())
        net2 = _toy_network(RateEncoder())
        x = np.full((2, 2), 0.4)
        r1 = net1.run(x, SimulationConfig(time_steps=15, seed=1))
        r2 = net2.run(x, SimulationConfig(time_steps=15, seed=1))
        assert np.allclose(r1.output_history, r2.output_history)
        assert r1.total_spikes() == r2.total_spikes()

    def test_accuracy_and_labels(self):
        net = _toy_network()
        x = np.full((4, 2), 0.5)
        result = net.run(x, SimulationConfig(time_steps=5), labels=np.array([0, 0, 1, 1]))
        curve = result.accuracy_curve()
        assert curve.shape == (5,)
        assert 0.0 <= result.accuracy() <= 1.0

    def test_accuracy_requires_labels(self):
        net = _toy_network()
        result = net.run(np.full((1, 2), 0.5), SimulationConfig(time_steps=3))
        with pytest.raises(ValueError):
            result.accuracy()

    def test_spike_statistics(self):
        net = _toy_network(RateEncoder())
        result = net.run(np.full((2, 2), 0.8), SimulationConfig(time_steps=30))
        assert result.total_spikes() > 0
        assert result.spikes_per_sample() == pytest.approx(result.total_spikes() / 2)
        density = result.spiking_density()
        assert 0.0 < density <= 1.0

    def test_density_with_partial_latency(self):
        net = _toy_network(RateEncoder())
        result = net.run(np.full((1, 2), 0.8), SimulationConfig(time_steps=30))
        early = result.spiking_density(latency=5)
        late = result.spiking_density(latency=30)
        assert early >= 0.0 and late >= 0.0

    def test_spike_trains_recorded_when_requested(self):
        net = _toy_network(RateEncoder())
        config = SimulationConfig(time_steps=12, record_trains=True, sample_fraction=1.0)
        result = net.run(np.full((2, 2), 0.7), config)
        hidden = result.record.layers[0]
        trains = hidden.spike_trains()
        assert trains.shape == (12, 2, 3)  # (T, batch, neurons)
        assert trains.sum() == hidden.total_spikes

    def test_real_coding_input_emits_no_spikes(self):
        net = _toy_network(RealEncoder())
        result = net.run(np.full((1, 2), 0.9), SimulationConfig(time_steps=10))
        assert result.record.input_record.total_spikes == 0


class TestSpikeRecord:
    def test_invalid_sample_fraction(self):
        with pytest.raises(ValueError):
            SpikeRecord(sample_fraction=0.0)

    def test_register_and_totals(self):
        record = SpikeRecord(record_trains=False)
        record.register_input(4)
        layer = record.register_layer("hidden", 3, is_spiking=True)
        layer.record_step(np.array([[True, False, True]]), record_trains=False)
        record.input_record.record_step(np.array([[True, False, False, False]]), False)
        record.advance()
        assert record.total_spikes() == 3
        assert record.total_spikes(include_input=False) == 2
        assert record.total_neurons() == 7

    def test_spikes_per_step_and_cumulative(self):
        record = SpikeRecord()
        record.register_input(2)
        layer = record.register_layer("l", 2, is_spiking=True)
        for count in (1, 2, 0):
            layer.record_step(np.array([[True] * count + [False] * (2 - count)]), False)
            record.input_record.record_step(None, False)
            record.advance()
        assert list(record.spikes_per_step()) == [1, 2, 0]
        assert list(record.cumulative_spikes()) == [1, 3, 3]

    def test_per_layer_totals(self):
        record = SpikeRecord()
        record.register_input(1)
        record.register_layer("a", 1, is_spiking=True)
        totals = record.per_layer_totals()
        assert set(totals) == {"input", "a"}

    def test_non_spiking_layer_has_no_sample_indices(self):
        record = SpikeRecord(record_trains=True)
        layer = record.register_layer("pool", 0, is_spiking=False)
        assert layer.sampled_indices is None

    def test_sampling_fraction(self):
        record = SpikeRecord(sample_fraction=0.5, record_trains=True, seed=0)
        layer = record.register_layer("big", 100, is_spiking=True)
        assert len(layer.sampled_indices) == 50


class TestLayerRecord:
    def test_empty_trains(self):
        record = LayerRecord(name="x", num_neurons=3, is_spiking=True)
        assert record.spike_trains().shape == (0, 0, 0)
        assert record.spike_trains_flat().shape == (0, 0)

    def test_record_none_spikes(self):
        record = LayerRecord(name="x", num_neurons=3, is_spiking=False)
        record.record_step(None, record_trains=False)
        assert record.spike_counts == [0]

    def test_none_spikes_placeholder_uses_batch_size(self):
        """The non-spiking placeholder train must match the (batch, n_sampled)
        shape of the real train steps, also for batch > 1."""
        record = LayerRecord(name="x", num_neurons=4, is_spiking=True)
        record.sampled_indices = np.array([0, 2])
        record.batch_size = 3
        record.record_step(np.zeros((3, 4), dtype=bool), record_trains=True)
        record.record_step(None, record_trains=True)
        trains = record.spike_trains()
        assert trains.shape == (2, 3, 2)

    def test_preallocated_matches_fallback(self):
        """Preallocated and growable storage record identical data."""
        rng = np.random.default_rng(0)
        steps = [rng.random((2, 5)) > 0.5 for _ in range(4)]
        pre = LayerRecord(name="a", num_neurons=5, is_spiking=True)
        pre.sampled_indices = np.array([1, 3])
        pre.preallocate(time_steps=4, batch_size=2, record_trains=True)
        fall = LayerRecord(name="b", num_neurons=5, is_spiking=True)
        fall.sampled_indices = np.array([1, 3])
        for spikes in steps:
            pre.record_step(spikes, record_trains=True)
            fall.record_step(spikes, record_trains=True)
        assert np.array_equal(np.asarray(pre.spike_counts), np.asarray(fall.spike_counts))
        assert pre.total_spikes == fall.total_spikes
        assert np.array_equal(pre.spike_trains(), fall.spike_trains())

    def test_preallocated_partial_run_views(self):
        record = LayerRecord(name="a", num_neurons=2, is_spiking=True)
        record.preallocate(time_steps=10, batch_size=1, record_trains=False)
        record.record_step(np.array([[True, True]]), record_trains=False)
        record.record_step(np.array([[True, False]]), record_trains=False)
        assert list(record.spike_counts) == [2, 1]
        assert record.total_spikes == 3

    def test_preallocated_overflow_rejected(self):
        record = LayerRecord(name="a", num_neurons=1, is_spiking=True)
        record.preallocate(time_steps=1, batch_size=1, record_trains=False)
        record.record_step(np.array([[True]]), record_trains=False)
        with pytest.raises(RuntimeError):
            record.record_step(np.array([[True]]), record_trains=False)

    def test_preallocate_validates_arguments(self):
        record = LayerRecord(name="a", num_neurons=1, is_spiking=True)
        with pytest.raises(ValueError):
            record.preallocate(time_steps=0, batch_size=1, record_trains=False)
        with pytest.raises(ValueError):
            record.preallocate(time_steps=1, batch_size=0, record_trains=False)
