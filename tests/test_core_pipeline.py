"""Integration tests for the end-to-end SNN inference pipeline."""

import numpy as np
import pytest

from repro.core.hybrid import HybridCodingScheme
from repro.core.pipeline import PipelineConfig, SNNInferencePipeline


@pytest.fixture(scope="module")
def mlp_pipeline(trained_mlp, tiny_image_split):
    config = PipelineConfig(time_steps=60, batch_size=16, max_test_images=16, calibration_images=40)
    return SNNInferencePipeline(trained_mlp, tiny_image_split, config)


class TestPipelineConfig:
    def test_defaults(self):
        PipelineConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"time_steps": 0},
            {"batch_size": 0},
            {"record_outputs_every": 0},
            {"max_test_images": 0},
            {"calibration_images": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            PipelineConfig(**kwargs)


class TestSNNInferencePipeline:
    def test_dnn_accuracy_cached(self, mlp_pipeline):
        first = mlp_pipeline.dnn_accuracy
        second = mlp_pipeline.dnn_accuracy
        assert first == second
        assert 0.0 <= first <= 1.0

    def test_normalization_shared_and_cached(self, mlp_pipeline):
        assert mlp_pipeline.normalization is mlp_pipeline.normalization
        assert len(mlp_pipeline.normalization.scales) > 0

    def test_build_snn_structure(self, mlp_pipeline, tiny_image_split):
        snn = mlp_pipeline.build_snn(HybridCodingScheme.from_notation("phase-burst"))
        assert snn.num_classes == tiny_image_split.num_classes
        assert snn.num_neurons() > 0

    def test_run_scheme_produces_consistent_curves(self, mlp_pipeline):
        run = mlp_pipeline.run_scheme(HybridCodingScheme.from_notation("phase-burst"))
        assert run.accuracy_curve.shape == run.recorded_steps.shape
        assert run.cumulative_spikes.shape == (run.time_steps,)
        assert np.all(np.diff(run.cumulative_spikes) >= 0)
        assert 0.0 <= run.accuracy <= 1.0
        assert run.num_images == 16
        assert run.outputs_final.shape == (16, 4)

    def test_real_burst_reaches_dnn_accuracy(self, mlp_pipeline):
        """The proposed burst coding must recover the DNN's accuracy — the
        headline claim of the paper."""
        run = mlp_pipeline.run_scheme(HybridCodingScheme.from_notation("real-burst"))
        assert run.accuracy >= run.dnn_accuracy - 0.05

    def test_phase_burst_reaches_dnn_accuracy(self, mlp_pipeline):
        run = mlp_pipeline.run_scheme(HybridCodingScheme.from_notation("phase-burst"))
        assert run.accuracy >= run.dnn_accuracy - 0.05

    def test_metrics_row(self, mlp_pipeline):
        run = mlp_pipeline.run_scheme(HybridCodingScheme.from_notation("real-rate"))
        metrics = run.metrics()
        assert metrics.scheme == "real-rate"
        assert metrics.num_images == run.num_images
        assert metrics.spikes_per_image == pytest.approx(run.spikes_per_image)
        with_target = run.metrics(target_accuracy=run.dnn_accuracy * 0.5)
        assert with_target.latency is not None

    def test_keep_batch_results_with_trains(self, trained_mlp, tiny_image_split):
        config = PipelineConfig(
            time_steps=30,
            batch_size=8,
            max_test_images=8,
            record_trains=True,
            sample_fraction=0.5,
            calibration_images=20,
        )
        pipeline = SNNInferencePipeline(trained_mlp, tiny_image_split, config)
        run = pipeline.run_scheme(
            HybridCodingScheme.from_notation("phase-burst"), keep_batch_results=True
        )
        assert len(run.batch_results) == 1
        hidden = next(
            record for record in run.batch_results[0].record.layers if record.is_spiking
        )
        assert hidden.spike_trains().shape[0] == 30

    def test_compare_returns_row_per_scheme(self, mlp_pipeline):
        schemes = [
            HybridCodingScheme.from_notation("real-rate"),
            HybridCodingScheme.from_notation("real-burst"),
        ]
        rows = mlp_pipeline.compare(schemes, time_steps=30)
        assert set(rows) == {"real-rate", "real-burst"}

    def test_time_step_override(self, mlp_pipeline):
        run = mlp_pipeline.run_scheme(HybridCodingScheme.from_notation("real-rate"), time_steps=10)
        assert run.time_steps == 10
        assert run.cumulative_spikes.shape == (10,)

    def test_batching_does_not_change_results(self, trained_mlp, tiny_image_split):
        """Running the test set in one batch or several must give identical
        accuracy curves and spike counts (per-sample independence)."""
        runs = []
        for batch_size in (4, 16):
            config = PipelineConfig(
                time_steps=25, batch_size=batch_size, max_test_images=16, calibration_images=30
            )
            pipeline = SNNInferencePipeline(trained_mlp, tiny_image_split, config)
            runs.append(pipeline.run_scheme(HybridCodingScheme.from_notation("real-burst")))
        assert np.allclose(runs[0].accuracy_curve, runs[1].accuracy_curve)
        assert runs[0].total_spikes == runs[1].total_spikes

    def test_empty_test_set_rejected(self, trained_mlp, tiny_image_split):
        empty_split = type(tiny_image_split)(
            train=tiny_image_split.train,
            test=tiny_image_split.train.subset(np.array([], dtype=int)),
            name="empty",
        )
        pipeline = SNNInferencePipeline(trained_mlp, empty_split, PipelineConfig(time_steps=5))
        with pytest.raises(ValueError):
            pipeline.run_scheme(HybridCodingScheme.from_notation("real-rate"))


class TestCodingSchemeOrdering:
    """Qualitative orderings the paper reports, checked on the tiny workload."""

    def test_burst_hidden_not_slower_than_rate_hidden(self, mlp_pipeline):
        """Burst coding converges at least as fast as rate coding in the
        hidden layers (Fig. 4's qualitative claim), measured by the area
        under the inference curve."""
        burst = mlp_pipeline.run_scheme(HybridCodingScheme.from_notation("real-burst"))
        rate = mlp_pipeline.run_scheme(HybridCodingScheme.from_notation("real-rate"))
        trapezoid = getattr(np, "trapezoid", None) or np.trapz
        auc_burst = trapezoid(burst.accuracy_curve, burst.recorded_steps)
        auc_rate = trapezoid(rate.accuracy_curve, rate.recorded_steps)
        assert auc_burst >= auc_rate * 0.95

    def test_phase_hidden_generates_more_spikes_than_burst(self, mlp_pipeline):
        """Phase coding in hidden layers is the spike-hungry configuration
        (Table 1 / Fig. 3)."""
        phase = mlp_pipeline.run_scheme(HybridCodingScheme.from_notation("phase-phase"))
        burst = mlp_pipeline.run_scheme(HybridCodingScheme.from_notation("phase-burst"))
        assert phase.total_spikes > burst.total_spikes

    def test_real_input_emits_fewer_input_spikes_than_rate(self, mlp_pipeline):
        real = mlp_pipeline.run_scheme(HybridCodingScheme.from_notation("real-burst"))
        rate = mlp_pipeline.run_scheme(HybridCodingScheme.from_notation("rate-burst"))
        assert real.total_spikes < rate.total_spikes
