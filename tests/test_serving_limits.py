"""Tests for per-client admission control (repro.serving.limits).

Everything here drives an injected fake clock — token-bucket refill and
quota-window resets are exercised deterministically, with no sleeping.
"""

import pytest

from repro.serving.limits import (
    ANONYMOUS_CLIENT,
    ClientRateLimiter,
    RateLimitedError,
    TokenBucket,
)


class ManualClock:
    """Monotonic clock advanced explicitly by the test."""

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


class TestTokenBucket:
    def test_fresh_bucket_allows_a_full_burst(self):
        bucket = TokenBucket(rate=2.0, capacity=3.0, now=0.0)
        assert [bucket.try_acquire(0.0) for _ in range(3)] == [None, None, None]
        retry = bucket.try_acquire(0.0)
        assert retry == pytest.approx(0.5)  # one token at 2 tokens/s

    def test_refill_is_proportional_to_elapsed_time(self):
        bucket = TokenBucket(rate=2.0, capacity=4.0, now=0.0)
        for _ in range(4):
            assert bucket.try_acquire(0.0) is None
        # 0.75 s later: 1.5 tokens back -> one request passes, the next
        # needs another quarter second
        assert bucket.try_acquire(0.75) is None
        assert bucket.try_acquire(0.75) == pytest.approx(0.25)

    def test_refill_caps_at_capacity(self):
        bucket = TokenBucket(rate=10.0, capacity=2.0, now=0.0)
        assert bucket.try_acquire(0.0) is None
        # an hour idle banks only `capacity` tokens, not rate * elapsed
        assert [bucket.try_acquire(3600.0) for _ in range(3)] == [
            None, None, pytest.approx(0.1),
        ]

    def test_clock_going_backwards_is_tolerated(self):
        bucket = TokenBucket(rate=1.0, capacity=1.0, now=10.0)
        assert bucket.try_acquire(5.0) is None  # no negative refill, no crash

    @pytest.mark.parametrize("kwargs", [{"rate": 0.0}, {"rate": -1.0}, {"capacity": 0.5}])
    def test_invalid_parameters(self, kwargs):
        params = {"rate": 1.0, "capacity": 1.0, **kwargs}
        with pytest.raises(ValueError):
            TokenBucket(params["rate"], params["capacity"], now=0.0)


class TestClientRateLimiter:
    def test_disabled_limiter_admits_everything(self):
        limiter = ClientRateLimiter()
        assert not limiter.enabled
        for _ in range(1000):
            limiter.admit("anyone")
        assert limiter.limited_total == 0

    def test_rate_limit_bounces_with_refill_guidance(self):
        clock = ManualClock()
        limiter = ClientRateLimiter(2.0, clock=clock)
        limiter.admit("a")
        limiter.admit("a")  # burst = ceil(max_rps) = 2
        with pytest.raises(RateLimitedError) as excinfo:
            limiter.admit("a")
        assert excinfo.value.retry_after_s == pytest.approx(0.5)
        clock.advance(0.5)  # exactly one token refilled
        limiter.admit("a")
        assert limiter.limited_total == 1

    def test_clients_are_limited_independently(self):
        clock = ManualClock()
        limiter = ClientRateLimiter(1.0, clock=clock)
        limiter.admit("a")
        with pytest.raises(RateLimitedError):
            limiter.admit("a")
        limiter.admit("b")  # a fresh client has its own full bucket
        limiter.admit(None)  # anonymous traffic is its own client
        assert limiter.snapshot()["clients_tracked"] == 3

    def test_anonymous_requests_share_one_identity(self):
        clock = ManualClock()
        limiter = ClientRateLimiter(1.0, clock=clock)
        limiter.admit(None)
        with pytest.raises(RateLimitedError):
            limiter.admit(ANONYMOUS_CLIENT)  # same bucket as None

    def test_quota_window_resets_on_the_fake_clock(self):
        clock = ManualClock()
        limiter = ClientRateLimiter(quota=2, quota_window_s=60.0, clock=clock)
        limiter.admit("a")
        clock.advance(10.0)
        limiter.admit("a")
        clock.advance(10.0)
        with pytest.raises(RateLimitedError) as excinfo:
            limiter.admit("a")
        # retry when the window (opened at t=0) rolls over at t=60
        assert excinfo.value.retry_after_s == pytest.approx(40.0)
        clock.advance(40.0)
        limiter.admit("a")  # new window
        assert limiter.limited_total == 1

    def test_paced_out_requests_do_not_consume_quota(self):
        clock = ManualClock()
        limiter = ClientRateLimiter(1.0, quota=2, quota_window_s=60.0, clock=clock)
        limiter.admit("a")
        for _ in range(5):  # all bounced by the bucket, not the quota
            with pytest.raises(RateLimitedError, match="rate limit"):
                limiter.admit("a")
        clock.advance(1.0)
        limiter.admit("a")  # second (and last) unit of quota
        clock.advance(1.0)
        with pytest.raises(RateLimitedError, match="quota"):
            limiter.admit("a")

    def test_client_state_is_lru_bounded(self):
        clock = ManualClock()
        limiter = ClientRateLimiter(1.0, clock=clock, max_clients=2)
        limiter.admit("a")
        limiter.admit("b")
        limiter.admit("c")  # evicts "a"
        assert limiter.snapshot()["clients_tracked"] == 2
        limiter.admit("a")  # returns with a fresh (full) bucket

    def test_snapshot_shape(self):
        limiter = ClientRateLimiter(4.0, burst=8.0, quota=100, quota_window_s=30.0)
        snapshot = limiter.snapshot()
        assert snapshot == {
            "max_rps": 4.0,
            "burst": 8.0,
            "quota": 100,
            "quota_window_s": 30.0,
            "clients_tracked": 0,
            "rate_limited_total": 0,
        }

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_rps": 0.0},
            {"burst": 0.5},
            {"quota": 0},
            {"quota_window_s": 0.0},
            {"max_clients": 0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            ClientRateLimiter(**{"max_rps": 1.0, **kwargs})
