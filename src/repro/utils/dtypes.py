"""Project-wide floating-point precision policy for the simulation engine.

The SNN hot path (membrane updates, im2col fills, GEMMs) is memory-bandwidth
bound, so simulating in ``float32`` roughly halves the bytes moved per step
and is the default.  ``float64`` remains a first-class opt-in — it is the
precision the ANN is trained and normalised in, and the engine's float64
results are kept bit-identical to the original (pre-optimisation) engine so
golden references stay valid.

Resolution order for the effective simulation dtype:

1. an explicit ``dtype=`` argument on the API being called
   (e.g. ``SimulationConfig(dtype="float64")`` or ``IFNeuronState(dtype=...)``);
2. a process-wide override installed via :func:`set_simulation_dtype` or the
   :func:`simulation_precision` context manager;
3. the ``REPRO_SIM_DTYPE`` environment variable (``float32`` / ``float64``);
4. the project default, ``float32``.

Everything outside the simulation engine (ANN training, weight normalisation,
analysis) stays in float64; weights are kept in float64 master copies and cast
once per simulation run, never per step.

The compute-backend policy (:mod:`repro.backends.registry`) mirrors this
resolution order — explicit config, process override, ``REPRO_BACKEND`` env
var, project default — and the two compose: the float64 bit-identity
guarantee above is the *numpy reference backend's* contract, while other
backends are held to prediction-level agreement.
"""

from __future__ import annotations

import contextlib
import os
from typing import Iterator, Optional, Union

import numpy as np

DTypeLike = Union[str, type, np.dtype, None]

#: project default simulation precision
DEFAULT_SIMULATION_DTYPE = np.dtype(np.float32)

#: supported simulation dtypes (the engine is a 2-precision system on purpose:
#: anything below float32 breaks the spike-count semantics of small v_th)
_SUPPORTED = {
    "float32": np.dtype(np.float32),
    "float64": np.dtype(np.float64),
}
_ALIASES = {
    "f32": "float32",
    "single": "float32",
    "f64": "float64",
    "double": "float64",
}

_override: Optional[np.dtype] = None


def _canonical(value: DTypeLike) -> np.dtype:
    if isinstance(value, np.dtype):
        key = value.name
    elif isinstance(value, str):
        key = value.strip().lower()
    else:
        key = np.dtype(value).name
    key = _ALIASES.get(key, key)
    if key not in _SUPPORTED:
        raise ValueError(
            f"unsupported simulation dtype {value!r}; expected one of "
            f"{sorted(_SUPPORTED)} (aliases: {sorted(_ALIASES)})"
        )
    return _SUPPORTED[key]


def simulation_dtype() -> np.dtype:
    """The currently effective simulation dtype (without an explicit override)."""
    if _override is not None:
        return _override
    env = os.environ.get("REPRO_SIM_DTYPE")
    if env:
        return _canonical(env)
    return DEFAULT_SIMULATION_DTYPE


def resolve_dtype(dtype: DTypeLike = None) -> np.dtype:
    """Resolve an optional explicit dtype against the policy default."""
    if dtype is None:
        return simulation_dtype()
    return _canonical(dtype)


def set_simulation_dtype(dtype: DTypeLike) -> np.dtype:
    """Install a process-wide simulation dtype override (``None`` clears it)."""
    global _override
    _override = None if dtype is None else _canonical(dtype)
    return simulation_dtype()


@contextlib.contextmanager
def simulation_precision(dtype: DTypeLike) -> Iterator[np.dtype]:
    """Temporarily override the simulation dtype::

        with simulation_precision("float64"):
            result = snn.run(x, config)
    """
    global _override
    previous = _override
    _override = _canonical(dtype)
    try:
        yield _override
    finally:
        _override = previous
