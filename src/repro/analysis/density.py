"""Spiking density (Table 2).

The paper defines spiking density as the expected number of spikes a neuron
generates per time step::

    density = spikes_per_image / (num_neurons * latency)

It is the fair-comparison metric the paper introduces because raw spike counts
grow with latency.
"""

from __future__ import annotations


def spiking_density(spikes_per_image: float, num_neurons: int, latency: int) -> float:
    """Spiking density as defined in Table 2 (footnote a).

    Parameters
    ----------
    spikes_per_image:
        Average number of spikes the network emits per classified image.
    num_neurons:
        Total number of spiking neurons in the network.
    latency:
        Number of simulation time steps used for the classification.
    """
    if num_neurons <= 0:
        raise ValueError(f"num_neurons must be positive, got {num_neurons}")
    if latency <= 0:
        raise ValueError(f"latency must be positive, got {latency}")
    if spikes_per_image < 0:
        raise ValueError(f"spikes_per_image must be non-negative, got {spikes_per_image}")
    return float(spikes_per_image) / (float(num_neurons) * float(latency))
