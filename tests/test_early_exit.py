"""Converged-image early exit (``SimulationConfig(early_exit_patience=...)``).

The engine freezes images whose output argmax has been stable for the
patience window, compacting every layer's state to the surviving batch rows.
These tests pin the semantics: complete output curves (frozen images repeat
their converged scores), reduced spike counts, unchanged default behaviour,
and state-carrying correctness of ``shrink_batch`` across the layer stack.
"""

import numpy as np
import pytest

from repro.conversion.converter import convert_to_snn
from repro.core.hybrid import HybridCodingScheme
from repro.snn.network import SimulationConfig


@pytest.fixture(scope="module")
def converted_snn(trained_cnn, tiny_color_split):
    scheme = HybridCodingScheme.from_notation("phase-burst", v_th=0.125)
    return convert_to_snn(
        trained_cnn,
        encoder=scheme.make_encoder(seed=0),
        threshold_factory=scheme.make_threshold_factory(),
        calibration_x=tiny_color_split.train.x[:24],
    )


@pytest.fixture(scope="module")
def test_batch(tiny_color_split):
    return tiny_color_split.test.x[:8], tiny_color_split.test.y[:8]


def test_patience_validation():
    SimulationConfig(early_exit_patience=5)
    SimulationConfig(early_exit_patience=None)
    with pytest.raises(ValueError):
        SimulationConfig(early_exit_patience=0)
    with pytest.raises(ValueError):
        SimulationConfig(early_exit_patience=-3)


def test_default_off_is_unchanged(converted_snn, test_batch):
    """Without patience the engine must behave exactly as before (and report
    no freeze bookkeeping)."""
    x, y = test_batch
    result = converted_snn.run(x, SimulationConfig(time_steps=40), labels=y)
    assert result.frozen_at is None
    again = converted_snn.run(x, SimulationConfig(time_steps=40), labels=y)
    assert np.array_equal(result.output_history, again.output_history)
    assert result.total_spikes() == again.total_spikes()


def test_early_exit_freezes_and_saves_spikes(converted_snn, test_batch):
    x, y = test_batch
    dense = converted_snn.run(x, SimulationConfig(time_steps=80), labels=y)
    fast = converted_snn.run(
        x, SimulationConfig(time_steps=80, early_exit_patience=15), labels=y
    )
    assert fast.frozen_at is not None and fast.frozen_at.shape == (x.shape[0],)
    assert (fast.frozen_at > 0).any(), "no image converged on this easy task?"
    assert fast.total_spikes() < dense.total_spikes()
    # curves stay complete and the final predictions agree with the dense run
    assert fast.output_history.shape == dense.output_history.shape
    assert np.array_equal(fast.predictions(), dense.predictions())


def test_frozen_scores_repeat(converted_snn, test_batch):
    x, y = test_batch
    result = converted_snn.run(
        x, SimulationConfig(time_steps=60, early_exit_patience=12), labels=y
    )
    steps = result.recorded_steps
    for image, frozen_step in enumerate(result.frozen_at):
        if frozen_step <= 0:
            continue
        frozen_records = np.flatnonzero(steps >= frozen_step)
        scores = result.output_history[frozen_records, image, :]
        assert np.array_equal(scores, np.broadcast_to(scores[0], scores.shape)), (
            f"image {image}: scores changed after freezing at step {frozen_step}"
        )


def test_early_exit_is_deterministic(converted_snn, test_batch):
    x, y = test_batch
    config = SimulationConfig(time_steps=50, early_exit_patience=10)
    a = converted_snn.run(x, config, labels=y)
    b = converted_snn.run(x, config, labels=y)
    assert np.array_equal(a.output_history, b.output_history)
    assert np.array_equal(a.frozen_at, b.frozen_at)
    assert a.total_spikes() == b.total_spikes()


def test_trains_recorded_with_early_exit(converted_snn, test_batch):
    """Sampled spike trains keep their full (T, batch, n) shape; frozen
    images simply stop spiking."""
    x, y = test_batch
    result = converted_snn.run(
        x,
        SimulationConfig(time_steps=50, early_exit_patience=10, record_trains=True),
        labels=y,
    )
    assert (result.frozen_at > 0).any()
    for record in result.record.layers:
        if not record.is_spiking or record.sampled_indices is None:
            continue
        trains = record.spike_trains()
        if trains.size == 0:
            continue
        assert trains.shape[1] == x.shape[0]
        for image, frozen_step in enumerate(result.frozen_at):
            if frozen_step <= 0:
                continue
            assert not trains[frozen_step:, image, :].any(), (
                f"{record.name}: image {image} spiked after freezing"
            )


def test_all_images_frozen_stops_early(converted_snn, test_batch):
    """With an aggressive patience every image freezes and the recorded spike
    activity ends before the time budget, while curves stay complete."""
    x, y = test_batch
    result = converted_snn.run(
        x, SimulationConfig(time_steps=200, early_exit_patience=5), labels=y
    )
    assert (result.frozen_at > 0).all()
    assert result.record.time_steps < 200
    assert result.output_history.shape[0] == 200


def test_accuracy_preserved_with_generous_patience(converted_snn, test_batch):
    x, y = test_batch
    dense = converted_snn.run(x, SimulationConfig(time_steps=80), labels=y)
    fast = converted_snn.run(
        x, SimulationConfig(time_steps=80, early_exit_patience=25), labels=y
    )
    assert fast.accuracy() == pytest.approx(dense.accuracy(), abs=1.0 / x.shape[0])


# -- adaptive early exit (``early_exit_margin``) -----------------------------

def test_margin_validation():
    SimulationConfig(early_exit_patience=5, early_exit_margin=0.05)
    with pytest.raises(ValueError, match="requires early_exit_patience"):
        SimulationConfig(early_exit_margin=0.05)
    with pytest.raises(ValueError):
        SimulationConfig(early_exit_patience=5, early_exit_margin=0.0)
    with pytest.raises(ValueError):
        SimulationConfig(early_exit_patience=5, early_exit_margin=-0.1)


def test_margin_off_is_identical_to_patience_only(converted_snn, test_batch):
    """``early_exit_margin=None`` must leave the fixed-count criterion (and
    therefore every output and spike) exactly as before."""
    x, y = test_batch
    base = converted_snn.run(
        x, SimulationConfig(time_steps=80, early_exit_patience=15), labels=y
    )
    again = converted_snn.run(
        x,
        SimulationConfig(time_steps=80, early_exit_patience=15, early_exit_margin=None),
        labels=y,
    )
    assert np.array_equal(base.output_history, again.output_history)
    assert np.array_equal(base.frozen_at, again.frozen_at)
    assert base.total_spikes() == again.total_spikes()


def test_margin_freezes_no_earlier_than_argmax_only(converted_snn, test_batch):
    """The margin criterion is a *conjunction* with argmax stability, so each
    image freezes at the same step or later (never earlier)."""
    x, y = test_batch
    argmax_only = converted_snn.run(
        x, SimulationConfig(time_steps=80, early_exit_patience=10), labels=y
    )
    confident = converted_snn.run(
        x,
        SimulationConfig(time_steps=80, early_exit_patience=10, early_exit_margin=1e-6),
        labels=y,
    )
    for base_step, margin_step in zip(argmax_only.frozen_at, confident.frozen_at):
        effective_base = base_step if base_step > 0 else 81
        effective_margin = margin_step if margin_step > 0 else 81
        assert effective_margin >= effective_base


def test_unreachable_margin_never_freezes(converted_snn, test_batch):
    """A margin no per-step score gap can reach disables freezing entirely,
    reproducing the dense run step for step."""
    x, y = test_batch
    dense = converted_snn.run(x, SimulationConfig(time_steps=60), labels=y)
    gated = converted_snn.run(
        x,
        SimulationConfig(time_steps=60, early_exit_patience=5, early_exit_margin=1e9),
        labels=y,
    )
    assert (gated.frozen_at == -1).all()
    assert np.array_equal(dense.output_history, gated.output_history)
    assert dense.total_spikes() == gated.total_spikes()


def test_margin_curves_stay_complete(converted_snn, test_batch):
    x, y = test_batch
    result = converted_snn.run(
        x,
        SimulationConfig(time_steps=120, early_exit_patience=8, early_exit_margin=1e-4),
        labels=y,
    )
    assert result.output_history.shape[0] == 120
    frozen = result.frozen_at
    assert frozen is not None
    # frozen images repeat their converged scores for the rest of the run
    for image, step in enumerate(frozen):
        if step <= 0:
            continue
        converged = result.output_history[step - 1, image]
        assert np.array_equal(result.output_history[-1, image], converged)


# -- fused step programs × early exit ---------------------------------------
#
# Early exit shrinks every layer's per-batch buffers mid-simulation; compiled
# step programs capture those buffers, so ``shrink_batch`` must invalidate
# the programs and the engine must re-fetch them before the next step.  These
# are the regression tests for that interaction (the original bug: programs
# kept writing through stale pre-shrink views).


def test_early_exit_fused_matches_composed(converted_snn, test_batch):
    from repro.backends import fused_scope

    x, y = test_batch
    config = SimulationConfig(time_steps=60, early_exit_patience=8)
    with fused_scope(False):
        composed = converted_snn.run(x, config, labels=y)
    with fused_scope(True):
        fused = converted_snn.run(x, config, labels=y)
    assert np.array_equal(composed.output_history, fused.output_history)
    assert np.array_equal(composed.frozen_at, fused.frozen_at)
    assert composed.total_spikes() == fused.total_spikes()


def test_aggressive_patience_shrink_on_fused_path(converted_snn, test_batch):
    """Aggressive patience forces repeated shrinks while fused programs are
    live; predictions must still match the dense (never-shrinking) run."""
    x, y = test_batch
    shrunk = converted_snn.run(
        x, SimulationConfig(time_steps=200, early_exit_patience=5), labels=y
    )
    assert (shrunk.frozen_at > 0).all(), "patience=5 must freeze every image"
    dense = converted_snn.run(x, SimulationConfig(time_steps=200), labels=y)
    assert np.array_equal(shrunk.predictions(), dense.predictions())


def test_early_exit_fused_sharded_evaluation(trained_cnn, tiny_color_split, monkeypatch):
    """early_exit_patience + fused programs + sharded evaluation: the merged
    sharded run equals the sequential one, shrink included."""
    from repro.core.pipeline import PipelineConfig, SNNInferencePipeline

    scheme = HybridCodingScheme.from_notation("phase-burst", v_th=0.125)

    def build(num_workers):
        return SNNInferencePipeline(
            trained_cnn,
            tiny_color_split,
            PipelineConfig(
                time_steps=40,
                batch_size=4,
                max_test_images=8,
                early_exit_patience=5,
                num_workers=num_workers,
                seed=0,
            ),
        )

    sequential = build(None).run_scheme(scheme)
    monkeypatch.setenv("REPRO_FORCE_SHARDING", "1")
    sharded = build(2).run_scheme(scheme)
    assert np.array_equal(sequential.outputs_final, sharded.outputs_final)
    assert np.array_equal(sequential.accuracy_curve, sharded.accuracy_curve)
    assert sequential.total_spikes == sharded.total_spikes


def test_margin_through_pipeline_config(trained_cnn, tiny_color_split):
    """The adaptive criterion threads PipelineConfig → SimulationConfig."""
    from repro.core.pipeline import PipelineConfig, SNNInferencePipeline

    with pytest.raises(ValueError, match="requires early_exit_patience"):
        PipelineConfig(early_exit_margin=0.1)
    pipeline = SNNInferencePipeline(
        trained_cnn,
        tiny_color_split,
        PipelineConfig(
            time_steps=40,
            batch_size=8,
            max_test_images=8,
            early_exit_patience=8,
            early_exit_margin=1e-5,
        ),
    )
    run = pipeline.run_scheme(
        HybridCodingScheme.from_notation("phase-burst", v_th=0.125),
        keep_batch_results=True,
    )
    assert all(result.frozen_at is not None for result in run.batch_results)
