"""Figure 5: firing rate vs firing regularity per coding combination.

The paper samples 10% of the neurons of each layer, records long spike trains
and plots the population averages ``<log λ>`` (firing rate, Eq. 11) against
``<κ>`` (regularity, Eq. 12), one point per input-hidden coding combination.
The qualitative shape to reproduce:

* phase coding in the hidden layers produces the highest firing rates
  regardless of the input coding (low flexibility),
* burst coding's position depends strongly on the input coding (high
  flexibility / adaptability).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.firing import FiringStatistics, firing_statistics
from repro.core.hybrid import HybridCodingScheme, table1_schemes
from repro.core.pipeline import AggregatedRun
from repro.experiments.fig2 import hidden_spike_trains
from repro.experiments.reporting import render_table
from repro.experiments.sweep import make_pipeline
from repro.experiments.workloads import Workload, mnist_workload


@dataclass
class Fig5Point:
    """One scatter point of Fig. 5."""

    scheme: str
    input_coding: str
    hidden_coding: str
    mean_log_rate: float
    mean_regularity: float
    num_neurons: int

    def as_row(self) -> Dict[str, object]:
        return {
            "scheme": self.scheme,
            "input": self.input_coding,
            "hidden": self.hidden_coding,
            "<log rate>": round(self.mean_log_rate, 3) if np.isfinite(self.mean_log_rate) else "-",
            "<regularity>": round(self.mean_regularity, 3)
            if np.isfinite(self.mean_regularity)
            else "-",
            "neurons": self.num_neurons,
        }


def point_from_run(run: AggregatedRun) -> Fig5Point:
    """Compute one Fig. 5 point from a run that recorded spike trains."""
    trains = hidden_spike_trains(run)
    stats: FiringStatistics = firing_statistics(trains) if trains.size else firing_statistics(
        np.zeros((1, 1), dtype=bool)
    )
    input_coding, hidden_coding = run.scheme.split("-")
    return Fig5Point(
        scheme=run.scheme,
        input_coding=input_coding,
        hidden_coding=hidden_coding,
        mean_log_rate=stats.mean_log_rate,
        mean_regularity=stats.mean_regularity,
        num_neurons=stats.num_neurons,
    )


def run_fig5(
    workload: Optional[Workload] = None,
    schemes: Optional[Sequence[HybridCodingScheme]] = None,
    time_steps: int = 120,
    num_images: int = 6,
    v_th: float = 0.125,
    sample_fraction: float = 0.1,
    seed: int = 0,
) -> List[Fig5Point]:
    """Reproduce Fig. 5 (firing rate / regularity per coding combination)."""
    workload = workload or mnist_workload()
    if schemes is None:
        schemes = table1_schemes(v_th=v_th)
    points: List[Fig5Point] = []
    for scheme in schemes:
        pipeline = make_pipeline(
            workload,
            time_steps=time_steps,
            num_images=num_images,
            batch_size=num_images,
            record_trains=True,
            sample_fraction=sample_fraction,
            seed=seed,
        )
        run = pipeline.run_scheme(scheme, keep_batch_results=True)
        points.append(point_from_run(run))
    return points


def format_fig5(points: List[Fig5Point]) -> str:
    """Render the Fig. 5 scatter as a table (one row per scheme)."""
    return render_table(
        "Fig. 5 — firing rate vs regularity per coding combination",
        ["scheme", "input", "hidden", "<log rate>", "<regularity>", "neurons"],
        [point.as_row() for point in points],
    )
