"""Discrete-time spiking neural network simulator.

This package implements the SNN substrate the paper's experiments run on:

* integrate-and-fire neurons with reset-to-zero (Eq. 3) or
  reset-by-subtraction (Eq. 4) dynamics (:mod:`repro.snn.neurons`),
* threshold dynamics implementing rate (constant), phase (Eq. 6–7) and burst
  (Eq. 8–9) coding (:mod:`repro.snn.thresholds`),
* input encoders for real / rate / phase / burst input coding
  (:mod:`repro.snn.encoding`),
* spiking Dense / Conv2D / pooling layers carrying *weighted spikes* whose
  amplitude equals the presynaptic threshold at firing time (Eq. 5)
  (:mod:`repro.snn.layers`),
* the time-stepped :class:`~repro.snn.network.SpikingNetwork` engine with
  spike recording (:mod:`repro.snn.network`, :mod:`repro.snn.recording`).
"""

from repro.snn.neurons import IFNeuronState, ResetMode
from repro.snn.thresholds import (
    ThresholdDynamics,
    ConstantThreshold,
    PhaseThreshold,
    BurstThreshold,
    make_threshold,
)
from repro.snn.encoding import (
    EncodedStep,
    InputEncoder,
    RealEncoder,
    RateEncoder,
    PoissonRateEncoder,
    PhaseEncoder,
    BurstEncoder,
    make_encoder,
)
from repro.snn.layers import (
    SpikingLayer,
    SpikingDense,
    SpikingConv2D,
    SpikingAvgPool2D,
    SpikingMaxPool2D,
    SpikingFlatten,
    OutputAccumulator,
)
from repro.snn.network import SpikingNetwork, SimulationConfig, SimulationResult
from repro.snn.recording import SpikeRecord, LayerRecord
from repro.snn.ttfs import TTFSEncoder

__all__ = [
    "IFNeuronState",
    "ResetMode",
    "ThresholdDynamics",
    "ConstantThreshold",
    "PhaseThreshold",
    "BurstThreshold",
    "make_threshold",
    "EncodedStep",
    "InputEncoder",
    "RealEncoder",
    "RateEncoder",
    "PoissonRateEncoder",
    "PhaseEncoder",
    "BurstEncoder",
    "TTFSEncoder",
    "make_encoder",
    "SpikingLayer",
    "SpikingDense",
    "SpikingConv2D",
    "SpikingAvgPool2D",
    "SpikingMaxPool2D",
    "SpikingFlatten",
    "OutputAccumulator",
    "SpikingNetwork",
    "SimulationConfig",
    "SimulationResult",
    "SpikeRecord",
    "LayerRecord",
]
