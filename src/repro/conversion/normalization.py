"""Weight normalisation for DNN→SNN conversion.

An IF neuron driven by reset-by-subtraction transmits at most ``V_th`` per
time step, so a converted network only approximates the original DNN if every
ReLU activation is rescaled below the firing threshold.  The classic recipe
(Diehl et al. [11]) is *data-based weight normalisation*:

1. run the trained DNN over a calibration set and record, for every weight
   layer ``l``, the maximum activation ``λ_l`` of the ReLU that follows it;
2. rescale ``W_l ← W_l · λ_{l-1} / λ_l`` and ``b_l ← b_l / λ_l``
   (with ``λ_0 = 1`` because inputs live in [0, 1]).

Rueckauer et al. [12, 13] observed that a single outlier activation can make
the scale far too conservative and proposed using a high *percentile* instead
of the maximum ("outlier-robust" normalisation).  Both variants are provided,
plus a purely *model-based* bound that needs no data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.ann.layers import BatchNorm, Conv2D, Dense, Layer, ReLU
from repro.ann.model import Sequential
from repro.utils.logging import get_logger

logger = get_logger("conversion.normalization")

#: Layers that carry convertible weights.
WEIGHT_LAYER_TYPES = (Dense, Conv2D)


@dataclass
class NormalizationResult:
    """Outcome of weight normalisation.

    Attributes
    ----------
    weights:
        Per-ANN-layer dictionaries of rescaled parameters (same structure as
        :meth:`repro.ann.model.Sequential.get_weights`).
    scales:
        Mapping ANN-layer index → activation scale ``λ_l`` used for that
        weight layer.
    percentile:
        The percentile used (100.0 means the plain maximum).
    method:
        ``"data"``, ``"robust"``, ``"model"`` or ``"none"``.
    """

    weights: List[Dict[str, np.ndarray]]
    scales: Dict[int, float] = field(default_factory=dict)
    percentile: float = 100.0
    method: str = "data"


def _weight_layer_indices(model: Sequential) -> List[int]:
    return [i for i, layer in enumerate(model.layers) if isinstance(layer, WEIGHT_LAYER_TYPES)]


def _activation_index_for(model: Sequential, layer_index: int) -> int:
    """Index of the activation that represents weight layer ``layer_index``.

    If the weight layer is immediately followed by a ReLU (possibly with a
    BatchNorm in between), the ReLU output is the activation whose maximum
    matters; otherwise the layer's own output is used.
    """
    index = layer_index
    j = layer_index + 1
    while j < len(model.layers) and isinstance(model.layers[j], (BatchNorm,)):
        index = j
        j += 1
    if j < len(model.layers) and isinstance(model.layers[j], ReLU):
        return j
    return index


def activation_scales(
    model: Sequential,
    calibration_x: np.ndarray,
    percentile: float = 100.0,
    batch_size: int = 64,
    eps: float = 1e-9,
) -> Dict[int, float]:
    """Per-weight-layer activation scales ``λ_l`` from a calibration set.

    Parameters
    ----------
    model:
        The trained ANN.
    calibration_x:
        Calibration inputs (a subset of the training set is typical).
    percentile:
        100.0 reproduces Diehl et al.'s max-based normalisation; values such
        as 99.9 give the outlier-robust variant of Rueckauer et al.
    """
    if not 0.0 < percentile <= 100.0:
        raise ValueError(f"percentile must be in (0, 100], got {percentile}")
    calibration_x = np.asarray(calibration_x, dtype=np.float64)
    if calibration_x.shape[0] == 0:
        raise ValueError("calibration set is empty")

    indices = _weight_layer_indices(model)
    # Collect per-batch percentiles and reduce with the max over batches, which
    # is exact for percentile=100 and a close, memory-friendly approximation
    # otherwise.
    collected: Dict[int, List[float]] = {i: [] for i in indices}
    for start in range(0, calibration_x.shape[0], batch_size):
        batch = calibration_x[start : start + batch_size]
        activations = model.forward_collect(batch)
        for layer_index in indices:
            act_index = _activation_index_for(model, layer_index)
            values = activations[act_index]
            if percentile >= 100.0:
                scale = float(np.max(values)) if values.size else 0.0
            else:
                scale = float(np.percentile(values, percentile)) if values.size else 0.0
            collected[layer_index].append(scale)

    scales: Dict[int, float] = {}
    for layer_index in indices:
        batch_scales = collected[layer_index]
        scale = max(batch_scales) if batch_scales else 0.0
        scales[layer_index] = max(scale, eps)
    return scales


def model_based_scales(model: Sequential, eps: float = 1e-9) -> Dict[int, float]:
    """Data-free activation bounds derived from the weights alone.

    For inputs in [0, 1] the output of a ReLU neuron is bounded by the sum of
    its positive incoming weights (scaled by the previous layer's bound) plus
    its positive bias.  This is very conservative but needs no data.
    """
    scales: Dict[int, float] = {}
    previous_scale = 1.0
    for index, layer in enumerate(model.layers):
        if not isinstance(layer, WEIGHT_LAYER_TYPES):
            continue
        weight = layer.params["weight"]
        bias = layer.params.get("bias")
        if isinstance(layer, Dense):
            positive = np.clip(weight, 0.0, None).sum(axis=0)
        else:  # Conv2D: sum over in_channels and kernel
            positive = np.clip(weight, 0.0, None).sum(axis=(1, 2, 3))
        bound = positive * previous_scale
        if bias is not None:
            bound = bound + np.clip(bias, 0.0, None)
        scale = float(np.max(bound)) if bound.size else eps
        scale = max(scale, eps)
        scales[index] = scale
        previous_scale = scale
    return scales


def normalize_weights(
    model: Sequential,
    scales: Optional[Dict[int, float]] = None,
    calibration_x: Optional[np.ndarray] = None,
    percentile: float = 100.0,
    method: str = "data",
) -> NormalizationResult:
    """Produce rescaled weights implementing the chosen normalisation.

    Parameters
    ----------
    model:
        The trained ANN (not modified).
    scales:
        Pre-computed activation scales; if omitted they are derived from
        ``calibration_x`` (data/robust) or from the weights (model).
    method:
        ``"data"`` (max), ``"robust"`` (percentile), ``"model"`` (weight
        bound) or ``"none"`` (copy weights unchanged).
    """
    method = method.lower()
    if method not in ("data", "robust", "model", "none"):
        raise ValueError(f"unknown normalisation method {method!r}")

    weights = model.get_weights()
    if method == "none":
        return NormalizationResult(weights=weights, scales={}, percentile=percentile, method=method)

    if scales is None:
        if method == "model":
            scales = model_based_scales(model)
        else:
            if calibration_x is None:
                raise ValueError(f"{method!r} normalisation requires calibration_x or scales")
            effective_percentile = 100.0 if method == "data" else percentile
            scales = activation_scales(model, calibration_x, percentile=effective_percentile)
            percentile = effective_percentile

    previous_scale = 1.0
    for index, layer in enumerate(model.layers):
        if not isinstance(layer, WEIGHT_LAYER_TYPES):
            continue
        if index not in scales:
            raise KeyError(f"no activation scale for weight layer index {index} ({layer.name})")
        scale = float(scales[index])
        if scale <= 0:
            raise ValueError(f"activation scale for layer {layer.name} must be positive, got {scale}")
        layer_weights = weights[index]
        layer_weights["weight"] = layer_weights["weight"] * (previous_scale / scale)
        if "bias" in layer_weights:
            layer_weights["bias"] = layer_weights["bias"] / scale
        previous_scale = scale
        logger.debug("normalised %s with scale %.4f", layer.name, scale)

    return NormalizationResult(weights=weights, scales=dict(scales), percentile=percentile, method=method)
