"""Model zoo: the DNN architectures evaluated in the paper.

The paper uses small CNNs (the "CNN" rows of Table 2, ~22k–118k neurons) and
VGG-16 (~280k neurons).  We provide architecturally faithful builders plus
width-scaled variants sized for laptop-scale benchmarking.
"""

from repro.models.mlp import build_mlp
from repro.models.cnn import build_cnn, build_small_cnn
from repro.models.vgg import build_vgg16, build_vgg_small, VGG16_CONFIG

__all__ = [
    "build_mlp",
    "build_cnn",
    "build_small_cnn",
    "build_vgg16",
    "build_vgg_small",
    "VGG16_CONFIG",
]
