"""Wire types of the serving subsystem.

The serving engine and the HTTP front end exchange three kinds of values:

* :class:`ClassifyResult` — the answer to one classify request: prediction,
  per-class scores, the early-exit freeze step, and timing (queue wait,
  batch execution time, and the size of the micro-batch the request rode in);
* :func:`scheme_listing` — the ``/v1/schemes`` response body, rendered from
  the registry's :func:`~repro.core.registry.scheme_metadata` rows (the same
  single source of truth behind ``repro --list-schemes``);
* :func:`parse_image` — JSON payload → validated input array for one image.

Everything here is plain data (dataclasses, dicts, lists) so the engine can
be driven in-process by tests and examples without any HTTP machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core import registry


@dataclass(frozen=True)
class ClassifyResult:
    """Answer to one classify request.

    Attributes
    ----------
    prediction:
        Predicted class index (argmax of ``scores``).
    scores:
        Accumulated per-class output scores after the final simulated step.
    scheme:
        The ``input-hidden`` notation the request was served under.
    frozen_at:
        Step at which converged-image early exit froze this image
        (``None`` when early exit is disabled or the image never froze).
    batch_size:
        Size of the micro-batch this request was coalesced into (> 1 means
        the scheduler amortised one simulation across several requests).
    queue_ms / batch_ms:
        Milliseconds the request waited in the queue, and the wall-clock
        duration of the shared batch simulation it rode in.
    time_steps:
        Simulation horizon the scores were accumulated over.
    replica:
        Index of the session replica that simulated the batch (0 on a
        single-replica server).
    """

    prediction: int
    scores: List[float] = field(default_factory=list)
    scheme: str = ""
    frozen_at: Optional[int] = None
    batch_size: int = 1
    queue_ms: float = 0.0
    batch_ms: float = 0.0
    time_steps: int = 0
    replica: int = 0

    @property
    def total_ms(self) -> float:
        """Queue wait plus batch execution time."""
        return self.queue_ms + self.batch_ms

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (the ``/v1/classify`` response body)."""
        return {
            "prediction": int(self.prediction),
            "scores": [float(s) for s in self.scores],
            "scheme": self.scheme,
            "frozen_at": None if self.frozen_at is None else int(self.frozen_at),
            "batch_size": int(self.batch_size),
            "queue_ms": round(float(self.queue_ms), 3),
            "batch_ms": round(float(self.batch_ms), 3),
            "total_ms": round(float(self.total_ms), 3),
            "time_steps": int(self.time_steps),
            "replica": int(self.replica),
        }


def scheme_listing() -> Dict[str, object]:
    """The ``/v1/schemes`` response body, straight from the registry.

    Shares :func:`repro.core.registry.scheme_metadata` /
    :func:`~repro.core.registry.notation_help` with the CLI's
    ``--list-schemes`` so the two listings cannot drift apart.
    """
    return {
        "codings": registry.scheme_metadata(),
        "input_codings": registry.input_codings(),
        "hidden_codings": registry.hidden_codings(),
        "notation": registry.notation_help(),
    }


def parse_image(payload: object, input_shape: Tuple[int, ...]) -> np.ndarray:
    """Validate one JSON ``image`` payload against the model's input shape.

    Accepts a nested list (or anything array-like) shaped either exactly like
    the model input or flat with the right number of elements; returns a
    float64 array (the engine casts to the simulation dtype when batching).
    """
    try:
        image = np.asarray(payload, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"image payload is not numeric: {exc}") from exc
    if image.shape == input_shape:
        return image
    expected = int(np.prod(input_shape))
    if image.ndim == 1 and image.size == expected:
        return image.reshape(input_shape)
    raise ValueError(
        f"image shape {image.shape} does not match model input {input_shape} "
        f"(flat arrays of {expected} values are also accepted)"
    )
