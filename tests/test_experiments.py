"""Tests for the experiment harness (workloads + one test per table/figure).

These use deliberately tiny workloads so the whole module stays fast; the
benchmark suite under ``benchmarks/`` runs the paper-sized versions.
"""

import numpy as np
import pytest

from repro.experiments.fig1 import format_fig1, run_fig1, run_single_neuron
from repro.experiments.fig2 import format_fig2, hidden_spike_trains, run_fig2
from repro.experiments.fig3 import format_fig3, run_fig3
from repro.experiments.fig4 import format_fig4, run_fig4
from repro.experiments.fig5 import format_fig5, run_fig5
from repro.experiments.reporting import render_series, render_table, sparkline
from repro.experiments.sweep import run_all_schemes
from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.table2 import TABLE2_METHODS, format_table2, run_table2
from repro.experiments.workloads import (
    WorkloadSpec,
    build_workload,
    clear_workload_cache,
)


@pytest.fixture(scope="module")
def tiny_workload():
    """A very small CNN workload shared by the experiment tests."""
    clear_workload_cache()
    spec = WorkloadSpec(
        dataset="mnist", model="small_cnn", samples_per_class=10, epochs=6,
        difficulty="easy", seed=0,
    )
    return build_workload(spec)


@pytest.fixture(scope="module")
def tiny_runs(tiny_workload):
    """Per-scheme runs shared by the Table 1 / Fig. 3 / Fig. 4 tests."""
    return run_all_schemes(tiny_workload, time_steps=40, num_images=8, batch_size=8)


class TestReporting:
    def test_render_table(self):
        text = render_table("T", ["a", "b"], [{"a": 1, "b": 2}])
        assert "T" in text and "1" in text

    def test_render_series_subsamples(self):
        text = render_series("S", list(range(100)), {"acc": [i / 100 for i in range(100)]}, max_points=5)
        assert text.count("\n") <= 10

    def test_render_series_empty(self):
        assert "no data" in render_series("S", [], {})

    def test_sparkline_length(self):
        assert len(sparkline([0, 1, 2, 3], width=4)) == 4

    def test_sparkline_empty(self):
        assert sparkline([]) == ""


class TestWorkloads:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(dataset="imagenet")
        with pytest.raises(ValueError):
            WorkloadSpec(model="transformer")
        with pytest.raises(ValueError):
            WorkloadSpec(difficulty="impossible")

    def test_build_workload_trains_model(self, tiny_workload):
        assert tiny_workload.dnn_train_accuracy > 0.5
        assert 0.0 <= tiny_workload.dnn_test_accuracy <= 1.0
        assert tiny_workload.name == "mnist-small_cnn"

    def test_workload_cache_reuses_instance(self, tiny_workload):
        again = build_workload(tiny_workload.spec)
        assert again is tiny_workload

    def test_override_kwargs_create_new_spec(self, tiny_workload):
        other = build_workload(tiny_workload.spec, samples_per_class=8)
        assert other is not tiny_workload
        assert other.spec.samples_per_class == 8


class TestFig1:
    def test_all_codings_present(self):
        traces = run_fig1(time_steps=100)
        assert set(traces) == {"rate", "phase", "burst"}

    def test_rate_spike_count_matches_drive(self):
        trace = run_single_neuron("rate", drive=0.25, time_steps=100, v_th=1.0)
        assert trace.total_spikes == pytest.approx(25, abs=1)

    def test_burst_has_more_short_isis_than_rate(self):
        """Fig. 1 C1 vs C3: burst coding shifts ISI mass towards 1."""
        traces = run_fig1(drive=0.3, time_steps=300)
        assert traces["burst"].short_isi_fraction > traces["rate"].short_isi_fraction

    def test_burst_amplitudes_grow_within_burst(self):
        trace = run_single_neuron("burst", drive=0.9, time_steps=50, v_th=0.125)
        fired = trace.amplitudes[trace.spike_train]
        assert fired.max() > fired.min()

    def test_format_mentions_every_coding(self):
        text = format_fig1(run_fig1(time_steps=50))
        for coding in ("rate", "phase", "burst"):
            assert coding in text

    def test_invalid_drive(self):
        with pytest.raises(ValueError):
            run_single_neuron("rate", drive=-0.1)


class TestFig2:
    def test_burst_fraction_increases_as_v_th_decreases(self, tiny_workload):
        points = run_fig2(
            workload=tiny_workload,
            v_th_values=(0.5, 0.125, 0.03125),
            time_steps=30,
            num_images=4,
        )
        fractions = [p.statistics.burst_fraction for p in points]
        assert fractions[-1] > fractions[0]
        assert len(points) == 3

    def test_rows_and_formatting(self, tiny_workload):
        points = run_fig2(
            workload=tiny_workload, v_th_values=(0.25,), time_steps=20, num_images=2
        )
        row = points[0].as_row()
        assert "burst_%" in row and "len 2 %" in row
        assert "Fig. 2" in format_fig2(points)


class TestTable1:
    def test_has_one_row_per_registry_combination(self, tiny_runs):
        from repro.core.registry import expand_scheme_specs

        rows = run_table1(runs=tiny_runs)
        expected = expand_scheme_specs(["all"])
        assert len(rows) == len(expected)
        combos = {(r.input_coding, r.hidden_coding) for r in rows}
        assert len(combos) == len(expected)
        # the paper's nine combinations are always present
        assert {("phase", "burst"), ("rate", "phase"), ("real", "rate")} <= combos

    def test_burst_rows_reach_dnn_accuracy(self, tiny_runs):
        rows = run_table1(runs=tiny_runs)
        burst_rows = [r for r in rows if r.hidden_coding == "burst" and r.input_coding != "rate"]
        assert all(r.accuracy >= r.dnn_accuracy - 0.1 for r in burst_rows)

    def test_formatting(self, tiny_runs):
        text = format_table1(run_table1(runs=tiny_runs))
        assert "Table 1" in text and "phase" in text


class TestFig3:
    def test_entries_per_scheme_and_target(self, tiny_runs):
        entries = run_fig3(runs=tiny_runs, target_fractions=(0.99, 0.9))
        assert len(entries) == len(tiny_runs) * 2

    def test_reached_entries_have_latency_and_spikes(self, tiny_runs):
        entries = run_fig3(runs=tiny_runs, target_fractions=(0.5,))
        for entry in entries:
            if entry.reached:
                assert entry.latency is not None and entry.spikes is not None

    def test_formatting(self, tiny_runs):
        assert "Fig. 3" in format_fig3(run_fig3(runs=tiny_runs))


class TestFig4:
    def test_curves_shapes(self, tiny_runs):
        curves = run_fig4(runs=tiny_runs)
        assert len(curves) == len(tiny_runs)
        for curve in curves:
            assert curve.accuracy_curve.shape == curve.recorded_steps.shape
            assert 0.0 <= curve.final_accuracy <= 1.0
            assert 0.0 <= curve.area_under_curve() <= 1.0

    def test_accuracy_at_lookup(self, tiny_runs):
        curve = run_fig4(runs=tiny_runs)[0]
        assert curve.accuracy_at(0) == 0.0
        assert curve.accuracy_at(int(curve.recorded_steps[-1])) == curve.final_accuracy

    def test_formatting(self, tiny_runs):
        assert "Fig. 4" in format_fig4(run_fig4(runs=tiny_runs))


class TestFig5:
    def test_points_for_selected_schemes(self, tiny_workload):
        from repro.core.hybrid import HybridCodingScheme

        schemes = [
            HybridCodingScheme.from_notation("real-burst"),
            HybridCodingScheme.from_notation("real-phase"),
        ]
        points = run_fig5(
            workload=tiny_workload, schemes=schemes, time_steps=40, num_images=3
        )
        assert {p.scheme for p in points} == {"real-burst", "real-phase"}
        assert "Fig. 5" in format_fig5(points)

    def test_phase_hidden_fires_faster_than_rate_hidden(self, tiny_workload):
        """Fig. 5's qualitative claim: phase coding in the hidden layers sits
        at the highest firing rates."""
        from repro.core.hybrid import HybridCodingScheme

        schemes = [
            HybridCodingScheme.from_notation("real-phase"),
            HybridCodingScheme.from_notation("real-rate"),
        ]
        points = {p.scheme: p for p in run_fig5(
            workload=tiny_workload, schemes=schemes, time_steps=60, num_images=3
        )}
        assert points["real-phase"].mean_log_rate > points["real-rate"].mean_log_rate


class TestHiddenSpikeTrains:
    def test_empty_without_batch_results(self, tiny_runs):
        run = next(iter(tiny_runs.values()))
        assert hidden_spike_trains(run).size == 0


class TestTable2:
    def test_structure_and_energy(self, tiny_workload):
        rows = run_table2(
            datasets=("mnist",),
            workloads={"mnist": tiny_workload},
            time_steps=40,
            num_images=8,
        )
        assert len(rows) == len(TABLE2_METHODS["mnist"])
        baseline_rows = [r for r in rows if r.method.startswith("Diehl")]
        assert baseline_rows[0].energy_truenorth == pytest.approx(1.0)
        assert baseline_rows[0].energy_spinnaker == pytest.approx(1.0)
        for row in rows:
            assert row.energy_truenorth is not None and row.energy_truenorth >= 0

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            run_table2(datasets=("svhn",))

    def test_formatting(self, tiny_workload):
        rows = run_table2(
            datasets=("mnist",), workloads={"mnist": tiny_workload}, time_steps=30, num_images=4
        )
        text = format_table2(rows)
        assert "Table 2" in text and "E_TrueNorth" in text
