"""Fused per-step kernel programs: one backend call per layer per step.

The simulation engine's per-layer step used to be a chain of 5–8 separate
:class:`~repro.backends.base.KernelBackend` calls (activity scan → GEMM →
bias → integrate-and-fire update → threshold commit), each paying Python
dispatch, per-call validation and an environment read in the sparsity
dispatcher.  A :class:`StepProgram` compiles that chain once per prepared
batch into a single callable over the layer's preallocated buffers, so the
step loop makes **one program call per layer per step**.

Contracts
---------
* **Bit-identity** — the fused numpy programs execute the exact ufunc
  sequences of the reference backend (:mod:`repro.backends.numpy_backend`)
  over the same buffers in the same order, so float64 results stay
  bit-identical to the seed engine (``benchmarks/perf/seed_reference.json``)
  and float32 results bit-identical to the composed path.
* **Fallback** — backends that implement only the unfused primitives keep
  working: :meth:`KernelBackend.compile_step_program` returns ``None`` by
  default and the layer falls back to :class:`ComposedStepProgram`, which
  simply runs the original multi-call step body.  The seam contract is
  therefore additive; third-party backends need not know programs exist.
* **Invalidation** — programs capture layer/state/threshold buffers at
  compile time, so the owning layer drops its program on ``reset``,
  ``shrink_batch``, ``enable_input_caching`` and backend switches and the
  engine re-resolves programs after any mid-run shrink.
* **Dispatch parity** — the sparse/dense kernel choice remains a per-step
  decision with the exact counter semantics of
  :class:`~repro.utils.sparsity.SparsityDispatcher`: programs re-read the
  cheap ``dispatcher.force`` attribute every step and bake only the
  ``REPRO_SPARSE_MODE`` environment parse at compile time (compilation is
  lazy — it happens on the first step after reset — so tests that pin
  ``force`` or the environment between ``reset`` and the first step see
  identical behaviour).

Unknown layer or threshold-dynamics subclasses are never fused (strict
``type(...) is`` checks), so custom components always get the composed path.

Network step programs
---------------------
On top of the per-layer programs, :class:`NetworkStepProgram` compiles the
encoder step, every layer's program and spike recording into **one program
for the entire network step** with a ``run_block(t0, n)`` driver, so the
engine makes one seam crossing per *block* of consecutive steps instead of
one per layer per step.  See :func:`compile_network_step_program` and the
``compile_network_program`` backend hook.

Toggling: ``REPRO_FUSED`` selects the program tier — ``network`` (default:
whole-network blocks), ``layer`` (PR 6 per-layer programs only) or
``composed`` (the unfused primitive-by-primitive path; ``0``/``false``/
``off``/``no`` are aliases).  :func:`set_fused_programs` / the
:func:`fused_scope` context manager override the environment in tests and
accept the same mode names or plain booleans.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import List, Optional, Tuple

import numpy as np

from repro.utils.sparsity import DENSE, EMPTY, SPARSE

__all__ = [
    "StepProgram",
    "ComposedStepProgram",
    "NetworkStepProgram",
    "compile_numpy_program",
    "compile_network_step_program",
    "fused_mode",
    "fused_programs_enabled",
    "network_programs_enabled",
    "set_fused_programs",
    "fused_scope",
]

#: environment toggle selecting the program tier (see module docstring)
_FUSED_ENV_VAR = "REPRO_FUSED"
_FALSE_VALUES = ("0", "false", "off", "no")

#: canonical program tiers, least to most fused
MODE_COMPOSED = "composed"
MODE_LAYER = "layer"
MODE_NETWORK = "network"

#: process-wide override installed by :func:`set_fused_programs` (tests)
_fused_override: Optional[str] = None


def _coerce_mode(value) -> Optional[str]:
    """Normalise a ``REPRO_FUSED`` value / override to a canonical mode.

    Booleans keep their historical meaning (``True`` → fully fused, i.e.
    network programs; ``False`` → composed), as does any truthy string that
    is not a recognised mode name — ``REPRO_FUSED=1`` still means "fused".
    """
    if value is None:
        return None
    if value is True:
        return MODE_NETWORK
    if value is False:
        return MODE_COMPOSED
    mode = str(value).strip().lower()
    if mode in (MODE_COMPOSED, MODE_LAYER, MODE_NETWORK):
        return mode
    if mode in _FALSE_VALUES:
        return MODE_COMPOSED
    return MODE_NETWORK


def fused_mode() -> str:
    """The selected program tier: ``composed``, ``layer`` or ``network``."""
    if _fused_override is not None:
        return _fused_override
    mode = _coerce_mode(os.environ.get(_FUSED_ENV_VAR))
    return MODE_NETWORK if mode is None else mode


def fused_programs_enabled() -> bool:
    """Whether layers should ask their backend for fused step programs."""
    return fused_mode() != MODE_COMPOSED


def network_programs_enabled() -> bool:
    """Whether the plan should ask the backend for a whole-network program."""
    return fused_mode() == MODE_NETWORK


def set_fused_programs(enabled) -> None:
    """Force the program tier process-wide: a mode name (``"composed"`` /
    ``"layer"`` / ``"network"``), a boolean (historical on/off) or ``None``
    to restore the environment-driven default.  Takes effect at the next
    layer reset / plan preparation."""
    global _fused_override
    _fused_override = _coerce_mode(enabled)


@contextmanager
def fused_scope(enabled):
    """Temporarily force the program tier (tests); accepts the same values
    as :func:`set_fused_programs`."""
    global _fused_override
    previous = _fused_override
    set_fused_programs(enabled)
    try:
        yield
    finally:
        _fused_override = previous


def _env_sparse_mode() -> Optional[str]:
    """The ``REPRO_SPARSE_MODE`` forced mode, parsed once at compile time.

    Raises :class:`ValueError` on an invalid value, mirroring
    :meth:`~repro.utils.sparsity.SparsityDispatcher._forced_mode` — callers
    catch it and refuse to compile so the composed path reports the error.
    """
    mode = os.environ.get("REPRO_SPARSE_MODE") or None
    if mode is not None:
        mode = mode.strip().lower()
        if mode == "auto":
            mode = None
    if mode is not None and mode not in (DENSE, SPARSE):
        raise ValueError(f"invalid REPRO_SPARSE_MODE {mode!r}")
    return mode


def _resolve_forced(name: str, force: Optional[str], env_mode: Optional[str]) -> Optional[str]:
    """Per-step forced-mode resolution: the layer's ``force`` attribute wins
    over the compile-time environment parse, with the dispatcher's exact
    validation error for unknown values."""
    forced = force if force is not None else env_mode
    if forced is not None and forced not in (DENSE, SPARSE):
        raise ValueError(
            f"{name}: sparse mode must be 'dense', 'sparse' or 'auto', got {forced!r}"
        )
    return forced


class StepProgram:
    """One layer's per-step kernel sequence, resolved once per prepared batch.

    ``run(incoming, t, incoming_nonzero)`` has exactly the signature and
    semantics of :meth:`repro.snn.layers.SpikingLayer.step`; the returned
    array is a reusable buffer valid until the layer's next step.
    """

    #: whether this program is a fused single-call chain (False: composed)
    fused = False

    def __init__(self, layer) -> None:
        self.layer = layer

    def run(
        self, incoming: np.ndarray, t: int, incoming_nonzero: Optional[int] = None
    ) -> np.ndarray:
        raise NotImplementedError

    def describe(self) -> str:
        """One-line description (diagnostics / the step profiler)."""
        return f"{type(self).__name__}({self.layer.name})"


class ComposedStepProgram(StepProgram):
    """Fallback program: the layer's original multi-call step body.

    This is what every layer runs when its backend implements only the
    unfused primitives (``compile_step_program`` → ``None``) or when fused
    programs are disabled — the backend seam's compatibility contract.
    """

    fused = False

    def run(
        self, incoming: np.ndarray, t: int, incoming_nonzero: Optional[int] = None
    ) -> np.ndarray:
        return self.layer._step_composed(incoming, t, incoming_nonzero)


# -- threshold dynamics, compiled ---------------------------------------------

class _StaticThresholdOps:
    """Constant threshold: one cached 0-d array, no per-spike update."""

    def __init__(self, cached: np.ndarray) -> None:
        self._cached = cached

    def thresholds(self, t: int) -> np.ndarray:
        return self._cached

    def update(self, spikes: np.ndarray, signals: np.ndarray, count: int) -> None:
        pass


class _PhaseThresholdOps:
    """Phase coding: the precomputed per-phase 0-d table, no update."""

    def __init__(self, table, phase_offset: int, period: int) -> None:
        self._table = table
        self._phase_offset = phase_offset
        self._period = period

    def thresholds(self, t: int) -> np.ndarray:
        return self._table[(t + self._phase_offset) % self._period]

    def update(self, spikes: np.ndarray, signals: np.ndarray, count: int) -> None:
        pass


class _BurstThresholdOps:
    """Burst coding: the reference backend's grow/cap/commit chain, inlined.

    State (``_g_uniform`` / ``_th_valid`` / ``_updates``) stays on the
    :class:`~repro.snn.thresholds.BurstThreshold` object so interleaved
    direct calls to ``thresholds()`` / ``update()`` (tests, analysis) observe
    and advance the same machine; the buffers are captured at compile (the
    owning layer invalidates the program whenever they are reallocated).
    """

    def __init__(self, threshold, backend) -> None:
        self._threshold = threshold
        self._backend = backend
        self._beta = threshold.beta
        self._v_th = threshold.v_th
        self._max_burst = threshold.max_burst_length

    def thresholds(self, t: int) -> np.ndarray:
        th = self._threshold
        buf = th._th_buf
        if th._th_valid:
            return buf
        np.multiply(th._g, self._v_th, out=buf)
        th._th_valid = True
        return buf

    def update(self, spikes: np.ndarray, signals: np.ndarray, count: int) -> None:
        th = self._threshold
        if count == 0 and th._g_uniform and self._max_burst is None:
            th._updates += 1
            return
        g = th._g
        grown = th._grown
        np.multiply(g, self._beta, out=grown)
        if th._updates >= th._clamp_after:
            np.minimum(grown, th._ceiling, out=grown)
        th._updates += 1
        if self._max_burst is not None:
            self._backend.burst_cap(
                grown, g, spikes, th._consecutive,
                th._cons_scratch, th._capped, self._max_burst,
            )
        np.multiply(grown, signals, out=grown)
        np.subtract(1.0, signals, out=th._silent_signal)
        np.add(grown, th._silent_signal, out=g)
        th._th_valid = False
        th._g_uniform = count == 0


def _threshold_ops_for(layer, backend):
    """Compile the layer's threshold dynamics, or ``None`` when the dynamics
    class is unknown (custom subclasses keep the composed path)."""
    from repro.snn.thresholds import BurstThreshold, ConstantThreshold, PhaseThreshold

    threshold = layer.threshold
    kind = type(threshold)
    if kind is ConstantThreshold:
        cached = threshold._cached
        if cached is None or not float(cached) > 0:
            return None
        return _StaticThresholdOps(cached)
    if kind is PhaseThreshold:
        if threshold._table is None or threshold.v_th <= 0:
            return None
        return _PhaseThresholdOps(
            threshold._table, threshold.phase_offset, threshold.period
        )
    if kind is BurstThreshold:
        state = layer.state
        if (
            threshold._g is None
            or threshold._th_buf is None
            or threshold._g.shape != state.shape
            or threshold._dtype != state.dtype
        ):
            return None
        return _BurstThresholdOps(threshold, backend)
    return None


# -- fused neuron-layer programs ----------------------------------------------

class _FusedNeuronProgram(StepProgram):
    """Shared machinery of the fused dense/conv programs.

    Captures the neuron state's buffers and the compile-time reset flags, and
    runs the reference backend's integrate-and-fire ufunc chain inline —
    bit-identical to ``NumpyBackend.if_step`` over the same buffers.
    """

    fused = True

    def __init__(self, layer, backend, threshold_ops, env_mode: Optional[str]) -> None:
        super().__init__(layer)
        self.backend = backend
        self._threshold_ops = threshold_ops
        #: the compile-time REPRO_SPARSE_MODE parse; ``dispatcher.force`` is
        #: still re-read every step (tests flip it between steps)
        self._env_mode = env_mode
        state = layer.state
        self._state = state
        self._v_mem = state.v_mem
        self._spikes = state._spikes
        self._signals = state._spike_signals
        self._amplitudes = state._amplitudes
        self._subtract_reset = state.reset_mode.value == "subtract"
        self._v_rest = state.v_rest
        self._v_rest_typed = state.v_mem.dtype.type(state.v_rest)
        self._allow_negative = state.allow_negative_membrane
        # thresholds are structurally positive for the compiled dynamics, so
        # the one-off positivity validation is settled here, not per step
        state._threshold_validated = True

    def _forced_mode(self) -> Optional[str]:
        layer = self.layer
        return _resolve_forced(layer.name, layer.dispatcher.force, self._env_mode)

    def _synaptic(self, incoming: np.ndarray, hint: Optional[int]) -> np.ndarray:
        raise NotImplementedError

    def run(
        self, incoming: np.ndarray, t: int, incoming_nonzero: Optional[int] = None
    ) -> np.ndarray:
        layer = self.layer
        incoming = np.asarray(incoming)
        cache = layer._z_cache
        if cache is not None:
            phase = t % layer._input_period
            z = cache[phase]
            if z is None:
                z = np.array(self._synaptic(incoming, incoming_nonzero))
                cache[phase] = z
        else:
            z = self._synaptic(incoming, incoming_nonzero)
        return self._neuron_step(z, t)

    def _neuron_step(self, z: np.ndarray, t: int) -> np.ndarray:
        threshold_ops = self._threshold_ops
        threshold = threshold_ops.thresholds(t)
        v_mem = self._v_mem
        spikes = self._spikes
        signals = self._signals
        amplitudes = self._amplitudes
        v_mem += z
        np.greater_equal(v_mem, threshold, out=spikes)
        np.greater_equal(v_mem, threshold, out=signals)
        np.multiply(threshold, signals, out=amplitudes)
        if self._subtract_reset:
            v_mem -= amplitudes
        else:
            np.copyto(v_mem, self._v_rest_typed, where=spikes)
        if not self._allow_negative:
            np.maximum(v_mem, self._v_rest, out=v_mem)
        count = int(np.count_nonzero(spikes))
        state = self._state
        state.last_spike_count = count
        state.total_spikes += count
        threshold_ops.update(spikes, signals, count)
        layer = self.layer
        layer.last_spikes = spikes
        layer.output_nonzero = count
        return amplitudes


class FusedDenseProgram(_FusedNeuronProgram):
    """Fused :class:`~repro.snn.layers.SpikingDense` step: dispatch → GEMM /
    gather-GEMM / empty shortcut → bias → IF update → threshold commit."""

    def __init__(self, layer, backend, threshold_ops, env_mode) -> None:
        super().__init__(layer, backend, threshold_ops, env_mode)
        self._matmul = backend.matmul
        self._take = backend.take
        self._active_features = backend.active_features
        self._w = layer._w_sim
        self._bias = layer._scaled_bias
        self._z = layer._z
        self._z_empty = layer._z_empty
        self._xa_flat = layer._xa_flat
        self._wa_flat = layer._wa_flat
        self._in_features = layer.in_features
        self._out_features = layer.out_features

    def _dense(self, incoming: np.ndarray) -> np.ndarray:
        z = self._z
        self._matmul(incoming, self._w, z)
        if self._bias is not None:
            z += self._bias
        return z

    def _sparse(self, incoming: np.ndarray, active: np.ndarray) -> np.ndarray:
        count = int(active.size)
        if count == 0:
            return self._z_empty
        if count == self._in_features:
            return self._dense(incoming)
        batch = incoming.shape[0]
        gathered_x = self._xa_flat[: batch * count].reshape(batch, count)
        gathered_w = self._wa_flat[: count * self._out_features].reshape(
            count, self._out_features
        )
        self._take(incoming, active, 1, gathered_x)
        self._take(self._w, active, 0, gathered_w)
        z = self._z
        self._matmul(gathered_x, gathered_w, z)
        if self._bias is not None:
            z += self._bias
        return z

    def _synaptic(self, incoming: np.ndarray, hint: Optional[int]) -> np.ndarray:
        layer = self.layer
        if incoming.ndim != 2 or incoming.shape[1] != self._in_features:
            raise ValueError(
                f"{layer.name}: expected incoming shape (N, {self._in_features}), "
                f"got {incoming.shape}"
            )
        dispatcher = layer.dispatcher
        forced = self._forced_mode()
        decision = None
        active = None
        if hint is not None and forced is None:
            # the engine's exact nonzero count settles the decision when it
            # can (mirrors _SpikingNeuronLayer._hinted_decision)
            if hint == 0:
                decision = dispatcher.choose_resolved(None, 0.0)
            else:
                fraction = hint / incoming.size
                if dispatcher.exact_only or fraction >= dispatcher.crossover:
                    decision = dispatcher.choose_resolved(None, fraction)
        if decision is None:
            active = self._active_features(incoming)
            decision = dispatcher.choose_resolved(
                forced, active.size / self._in_features
            )
            if decision == SPARSE:
                return self._sparse(incoming, active)
        if decision == EMPTY:
            return self._z_empty
        return self._dense(incoming)


class FusedConvProgram(_FusedNeuronProgram):
    """Fused :class:`~repro.snn.layers.SpikingConv2D` step.

    The propagation kernel is chosen at compile time the way the composed
    path chooses it per step: float64 (or strided) layers keep the canonical
    im2col fill + GEMM chain (bit-identical to the seed engine), float32
    stride-1 layers run the direct halo plan with its GEMM engine resolved
    once here instead of per call.  The sparse channel-packed path delegates
    to the layer (it is already a single plan call).
    """

    def __init__(self, layer, backend, threshold_ops, env_mode) -> None:
        super().__init__(layer, backend, threshold_ops, env_mode)
        self._matmul = backend.matmul
        self._active_channels = backend.active_channels
        self._bias = layer._scaled_bias
        self._z_empty = layer._z_empty
        self._channels = layer.input_shape[0]
        self._sparse_available = layer._direct_available
        self._canonical = layer.dtype == np.float64 or not layer._direct_available
        if self._canonical:
            self._plan = layer._canonical_plan()
            self._fill = self._plan.fill
            self._z2d = layer._z2d
            self._z4 = layer._z4
            self._wmat_t = layer._wmat_t
        else:
            self._direct = layer._direct_plan()
            engine = self._direct._select_engine()
            self._run_engine = (
                self._direct._run_accumulate
                if engine == "accumulate"
                else self._direct._run_stacked
            )
            self._taps = layer._taps

    def _dense(self, incoming: np.ndarray) -> np.ndarray:
        if self._canonical:
            cols = self._fill(incoming)
            z2d = self._z2d
            self._matmul(cols, self._wmat_t, z2d)
            if self._bias is not None:
                z2d += self._bias
            return self._z4
        # direct halo path with the per-call validation and engine re-check
        # of DirectConvPlan.run compiled away
        plan = self._direct
        halo, interior = plan._halo_view(self._channels)
        interior[...] = incoming.transpose(0, 2, 3, 1)
        return self._run_engine(halo, self._taps, self._bias, self._channels)

    def _synaptic(self, incoming: np.ndarray, hint: Optional[int]) -> np.ndarray:
        layer = self.layer
        if incoming.ndim != 4 or incoming.shape[1] != self._channels:
            raise ValueError(
                f"{layer.name}: expected incoming shape (N, {self._channels}, H, W), "
                f"got {incoming.shape}"
            )
        dispatcher = layer.dispatcher
        forced = self._forced_mode()
        decision = None
        if hint is not None and forced is None:
            if hint == 0:
                decision = dispatcher.choose_resolved(None, 0.0)
            else:
                fraction = hint / incoming.size
                if dispatcher.exact_only or fraction >= dispatcher.crossover:
                    decision = dispatcher.choose_resolved(None, fraction)
        if decision is None:
            active = self._active_channels(incoming)
            decision = dispatcher.choose_resolved(
                forced, active.size / self._channels,
                sparse_available=self._sparse_available,
            )
            if decision == SPARSE:
                return layer._sparse_input(incoming, active)
        if decision == EMPTY:
            return self._z_empty
        return self._dense(incoming)


# -- fused linear re-arrangement / readout programs ---------------------------

class FusedAvgPoolProgram(StepProgram):
    """Fused average pooling: the empty shortcut plus the slab/unfold kernel
    with the dispatcher's environment read compiled away."""

    fused = True

    def __init__(self, layer, backend, env_mode: Optional[str]) -> None:
        super().__init__(layer)
        self._env_mode = env_mode
        self._slab = layer._slab_mode

    def run(
        self, incoming: np.ndarray, t: int, incoming_nonzero: Optional[int] = None
    ) -> np.ndarray:
        layer = self.layer
        incoming = np.asarray(incoming)
        if not incoming.flags.c_contiguous:
            incoming = np.ascontiguousarray(incoming)
        n, c, h, w = incoming.shape
        layer._ensure_buffers((n, c, h, w))
        out = layer._out
        dispatcher = layer.dispatcher
        forced = _resolve_forced(layer.name, dispatcher.force, self._env_mode)
        fraction = (
            incoming_nonzero / incoming.size
            if incoming_nonzero is not None
            else int(np.count_nonzero(incoming)) / incoming.size
        )
        if dispatcher.choose_resolved(forced, fraction, sparse_available=False) == EMPTY:
            out.fill(0.0)
            return out
        if self._slab:
            # the reference backend's avgpool2x2 slab chain, inlined
            oh, ow = out.shape[2], out.shape[3]
            np.add(
                incoming[:, :, 0 : oh * 2 : 2, 0 : ow * 2 : 2],
                incoming[:, :, 0 : oh * 2 : 2, 1 : ow * 2 : 2],
                out=out,
            )
            out += incoming[:, :, 1 : oh * 2 : 2, 0 : ow * 2 : 2]
            out += incoming[:, :, 1 : oh * 2 : 2, 1 : ow * 2 : 2]
            out /= 4
            return out
        cols = layer._plan.fill(incoming.reshape(n * c, 1, h, w))
        cols.mean(axis=1, out=layer._mean_flat)
        return out


class FusedMaxPoolProgram(StepProgram):
    """Fused cumulative-evidence max pooling (unfold → argmax → gather)."""

    fused = True

    def __init__(self, layer, backend, env_mode: Optional[str]) -> None:
        super().__init__(layer)
        self._env_mode = env_mode
        self._pool_size = layer.pool_size

    def run(
        self, incoming: np.ndarray, t: int, incoming_nonzero: Optional[int] = None
    ) -> np.ndarray:
        layer = self.layer
        incoming = np.asarray(incoming)
        if not incoming.flags.c_contiguous:
            incoming = np.ascontiguousarray(incoming)
        if (
            layer._steps_seen > 0
            and layer._cumulative is not None
            and layer._cumulative.shape != incoming.shape
        ):
            raise ValueError(
                f"{layer.name}: incoming shape changed mid-simulation "
                f"({layer._cumulative.shape} -> {incoming.shape})"
            )
        n, c, h, w = incoming.shape
        layer._ensure_buffers((n, c, h, w))
        layer._steps_seen += 1
        cumulative = layer._cumulative
        dispatcher = layer.dispatcher
        forced = _resolve_forced(layer.name, dispatcher.force, self._env_mode)
        fraction = (
            incoming_nonzero / incoming.size
            if incoming_nonzero is not None
            else int(np.count_nonzero(incoming)) / incoming.size
        )
        if dispatcher.choose_resolved(forced, fraction, sparse_available=False) == EMPTY:
            gated = layer._gated
            gated.fill(0.0)
            return gated
        cumulative += incoming
        cum_cols = layer._plan.fill(cumulative.reshape(n * c, 1, h, w))
        winners, ky, kx = layer._winners, layer._ky, layer._kx
        np.argmax(cum_cols, axis=1, out=winners)
        pool = self._pool_size
        np.floor_divide(winners, pool, out=ky)
        np.remainder(winners, pool, out=kx)
        ky += layer._base_y
        kx += layer._base_x
        ky *= w
        ky += kx
        ky += layer._base_off
        np.take(incoming.reshape(-1), ky, out=layer._gated_flat)
        return layer._gated


class FusedFlattenProgram(StepProgram):
    """Flatten is a view; the program only forwards the nonzero hint."""

    fused = True

    def run(
        self, incoming: np.ndarray, t: int, incoming_nonzero: Optional[int] = None
    ) -> np.ndarray:
        self.layer.output_nonzero = incoming_nonzero
        incoming = np.asarray(incoming)
        return incoming.reshape(incoming.shape[0], -1)


class FusedOutputProgram(StepProgram):
    """Fused output accumulation: GEMM → bias → running logits, one call."""

    fused = True

    def __init__(self, layer, backend) -> None:
        super().__init__(layer)
        self._matmul = backend.matmul
        self._w = layer._w_sim
        self._bias = layer._scaled_bias
        self._update = layer._update
        self._logits = layer._logits
        self._in_features = int(layer.weight.shape[0])

    def run(
        self, incoming: np.ndarray, t: int, incoming_nonzero: Optional[int] = None
    ) -> np.ndarray:
        incoming = np.asarray(incoming)
        if incoming.ndim != 2 or incoming.shape[1] != self._in_features:
            raise ValueError(
                f"{self.layer.name}: expected incoming shape (N, {self._in_features}), "
                f"got {incoming.shape}"
            )
        update = self._update
        self._matmul(incoming, self._w, update)
        if self._bias is not None:
            update += self._bias
        logits = self._logits
        logits += update
        return logits


def compile_numpy_program(layer, backend) -> Optional[StepProgram]:
    """Compile ``layer``'s step into a fused numpy-family program.

    Returns ``None`` — meaning "compose the unfused primitives instead" —
    for unknown layer types, unknown threshold dynamics, layers not yet
    reset, or an invalid ``REPRO_SPARSE_MODE`` (the composed path surfaces
    the error with the original message).  Strict ``type(...) is`` checks
    keep user subclasses on their own (composed) step bodies.
    """
    from repro.snn import layers as snn_layers

    kind = type(layer)
    try:
        env_mode = _env_sparse_mode()
    except ValueError:
        return None
    if kind is snn_layers.SpikingDense or kind is snn_layers.SpikingConv2D:
        if layer.state is None or layer.dispatcher is None:
            return None
        threshold_ops = _threshold_ops_for(layer, backend)
        if threshold_ops is None:
            return None
        if kind is snn_layers.SpikingDense:
            return FusedDenseProgram(layer, backend, threshold_ops, env_mode)
        return FusedConvProgram(layer, backend, threshold_ops, env_mode)
    if kind is snn_layers.SpikingAvgPool2D:
        return FusedAvgPoolProgram(layer, backend, env_mode)
    if kind is snn_layers.SpikingMaxPool2D:
        return FusedMaxPoolProgram(layer, backend, env_mode)
    if kind is snn_layers.SpikingFlatten:
        return FusedFlattenProgram(layer)
    if kind is snn_layers.OutputAccumulator:
        if layer._logits is None or layer._update is None:
            return None
        return FusedOutputProgram(layer, backend)
    return None


# -- whole-network step programs ----------------------------------------------

#: element budget of the periodic-encoder replay cache (period × batch-input
#: copies of values and spikes); mirrors the first-layer z-cache cap
_ENCODER_CACHE_MAX_ELEMENTS = 16_000_000


class _PeriodicEncoderCache:
    """Replay cache for encoders whose output repeats every ``period`` steps.

    The first pass through each phase runs the real encoder step and stores a
    private copy of the transmitted values/spikes (the encoders reuse their
    output buffers across steps) plus the spike count; later steps replay the
    identical arrays without re-entering the encoder — bit-exact, since the
    cached arrays *are* the earlier results.
    """

    def __init__(self, encoder, period: int) -> None:
        self._encoder = encoder
        self._period = int(period)
        self._values: List[Optional[np.ndarray]] = [None] * self._period
        self._spikes: List[Optional[np.ndarray]] = [None] * self._period
        self._counts: List[int] = [0] * self._period

    def encode(self, t: int) -> Tuple[np.ndarray, np.ndarray, int]:
        phase = t % self._period
        values = self._values[phase]
        if values is None:
            encoded = self._encoder.step(t)
            values = np.array(encoded.values)
            spikes = np.array(encoded.spikes)
            self._values[phase] = values
            self._spikes[phase] = spikes
            self._counts[phase] = int(np.count_nonzero(spikes))
        return values, self._spikes[phase], self._counts[phase]


class _LiveEncoder:
    """Uncached encoder driver (stateful/stochastic or oversized inputs)."""

    def __init__(self, encoder) -> None:
        self._encoder = encoder

    def encode(self, t: int) -> Tuple[np.ndarray, np.ndarray, int]:
        encoded = self._encoder.step(t)
        return encoded.values, encoded.spikes, encoded.spike_count


class NetworkStepProgram:
    """One compiled program for the *entire* network step.

    Compiled at plan time from the encoder, every layer's
    :class:`StepProgram` and the prepared batch's spike records;
    ``run_block(t0, n)`` executes ``n`` consecutive steps — encoder (or its
    periodic replay cache), the per-layer program chain with the engine's
    exact sparsity hint-flow, spike recording into the preallocated blocks
    and output snapshots — in a single seam crossing.

    Bit-identity: every step replays exactly the statements of the engine's
    per-step loop (:func:`repro.engine.run.execute`) over the same program
    objects and buffers, so results are bit-identical to per-step execution
    in every dtype.  The program captures the records and per-batch buffers
    of one :class:`~repro.engine.plan.PreparedBatch`; the engine recompiles
    it after any mid-run ``shrink_batch``.
    """

    fused = True

    def __init__(self, prepared, programs: List[StepProgram]) -> None:
        plan = prepared.plan
        network = plan.network
        layers = network.layers
        if len(programs) != len(layers):
            raise ValueError(
                f"expected {len(layers)} layer programs, got {len(programs)}"
            )
        self.prepared = prepared
        self._encoder = network.encoder
        self._output_layer = network.output_layer
        self._record = prepared.record
        self._input_record = prepared.input_record
        self._record_trains = bool(plan.config.record_trains)
        self._recorded_steps = list(plan.recorded_steps)
        self._tracks_spikes = bool(
            getattr(network.encoder, "values_nonzero_tracks_spikes", False)
        )
        #: (layer, program, is_spiking, record) chain run once per step
        self._chain = [
            (layer, program, bool(layer.is_spiking), record)
            for layer, program, record in zip(
                layers, programs, prepared.layer_records
            )
        ]
        period = getattr(network.encoder, "steady_period", None)
        if period is not None and (
            period * network.encoder.input.size * 2 <= _ENCODER_CACHE_MAX_ELEMENTS
        ):
            self._encode = _PeriodicEncoderCache(network.encoder, period).encode
        else:
            self._encode = _LiveEncoder(network.encoder).encode

    def run_block(
        self,
        t0: int,
        n: int,
        output_history: Optional[np.ndarray] = None,
        snapshot: int = 0,
        batch_indices: Optional[np.ndarray] = None,
    ) -> int:
        """Execute steps ``t0 … t0+n-1`` in one call; returns the snapshot
        cursor after the block.

        ``output_history`` (with the incoming ``snapshot`` index) makes the
        program fill the preallocated score history at the plan's recorded
        steps; the early-exit driver passes ``None`` instead and observes
        ``output_layer.logits`` between its single-step blocks.
        ``batch_indices`` maps the (possibly shrunken) simulated batch back
        to the original rows for the spike-train scatter, exactly as in
        :meth:`~repro.snn.recording.LayerRecord.record_step`.
        """
        record_trains = self._record_trains
        encode = self._encode
        chain = self._chain
        tracks_spikes = self._tracks_spikes
        recorded_steps = self._recorded_steps
        input_counts, input_trains = self._input_record.open_block(t0, n)
        input_sampled = self._input_record.sampled_indices
        blocks = [record.open_block(t0, n) for _, _, _, record in chain]
        for i in range(n):
            t = t0 + i
            values, input_spikes, input_count = encode(t)
            input_counts[i] = input_count
            if record_trains and input_trains is not None:
                flat = input_spikes.reshape(input_spikes.shape[0], -1)
                if batch_indices is None or flat.shape[0] == input_trains.shape[1]:
                    np.take(flat, input_sampled, axis=1, out=input_trains[i])
                else:
                    input_trains[i, batch_indices] = flat[:, input_sampled]
            nonzero_hint = input_count if tracks_spikes else None
            for (layer, program, is_spiking, record), (counts, trains) in zip(
                chain, blocks
            ):
                layer.output_nonzero = None
                values = program.run(values, t, nonzero_hint)
                nonzero_hint = layer.output_nonzero
                if is_spiking:
                    spikes = layer.last_spikes
                    counts[i] = (
                        nonzero_hint
                        if nonzero_hint is not None
                        else np.count_nonzero(spikes)
                    )
                    if record_trains and trains is not None:
                        flat = spikes.reshape(spikes.shape[0], -1)
                        if batch_indices is None or flat.shape[0] == trains.shape[1]:
                            np.take(
                                flat, record.sampled_indices, axis=1, out=trains[i]
                            )
                        else:
                            trains[i, batch_indices] = flat[:, record.sampled_indices]
            if (
                output_history is not None
                and snapshot < len(recorded_steps)
                and t + 1 == recorded_steps[snapshot]
            ):
                np.copyto(output_history[snapshot], self._output_layer.logits)
                snapshot += 1
        self._input_record.record_steps(n)
        for _, _, _, record in chain:
            record.record_steps(n)
        self._record.record_steps(n)
        return snapshot

    def describe(self) -> str:
        """One-line description (diagnostics / the step profiler)."""
        inner = ", ".join(program.describe() for _, program, _, _ in self._chain)
        return f"NetworkStepProgram[{inner}]"


def compile_network_step_program(prepared) -> Optional[NetworkStepProgram]:
    """Compile the generic whole-network step program over ``prepared``.

    Composes whatever per-layer programs the layers resolve (fused or
    composed), so it works for every backend in the numpy family — this is
    what :meth:`NumpyBackend.compile_network_program` (and, via inheritance,
    the blocked and torch backends) returns.  Per-layer programs wrapped by
    the instrumentation proxy are unwrapped (``seam_inner``): inside a
    network program the layer boundary is no longer an engine seam, and the
    instrumented backend counts the block call itself instead.
    """
    programs = [
        layer.ensure_step_program() for layer in prepared.plan.network.layers
    ]
    programs = [getattr(program, "seam_inner", program) for program in programs]
    return NetworkStepProgram(prepared, programs)
