"""Shared fixtures for the test suite.

Expensive artefacts (synthetic datasets, trained tiny models) are
session-scoped so the several hundred tests stay fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ann.optimizers import Adam
from repro.data.synthetic import SyntheticImageConfig, make_classification_images
from repro.data.dataset import DataSplit, train_test_split
from repro.models.cnn import build_small_cnn
from repro.models.mlp import build_mlp


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_image_split() -> DataSplit:
    """A tiny 4-class 1x12x12 image task used throughout the suite."""
    config = SyntheticImageConfig(
        num_classes=4,
        image_shape=(1, 12, 12),
        samples_per_class=20,
        noise_std=0.05,
        max_shift=1,
        occlusion_probability=0.0,
    )
    dataset = make_classification_images(config, seed=7, name="tiny")
    return train_test_split(dataset, test_fraction=0.25, seed=7)


@pytest.fixture(scope="session")
def tiny_color_split() -> DataSplit:
    """A tiny 3-channel task (for conv layers with multiple input channels)."""
    config = SyntheticImageConfig(
        num_classes=3,
        image_shape=(3, 10, 10),
        samples_per_class=16,
        noise_std=0.05,
        max_shift=1,
        occlusion_probability=0.0,
    )
    dataset = make_classification_images(config, seed=11, name="tiny-color")
    return train_test_split(dataset, test_fraction=0.25, seed=11)


@pytest.fixture(scope="session")
def trained_mlp(tiny_image_split: DataSplit):
    """A small MLP trained to high accuracy on the tiny image task."""
    data = tiny_image_split
    model = build_mlp(data.input_shape, [32], data.num_classes, seed=3, name="tiny-mlp")
    model.fit(
        data.train.x,
        data.train.y,
        epochs=15,
        batch_size=16,
        optimizer=Adam(learning_rate=2e-3),
        seed=3,
    )
    return model


@pytest.fixture(scope="session")
def trained_cnn(tiny_color_split: DataSplit):
    """A small CNN trained on the tiny colour task."""
    data = tiny_color_split
    model = build_small_cnn(data.input_shape, data.num_classes, seed=5, name="tiny-cnn")
    model.fit(
        data.train.x,
        data.train.y,
        epochs=12,
        batch_size=12,
        optimizer=Adam(learning_rate=2e-3),
        seed=5,
    )
    return model


def numerical_gradient(func, array: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Central-difference numerical gradient of a scalar function of ``array``."""
    grad = np.zeros_like(array, dtype=np.float64)
    it = np.nditer(array, flags=["multi_index"], op_flags=["readwrite"])
    while not it.finished:
        index = it.multi_index
        original = array[index]
        array[index] = original + eps
        plus = func()
        array[index] = original - eps
        minus = func()
        array[index] = original
        grad[index] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


@pytest.fixture
def grad_checker():
    """Expose the numerical-gradient helper to tests as a fixture."""
    return numerical_gradient
