"""Burst detection and burst-length composition (Fig. 2).

A burst is a group of spikes separated by the shortest possible ISI.  In a
discrete-time simulation the shortest ISI is one time step, so a burst is a
maximal run of consecutive time steps in which the neuron fired, and the burst
length is the number of spikes in the run.  Fig. 2 of the paper reports, for a
sweep of ``v_th``, the percentage of all spikes that belong to a burst
(length ≥ 2) broken down by burst length (2, 3, 4, 5, > 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np


def burst_lengths(trains: np.ndarray, min_length: int = 1) -> np.ndarray:
    """Lengths of all maximal runs of consecutive spikes in ``trains``.

    Parameters
    ----------
    trains:
        Boolean spike trains of shape ``(T, neurons)`` or ``(T,)``.
    min_length:
        Only runs of at least this many spikes are returned (1 returns every
        run including isolated spikes).
    """
    trains = np.asarray(trains)
    if trains.ndim == 1:
        trains = trains[:, None]
    if trains.ndim != 2:
        raise ValueError(f"spike trains must be (T, neurons), got shape {trains.shape}")
    if min_length < 1:
        raise ValueError(f"min_length must be >= 1, got {min_length}")
    trains = trains.astype(bool)

    lengths: List[int] = []
    for neuron in range(trains.shape[1]):
        column = trains[:, neuron]
        if not column.any():
            continue
        # Find run boundaries by diffing the padded boolean sequence.
        padded = np.concatenate(([False], column, [False]))
        changes = np.flatnonzero(np.diff(padded.astype(np.int8)))
        starts, ends = changes[0::2], changes[1::2]
        lengths.extend((ends - starts).tolist())
    lengths_array = np.asarray(lengths, dtype=np.int64)
    if lengths_array.size == 0:
        return lengths_array
    return lengths_array[lengths_array >= min_length]


@dataclass
class BurstStatistics:
    """Summary of burst activity in a set of spike trains.

    Attributes
    ----------
    total_spikes:
        Number of spikes analysed.
    burst_spikes:
        Spikes that are part of a burst (run length ≥ 2).
    burst_fraction:
        ``burst_spikes / total_spikes`` (the y-axis of Fig. 2).
    composition:
        Mapping burst-length label → fraction of *all* spikes contributed by
        bursts of that length.  Labels are ``"2"``–``"5"`` and ``">5"``,
        matching the paper's legend.
    mean_burst_length:
        Average length of bursts (runs of length ≥ 2); 0 when there are none.
    """

    total_spikes: int
    burst_spikes: int
    burst_fraction: float
    composition: Dict[str, float] = field(default_factory=dict)
    mean_burst_length: float = 0.0


#: burst-length buckets used by Fig. 2
BURST_LENGTH_LABELS = ("2", "3", "4", "5", ">5")


def burst_statistics(trains: np.ndarray) -> BurstStatistics:
    """Compute the burst statistics of Fig. 2 for the given spike trains."""
    all_runs = burst_lengths(trains, min_length=1)
    total_spikes = int(all_runs.sum())
    burst_runs = all_runs[all_runs >= 2]
    burst_spikes = int(burst_runs.sum())
    fraction = burst_spikes / total_spikes if total_spikes else 0.0

    composition: Dict[str, float] = {label: 0.0 for label in BURST_LENGTH_LABELS}
    if total_spikes:
        for label in BURST_LENGTH_LABELS[:-1]:
            length = int(label)
            composition[label] = float(burst_runs[burst_runs == length].sum() / total_spikes)
        composition[">5"] = float(burst_runs[burst_runs > 5].sum() / total_spikes)

    mean_length = float(burst_runs.mean()) if burst_runs.size else 0.0
    return BurstStatistics(
        total_spikes=total_spikes,
        burst_spikes=burst_spikes,
        burst_fraction=fraction,
        composition=composition,
        mean_burst_length=mean_length,
    )


def burst_composition(trains: np.ndarray) -> Dict[str, float]:
    """Shorthand for :func:`burst_statistics` returning only the composition."""
    return burst_statistics(trains).composition
