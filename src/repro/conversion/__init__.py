"""DNN→SNN conversion: weight normalisation and network building.

The conversion approach follows the line of work the paper builds on:

* import the trained DNN weights into an SNN with the same topology
  (Cao et al. [10]),
* rescale weights layer-by-layer with *data-based weight normalisation* so
  that every activation maps onto a firing rate below the threshold
  (Diehl et al. [11]),
* optionally use the *outlier-robust* percentile variant and reset-by-
  subtraction neurons (Rueckauer et al. [12, 13]),
* attach the per-layer threshold dynamics of the chosen neural coding scheme
  (this paper's hybrid / burst coding).
"""

from repro.conversion.normalization import (
    NormalizationResult,
    activation_scales,
    model_based_scales,
    normalize_weights,
)
from repro.conversion.converter import ConversionConfig, convert_to_snn, fold_batch_norm

__all__ = [
    "NormalizationResult",
    "activation_scales",
    "model_based_scales",
    "normalize_weights",
    "ConversionConfig",
    "convert_to_snn",
    "fold_batch_norm",
]
