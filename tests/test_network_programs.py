"""Whole-network step blocks (PR 10): block execution vs per-step driving.

The network program replays the engine's per-step statements exactly, so the
contract is *bit identity*, not tolerance: every scheme, dtype and early-exit
configuration must produce the same output history, spike counts, sampled
trains and freeze steps whether the run is driven per step (``composed`` /
``layer`` modes) or in multi-step blocks (``network`` mode).  The seam-budget
test pins the point of the exercise: with early exit off the orchestration
calls per step collapse by at least the acceptance floor of 3x.
"""

import numpy as np
import pytest

from repro.backends import (
    fused_mode,
    fused_scope,
    get_backend,
    network_programs_enabled,
    set_fused_programs,
)
from repro.backends.programs import (
    MODE_COMPOSED,
    MODE_LAYER,
    MODE_NETWORK,
    _coerce_mode,
)
from repro.conversion.converter import convert_to_snn
from repro.core.hybrid import HybridCodingScheme
from repro.engine.plan import block_schedule
from repro.snn.network import SimulationConfig
from repro.snn.recording import LayerRecord, SpikeRecord

PARITY_SCHEMES = ("phase-burst", "real-burst")
PARITY_DTYPES = ("float32", "float64")

#: early-exit configurations of the bit-identity matrix; ``patience=2`` at 30
#: steps makes several images freeze mid-run, exercising shrink_batch and the
#: network-program recompile
EXIT_CONFIGS = (
    {},
    {"early_exit_patience": 2},
    {"early_exit_patience": 2, "early_exit_margin": 0.01},
)


@pytest.fixture(scope="module")
def parity_snn_factory(trained_cnn, tiny_color_split):
    """Build a converted SNN for a scheme (shared weights via the fixture)."""

    def build(notation: str):
        scheme = HybridCodingScheme.from_notation(notation, v_th=0.125)
        return convert_to_snn(
            trained_cnn,
            encoder=scheme.make_encoder(seed=0),
            threshold_factory=scheme.make_threshold_factory(),
            calibration_x=tiny_color_split.train.x[:24],
        )

    return build


def _assert_identical_runs(reference, candidate, context):
    assert np.array_equal(reference.output_history, candidate.output_history), context
    assert np.array_equal(reference.recorded_steps, candidate.recorded_steps), context
    assert reference.record.total_spikes() == candidate.record.total_spikes(), context
    assert np.array_equal(
        reference.record.spikes_per_step(), candidate.record.spikes_per_step()
    ), context
    assert reference.record.per_layer_totals() == candidate.record.per_layer_totals(), (
        context
    )
    for ref_layer, cand_layer in zip(
        reference.record.all_records, candidate.record.all_records
    ):
        if ref_layer._trains is not None:
            assert np.array_equal(
                ref_layer.spike_trains(), cand_layer.spike_trains()
            ), f"{context}: trains diverged in {ref_layer.name}"
    if reference.frozen_at is None:
        assert candidate.frozen_at is None, context
    else:
        assert np.array_equal(reference.frozen_at, candidate.frozen_at), context


class TestModeParsing:
    def test_coerce_mode_accepts_bools_names_and_none(self):
        assert _coerce_mode(True) == MODE_NETWORK
        assert _coerce_mode(False) == MODE_COMPOSED
        assert _coerce_mode(None) is None
        for name in (MODE_COMPOSED, MODE_LAYER, MODE_NETWORK):
            assert _coerce_mode(name) == name
            assert _coerce_mode(name.upper()) == name
        for falsy in ("0", "false", "off", "no"):
            assert _coerce_mode(falsy) == MODE_COMPOSED
        # unrecognised truthy strings keep the historical REPRO_FUSED=1 meaning
        assert _coerce_mode("1") == MODE_NETWORK
        assert _coerce_mode("yes") == MODE_NETWORK

    def test_env_parsing_and_default(self, monkeypatch):
        set_fused_programs(None)
        monkeypatch.delenv("REPRO_FUSED", raising=False)
        assert fused_mode() == MODE_NETWORK  # the default tier
        monkeypatch.setenv("REPRO_FUSED", "layer")
        assert fused_mode() == MODE_LAYER
        monkeypatch.setenv("REPRO_FUSED", "composed")
        assert fused_mode() == MODE_COMPOSED
        assert not network_programs_enabled()
        monkeypatch.setenv("REPRO_FUSED", "network")
        assert network_programs_enabled()

    def test_scope_nests_and_restores(self):
        set_fused_programs(None)
        with fused_scope("layer"):
            assert fused_mode() == MODE_LAYER
            assert not network_programs_enabled()
            with fused_scope(True):
                assert fused_mode() == MODE_NETWORK
            assert fused_mode() == MODE_LAYER
        with fused_scope(False):
            assert fused_mode() == MODE_COMPOSED


class TestBlockSchedule:
    def test_whole_horizon_without_early_exit(self):
        config = SimulationConfig(time_steps=25)
        assert block_schedule(config) == [(0, 25)]

    def test_per_step_blocks_with_early_exit(self):
        config = SimulationConfig(time_steps=6, early_exit_patience=3)
        assert block_schedule(config) == [(t, 1) for t in range(6)]

    def test_blocks_cover_the_horizon_exactly(self):
        for kwargs in ({}, {"early_exit_patience": 4}):
            config = SimulationConfig(time_steps=17, **kwargs)
            blocks = block_schedule(config)
            cursor = 0
            for t0, n in blocks:
                assert t0 == cursor and n >= 1
                cursor += n
            assert cursor == config.time_steps


class TestRecordingBlocks:
    def _record(self, steps=5, batch=3, trains=True):
        record = LayerRecord("layer", num_neurons=40, is_spiking=True)
        record.sampled_indices = np.arange(4)
        record.preallocate(steps, batch, record_trains=trains)
        return record

    def test_open_block_requires_preallocation(self):
        record = LayerRecord("layer", num_neurons=8, is_spiking=True)
        with pytest.raises(RuntimeError):
            record.open_block(0, 1)

    def test_open_block_validates_cursor_and_bounds(self):
        record = self._record(steps=5)
        with pytest.raises(ValueError):
            record.open_block(2, 1)  # cursor is still 0
        with pytest.raises(RuntimeError):
            record.open_block(0, 6)  # block exceeds the horizon
        counts, trains = record.open_block(0, 3)
        assert counts.shape == (3,) and trains.shape[0] == 3
        record.record_steps(3)
        with pytest.raises(ValueError):
            record.open_block(2, 1)  # cursor moved to 3
        counts, _ = record.open_block(3, 2)
        assert counts.shape == (2,)

    def test_record_steps_matches_per_step_cursor(self):
        blocked, stepped = self._record(trains=False), self._record(trains=False)
        counts, _ = blocked.open_block(0, 4)
        counts[:] = [1, 2, 3, 4]
        blocked.record_steps(4)
        for t in range(4):
            stepped.record_step(np.zeros((3, 40), dtype=bool), False, count=t + 1)
        assert np.array_equal(
            np.asarray(blocked.spike_counts[:4]), np.asarray(stepped.spike_counts[:4])
        )

    def test_spike_record_record_steps_bumps_time(self):
        record = SpikeRecord()
        record.register_input(8)
        record.preallocate(6, 2)
        record.record_steps(4)
        assert record.time_steps == 4
        record.record_steps(2)
        assert record.time_steps == 6


class TestNetworkBitIdentity:
    @pytest.mark.parametrize("notation", PARITY_SCHEMES)
    @pytest.mark.parametrize("dtype", PARITY_DTYPES)
    @pytest.mark.parametrize(
        "exit_config", EXIT_CONFIGS, ids=("no-exit", "patience", "patience-margin")
    )
    def test_block_execution_is_bit_identical(
        self, parity_snn_factory, tiny_color_split, notation, dtype, exit_config
    ):
        """Network-mode block runs replay composed- and layer-mode runs bit
        for bit in every scheme x dtype x early-exit cell (the early-exit
        cells freeze images mid-run, covering shrink_batch + the network
        program recompile)."""
        x = tiny_color_split.test.x[:6]
        snn = parity_snn_factory(notation)
        config = SimulationConfig(
            time_steps=30, dtype=dtype, record_trains=True, **exit_config
        )
        with fused_scope("composed"):
            composed = snn.run(x, config)
        with fused_scope("layer"):
            layer = snn.run(x, config)
        with fused_scope("network"):
            network = snn.run(x, config)
        context = f"{notation}/{dtype}/{exit_config or 'no-exit'}"
        _assert_identical_runs(composed, layer, f"{context}: layer vs composed")
        _assert_identical_runs(composed, network, f"{context}: network vs composed")
        if exit_config:
            # the early-exit cells must actually exercise a mid-run shrink
            assert np.any(network.frozen_at >= 0), context

    def test_interior_snapshots_match(self, parity_snn_factory, tiny_color_split):
        """record_outputs_every > 1: the block program writes the interior
        snapshots itself and they match the per-step path exactly."""
        x = tiny_color_split.test.x[:4]
        snn = parity_snn_factory("phase-burst")
        config = SimulationConfig(time_steps=30, record_outputs_every=4)
        with fused_scope("layer"):
            stepped = snn.run(x, config)
        with fused_scope("network"):
            blocked = snn.run(x, config)
        assert np.array_equal(stepped.recorded_steps, blocked.recorded_steps)
        assert np.array_equal(stepped.output_history, blocked.output_history)


class TestSeamBudget:
    def _orchestration_calls(self, mode, snn, x, steps=12):
        from repro.backends.instrument import InstrumentedBackend
        from repro.engine.plan import SimulationPlan, recorded_step_schedule
        from repro.engine.run import execute
        from repro.utils.dtypes import resolve_dtype

        backend = InstrumentedBackend(get_backend("numpy"))
        config = SimulationConfig(time_steps=steps)
        with fused_scope(mode):
            plan = SimulationPlan(
                network=snn,
                config=config,
                dtype=resolve_dtype("float32"),
                backend=backend,
                recorded_steps=recorded_step_schedule(config),
            )
            execute(plan.prepare(x))  # warm-up (lazy builds, calibrations)
            prepared = plan.prepare(x)
            backend.recorder.reset()
            execute(prepared)
        snapshot = backend.recorder.snapshot()
        orchestration = sum(
            entry["calls"]
            for key, entry in snapshot.items()
            if key.startswith("program:") or key == "network_program"
        )
        return orchestration / steps

    def test_network_mode_cuts_orchestration_calls_3x(
        self, parity_snn_factory, tiny_color_split
    ):
        """Acceptance gate: with early exit off, seam (orchestration) calls
        per step drop >= 3x going from per-layer programs to network blocks."""
        snn = parity_snn_factory("phase-burst")
        x = tiny_color_split.test.x[:4]
        per_layer = self._orchestration_calls("layer", snn, x)
        per_network = self._orchestration_calls("network", snn, x)
        assert per_layer >= len(snn.layers)  # one program call per layer per step
        assert per_network <= per_layer / 3.0, (
            f"network mode made {per_network} orchestration calls/step "
            f"vs {per_layer} in layer mode"
        )


class TestCompatibilityFallbacks:
    def test_primitives_only_backend_runs_per_step(
        self, parity_snn_factory, tiny_color_split
    ):
        """A backend that declines ``compile_network_program`` (the base-class
        ``None`` default) still runs correctly through the per-step loop."""
        from repro.backends.base import KernelBackend
        from repro.backends.numpy_backend import NumpyBackend

        class NoBlocksBackend(NumpyBackend):
            name = "no-blocks-test"
            description = "declines network programs (test double)"

            def compile_network_program(self, prepared):
                return KernelBackend.compile_network_program(self, prepared)

        from repro.engine.plan import SimulationPlan, recorded_step_schedule
        from repro.engine.run import execute
        from repro.utils.dtypes import resolve_dtype

        x = tiny_color_split.test.x[:4]
        snn = parity_snn_factory("phase-burst")
        config = SimulationConfig(time_steps=20)
        with fused_scope("network"):
            reference = snn.run(x, config)
            plan = SimulationPlan(
                network=snn,
                config=config,
                dtype=resolve_dtype(config.dtype),
                backend=NoBlocksBackend(),
                recorded_steps=recorded_step_schedule(config),
            )
            prepared = plan.prepare(x)
            assert prepared.network_program is None  # declined -> per-step loop
            fallback = execute(prepared)
        assert np.array_equal(reference.output_history, fallback.output_history)
        assert reference.record.total_spikes() == fallback.record.total_spikes()

    def test_prepare_skips_network_program_outside_network_mode(
        self, parity_snn_factory, tiny_color_split
    ):
        from repro.engine.plan import plan_simulation

        snn = parity_snn_factory("phase-burst")
        x = tiny_color_split.test.x[:2]
        with fused_scope("layer"):
            prepared = plan_simulation(snn, SimulationConfig(time_steps=5)).prepare(x)
            assert prepared.network_program is None
        with fused_scope("network"):
            prepared = plan_simulation(snn, SimulationConfig(time_steps=5)).prepare(x)
            assert prepared.network_program is not None
            assert prepared.network_program.fused

    def test_recompile_falls_back_to_generic_driver(
        self, parity_snn_factory, tiny_color_split
    ):
        """A backend that compiled a network program but declines the mid-run
        recompile still gets block semantics from the generic driver."""
        from repro.backends import NetworkStepProgram
        from repro.engine.plan import plan_simulation

        snn = parity_snn_factory("phase-burst")
        x = tiny_color_split.test.x[:2]
        with fused_scope("network"):
            prepared = plan_simulation(snn, SimulationConfig(time_steps=5)).prepare(x)
            assert prepared.network_program is not None
            prepared.backend = _DecliningBackend(prepared.backend)
            prepared.recompile_network_program()
        assert type(prepared.network_program) is NetworkStepProgram


class _DecliningBackend:
    """Wraps a real backend but declines ``compile_network_program``."""

    def __init__(self, inner):
        self._inner = inner

    def compile_network_program(self, prepared):
        return None

    def __getattr__(self, attribute):
        return getattr(self._inner, attribute)
