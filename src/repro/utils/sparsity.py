"""Measured-activity dispatch between dense and sparse propagation kernels.

The SNN engine's synaptic work per step is ``W · incoming`` where ``incoming``
holds the spike amplitudes of the previous layer.  Phase/burst hybrid coding
exists precisely to make those amplitude tensors sparse (Table 2's
spiking-density metric is typically ≪ 0.1 spikes/neuron/step), so each layer
carries two interchangeable propagation kernels:

* a **dense** kernel — one big GEMM over the full incoming tensor, and
* a **sparse** kernel — a gather-style kernel that only lifts and multiplies
  the active part of the input (active features for
  :class:`~repro.snn.layers.SpikingDense`, spike-carrying input channels for
  :class:`~repro.snn.layers.SpikingConv2D`).

This module provides the per-layer :class:`SparsityDispatcher` that picks a
kernel every step from the *measured* incoming nonzero fraction, compared
against a per-layer crossover threshold auto-calibrated on the layer's own
geometry the first time it is reset.

Exactness policy
----------------
Floating-point summation is not associative, and BLAS reassociates the
reduction when the operand shapes change, so a gathered GEMM is *not*
guaranteed to be bit-identical to the dense GEMM it replaces (measured on the
bench machine: OpenBLAS drifts in the last ulp for both row- and
column-gathered float64 GEMMs).  The engine's float64 mode is the golden
exact-match reference precision (``benchmarks/perf/seed_reference.json``), so
the dispatcher is **exactness-gated**:

* in float64 the automatic policy only takes shortcuts that are provably
  bit-identical — the *empty-step* path (an all-zero incoming tensor
  contributes exactly ``0`` regardless of summation order);
* in float32, where the engine's documented contract is tolerance-based
  (identical predictions, spike counts within 1%), the measured-activity
  dispatch between the dense and sparse kernels is enabled.

Tests (and curious users) can force a branch with ``force="dense"`` /
``force="sparse"`` or the ``REPRO_SPARSE_MODE`` environment variable; forcing
bypasses the exactness gate, which is exactly what the kernel-equivalence
tests need.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, Optional, Tuple

import numpy as np

__all__ = [
    "nonzero_fraction",
    "SparsityDispatcher",
    "calibrated_crossover",
    "clear_calibration_cache",
]

#: dispatcher decision labels
DENSE = "dense"
SPARSE = "sparse"
EMPTY = "empty"

#: crossover clamp: below ``_MIN_CROSSOVER`` the sparse path would never run,
#: above ``_MAX_CROSSOVER`` gather overhead always loses to one clean GEMM
_MIN_CROSSOVER = 0.02
_MAX_CROSSOVER = 0.60

#: fallback crossover when calibration is unavailable (e.g. kernels missing)
DEFAULT_CROSSOVER = 0.10

#: process-wide calibration cache keyed by layer geometry **and backend**
#: (the owning layer puts its resolved backend's name in the cache key), so
#: the hundreds of identical layers a sweep resets pay the (one-off, ~ms)
#: probe only once — while crossovers timed on one backend's kernels can
#: never steer another backend's dispatch in mixed-backend processes
_CALIBRATION_CACHE: Dict[Tuple, float] = {}


def clear_calibration_cache() -> None:
    """Drop every cached crossover (tests)."""
    _CALIBRATION_CACHE.clear()


def calibration_cache_snapshot() -> Dict[Tuple, float]:
    """Copy of the process-wide crossover cache (shipped to shard workers so
    their dispatch decisions match the parent's).  Keys carry the backend
    name, so a worker running a different backend than the snapshot's origin
    simply misses the cache and calibrates its own geometry."""
    return dict(_CALIBRATION_CACHE)


def install_calibration_cache(snapshot: Dict[Tuple, float]) -> None:
    """Install a parent process's crossover cache (worker-side)."""
    _CALIBRATION_CACHE.update(snapshot)


def nonzero_fraction(array: np.ndarray) -> float:
    """Fraction of nonzero entries — the measured activity of one step."""
    if array.size == 0:
        return 0.0
    return np.count_nonzero(array) / array.size


def _time_once(fn: Callable[[], object]) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def calibrated_crossover(
    dense_fn: Callable[[np.ndarray], object],
    sparse_fn: Callable[[np.ndarray], object],
    make_input: Callable[[float], np.ndarray],
    probe_fractions: Tuple[float, float] = (0.05, 0.40),
    repeats: int = 3,
) -> float:
    """Measure the dense/sparse crossover activity on a layer's own geometry.

    The sparse kernel's cost is (to first order) affine in the active
    fraction ``f`` — a fixed gather/detection overhead plus work proportional
    to the active set — while the dense kernel's cost is constant.  We time
    the dense kernel once and the sparse kernel at two probe fractions, fit
    ``T_sparse(f) = a + b·f`` and solve ``T_sparse(f*) = T_dense``.

    Timings use best-of-``repeats`` to shrug off scheduler noise; the result
    is clamped to ``[0.02, 0.60]`` so a noisy probe can neither disable the
    sparse path entirely nor enable it where it cannot win.
    """
    f_lo, f_hi = probe_fractions
    if not 0.0 < f_lo < f_hi <= 1.0:
        raise ValueError(f"probe fractions must satisfy 0 < lo < hi <= 1, got {probe_fractions}")
    x_lo = make_input(f_lo)
    x_hi = make_input(f_hi)
    dense_fn(x_hi)  # warm any lazily built buffers outside the timed region
    sparse_fn(x_lo)
    t_dense = min(_time_once(lambda: dense_fn(x_hi)) for _ in range(repeats))
    t_lo = min(_time_once(lambda: sparse_fn(x_lo)) for _ in range(repeats))
    t_hi = min(_time_once(lambda: sparse_fn(x_hi)) for _ in range(repeats))
    slope = (t_hi - t_lo) / (f_hi - f_lo)
    if slope <= 0.0:
        # sparse never gets more expensive with activity (tiny layer): if it
        # beats dense anywhere it beats it everywhere
        crossover = _MAX_CROSSOVER if t_hi <= t_dense else _MIN_CROSSOVER
    else:
        intercept = t_lo - slope * f_lo
        crossover = (t_dense - intercept) / slope
    return float(np.clip(crossover, _MIN_CROSSOVER, _MAX_CROSSOVER))


class SparsityDispatcher:
    """Per-layer dense/sparse kernel selector.

    Parameters
    ----------
    name:
        Owning layer's name (diagnostics).
    exact_only:
        When True (the float64 golden mode) the automatic policy never leaves
        the dense path except for the provably exact empty-step shortcut.
    crossover:
        Activity fraction below which the sparse kernel wins; usually filled
        in by :meth:`calibrate` at the layer's first reset.
    force:
        ``"dense"`` / ``"sparse"`` pins the decision (tests, experiments) and
        bypasses the exactness gate; ``None`` reads the ``REPRO_SPARSE_MODE``
        environment variable and otherwise dispatches automatically.
    """

    def __init__(
        self,
        name: str,
        exact_only: bool = False,
        crossover: float = DEFAULT_CROSSOVER,
        force: Optional[str] = None,
    ) -> None:
        self.name = name
        self.exact_only = bool(exact_only)
        self.crossover = float(crossover)
        self.force = force
        self.calibrated = False
        #: decisions taken since the last reset (diagnostics / tests)
        self.decisions: Dict[str, int] = {DENSE: 0, SPARSE: 0, EMPTY: 0}

    def _forced_mode(self) -> Optional[str]:
        mode = self.force
        if mode is None:
            mode = os.environ.get("REPRO_SPARSE_MODE") or None
            if mode is not None:
                mode = mode.strip().lower()
                if mode == "auto":
                    mode = None
        if mode is not None and mode not in (DENSE, SPARSE):
            raise ValueError(
                f"{self.name}: sparse mode must be 'dense', 'sparse' or 'auto', got {mode!r}"
            )
        return mode

    def calibrate(
        self,
        cache_key: Tuple,
        dense_fn: Callable[[np.ndarray], object],
        sparse_fn: Callable[[np.ndarray], object],
        make_input: Callable[[float], np.ndarray],
    ) -> float:
        """Auto-calibrate the crossover for this layer's geometry (cached).

        Called by the owning layer on its first ``reset``; identical
        geometries (across resets, layers and pipelines) share one probe via
        a process-wide cache.
        """
        cached = _CALIBRATION_CACHE.get(cache_key)
        if cached is None:
            cached = calibrated_crossover(dense_fn, sparse_fn, make_input)
            _CALIBRATION_CACHE[cache_key] = cached
        self.crossover = cached
        self.calibrated = True
        return cached

    def reset_counters(self) -> None:
        self.decisions = {DENSE: 0, SPARSE: 0, EMPTY: 0}

    def choose(self, fraction: float, sparse_available: bool = True) -> str:
        """Pick the propagation kernel for one step.

        Parameters
        ----------
        fraction:
            Measured incoming nonzero fraction (:func:`nonzero_fraction`).
        sparse_available:
            Whether the owning layer has a sparse kernel for the current
            geometry (e.g. strided convolutions fall back to dense).
        """
        return self.choose_resolved(self._forced_mode(), fraction, sparse_available)

    def choose_resolved(
        self, forced: Optional[str], fraction: float, sparse_available: bool = True
    ) -> str:
        """:meth:`choose` with the forced mode already resolved by the caller.

        Fused step programs (:mod:`repro.backends.programs`) resolve the
        ``REPRO_SPARSE_MODE`` environment variable once at compile time and
        re-read only the cheap ``force`` attribute per step, so they call this
        entry point directly; the decision logic and the ``decisions``
        counters are exactly those of :meth:`choose`.
        """
        if forced == DENSE:
            decision = DENSE
        elif forced == SPARSE and sparse_available:
            decision = EMPTY if fraction == 0.0 else SPARSE
        elif fraction == 0.0:
            # an all-zero incoming tensor contributes exactly zero in any
            # summation order: safe even under the float64 exactness gate
            decision = EMPTY
        elif self.exact_only or not sparse_available:
            decision = DENSE
        else:
            decision = SPARSE if fraction < self.crossover else DENSE
        self.decisions[decision] += 1
        return decision

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SparsityDispatcher(name={self.name!r}, exact_only={self.exact_only}, "
            f"crossover={self.crossover:.3f}, calibrated={self.calibrated})"
        )
