"""Tests for the timing helpers backing the perf benchmark harness."""

import json

import numpy as np
import pytest

from repro.utils.timing import (
    Timer,
    TimingResult,
    load_bench_json,
    machine_info,
    time_callable,
    write_bench_json,
)


class TestTimer:
    def test_measures_positive_interval(self):
        with Timer() as t:
            sum(range(1000))
        assert t.seconds >= 0.0


class TestTimeCallable:
    def test_basic_stats(self):
        calls = []
        result = time_callable(lambda: calls.append(1), name="noop", repeats=3, warmup=2)
        assert len(calls) == 5  # warmup + repeats all execute
        assert result.name == "noop"
        assert result.repeats == 3
        assert 0.0 <= result.best_seconds <= result.mean_seconds

    def test_items_per_second(self):
        result = TimingResult(name="x", best_seconds=0.5, mean_seconds=0.5, repeats=1,
                              items_per_call=100)
        assert result.items_per_second == pytest.approx(200.0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)
        with pytest.raises(ValueError):
            time_callable(lambda: None, warmup=-1)

    def test_to_dict_round_trips_through_json(self):
        result = time_callable(lambda: None, name="noop", repeats=2, warmup=0)
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["name"] == "noop"
        assert payload["repeats"] == 2


class TestBenchJson:
    def test_write_and_load(self, tmp_path):
        path = tmp_path / "nested" / "BENCH_test.json"
        write_bench_json(path, {"metric": 1.5, "nested": {"a": [1, 2]}})
        loaded = load_bench_json(path)
        assert loaded["metric"] == 1.5
        assert loaded["nested"] == {"a": [1, 2]}
        assert "machine" in loaded and "numpy" in loaded["machine"]

    def test_load_missing_returns_none(self, tmp_path):
        assert load_bench_json(tmp_path / "absent.json") is None


class TestMachineInfo:
    def test_fingerprint_fields(self):
        info = machine_info()
        assert info["numpy"] == np.__version__
        assert info["cpu_count"] >= 1
