#!/usr/bin/env python
"""The burst-coding precision / efficiency trade-off (Fig. 2 and the v_th rows
of Table 2).

Burst coding transmits a membrane backlog with geometrically growing spike
amplitudes; the base threshold ``v_th`` sets the transmission precision.  The
script sweeps ``v_th`` over the paper's values and reports, per setting,

* the share of spikes that are part of a burst and the burst-length mix
  (Fig. 2), and
* the accuracy / latency / spike-count consequences (Table 2's two "Ours"
  rows per dataset).

Run with:  python examples/burst_precision_tradeoff.py
Runtime:   ~1 minute.
"""

from repro import HybridCodingScheme, PipelineConfig, SNNInferencePipeline
from repro.analysis.burst_stats import BURST_LENGTH_LABELS, burst_statistics
from repro.experiments.fig2 import hidden_spike_trains
from repro.experiments.workloads import mnist_workload
from repro.utils.tables import Table

V_TH_VALUES = (0.5, 0.25, 0.125, 0.0625, 0.03125)


def main() -> None:
    workload = mnist_workload()
    print(f"workload: {workload.name}, DNN test accuracy {workload.dnn_test_accuracy:.3f}\n")

    table = Table(
        ["v_th", "SNN acc %", "latency", "spikes/image", "burst %", *(f"len {l} %" for l in BURST_LENGTH_LABELS)],
        title="Burst precision sweep (Fig. 2 + Table 2 'Ours' rows)",
    )

    for v_th in V_TH_VALUES:
        pipeline = SNNInferencePipeline(
            workload.model,
            workload.data,
            PipelineConfig(
                time_steps=100,
                batch_size=8,
                max_test_images=8,
                record_trains=True,
                sample_fraction=0.1,
            ),
        )
        scheme = HybridCodingScheme.from_notation("phase-burst", v_th=v_th)
        run = pipeline.run_scheme(scheme, keep_batch_results=True)
        metrics = run.metrics(target_accuracy=run.dnn_accuracy)
        stats = burst_statistics(hidden_spike_trains(run))
        row = {
            "v_th": v_th,
            "SNN acc %": round(run.accuracy * 100, 2),
            "latency": metrics.latency if metrics.latency else f">{run.time_steps}",
            "spikes/image": round(run.spikes_per_image, 1),
            "burst %": round(stats.burst_fraction * 100, 2),
        }
        for label in BURST_LENGTH_LABELS:
            row[f"len {label} %"] = round(stats.composition[label] * 100, 2)
        table.add_row(row)

    print(table.render())
    print(
        "\nReading the table: smaller v_th = finer transmission precision -> "
        "more (and longer) bursts and more spikes, the trade-off the paper "
        "describes in Section 3.1."
    )


if __name__ == "__main__":
    main()
