"""im2col / col2im utilities backing the Conv2D and pooling layers.

A convolution over a channel-first batch ``(N, C, H, W)`` is expressed as a
single matrix multiplication by unfolding every receptive field into a column.
The same unfolding is reused by the pooling layers and by the spiking
convolution layer in :mod:`repro.snn.layers`, which keeps the ANN forward pass
and the SNN per-time-step pass numerically identical for the same weights.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"invalid convolution geometry: size={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding} gives non-positive output {out}"
        )
    return out


def im2col(
    x: np.ndarray, kernel_h: int, kernel_w: int, stride: int, padding: int
) -> Tuple[np.ndarray, int, int]:
    """Unfold ``x`` of shape (N, C, H, W) into columns.

    Returns
    -------
    cols:
        Array of shape ``(N * out_h * out_w, C * kernel_h * kernel_w)``.
    out_h, out_w:
        Spatial output dimensions.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 4:
        raise ValueError(f"im2col expects (N, C, H, W), got shape {x.shape}")
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)

    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant")

    # Strided sliding-window view: (N, C, out_h, out_w, kernel_h, kernel_w)
    stride_n, stride_c, stride_h, stride_w = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kernel_h, kernel_w),
        strides=(stride_n, stride_c, stride_h * stride, stride_w * stride, stride_h, stride_w),
        writeable=False,
    )
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * out_h * out_w, c * kernel_h * kernel_w)
    return np.ascontiguousarray(cols), out_h, out_w


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold columns back to an image batch, accumulating overlapping regions.

    This is the adjoint of :func:`im2col` and is used by the convolution and
    pooling backward passes.
    """
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)
    padded_h = h + 2 * padding
    padded_w = w + 2 * padding

    cols_reshaped = cols.reshape(n, out_h, out_w, c, kernel_h, kernel_w).transpose(0, 3, 4, 5, 1, 2)
    x_padded = np.zeros((n, c, padded_h, padded_w), dtype=np.float64)
    for ky in range(kernel_h):
        y_max = ky + stride * out_h
        for kx in range(kernel_w):
            x_max = kx + stride * out_w
            x_padded[:, :, ky:y_max:stride, kx:x_max:stride] += cols_reshaped[:, :, ky, kx, :, :]
    if padding > 0:
        return x_padded[:, :, padding:-padding, padding:-padding]
    return x_padded
