"""A compact, dependency-free (numpy-only) deep-learning framework.

This is the substrate on which the paper's DNNs (CNN / VGG-16) are trained
before being converted to spiking networks.  It provides the layer types the
DNN→SNN conversion literature relies on: Dense, Conv2D, average / max pooling,
Flatten, Dropout, BatchNorm and ReLU activations, plus cross-entropy training
with SGD / Adam.

The framework is intentionally small but complete: forward and backward passes
for every layer, minibatch training loops, and per-layer activation capture
(needed by the data-based weight-normalisation step of the conversion).
"""

from repro.ann.im2col import Im2colPlan, col2im, conv_output_size, im2col
from repro.ann.initializers import he_normal, he_uniform, xavier_uniform, zeros_init
from repro.ann.activations import relu, relu_grad, softmax, sigmoid
from repro.ann.layers import (
    Layer,
    Dense,
    ReLU,
    Conv2D,
    AvgPool2D,
    MaxPool2D,
    Flatten,
    Dropout,
    BatchNorm,
)
from repro.ann.losses import Loss, SoftmaxCrossEntropy, MeanSquaredError
from repro.ann.optimizers import Optimizer, SGD, Adam
from repro.ann.model import Sequential, TrainingHistory
from repro.ann.metrics import accuracy, top_k_accuracy, confusion_matrix

__all__ = [
    "Im2colPlan",
    "col2im",
    "conv_output_size",
    "im2col",
    "he_normal",
    "he_uniform",
    "xavier_uniform",
    "zeros_init",
    "relu",
    "relu_grad",
    "softmax",
    "sigmoid",
    "Layer",
    "Dense",
    "ReLU",
    "Conv2D",
    "AvgPool2D",
    "MaxPool2D",
    "Flatten",
    "Dropout",
    "BatchNorm",
    "Loss",
    "SoftmaxCrossEntropy",
    "MeanSquaredError",
    "Optimizer",
    "SGD",
    "Adam",
    "Sequential",
    "TrainingHistory",
    "accuracy",
    "top_k_accuracy",
    "confusion_matrix",
]
