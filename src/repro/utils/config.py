"""Light-weight configuration helpers shared by all subpackages."""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterable


class FrozenConfig:
    """Base class for frozen dataclass configurations.

    Provides ``to_dict`` / ``replace`` conveniences so experiment harnesses can
    log configurations and sweep individual fields without mutating shared
    objects.
    """

    def to_dict(self) -> Dict[str, Any]:
        """Return the configuration as a plain dictionary."""
        if dataclasses.is_dataclass(self):
            return dataclasses.asdict(self)
        return dict(vars(self))

    def replace(self, **changes: Any) -> "FrozenConfig":
        """Return a copy with ``changes`` applied (dataclasses only)."""
        if dataclasses.is_dataclass(self):
            return dataclasses.replace(self, **changes)
        raise TypeError("replace() requires a dataclass configuration")

    def describe(self) -> str:
        """Single-line human readable description used in run logs."""
        fields = ", ".join(f"{k}={v!r}" for k, v in sorted(self.to_dict().items()))
        return f"{type(self).__name__}({fields})"


def validate_positive(name: str, value: float, *, allow_zero: bool = False) -> None:
    """Raise ``ValueError`` unless ``value`` is positive (or zero if allowed)."""
    if allow_zero:
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value}")
    else:
        if value <= 0:
            raise ValueError(f"{name} must be > 0, got {value}")


def validate_probability(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


def validate_in(name: str, value: Any, allowed: Iterable[Any]) -> None:
    """Raise ``ValueError`` unless ``value`` is one of ``allowed``."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed}, got {value!r}")
