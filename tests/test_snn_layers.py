"""Tests for the spiking layers (dense, conv, pooling, flatten, output)."""

import numpy as np
import pytest

from repro.snn.layers import (
    OutputAccumulator,
    SpikingAvgPool2D,
    SpikingConv2D,
    SpikingDense,
    SpikingFlatten,
    SpikingMaxPool2D,
)
from repro.snn.thresholds import BurstThreshold, ConstantThreshold


class TestSpikingDense:
    def _layer(self, v_th=1.0, bias=None, **kwargs):
        weight = np.array([[1.0, 0.0], [0.0, 1.0], [0.5, 0.5]])
        return SpikingDense(weight, bias, ConstantThreshold(v_th), **kwargs)

    def test_requires_reset(self):
        layer = self._layer()
        with pytest.raises(RuntimeError):
            layer.step(np.zeros((1, 3)), 0)

    def test_shapes_and_counts(self):
        layer = self._layer()
        layer.reset(batch_size=2)
        out = layer.step(np.zeros((2, 3)), 0)
        assert out.shape == (2, 2)
        assert layer.num_neurons == 2
        assert layer.output_shape((3,)) == (2,)

    def test_spikes_when_input_exceeds_threshold(self):
        layer = self._layer(v_th=0.5)
        layer.reset(batch_size=1)
        out = layer.step(np.array([[1.0, 0.0, 0.0]]), 0)
        assert out[0, 0] == 0.5
        assert out[0, 1] == 0.0
        assert layer.spike_count() == 1

    def test_membrane_integrates_subthreshold_input(self):
        layer = self._layer(v_th=1.0)
        layer.reset(batch_size=1)
        layer.step(np.array([[0.4, 0.0, 0.0]]), 0)
        layer.step(np.array([[0.4, 0.0, 0.0]]), 1)
        out = layer.step(np.array([[0.4, 0.0, 0.0]]), 2)
        assert out[0, 0] == 1.0  # 1.2 accumulated -> spike

    def test_bias_injected_each_step_scaled(self):
        layer = self._layer(v_th=10.0, bias=np.array([1.0, 0.0]), bias_scale=0.5)
        layer.reset(batch_size=1)
        for t in range(4):
            layer.step(np.zeros((1, 3)), t)
        assert layer.membrane()[0, 0] == pytest.approx(2.0)

    def test_conservation_over_time(self):
        """All injected charge is eventually transmitted (reset-by-subtraction)."""
        rng = np.random.default_rng(0)
        weight = rng.uniform(0.1, 0.5, size=(4, 3))
        layer = SpikingDense(weight, None, ConstantThreshold(0.5))
        layer.reset(batch_size=1)
        injected = np.zeros(3)
        transmitted = np.zeros(3)
        for t in range(300):
            incoming = rng.uniform(0, 0.3, size=(1, 4))
            injected += incoming[0] @ weight
            out = layer.step(incoming, t)
            transmitted += out[0]
        residual = layer.membrane()[0]
        assert np.allclose(injected, transmitted + residual, atol=1e-9)

    def test_burst_threshold_integration(self):
        weight = np.eye(1)
        layer = SpikingDense(weight, None, BurstThreshold(v_th=0.25, beta=2.0))
        layer.reset(batch_size=1)
        # big one-shot input drains as a burst with growing amplitudes; the
        # returned array is a reusable buffer, so read it before the next step
        amp0 = float(layer.step(np.array([[1.0]]), 0)[0, 0])
        amp1 = float(layer.step(np.array([[0.0]]), 1)[0, 0])
        assert amp0 == 0.25
        assert amp1 == 0.5

    def test_invalid_weight_shapes(self):
        with pytest.raises(ValueError):
            SpikingDense(np.zeros((2, 2, 2)), None, ConstantThreshold())
        with pytest.raises(ValueError):
            SpikingDense(np.zeros((3, 2)), np.zeros(3), ConstantThreshold())

    def test_wrong_incoming_width(self):
        layer = self._layer()
        layer.reset(batch_size=1)
        with pytest.raises(ValueError):
            layer.step(np.zeros((1, 5)), 0)


class TestSpikingConv2D:
    def _layer(self, v_th=1.0):
        weight = np.ones((1, 1, 2, 2)) * 0.25
        return SpikingConv2D(
            weight, None, ConstantThreshold(v_th), stride=2, padding=0, input_shape=(1, 4, 4)
        )

    def test_output_shape_and_neurons(self):
        layer = self._layer()
        assert layer.output_shape((1, 4, 4)) == (1, 2, 2)
        assert layer.num_neurons == 4

    def test_forward_matches_convolution(self):
        layer = self._layer(v_th=0.01)
        layer.reset(batch_size=1)
        x = np.full((1, 1, 4, 4), 1.0)
        out = layer.step(x, 0)
        # every 2x2 window sums to 4*0.25 = 1.0 >= threshold -> all spike
        assert np.all(out > 0)
        assert layer.spike_count() == 4

    def test_requires_input_shape(self):
        with pytest.raises(ValueError):
            SpikingConv2D(np.ones((1, 1, 2, 2)), None, ConstantThreshold(), input_shape=None)

    def test_channel_mismatch(self):
        with pytest.raises(ValueError):
            SpikingConv2D(
                np.ones((1, 2, 2, 2)), None, ConstantThreshold(), input_shape=(1, 4, 4)
            )

    def test_bad_incoming_shape(self):
        layer = self._layer()
        layer.reset(batch_size=1)
        with pytest.raises(ValueError):
            layer.step(np.zeros((1, 2, 4, 4)), 0)

    def test_equivalence_with_spiking_dense(self):
        """A 1x1 conv over a 1x1 image behaves exactly like a dense layer."""
        weight = np.array([[[[0.7]]], [[[0.2]]]])  # (2,1,1,1)
        conv = SpikingConv2D(weight, None, ConstantThreshold(0.5), input_shape=(1, 1, 1))
        dense = SpikingDense(np.array([[0.7, 0.2]]), None, ConstantThreshold(0.5))
        conv.reset(1)
        dense.reset(1)
        for t in range(10):
            x = np.array([[[[0.3]]]])
            out_conv = conv.step(x, t).reshape(1, -1)
            out_dense = dense.step(x.reshape(1, 1), t)
            assert np.allclose(out_conv, out_dense)


class TestSpikingPooling:
    def test_avg_pool_averages_amplitudes(self):
        layer = SpikingAvgPool2D(2)
        layer.reset(1)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = layer.step(x, 0)
        assert np.allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_has_no_neurons(self):
        assert SpikingAvgPool2D(2).num_neurons == 0
        assert not SpikingAvgPool2D(2).is_spiking

    def test_max_pool_gates_on_cumulative_evidence(self):
        layer = SpikingMaxPool2D(2)
        layer.reset(1)
        # neuron (0,0) fires strongly at first, then (1,1) dominates cumulatively
        first = np.zeros((1, 1, 2, 2))
        first[0, 0, 0, 0] = 1.0
        out = layer.step(first, 0)
        assert out[0, 0, 0, 0] == 1.0
        second = np.zeros((1, 1, 2, 2))
        second[0, 0, 1, 1] = 3.0
        out = layer.step(second, 1)
        # cumulative winner is now (1,1) with 3 > 1, so its amplitude is forwarded
        assert out[0, 0, 0, 0] == 3.0

    def test_max_pool_shape_change_detection(self):
        layer = SpikingMaxPool2D(2)
        layer.reset(1)
        layer.step(np.zeros((1, 1, 4, 4)), 0)
        with pytest.raises(ValueError):
            layer.step(np.zeros((1, 2, 4, 4)), 1)

    def test_pool_output_shapes(self):
        assert SpikingAvgPool2D(2).output_shape((3, 8, 8)) == (3, 4, 4)
        assert SpikingMaxPool2D(2).output_shape((3, 8, 8)) == (3, 4, 4)

    def test_invalid_pool_size(self):
        with pytest.raises(ValueError):
            SpikingAvgPool2D(0)
        with pytest.raises(ValueError):
            SpikingMaxPool2D(0)


class TestSpikingFlatten:
    def test_reshape(self):
        layer = SpikingFlatten()
        layer.reset(2)
        out = layer.step(np.zeros((2, 3, 4, 4)), 0)
        assert out.shape == (2, 48)
        assert layer.output_shape((3, 4, 4)) == (48,)


class TestOutputAccumulator:
    def test_accumulates_logits(self):
        weight = np.array([[1.0, -1.0]])
        layer = OutputAccumulator(weight, np.array([0.1, 0.0]))
        layer.reset(1)
        layer.step(np.array([[1.0]]), 0)
        layer.step(np.array([[1.0]]), 1)
        assert np.allclose(layer.logits, [[2.2, -2.0]])

    def test_num_classes(self):
        assert OutputAccumulator(np.zeros((4, 10)), None).num_classes == 10

    def test_is_not_spiking(self):
        layer = OutputAccumulator(np.zeros((4, 2)), None)
        assert not layer.is_spiking
        assert layer.num_neurons == 0

    def test_requires_reset(self):
        layer = OutputAccumulator(np.zeros((2, 2)), None)
        with pytest.raises(RuntimeError):
            layer.step(np.zeros((1, 2)), 0)
        with pytest.raises(RuntimeError):
            _ = layer.logits

    def test_bias_scale(self):
        layer = OutputAccumulator(np.zeros((1, 2)), np.array([1.0, 1.0]), bias_scale=0.25)
        layer.reset(1)
        for t in range(4):
            layer.step(np.zeros((1, 1)), t)
        assert np.allclose(layer.logits, 1.0)

    def test_incoming_shape_mismatch(self):
        layer = OutputAccumulator(np.zeros((3, 2)), None)
        layer.reset(1)
        with pytest.raises(ValueError):
            layer.step(np.zeros((1, 4)), 0)
