"""Table 1: accuracy, latency and spike count for every input/hidden coding
combination on the CIFAR-10-like VGG workload.

The paper's Table 1 evaluates nine combinations (input ∈ {real, rate, phase},
hidden ∈ {rate, phase, burst}) of one trained VGG-16 for a 1,500-step budget
and reports accuracy, the latency at which the DNN accuracy is reached (or the
budget if it never is), and the number of spikes.  The qualitative shape to
reproduce:

* rate input coding is an information bottleneck — it misses the DNN accuracy;
* phase coding in hidden layers generates by far the most spikes;
* burst coding in hidden layers gives the best accuracy for every input
  coding, and ``phase-burst`` reaches the DNN accuracy with the fewest spikes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.curves import latency_to_target, spikes_to_target
from repro.core.pipeline import AggregatedRun
from repro.experiments.reporting import render_table
from repro.experiments.sweep import run_all_schemes
from repro.experiments.workloads import Workload, cifar10_workload


@dataclass
class Table1Row:
    """One row of Table 1."""

    input_coding: str
    hidden_coding: str
    accuracy: float
    dnn_accuracy: float
    latency: Optional[int]
    time_steps: int
    spikes: float
    spikes_per_image: float
    total_spikes_per_image: float

    def as_row(self) -> Dict[str, object]:
        return {
            "input": self.input_coding,
            "hidden": self.hidden_coding,
            "accuracy_%": round(self.accuracy * 100.0, 2),
            "latency": self.latency if self.latency is not None else f">{self.time_steps}",
            "spikes/image@latency": round(self.spikes_per_image, 1),
            "spikes/image@budget": round(self.total_spikes_per_image, 1),
        }


def summarize_run(run: AggregatedRun, target_fraction: float = 1.0) -> Table1Row:
    """Convert an aggregated run into a Table 1 row.

    ``latency`` is the first step at which the SNN reaches
    ``target_fraction × DNN accuracy`` (the paper's Table 1 lists the step at
    which the scheme hits the DNN accuracy, or the full budget when it never
    does); the spike count is taken at that latency.
    """
    input_coding, hidden_coding = run.scheme.split("-")
    target = run.dnn_accuracy * target_fraction
    latency = latency_to_target(run.accuracy_curve, run.recorded_steps, target)
    spikes = spikes_to_target(
        run.accuracy_curve, run.recorded_steps, run.cumulative_spikes, target
    )
    total_spikes = float(run.cumulative_spikes[-1]) if run.cumulative_spikes.size else 0.0
    if spikes is None:
        spikes = total_spikes
    return Table1Row(
        input_coding=input_coding,
        hidden_coding=hidden_coding,
        accuracy=run.accuracy,
        dnn_accuracy=run.dnn_accuracy,
        latency=latency,
        time_steps=run.time_steps,
        spikes=spikes,
        spikes_per_image=spikes / run.num_images if run.num_images else 0.0,
        total_spikes_per_image=total_spikes / run.num_images if run.num_images else 0.0,
    )


def run_table1(
    workload: Optional[Workload] = None,
    runs: Optional[Dict[str, AggregatedRun]] = None,
    time_steps: int = 150,
    num_images: int = 24,
    v_th: float = 0.125,
    target_fraction: float = 1.0,
    seed: int = 0,
) -> List[Table1Row]:
    """Reproduce Table 1 on the CIFAR-10-like workload.

    Parameters
    ----------
    runs:
        Pre-computed per-scheme runs (e.g. shared with Fig. 3 / Fig. 4); when
        omitted the nine Table 1 schemes are simulated here.
    target_fraction:
        Latency target as a fraction of the DNN accuracy (1.0 = match it).
    """
    if runs is None:
        workload = workload or cifar10_workload()
        runs = run_all_schemes(
            workload, time_steps=time_steps, num_images=num_images, v_th=v_th, seed=seed
        )
    return [summarize_run(run, target_fraction=target_fraction) for run in runs.values()]


def format_table1(rows: List[Table1Row]) -> str:
    """Render Table 1 as text."""
    dnn = rows[0].dnn_accuracy if rows else 0.0
    return render_table(
        f"Table 1 — coding combinations on CIFAR-10-like VGG (DNN accuracy {dnn * 100:.2f}%)",
        ["input", "hidden", "accuracy_%", "latency", "spikes/image@latency", "spikes/image@budget"],
        [row.as_row() for row in rows],
    )
