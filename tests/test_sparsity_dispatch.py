"""Sparsity dispatcher and sparse/dense kernel-equivalence tests.

The propagation engine (see :mod:`repro.utils.sparsity`) gives every synaptic
layer a dense and a sparse kernel plus a measured-activity dispatcher.  These
tests pin down:

* the dispatcher policy — empty shortcut, exactness gating in float64,
  forced modes, calibration clamping;
* kernel equivalence — sparse vs dense propagation agree for
  ``SpikingDense``, ``SpikingConv2D`` and both pooling layers across
  float32/float64, empty-spike steps, partial activity and full activity
  (forcing both dispatcher branches).
"""

import numpy as np
import pytest

from repro.snn.layers import (
    SpikingAvgPool2D,
    SpikingConv2D,
    SpikingDense,
    SpikingMaxPool2D,
)
from repro.snn.thresholds import BurstThreshold
from repro.utils import sparsity
from repro.utils.sparsity import (
    SparsityDispatcher,
    calibrated_crossover,
    clear_calibration_cache,
    nonzero_fraction,
)

DTYPES = ["float32", "float64"]
#: activity levels: empty-spike step, sparse step, full-activity step
ACTIVITIES = [0.0, 0.3, 1.0]


def _tolerance(dtype: str) -> dict:
    return {"rtol": 1e-5, "atol": 1e-6} if dtype == "float32" else {"rtol": 1e-11, "atol": 1e-12}


def _structured_conv_input(rng, batch, shape, activity, dtype):
    """Channel-structured spikes: ``activity`` fraction of channels fire."""
    c = shape[0]
    x = np.zeros((batch,) + shape, dtype=dtype)
    if activity > 0.0:
        count = max(1, int(round(activity * c)))
        channels = rng.choice(c, size=count, replace=False)
        plane = (batch, count) + shape[1:]
        x[:, channels] = np.asarray((rng.random(plane) < 0.6) * 0.125, dtype=dtype)
        x[0, channels[0], 0, 0] = dtype_amp(dtype)  # guarantee at least one spike
    return x


def dtype_amp(dtype: str):
    return np.dtype(dtype).type(0.125)


def _structured_dense_input(rng, batch, features, activity, dtype):
    x = np.zeros((batch, features), dtype=dtype)
    if activity > 0.0:
        count = max(1, int(round(activity * features)))
        chosen = rng.choice(features, size=count, replace=False)
        x[:, chosen] = np.asarray((rng.random((batch, count)) < 0.6) * 0.125, dtype=dtype)
        x[0, chosen[0]] = dtype_amp(dtype)
    return x


class TestDispatcherPolicy:
    def test_empty_is_always_taken(self):
        for exact_only in (False, True):
            dispatcher = SparsityDispatcher("layer", exact_only=exact_only)
            assert dispatcher.choose(0.0) == sparsity.EMPTY

    def test_exact_only_never_goes_sparse(self):
        dispatcher = SparsityDispatcher("layer", exact_only=True, crossover=0.5)
        assert dispatcher.choose(0.1) == sparsity.DENSE
        assert dispatcher.choose(0.9) == sparsity.DENSE

    def test_crossover_dispatch(self):
        dispatcher = SparsityDispatcher("layer", crossover=0.25)
        assert dispatcher.choose(0.1) == sparsity.SPARSE
        assert dispatcher.choose(0.4) == sparsity.DENSE

    def test_sparse_unavailable_falls_back_dense(self):
        dispatcher = SparsityDispatcher("layer", crossover=0.25)
        assert dispatcher.choose(0.1, sparse_available=False) == sparsity.DENSE

    def test_forced_modes(self):
        dense = SparsityDispatcher("layer", force="dense")
        assert dense.choose(0.0) == sparsity.DENSE
        forced = SparsityDispatcher("layer", exact_only=True, force="sparse")
        assert forced.choose(0.9) == sparsity.SPARSE
        assert forced.choose(0.0) == sparsity.EMPTY

    def test_env_var_force(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPARSE_MODE", "sparse")
        dispatcher = SparsityDispatcher("layer", crossover=0.01)
        assert dispatcher.choose(0.9) == sparsity.SPARSE
        monkeypatch.setenv("REPRO_SPARSE_MODE", "auto")
        assert dispatcher.choose(0.9) == sparsity.DENSE
        monkeypatch.setenv("REPRO_SPARSE_MODE", "bogus")
        with pytest.raises(ValueError):
            dispatcher.choose(0.9)

    def test_decision_counters(self):
        dispatcher = SparsityDispatcher("layer", crossover=0.25)
        for fraction in (0.0, 0.1, 0.9):
            dispatcher.choose(fraction)
        assert dispatcher.decisions == {"dense": 1, "sparse": 1, "empty": 1}
        dispatcher.reset_counters()
        assert sum(dispatcher.decisions.values()) == 0

    def test_nonzero_fraction(self):
        assert nonzero_fraction(np.zeros(8)) == 0.0
        assert nonzero_fraction(np.ones(8)) == 1.0
        assert nonzero_fraction(np.array([0.0, 1.0, 0.0, 2.0])) == 0.5
        assert nonzero_fraction(np.zeros(0)) == 0.0

    def test_calibrated_crossover_clamped(self):
        make_input = lambda fraction: np.zeros(4)
        # sparse always slower -> clamps at the minimum
        low = calibrated_crossover(
            lambda x: None, lambda x: sum(range(2000)), make_input
        )
        assert low == pytest.approx(0.02)
        # sparse always faster -> clamps at the maximum
        high = calibrated_crossover(
            lambda x: sum(range(2000)), lambda x: None, make_input
        )
        assert high == pytest.approx(0.60)

    def test_calibration_cache_shared(self):
        clear_calibration_cache()
        calls = {"n": 0}

        def sparse_fn(x):
            calls["n"] += 1

        key = ("unit-test", 1, 2, 3)
        first = SparsityDispatcher("a")
        second = SparsityDispatcher("b")
        first.calibrate(key, lambda x: None, sparse_fn, lambda fraction: np.zeros(2))
        sparse_calls = calls["n"]
        second.calibrate(key, lambda x: None, sparse_fn, lambda fraction: np.zeros(2))
        assert calls["n"] == sparse_calls  # cache hit: no re-probe
        assert first.crossover == second.crossover
        clear_calibration_cache()


def _fresh_dense(dtype, force, batch=6, rng_seed=3):
    rng = np.random.default_rng(rng_seed)
    layer = SpikingDense(
        rng.normal(scale=0.2, size=(40, 12)),
        rng.normal(scale=0.05, size=12),
        BurstThreshold(v_th=0.125),
    )
    layer.reset(batch, dtype=dtype)
    layer.dispatcher.force = force
    return layer


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("activity", ACTIVITIES)
class TestDenseKernelEquivalence:
    def test_sparse_matches_dense(self, dtype, activity):
        rng = np.random.default_rng(11)
        x = _structured_dense_input(rng, 6, 40, activity, dtype)
        dense = _fresh_dense(dtype, "dense")
        sparse = _fresh_dense(dtype, "sparse")
        z_dense = np.array(dense._synaptic_input(x))
        z_sparse = np.array(sparse._synaptic_input(x))
        if activity in (0.0, 1.0):
            # empty: both reduce to the bias response; full: the gather is the
            # identity, so the very same GEMM runs — exact in both dtypes
            assert np.array_equal(z_dense, z_sparse)
        else:
            assert np.allclose(z_dense, z_sparse, **_tolerance(dtype))
        assert sparse.dispatcher.decisions[
            sparsity.EMPTY if activity == 0.0 else sparsity.SPARSE
        ] == 1

    def test_step_outputs_agree(self, dtype, activity):
        rng = np.random.default_rng(12)
        x = _structured_dense_input(rng, 6, 40, activity, dtype)
        dense = _fresh_dense(dtype, "dense")
        sparse = _fresh_dense(dtype, "sparse")
        out_dense = np.array(dense.step(x, 0))
        out_sparse = np.array(sparse.step(x, 0))
        assert np.allclose(out_dense, out_sparse, **_tolerance(dtype))
        assert np.array_equal(dense.last_spikes, sparse.last_spikes)


def _fresh_conv(dtype, force, batch=4, rng_seed=5):
    rng = np.random.default_rng(rng_seed)
    layer = SpikingConv2D(
        rng.normal(scale=0.2, size=(6, 8, 3, 3)),
        rng.normal(scale=0.05, size=6),
        BurstThreshold(v_th=0.125),
        padding=1,
        input_shape=(8, 10, 10),
    )
    layer.reset(batch, dtype=dtype)
    layer.dispatcher.force = force
    return layer


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("activity", ACTIVITIES)
class TestConvKernelEquivalence:
    def test_sparse_matches_dense(self, dtype, activity):
        rng = np.random.default_rng(21)
        x = _structured_conv_input(rng, 4, (8, 10, 10), activity, dtype)
        dense = _fresh_conv(dtype, "dense")
        sparse = _fresh_conv(dtype, "sparse")
        z_dense = np.array(dense._synaptic_input(x))
        z_sparse = np.array(sparse._synaptic_input(x))
        if activity == 0.0:
            assert np.array_equal(z_dense, z_sparse)
        else:
            assert np.allclose(z_dense, z_sparse, **_tolerance(dtype))
        assert sparse.dispatcher.decisions[
            sparsity.EMPTY if activity == 0.0 else sparsity.SPARSE
        ] == 1

    def test_sparse_matches_canonical(self, dtype, activity):
        """The packed direct path agrees with the canonical im2col GEMM."""
        rng = np.random.default_rng(22)
        x = _structured_conv_input(rng, 4, (8, 10, 10), activity, dtype)
        sparse = _fresh_conv(dtype, "sparse")
        z_sparse = np.array(sparse._synaptic_input(x))
        canonical = _fresh_conv(dtype, "dense")
        z_canonical = np.array(canonical._canonical_input(x))
        assert np.allclose(z_sparse, z_canonical, **_tolerance(dtype))

    def test_step_outputs_agree(self, dtype, activity):
        rng = np.random.default_rng(23)
        x = _structured_conv_input(rng, 4, (8, 10, 10), activity, dtype)
        dense = _fresh_conv(dtype, "dense")
        sparse = _fresh_conv(dtype, "sparse")
        out_dense = np.array(dense.step(x, 0))
        out_sparse = np.array(sparse.step(x, 0))
        assert np.allclose(out_dense, out_sparse, **_tolerance(dtype))
        assert np.array_equal(dense.last_spikes, sparse.last_spikes)


def test_conv_float64_auto_mode_stays_canonical():
    """In float64 the automatic policy must not leave the exact dense path
    (only the provably exact empty shortcut is allowed)."""
    rng = np.random.default_rng(31)
    layer = _fresh_conv("float64", force=None)
    assert layer.dispatcher.exact_only
    x = _structured_conv_input(rng, 4, (8, 10, 10), 0.05, "float64")
    layer._synaptic_input(x)
    layer._synaptic_input(np.zeros_like(x))
    assert layer.dispatcher.decisions[sparsity.SPARSE] == 0
    assert layer.dispatcher.decisions[sparsity.DENSE] == 1
    assert layer.dispatcher.decisions[sparsity.EMPTY] == 1


def test_strided_conv_has_no_sparse_path():
    rng = np.random.default_rng(32)
    layer = SpikingConv2D(
        rng.normal(scale=0.2, size=(4, 3, 3, 3)),
        None,
        BurstThreshold(v_th=0.125),
        stride=2,
        padding=1,
        input_shape=(3, 9, 9),
    )
    layer.reset(2, dtype="float32")
    layer.dispatcher.force = "sparse"
    x = _structured_conv_input(rng, 2, (3, 9, 9), 0.3, "float32")
    layer._synaptic_input(x)  # forced sparse, but unavailable -> dense
    assert layer.dispatcher.decisions[sparsity.DENSE] == 1


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("pool_cls", [SpikingAvgPool2D, SpikingMaxPool2D])
class TestPoolingEquivalence:
    def test_empty_and_full_steps_match_dense(self, dtype, pool_cls):
        """The pools' empty-step shortcut is exact: interleaving empty steps
        produces bit-identical outputs to pushing the zeros through the full
        (forced-dense) pooling path."""
        rng = np.random.default_rng(41)
        x = np.asarray((rng.random((3, 4, 8, 8)) < 0.5) * 0.125, dtype=dtype)
        zeros = np.zeros_like(x)
        shortcut = pool_cls(2)
        dense = pool_cls(2)
        shortcut.reset(3, dtype=dtype)
        dense.reset(3, dtype=dtype)
        dense.dispatcher.force = "dense"
        for t, frame in enumerate([x, zeros, x, zeros]):
            out_shortcut = np.array(shortcut.step(frame, t))
            out_dense = np.array(dense.step(frame, t))
            assert np.array_equal(out_shortcut, out_dense)
        assert shortcut.dispatcher.decisions[sparsity.EMPTY] == 2
        assert dense.dispatcher.decisions[sparsity.EMPTY] == 0

    def test_hinted_count_matches_scan(self, dtype, pool_cls):
        """Passing the producer's exact nonzero count must not change results."""
        rng = np.random.default_rng(42)
        x = np.asarray((rng.random((2, 4, 8, 8)) < 0.3) * 0.125, dtype=dtype)
        hinted = pool_cls(2)
        scanned = pool_cls(2)
        hinted.reset(2, dtype=dtype)
        scanned.reset(2, dtype=dtype)
        count = int(np.count_nonzero(x))
        for t, frame in enumerate([x, np.zeros_like(x)]):
            frame_count = count if t == 0 else 0
            out_hinted = np.array(hinted.step(frame, t, incoming_nonzero=frame_count))
            out_scanned = np.array(scanned.step(frame, t))
            assert np.array_equal(out_hinted, out_scanned)
