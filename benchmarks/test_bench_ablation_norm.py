"""Ablation bench: weight-normalisation method.

Compares data-based max normalisation (Diehl et al. [11]), the outlier-robust
percentile variant (Rueckauer et al. [12, 13]) and the data-free model-based
bound, under the proposed phase-burst coding.  Expected shape: the data-based
variants track the DNN accuracy; the model-based bound is far more
conservative (slower convergence / fewer spikes per step), which is exactly
why the literature moved to data-based normalisation.
"""

from repro.conversion.converter import ConversionConfig
from repro.core.hybrid import HybridCodingScheme
from repro.core.pipeline import PipelineConfig, SNNInferencePipeline
from repro.utils.tables import Table


def _run(workload, normalization, percentile=99.5, time_steps=120, num_images=16):
    config = PipelineConfig(
        time_steps=time_steps,
        batch_size=16,
        max_test_images=num_images,
        conversion=ConversionConfig(normalization=normalization, percentile=percentile),
        seed=0,
    )
    pipeline = SNNInferencePipeline(workload.model, workload.data, config)
    return pipeline.run_scheme(HybridCodingScheme.from_notation("phase-burst"))


def test_bench_ablation_normalization(benchmark, save_result, mnist_cnn_workload):
    def run_ablation():
        return {
            "data (max)": _run(mnist_cnn_workload, "data"),
            "robust (99.5th pct)": _run(mnist_cnn_workload, "robust"),
            "model-based bound": _run(mnist_cnn_workload, "model"),
        }

    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    table = Table(
        ["normalisation", "accuracy_%", "dnn_%", "spikes/image"],
        title="Ablation — weight normalisation method (phase-burst coding)",
    )
    for name, run in results.items():
        table.add_row(
            {
                "normalisation": name,
                "accuracy_%": round(run.accuracy * 100, 2),
                "dnn_%": round(run.dnn_accuracy * 100, 2),
                "spikes/image": round(run.spikes_per_image, 1),
            }
        )
    save_result("ablation_normalization", table.render())

    # data-based and robust normalisation both track the DNN accuracy
    assert results["data (max)"].accuracy >= results["data (max)"].dnn_accuracy - 0.1
    assert results["robust (99.5th pct)"].accuracy >= results["robust (99.5th pct)"].dnn_accuracy - 0.1
    # the conservative model-based bound suppresses activity (fewer spikes)
    assert (
        results["model-based bound"].spikes_per_image
        <= results["data (max)"].spikes_per_image * 1.05
    )
