"""Shared utilities: RNG management, configuration helpers, logging, tables.

These are deliberately dependency-free (only numpy) so every other subpackage
can import them without cycles.
"""

from repro.utils.rng import RngMixin, as_rng, spawn_rngs
from repro.utils.config import FrozenConfig, validate_positive, validate_probability, validate_in
from repro.utils.dtypes import (
    DEFAULT_SIMULATION_DTYPE,
    resolve_dtype,
    set_simulation_dtype,
    simulation_dtype,
    simulation_precision,
)
from repro.utils.logging import RunLogger, get_logger
from repro.utils.tables import Table, format_float, format_int, format_si
from repro.utils.timing import (
    Timer,
    TimingResult,
    load_bench_json,
    machine_info,
    time_callable,
    write_bench_json,
)
from repro.utils.serialization import load_model_weights, save_model_weights

__all__ = [
    "load_model_weights",
    "save_model_weights",
    "DEFAULT_SIMULATION_DTYPE",
    "resolve_dtype",
    "set_simulation_dtype",
    "simulation_dtype",
    "simulation_precision",
    "Timer",
    "TimingResult",
    "load_bench_json",
    "machine_info",
    "time_callable",
    "write_bench_json",
    "RngMixin",
    "as_rng",
    "spawn_rngs",
    "FrozenConfig",
    "validate_positive",
    "validate_probability",
    "validate_in",
    "RunLogger",
    "get_logger",
    "Table",
    "format_float",
    "format_int",
    "format_si",
]
