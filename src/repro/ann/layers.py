"""Layers of the numpy ANN framework.

Every layer implements ``forward`` / ``backward`` and exposes its parameters
and gradients through dictionaries so the optimizers can update them in place.
Layers also implement ``output_shape`` so models can be shape-checked before
training and so the DNN→SNN converter can pre-allocate neuron state.

Shape conventions
-----------------
* Dense layers operate on ``(N, D)`` matrices.
* Convolution / pooling layers operate on channel-first ``(N, C, H, W)``
  batches.
* ``Flatten`` bridges the two.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.ann.activations import relu, relu_grad
from repro.ann.im2col import col2im, conv_output_size, im2col
from repro.ann.initializers import get_initializer
from repro.utils.rng import SeedLike, as_rng


class Layer:
    """Base class for all layers.

    Attributes
    ----------
    params:
        Mapping of parameter name to array (empty for parameter-free layers).
    grads:
        Mapping of parameter name to gradient array, filled by ``backward``.
    trainable:
        Whether the optimizer should update this layer's parameters.
    """

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name or type(self).__name__
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}
        self.trainable = True

    # -- interface -------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output for input ``x``."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate ``grad_output`` and return the gradient w.r.t. input."""
        raise NotImplementedError

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Per-sample output shape given a per-sample ``input_shape``."""
        raise NotImplementedError

    # -- helpers ---------------------------------------------------------
    @property
    def has_params(self) -> bool:
        return bool(self.params)

    def num_params(self) -> int:
        """Total number of scalar parameters in the layer."""
        return int(sum(p.size for p in self.params.values()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class Dense(Layer):
    """Fully connected layer: ``y = x @ W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality.
    use_bias:
        Whether to learn an additive bias (conversion methods such as
        Cao et al. [10] drop biases; Rueckauer et al. [12] keep them).
    weight_init:
        Name of the initialiser from :mod:`repro.ann.initializers`.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        use_bias: bool = True,
        weight_init: str = "he_normal",
        seed: SeedLike = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"in_features and out_features must be positive, got "
                f"{in_features}, {out_features}"
            )
        self.in_features = in_features
        self.out_features = out_features
        self.use_bias = use_bias
        init = get_initializer(weight_init)
        self.params["weight"] = init((in_features, out_features), seed=seed)
        if use_bias:
            self.params["bias"] = np.zeros(out_features, dtype=np.float64)
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"{self.name}: expected input of shape (N, {self.in_features}), got {x.shape}"
            )
        if training:
            self._input = x
        out = x @ self.params["weight"]
        if self.use_bias:
            out = out + self.params["bias"]
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError(f"{self.name}: backward called before forward(training=True)")
        self.grads["weight"] = self._input.T @ grad_output
        if self.use_bias:
            self.grads["bias"] = grad_output.sum(axis=0)
        return grad_output @ self.params["weight"].T

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if len(input_shape) != 1 or input_shape[0] != self.in_features:
            raise ValueError(
                f"{self.name}: expected per-sample shape ({self.in_features},), got {input_shape}"
            )
        return (self.out_features,)


class ReLU(Layer):
    """Rectified linear activation; converted to IF-neuron firing in the SNN."""

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(name)
        self.trainable = False
        self._pre_activation: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if training:
            self._pre_activation = x
        return relu(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._pre_activation is None:
            raise RuntimeError(f"{self.name}: backward called before forward(training=True)")
        return grad_output * relu_grad(self._pre_activation)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return tuple(input_shape)


class Conv2D(Layer):
    """2-D convolution over channel-first images, implemented with im2col.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts of input and output.
    kernel_size:
        Square kernel side length.
    stride, padding:
        Convolution stride and symmetric zero padding.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        use_bias: bool = True,
        weight_init: str = "he_normal",
        seed: SeedLike = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        for label, value in (
            ("in_channels", in_channels),
            ("out_channels", out_channels),
            ("kernel_size", kernel_size),
            ("stride", stride),
        ):
            if value <= 0:
                raise ValueError(f"{label} must be positive, got {value}")
        if padding < 0:
            raise ValueError(f"padding must be non-negative, got {padding}")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.use_bias = use_bias
        init = get_initializer(weight_init)
        self.params["weight"] = init(
            (out_channels, in_channels, kernel_size, kernel_size), seed=seed
        )
        if use_bias:
            self.params["bias"] = np.zeros(out_channels, dtype=np.float64)
        self._cols: Optional[np.ndarray] = None
        self._input_shape: Optional[Tuple[int, int, int, int]] = None
        self._out_hw: Optional[Tuple[int, int]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"{self.name}: expected input (N, {self.in_channels}, H, W), got {x.shape}"
            )
        n = x.shape[0]
        cols, out_h, out_w = im2col(x, self.kernel_size, self.kernel_size, self.stride, self.padding)
        weight_matrix = self.params["weight"].reshape(self.out_channels, -1)
        out = cols @ weight_matrix.T
        if self.use_bias:
            out = out + self.params["bias"]
        out = out.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)
        if training:
            self._cols = cols
            self._input_shape = x.shape
            self._out_hw = (out_h, out_w)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cols is None or self._input_shape is None or self._out_hw is None:
            raise RuntimeError(f"{self.name}: backward called before forward(training=True)")
        n = grad_output.shape[0]
        out_h, out_w = self._out_hw
        grad_cols_out = grad_output.transpose(0, 2, 3, 1).reshape(n * out_h * out_w, self.out_channels)
        weight_matrix = self.params["weight"].reshape(self.out_channels, -1)
        self.grads["weight"] = (grad_cols_out.T @ self._cols).reshape(self.params["weight"].shape)
        if self.use_bias:
            self.grads["bias"] = grad_cols_out.sum(axis=0)
        grad_cols_in = grad_cols_out @ weight_matrix
        return col2im(
            grad_cols_in,
            self._input_shape,
            self.kernel_size,
            self.kernel_size,
            self.stride,
            self.padding,
        )

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if len(input_shape) != 3 or input_shape[0] != self.in_channels:
            raise ValueError(
                f"{self.name}: expected per-sample shape ({self.in_channels}, H, W), "
                f"got {input_shape}"
            )
        _, h, w = input_shape
        out_h = conv_output_size(h, self.kernel_size, self.stride, self.padding)
        out_w = conv_output_size(w, self.kernel_size, self.stride, self.padding)
        return (self.out_channels, out_h, out_w)


class AvgPool2D(Layer):
    """Average pooling.

    Average pooling is the pooling operation used in converted SNNs because it
    is linear and therefore maps exactly onto spike-rate averaging (Cao et
    al. [10]); the converter offers to replace max pooling with it.
    """

    def __init__(self, pool_size: int = 2, stride: Optional[int] = None, name: Optional[str] = None) -> None:
        super().__init__(name)
        if pool_size <= 0:
            raise ValueError(f"pool_size must be positive, got {pool_size}")
        self.pool_size = pool_size
        self.stride = stride if stride is not None else pool_size
        if self.stride <= 0:
            raise ValueError(f"stride must be positive, got {self.stride}")
        self.trainable = False
        self._input_shape: Optional[Tuple[int, int, int, int]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 4:
            raise ValueError(f"{self.name}: expected (N, C, H, W), got {x.shape}")
        n, c, h, w = x.shape
        cols, out_h, out_w = im2col(
            x.reshape(n * c, 1, h, w), self.pool_size, self.pool_size, self.stride, 0
        )
        out = cols.mean(axis=1).reshape(n, c, out_h, out_w)
        if training:
            self._input_shape = x.shape
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError(f"{self.name}: backward called before forward(training=True)")
        n, c, h, w = self._input_shape
        out_h = conv_output_size(h, self.pool_size, self.stride, 0)
        out_w = conv_output_size(w, self.pool_size, self.stride, 0)
        area = self.pool_size * self.pool_size
        grad_cols = np.repeat(
            grad_output.reshape(n * c * out_h * out_w, 1) / area, area, axis=1
        )
        grad_input = col2im(
            grad_cols, (n * c, 1, h, w), self.pool_size, self.pool_size, self.stride, 0
        )
        return grad_input.reshape(n, c, h, w)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if len(input_shape) != 3:
            raise ValueError(f"{self.name}: expected per-sample (C, H, W), got {input_shape}")
        c, h, w = input_shape
        out_h = conv_output_size(h, self.pool_size, self.stride, 0)
        out_w = conv_output_size(w, self.pool_size, self.stride, 0)
        return (c, out_h, out_w)


class MaxPool2D(Layer):
    """Max pooling (used in the original DNN; replaced or spiked at conversion)."""

    def __init__(self, pool_size: int = 2, stride: Optional[int] = None, name: Optional[str] = None) -> None:
        super().__init__(name)
        if pool_size <= 0:
            raise ValueError(f"pool_size must be positive, got {pool_size}")
        self.pool_size = pool_size
        self.stride = stride if stride is not None else pool_size
        if self.stride <= 0:
            raise ValueError(f"stride must be positive, got {self.stride}")
        self.trainable = False
        self._input_shape: Optional[Tuple[int, int, int, int]] = None
        self._argmax: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 4:
            raise ValueError(f"{self.name}: expected (N, C, H, W), got {x.shape}")
        n, c, h, w = x.shape
        cols, out_h, out_w = im2col(
            x.reshape(n * c, 1, h, w), self.pool_size, self.pool_size, self.stride, 0
        )
        argmax = cols.argmax(axis=1)
        out = cols[np.arange(cols.shape[0]), argmax].reshape(n, c, out_h, out_w)
        if training:
            self._input_shape = x.shape
            self._argmax = argmax
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None or self._argmax is None:
            raise RuntimeError(f"{self.name}: backward called before forward(training=True)")
        n, c, h, w = self._input_shape
        area = self.pool_size * self.pool_size
        flat = grad_output.reshape(-1)
        grad_cols = np.zeros((flat.shape[0], area), dtype=np.float64)
        grad_cols[np.arange(flat.shape[0]), self._argmax] = flat
        grad_input = col2im(
            grad_cols, (n * c, 1, h, w), self.pool_size, self.pool_size, self.stride, 0
        )
        return grad_input.reshape(n, c, h, w)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if len(input_shape) != 3:
            raise ValueError(f"{self.name}: expected per-sample (C, H, W), got {input_shape}")
        c, h, w = input_shape
        out_h = conv_output_size(h, self.pool_size, self.stride, 0)
        out_w = conv_output_size(w, self.pool_size, self.stride, 0)
        return (c, out_h, out_w)


class Flatten(Layer):
    """Reshape ``(N, C, H, W)`` activations to ``(N, C*H*W)`` rows."""

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(name)
        self.trainable = False
        self._input_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if training:
            self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError(f"{self.name}: backward called before forward(training=True)")
        return grad_output.reshape(self._input_shape)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        size = 1
        for dim in input_shape:
            size *= dim
        return (size,)


class Dropout(Layer):
    """Inverted dropout; identity at inference (and therefore in the SNN)."""

    def __init__(self, rate: float = 0.5, seed: SeedLike = None, name: Optional[str] = None) -> None:
        super().__init__(name)
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.trainable = False
        self._rng = as_rng(seed)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.uniform(size=x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return tuple(input_shape)


class BatchNorm(Layer):
    """Batch normalisation over the channel (or feature) dimension.

    The converter folds BatchNorm parameters into the preceding Dense/Conv2D
    weights before building the SNN (see
    :func:`repro.conversion.converter.fold_batch_norm`), so spiking networks
    never contain an explicit BatchNorm layer.
    """

    def __init__(
        self,
        num_features: int,
        momentum: float = 0.9,
        eps: float = 1e-5,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        if num_features <= 0:
            raise ValueError(f"num_features must be positive, got {num_features}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.params["gamma"] = np.ones(num_features, dtype=np.float64)
        self.params["beta"] = np.zeros(num_features, dtype=np.float64)
        self.running_mean = np.zeros(num_features, dtype=np.float64)
        self.running_var = np.ones(num_features, dtype=np.float64)
        self._cache: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    def _moments_axes(self, x: np.ndarray) -> Tuple[int, ...]:
        if x.ndim == 2:
            return (0,)
        if x.ndim == 4:
            return (0, 2, 3)
        raise ValueError(f"{self.name}: expected 2-D or 4-D input, got shape {x.shape}")

    def _broadcast(self, values: np.ndarray, ndim: int) -> np.ndarray:
        if ndim == 2:
            return values.reshape(1, -1)
        return values.reshape(1, -1, 1, 1)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        axes = self._moments_axes(x)
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
        else:
            mean = self.running_mean
            var = self.running_var
        mean_b = self._broadcast(mean, x.ndim)
        var_b = self._broadcast(var, x.ndim)
        x_hat = (x - mean_b) / np.sqrt(var_b + self.eps)
        if training:
            self._cache = (x_hat, var_b, x - mean_b)
        gamma = self._broadcast(self.params["gamma"], x.ndim)
        beta = self._broadcast(self.params["beta"], x.ndim)
        return gamma * x_hat + beta

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward called before forward(training=True)")
        x_hat, var_b, centered = self._cache
        axes = self._moments_axes(grad_output)
        m = float(np.prod([grad_output.shape[a] for a in axes]))
        gamma = self._broadcast(self.params["gamma"], grad_output.ndim)

        self.grads["gamma"] = (grad_output * x_hat).sum(axis=axes)
        self.grads["beta"] = grad_output.sum(axis=axes)

        std_inv = 1.0 / np.sqrt(var_b + self.eps)
        grad_x_hat = grad_output * gamma
        grad_var = (-0.5 * (grad_x_hat * centered).sum(axis=axes, keepdims=True)) * std_inv**3
        grad_mean = (-grad_x_hat * std_inv).sum(axis=axes, keepdims=True) + grad_var * (
            -2.0 * centered.mean(axis=axes, keepdims=True)
        )
        return grad_x_hat * std_inv + grad_var * 2.0 * centered / m + grad_mean / m

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return tuple(input_shape)
