"""The embeddable serving engine: shared sessions behind micro-batchers.

:class:`ServingEngine` is the in-process core of ``repro serve`` — tests,
examples and the HTTP front end all drive the same object:

* per coding scheme, one shared
  :class:`~repro.engine.session.InferenceSession` (built lazily through the
  scheme registry, weight normalisation computed once and shared across
  schemes, exactly like the pipeline) behind one
  :class:`~repro.serving.scheduler.MicroBatcher`;
* the scheme cache is **LRU-bounded** (``ServingConfig.session_cache_size``):
  the least recently used scheme's batcher is drained and its session
  dropped when a new scheme would exceed the bound;
* :meth:`ServingEngine.classify` is non-blocking and returns a future of a
  :class:`~repro.serving.protocol.ClassifyResult`;
  :meth:`~ServingEngine.classify_sync` waits for it.

Because the engine serves each scheme through a single session guarded by
both the batcher's worker thread and the session's own single-flight lock,
float64 responses are bit-identical to running the same images through the
pipeline / a fresh session in one batch — micro-batching changes *when* work
happens, never *what* is computed.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.ann.model import Sequential
from repro.conversion.converter import ConversionConfig
from repro.conversion.normalization import NormalizationResult, normalize_weights
from repro.core.hybrid import HybridCodingScheme
from repro.engine.session import InferenceSession
from repro.serving.metrics import ServerMetrics
from repro.serving.protocol import ClassifyResult, parse_image, scheme_listing
from repro.serving.scheduler import BatcherClosedError, BatchInfo, MicroBatcher
from repro.snn.network import SimulationConfig
from repro.utils.config import FrozenConfig, validate_positive
from repro.utils.logging import get_logger

logger = get_logger("serving.engine")


@dataclass(frozen=True)
class ServingConfig(FrozenConfig):
    """Knobs of one serving engine.

    Attributes
    ----------
    max_batch_size:
        Largest micro-batch the scheduler coalesces (flush trigger #1).
    max_wait_ms:
        Longest a non-full batch waits for company (flush trigger #2).
    max_queue:
        Admission-control bound per scheme queue; submissions beyond it are
        rejected (HTTP 429).
    time_steps:
        Simulation horizon every request is answered with.
    dtype:
        Simulation precision (``None`` = project policy, float32; float64
        answers are bit-identical to the batch pipeline).
    backend:
        Compute backend for every served simulation (a registered
        :mod:`repro.backends` name; ``None`` = the backend policy default).
    early_exit_patience:
        Optional converged-image early exit (see
        :class:`~repro.snn.network.SimulationConfig`).
    session_cache_size:
        Number of per-scheme sessions kept alive (LRU eviction beyond it).
    calibration_images:
        Training images used for the shared weight normalisation.
    request_timeout_s:
        How long synchronous waits (``classify_sync``, HTTP) block before
        giving up on a future.
    seed:
        Seed forwarded to conversion and simulation.
    """

    max_batch_size: int = 8
    max_wait_ms: float = 5.0
    max_queue: int = 64
    time_steps: int = 100
    dtype: Optional[str] = None
    backend: Optional[str] = None
    early_exit_patience: Optional[int] = None
    session_cache_size: int = 4
    calibration_images: int = 128
    request_timeout_s: float = 60.0
    seed: int = 0
    conversion: ConversionConfig = field(default_factory=ConversionConfig)

    def __post_init__(self) -> None:
        validate_positive("max_batch_size", self.max_batch_size)
        validate_positive("max_queue", self.max_queue)
        validate_positive("time_steps", self.time_steps)
        validate_positive("session_cache_size", self.session_cache_size)
        validate_positive("calibration_images", self.calibration_images)
        if self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.early_exit_patience is not None:
            validate_positive("early_exit_patience", self.early_exit_patience)
        if self.backend is not None:
            from repro.backends import validate_backend_name

            validate_backend_name(self.backend)


class _SchemeServer:
    """One scheme's shared session plus the batcher feeding it."""

    def __init__(
        self, engine: "ServingEngine", scheme: HybridCodingScheme
    ) -> None:
        config = engine.config
        self.scheme = scheme
        self.session = InferenceSession.from_model(
            engine.model,
            scheme,
            config=SimulationConfig(
                time_steps=config.time_steps,
                record_outputs_every=config.time_steps,  # final scores only
                seed=config.seed,
                dtype=config.dtype,
                backend=config.backend,
                early_exit_patience=config.early_exit_patience,
            ),
            conversion=config.conversion,
            normalization=engine.normalization,
            seed=config.seed,
        )
        self.batcher = MicroBatcher(
            self._run_batch,
            max_batch_size=config.max_batch_size,
            max_wait_ms=config.max_wait_ms,
            max_queue=config.max_queue,
            metrics=engine.metrics,
            name=scheme.notation,
        )

    def _run_batch(
        self, payloads: List[np.ndarray], info: BatchInfo
    ) -> List[ClassifyResult]:
        """Simulate one coalesced batch and split it into per-request results."""
        started = time.monotonic()
        result = self.session.run(np.stack(payloads))
        batch_ms = (time.monotonic() - started) * 1000.0
        scores = result.final_outputs
        predictions = scores.argmax(axis=1)
        frozen = result.frozen_at
        return [
            ClassifyResult(
                prediction=int(predictions[i]),
                scores=scores[i].tolist(),
                scheme=self.scheme.notation,
                frozen_at=None
                if frozen is None or frozen[i] < 0
                else int(frozen[i]),
                batch_size=info.size,
                queue_ms=info.queue_ms[i],
                batch_ms=batch_ms,
                time_steps=result.time_steps,
            )
            for i in range(len(payloads))
        ]

    def close(self) -> None:
        self.batcher.close()


class ServingEngine:
    """Serve classify requests for one model across registered schemes.

    Parameters
    ----------
    model:
        The trained :class:`~repro.ann.model.Sequential` ANN to convert.
    calibration_x:
        Training images for the shared data-based weight normalisation
        (every scheme sees identical weights, as in the paper).
    config:
        Serving knobs (see :class:`ServingConfig`).
    normalization:
        Optional precomputed normalisation (skips ``calibration_x``).
    """

    def __init__(
        self,
        model: Sequential,
        calibration_x: Optional[np.ndarray] = None,
        config: Optional[ServingConfig] = None,
        *,
        normalization: Optional[NormalizationResult] = None,
    ) -> None:
        if calibration_x is None and normalization is None:
            raise ValueError("provide calibration_x or a precomputed normalization")
        self.model = model
        self.config = config or ServingConfig()
        self.metrics = ServerMetrics()
        self._calibration_x = calibration_x
        self._normalization = normalization
        self._servers: "OrderedDict[str, _SchemeServer]" = OrderedDict()
        self._lock = threading.RLock()
        self._closed = False
        self.input_shape = tuple(model.input_shape)

    # -- shared conversion state ------------------------------------------
    @property
    def normalization(self) -> NormalizationResult:
        """Weight normalisation shared by every scheme (computed once)."""
        with self._lock:
            if self._normalization is None:
                conversion = self.config.conversion
                calibration = self._calibration_x[: self.config.calibration_images]
                self._normalization = normalize_weights(
                    self.model,
                    calibration_x=calibration,
                    percentile=conversion.percentile,
                    method=conversion.normalization,
                )
            return self._normalization

    # -- scheme servers (lazy build, LRU-bounded) --------------------------
    def _resolve_scheme(self, scheme: object) -> HybridCodingScheme:
        if isinstance(scheme, HybridCodingScheme):
            return scheme
        return HybridCodingScheme.from_notation(str(scheme))

    def _scheme_server(self, scheme: object) -> _SchemeServer:
        resolved = self._resolve_scheme(scheme)
        key = resolved.notation
        evicted: Optional[_SchemeServer] = None
        with self._lock:
            if self._closed:
                raise RuntimeError("serving engine is closed")
            server = self._servers.get(key)
            if server is not None:
                self._servers.move_to_end(key)
                return server
            self.normalization  # noqa: B018 - force the one-time computation
            logger.info("building session for scheme %s", key)
            server = _SchemeServer(self, resolved)
            self._servers[key] = server
            if len(self._servers) > self.config.session_cache_size:
                old_key, evicted = self._servers.popitem(last=False)
                logger.info("evicting LRU scheme session %s", old_key)
        if evicted is not None:
            # drain outside the lock: eviction must not block new submissions
            evicted.close()
        return server

    def warm(self, scheme: object) -> None:
        """Pre-build the session for ``scheme`` (conversion + plan)."""
        self._scheme_server(scheme)

    def loaded_schemes(self) -> List[str]:
        """Notations with a live session, most recently used last."""
        with self._lock:
            return list(self._servers)

    # -- request path ------------------------------------------------------
    def classify(
        self, image: object, scheme: object = "phase-burst"
    ) -> "Future[ClassifyResult]":
        """Submit one image; returns a future of its :class:`ClassifyResult`.

        Raises :class:`~repro.core.registry.UnknownCodingError` for an
        unregistered scheme, :class:`ValueError` for a malformed image and
        :class:`~repro.serving.scheduler.QueueFullError` when admission
        control rejects the request.
        """
        payload = parse_image(image, self.input_shape)
        # an LRU eviction can close the batcher between lookup and submit
        # (eviction drains outside the engine lock); the evicted entry is
        # already out of the cache, so retrying rebuilds the session
        for _ in range(3):
            try:
                return self._scheme_server(scheme).batcher.submit(payload)
            except BatcherClosedError:
                continue
        return self._scheme_server(scheme).batcher.submit(payload)

    def classify_sync(
        self,
        image: object,
        scheme: object = "phase-burst",
        timeout: Optional[float] = None,
    ) -> ClassifyResult:
        """Blocking variant of :meth:`classify`."""
        future = self.classify(image, scheme)
        return future.result(
            timeout if timeout is not None else self.config.request_timeout_s
        )

    # -- introspection -----------------------------------------------------
    def queue_depth(self) -> int:
        """Requests currently queued across every scheme batcher."""
        with self._lock:
            return sum(server.batcher.queue_depth for server in self._servers.values())

    def stats(self) -> Dict[str, object]:
        """Metrics snapshot plus per-session serving counters (``/metrics``)."""
        with self._lock:
            sessions = {
                key: {
                    "batches_served": server.session.batches_served,
                    "images_served": server.session.images_served,
                    "queue_depth": server.batcher.queue_depth,
                }
                for key, server in self._servers.items()
            }
        snapshot = self.metrics.snapshot(queue_depth=self.queue_depth())
        snapshot["sessions"] = sessions
        snapshot["config"] = {
            "max_batch_size": self.config.max_batch_size,
            "max_wait_ms": self.config.max_wait_ms,
            "max_queue": self.config.max_queue,
            "time_steps": self.config.time_steps,
            "session_cache_size": self.config.session_cache_size,
        }
        return snapshot

    def schemes(self) -> Dict[str, object]:
        """Registry listing served at ``/v1/schemes`` (shared with the CLI)."""
        return scheme_listing()

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Graceful drain: every batcher flushes its queue, futures resolve."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            servers = list(self._servers.values())
        for server in servers:
            server.close()
        logger.info(
            "serving engine drained (%d requests served)", self.metrics.requests_total
        )

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
