"""Perf benchmark: engine throughput and end-to-end speedup vs the seed.

Writes ``benchmarks/results/BENCH_perf.json`` with per-component timings, the
end-to-end Table 2 VGG measurement, the speedup against the recorded seed
baseline (``seed_baseline.json``), and a float32/float64 equivalence check.

Run it alone with ``pytest benchmarks/perf -q`` (the perf smoke target) or
deselect it with ``-m "not perf"``.  ``REPRO_BENCH_PERF_FULL=1`` additionally
times the full five-method Table 2 block.  The scale knobs are the usual
``REPRO_BENCH_TIME_STEPS`` / ``REPRO_BENCH_NUM_IMAGES`` /
``REPRO_BENCH_SAMPLES_PER_CLASS``; at the default scale the measurement is
directly comparable to the committed seed baseline.
"""

import numpy as np
import pytest

import perf_cases
from repro.core.hybrid import HybridCodingScheme
from repro.utils.dtypes import simulation_dtype, simulation_precision
from repro.utils.timing import write_bench_json

pytestmark = pytest.mark.perf

BENCH_PERF_PATH = perf_cases.HERE.parent / "results" / "BENCH_perf.json"

#: regression floor for the end-to-end speedup vs the recorded seed baseline
#: (the zero-allocation engine lands at ~2.5x on the recording machine; the
#: floor is lower to absorb machine noise without letting a real regression by)
MIN_END_TO_END_SPEEDUP = 1.5


@pytest.fixture(scope="module")
def perf_report():
    report = {
        "description": "engine perf report (components + end-to-end Table 2 VGG)",
        "dtype_default": str(simulation_dtype()),
        "scale": perf_cases.current_scale(),
        "components": {},
        "end_to_end": {},
        "equivalence": {},
    }
    yield report
    write_bench_json(BENCH_PERF_PATH, report)
    print(f"\n[BENCH_perf written to {BENCH_PERF_PATH}]")


def test_component_throughput(perf_report):
    timings = perf_cases.component_timings(repeats=5)
    perf_report["components"] = {name: t.to_dict() for name, t in timings.items()}
    for name, timing in timings.items():
        assert timing.best_seconds < 1.0, f"{name} is pathologically slow"


def test_end_to_end_vgg_speedup(perf_report, cifar10_vgg_workload):
    pipeline = perf_cases.build_vgg_pipeline(cifar10_vgg_workload)
    perf_cases.time_vgg_scheme_run(pipeline)  # warm run (plans, BLAS threads)
    seconds, run = perf_cases.time_vgg_scheme_run(pipeline)

    baseline = perf_cases.load_seed_baseline()
    comparable = perf_cases.baseline_is_comparable(baseline)
    entry = {
        "vgg_phase_burst_run_seconds": seconds,
        "vgg_phase_burst_accuracy": run.accuracy,
        "vgg_phase_burst_total_spikes": run.total_spikes,
        "comparable_to_baseline": comparable,
    }
    if baseline is not None:
        entry["seed_baseline_seconds"] = baseline["vgg_phase_burst_run_seconds"]
        entry["speedup_vs_seed"] = baseline["vgg_phase_burst_run_seconds"] / seconds
    perf_report["end_to_end"].update(entry)

    if perf_cases.PERF_FULL:
        block_seconds, methods = perf_cases.time_table2_block(cifar10_vgg_workload)
        perf_report["end_to_end"]["table2_vgg_block_seconds"] = block_seconds
        perf_report["end_to_end"]["table2_vgg_block_methods"] = methods
        if baseline is not None and "table2_vgg_block_seconds" in baseline:
            perf_report["end_to_end"]["table2_block_speedup_vs_seed"] = (
                baseline["table2_vgg_block_seconds"] / block_seconds
            )

    if comparable:
        # same scale as the recorded seed baseline: the zero-allocation engine
        # must be decisively faster (recorded at ~2.5x; floor absorbs noise)
        assert entry["speedup_vs_seed"] >= MIN_END_TO_END_SPEEDUP, (
            f"end-to-end speedup {entry['speedup_vs_seed']:.2f}x fell below "
            f"{MIN_END_TO_END_SPEEDUP}x vs the seed baseline"
        )


def test_float64_equivalence_on_vgg(perf_report, cifar10_vgg_workload):
    """The float64 opt-in classifies identically to the float32 default on the
    Table 2 VGG workload (and both match the recorded accuracy)."""
    pipeline = perf_cases.build_vgg_pipeline(cifar10_vgg_workload)
    scheme = HybridCodingScheme.from_notation("phase-burst", v_th=0.125)
    run32 = pipeline.run_scheme(scheme)
    with simulation_precision("float64"):
        run64 = pipeline.run_scheme(scheme)
    agree = bool(
        np.array_equal(
            run32.outputs_final.argmax(axis=1), run64.outputs_final.argmax(axis=1)
        )
    )
    spike_gap = abs(run32.total_spikes - run64.total_spikes) / max(run64.total_spikes, 1)
    perf_report["equivalence"] = {
        "float32_float64_predictions_agree": agree,
        "float32_total_spikes": run32.total_spikes,
        "float64_total_spikes": run64.total_spikes,
        "relative_spike_gap": spike_gap,
    }
    baseline = perf_cases.load_seed_baseline()
    if perf_cases.baseline_is_comparable(baseline):
        # float64 reproduces the seed engine exactly, spike for spike
        assert run64.total_spikes == baseline["vgg_phase_burst_total_spikes"]
        assert run64.accuracy == pytest.approx(baseline["vgg_phase_burst_accuracy"])
    assert agree
    assert spike_gap < 0.01
