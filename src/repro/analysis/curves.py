"""Inference-curve analysis: latency and spikes to reach a target accuracy.

Fig. 3 of the paper reports, for several target accuracies, the number of
time steps (latency) and the number of spikes each coding scheme needs to
reach the target; Fig. 4 shows the full accuracy-vs-time-step curves.  These
helpers turn a recorded accuracy curve and cumulative spike counts into those
quantities.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np


def target_accuracies(dnn_accuracy: float, fractions: Sequence[float] = (0.995, 0.99, 0.95)) -> Tuple[float, ...]:
    """Target accuracies expressed as fractions of the DNN's accuracy.

    The paper uses absolute targets (91.0%, 90.49%, 86.83%) for a DNN at
    91.41%; those correspond approximately to 99.5%, 99% and 95% of the DNN
    accuracy, which is how we parameterise them so the same harness works for
    the synthetic datasets.
    """
    if not 0.0 < dnn_accuracy <= 1.0:
        raise ValueError(f"dnn_accuracy must be in (0, 1], got {dnn_accuracy}")
    return tuple(float(dnn_accuracy * fraction) for fraction in fractions)


def latency_to_target(
    accuracy_curve: np.ndarray,
    recorded_steps: np.ndarray,
    target: float,
    sustained: bool = False,
) -> Optional[int]:
    """First recorded time step at which the accuracy reaches ``target``.

    Parameters
    ----------
    accuracy_curve:
        Accuracy at each recorded step, shape ``(R,)``.
    recorded_steps:
        The 1-based time steps corresponding to the curve entries.
    target:
        Target accuracy in ``[0, 1]``.
    sustained:
        If True, require the accuracy to stay at or above the target for all
        later recorded steps (a stricter, less noisy criterion).

    Returns
    -------
    The latency in time steps, or ``None`` if the target is never reached
    (the paper marks such configurations as failures).
    """
    accuracy_curve = np.asarray(accuracy_curve, dtype=np.float64)
    recorded_steps = np.asarray(recorded_steps)
    if accuracy_curve.shape != recorded_steps.shape:
        raise ValueError(
            f"accuracy_curve and recorded_steps must align, got shapes "
            f"{accuracy_curve.shape} vs {recorded_steps.shape}"
        )
    if not 0.0 <= target <= 1.0:
        raise ValueError(f"target must be in [0, 1], got {target}")
    reached = accuracy_curve >= target
    if sustained:
        # A step counts only if every later step also reaches the target.
        reached = np.logical_and.accumulate(reached[::-1])[::-1]
    indices = np.flatnonzero(reached)
    if indices.size == 0:
        return None
    return int(recorded_steps[indices[0]])


def spikes_to_target(
    accuracy_curve: np.ndarray,
    recorded_steps: np.ndarray,
    cumulative_spikes: np.ndarray,
    target: float,
    sustained: bool = False,
) -> Optional[float]:
    """Number of spikes emitted up to the step at which ``target`` is reached.

    ``cumulative_spikes`` must give the cumulative network-wide spike count at
    every simulation step (1-based indexing by step, i.e. entry ``t-1`` is the
    count after step ``t``).  Returns ``None`` if the target is never reached.
    """
    latency = latency_to_target(accuracy_curve, recorded_steps, target, sustained=sustained)
    if latency is None:
        return None
    cumulative_spikes = np.asarray(cumulative_spikes, dtype=np.float64)
    if cumulative_spikes.size == 0:
        return 0.0
    index = min(latency, cumulative_spikes.size) - 1
    return float(cumulative_spikes[index])
