"""Random number generation helpers.

All stochastic components in the library accept either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None``.  Centralising the
conversion here keeps every experiment reproducible: the experiment harness
passes a single seed and derives independent child generators for data
generation, weight initialisation and spike encoding.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, or an existing generator
        (returned unchanged).

    Examples
    --------
    >>> rng = as_rng(0)
    >>> isinstance(rng, np.random.Generator)
    True
    >>> as_rng(rng) is rng
    True
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``.

    Uses :class:`numpy.random.SeedSequence` spawning so the children are
    independent of each other and of the parent stream.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's bit stream deterministically.
        child_seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in child_seeds]
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


class RngMixin:
    """Mixin giving a class a lazily constructed ``rng`` attribute.

    Classes using the mixin call ``self._init_rng(seed)`` in ``__init__`` and
    afterwards use ``self.rng`` for all sampling.
    """

    _rng: Optional[np.random.Generator] = None

    def _init_rng(self, seed: SeedLike = None) -> None:
        self._rng = as_rng(seed)

    @property
    def rng(self) -> np.random.Generator:
        """The generator backing this object (created on first access)."""
        if self._rng is None:
            self._rng = as_rng(None)
        return self._rng

    def reseed(self, seed: SeedLike) -> None:
        """Replace the generator, e.g. to replay a stochastic simulation."""
        self._rng = as_rng(seed)
