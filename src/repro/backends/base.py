"""The :class:`KernelBackend` interface: every hot-path primitive in one seam.

The simulation engine's per-step work decomposes into a small set of kernel
primitives — buffer allocation, GEMM, gathers over active features/channels,
im2col / direct-convolution plans, slab pooling, and the elementwise
integrate-and-fire / burst-threshold updates.  A backend implements those
primitives; the layers (:mod:`repro.snn.layers`), neuron states
(:mod:`repro.snn.neurons`) and threshold dynamics
(:mod:`repro.snn.thresholds`) orchestrate *which* primitive runs when, but
never call a kernel library directly.

Contracts
---------
* Every ``out=`` parameter is a preallocated buffer owned by the caller; the
  backend must write the result there and return it (the engine is
  zero-allocation in the steady state and backends must not break that).
* The **numpy reference backend** (:mod:`repro.backends.numpy_backend`) is the
  golden implementation: its float64 results are bit-identical to the seed
  engine (``benchmarks/perf/seed_reference.json``).  Other backends must agree
  at *prediction level* (identical argmax classifications, spike counts within
  the engine's documented float32 tolerance) but may differ in rounding.
* Backends are process-wide singletons resolved by name through
  :mod:`repro.backends.registry`; they must be safe to share across layers and
  sessions (they hold no per-run state — all state lives in caller buffers).

Availability
------------
A backend whose dependency is missing (e.g. ``torch``) registers anyway so it
shows up in ``repro --list-backends`` with a clean unavailability reason;
resolving it raises :class:`~repro.backends.registry.BackendUnavailableError`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class KernelBackend:
    """Abstract kernel backend — see the module docstring for the contracts.

    Subclasses implement every method; :class:`~repro.backends.numpy_backend.
    NumpyBackend` is the reference implementation and the base class of the
    in-tree variants.
    """

    #: registry name (set by the concrete backend)
    name = "base"
    #: one-line description shown by ``repro --list-backends``
    description = ""

    # -- availability ------------------------------------------------------
    def available(self) -> bool:
        """Whether the backend's dependencies are importable on this machine."""
        return True

    def availability_error(self) -> Optional[str]:
        """Human-readable reason when :meth:`available` is False."""
        return None

    # -- fused step programs -----------------------------------------------
    def compile_step_program(self, layer):
        """Compile ``layer``'s per-step kernel sequence into one fused
        :class:`~repro.backends.programs.StepProgram`, or return ``None``.

        ``None`` — the default — means "this backend only implements the
        unfused primitives"; the layer then composes them through its
        original multi-call step body.  The hook is therefore additive:
        third-party backends that predate fused programs keep working
        unchanged.  Implementations must only capture buffers owned by the
        layer/state/threshold objects at call time — the layer drops the
        program on ``reset``/``shrink_batch``/backend switch and asks again.
        """
        return None

    def compile_network_program(self, prepared):
        """Compile the *whole network step* over a prepared batch into one
        block-executing program (``run_block(t0, n)``), or return ``None``.

        ``None`` — the default — keeps the engine driving the per-layer
        programs step by step, so primitives-only third-party backends work
        unchanged.  ``prepared`` is a :class:`~repro.engine.plan.
        PreparedBatch`; the program may capture its records and the layers'
        per-batch buffers — the engine recompiles it after any mid-run
        ``shrink_batch``.  Implementations must preserve the engine loop's
        exact step semantics (see :class:`~repro.backends.programs.
        NetworkStepProgram`, the reference implementation).
        """
        return None

    # -- buffer allocation -------------------------------------------------
    def empty(self, shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        """Allocate an uninitialised buffer the engine will fill."""
        raise NotImplementedError

    def zeros(self, shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        """Allocate a zero-filled buffer."""
        raise NotImplementedError

    def fill(self, array: np.ndarray, value: float) -> np.ndarray:
        """Fill ``array`` with ``value`` in place and return it."""
        raise NotImplementedError

    # -- GEMM family -------------------------------------------------------
    def matmul(self, a: np.ndarray, b: np.ndarray, out: np.ndarray) -> np.ndarray:
        """``out = a @ b`` (the engine's dense propagation GEMM)."""
        raise NotImplementedError

    def add_inplace(self, target: np.ndarray, addend: np.ndarray) -> np.ndarray:
        """``target += addend`` (bias injection / accumulation), broadcasting."""
        raise NotImplementedError

    def scale(self, a: np.ndarray, scalar: float, out: np.ndarray) -> np.ndarray:
        """``out = a * scalar`` elementwise."""
        raise NotImplementedError

    def take(
        self, a: np.ndarray, indices: np.ndarray, axis: int, out: np.ndarray
    ) -> np.ndarray:
        """Gather ``indices`` along ``axis`` into ``out`` (the sparse paths'
        operand packing)."""
        raise NotImplementedError

    def take_flat(
        self, a: np.ndarray, flat_indices: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        """Gather from the flattened view of ``a`` (the max-pool winner read)."""
        raise NotImplementedError

    # -- activity scans (sparsity dispatch metrics) ------------------------
    def active_features(self, x: np.ndarray) -> np.ndarray:
        """Indices of the columns of a 2-D batch active anywhere in the batch."""
        raise NotImplementedError

    def active_channels(self, x: np.ndarray) -> np.ndarray:
        """Indices of the channels of an (N, C, H, W) batch carrying any spike."""
        raise NotImplementedError

    def count_nonzero(self, x: np.ndarray) -> int:
        """Exact number of nonzero elements (the measured-activity metric)."""
        raise NotImplementedError

    # -- convolution plans -------------------------------------------------
    def im2col_plan(
        self,
        batch_size: int,
        channels: int,
        height: int,
        width: int,
        kernel_h: int,
        kernel_w: int,
        stride: int,
        padding: int,
        dtype: np.dtype,
    ):
        """Build a cached unfold plan exposing ``fill(x) -> cols`` (the
        canonical conv/pool path; float64 results must be bit-identical to
        :func:`repro.ann.im2col.im2col`)."""
        raise NotImplementedError

    def direct_conv_plan(
        self,
        batch_size: int,
        channels: int,
        height: int,
        width: int,
        kernel: int,
        padding: int,
        out_channels: int,
        dtype: np.dtype,
    ):
        """Build a stride-1 direct-convolution plan exposing
        ``run(x, taps, bias, active_channels=None)`` (the float32 fast path)."""
        raise NotImplementedError

    # -- pooling kernels ---------------------------------------------------
    def avgpool2x2(self, incoming: np.ndarray, out: np.ndarray) -> np.ndarray:
        """2×2 / stride-2 average pooling over strided slab views, preserving
        the reference summation order (window columns (0,0), (0,1), (1,0),
        (1,1), then one divide)."""
        raise NotImplementedError

    def mean_columns(self, cols: np.ndarray, out_flat: np.ndarray) -> np.ndarray:
        """Row-wise mean of an unfolded column matrix (generic pooling)."""
        raise NotImplementedError

    def argmax_columns(self, cols: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Row-wise argmax of an unfolded column matrix (max-pool winners)."""
        raise NotImplementedError

    # -- integrate-and-fire neuron kernel ----------------------------------
    def if_step(
        self,
        v_mem: np.ndarray,
        z: np.ndarray,
        threshold: np.ndarray,
        spikes: np.ndarray,
        signals: np.ndarray,
        amplitudes: np.ndarray,
        subtract_reset: bool,
        v_rest: float,
        allow_negative: bool,
    ) -> int:
        """One fused membrane update (Eqs. 1–5): integrate ``z``, compare to
        ``threshold``, emit boolean ``spikes`` / exact 0.0-1.0 ``signals`` /
        weighted ``amplitudes``, apply the reset rule, and return the spike
        count.  All arrays are caller-owned buffers updated in place.
        """
        raise NotImplementedError

    # -- burst-threshold kernels (Eqs. 8–10) -------------------------------
    def burst_grow(
        self, g: np.ndarray, grown: np.ndarray, beta: float, ceiling: Optional[float]
    ) -> np.ndarray:
        """``grown = g * beta``, clamped to ``ceiling`` when given (overflow
        guard; ``None`` skips the provably-identity clamp pass)."""
        raise NotImplementedError

    def burst_cap(
        self,
        grown: np.ndarray,
        g: np.ndarray,
        spikes: np.ndarray,
        consecutive: np.ndarray,
        cons_scratch: np.ndarray,
        capped: np.ndarray,
        max_burst_length: int,
    ) -> None:
        """Stop the burst function growing past ``max_burst_length``
        consecutive spikes, updating the consecutive-spike counter in place."""
        raise NotImplementedError

    def burst_commit_signals(
        self,
        grown: np.ndarray,
        spike_signals: np.ndarray,
        silent_signal: np.ndarray,
        g: np.ndarray,
    ) -> None:
        """``g = spikes ? grown : 1`` via the exact 0.0/1.0 float spike
        rendering (the all-float fast path)."""
        raise NotImplementedError

    def burst_commit_bool(
        self,
        grown: np.ndarray,
        spikes: np.ndarray,
        silent: np.ndarray,
        g: np.ndarray,
    ) -> None:
        """``g = spikes ? grown : 1`` from the boolean spike array (fallback
        when no float rendering is available)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
