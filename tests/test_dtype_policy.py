"""Tests for the simulation dtype policy and cross-precision equivalence.

Three layers of guarantees:

* the policy plumbing itself (defaults, env var, override, context manager);
* float32 vs float64 simulations agree on predictions and (approximately) on
  spike counts for a trained CNN workload — the contract that makes float32 a
  safe default;
* the refactored engine's float64 outputs are **bit-identical** to the seed
  engine's, verified against the golden reference recorded before the
  zero-allocation rewrite (``benchmarks/perf/seed_reference.json``).
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.conversion.converter import convert_to_snn
from repro.core.hybrid import HybridCodingScheme
from repro.snn.network import SimulationConfig
from repro.utils.dtypes import (
    DEFAULT_SIMULATION_DTYPE,
    resolve_dtype,
    set_simulation_dtype,
    simulation_dtype,
    simulation_precision,
)

GOLDEN_PATH = Path(__file__).parent.parent / "benchmarks" / "perf" / "seed_reference.json"


class TestDtypePolicy:
    def test_default_is_float32(self):
        assert DEFAULT_SIMULATION_DTYPE == np.dtype(np.float32)
        assert simulation_dtype() == np.dtype(np.float32)

    def test_resolve_explicit_overrides_policy(self):
        assert resolve_dtype("float64") == np.dtype(np.float64)
        assert resolve_dtype(np.float64) == np.dtype(np.float64)
        assert resolve_dtype(None) == simulation_dtype()

    def test_aliases(self):
        assert resolve_dtype("f32") == np.dtype(np.float32)
        assert resolve_dtype("double") == np.dtype(np.float64)
        assert resolve_dtype("single") == np.dtype(np.float32)

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(ValueError):
            resolve_dtype("float16")
        with pytest.raises(ValueError):
            resolve_dtype("int32")

    def test_set_and_clear_override(self):
        try:
            assert set_simulation_dtype("float64") == np.dtype(np.float64)
            assert simulation_dtype() == np.dtype(np.float64)
        finally:
            set_simulation_dtype(None)
        assert simulation_dtype() == np.dtype(np.float32)

    def test_context_manager_restores(self):
        before = simulation_dtype()
        with simulation_precision("float64") as dtype:
            assert dtype == np.dtype(np.float64)
            assert simulation_dtype() == np.dtype(np.float64)
        assert simulation_dtype() == before

    def test_env_var_respected(self):
        os.environ["REPRO_SIM_DTYPE"] = "float64"
        try:
            assert simulation_dtype() == np.dtype(np.float64)
        finally:
            del os.environ["REPRO_SIM_DTYPE"]
        assert simulation_dtype() == np.dtype(np.float32)

    def test_simulation_config_validates_dtype(self):
        SimulationConfig(dtype="float64")
        SimulationConfig(dtype=None)
        with pytest.raises(ValueError):
            SimulationConfig(dtype="float16")


class TestFloat32Float64Equivalence:
    """float32 (default) and float64 (opt-in) runs of the same converted CNN
    must classify identically and emit near-identical spike counts."""

    @pytest.fixture(scope="class")
    def snn_and_data(self, trained_cnn, tiny_color_split):
        scheme = HybridCodingScheme.from_notation("real-burst", v_th=0.125)
        snn = convert_to_snn(
            trained_cnn,
            encoder=scheme.make_encoder(seed=0),
            threshold_factory=scheme.make_threshold_factory(),
            calibration_x=tiny_color_split.train.x[:24],
        )
        return snn, tiny_color_split.test.x[:10]

    def test_predictions_and_spikes_agree(self, snn_and_data):
        snn, x = snn_and_data
        r32 = snn.run(x, SimulationConfig(time_steps=60, dtype="float32"))
        r64 = snn.run(x, SimulationConfig(time_steps=60, dtype="float64"))
        assert r32.output_history.dtype == np.float32
        assert r64.output_history.dtype == np.float64
        assert np.array_equal(r32.predictions(), r64.predictions())
        s32, s64 = r32.total_spikes(), r64.total_spikes()
        assert s64 > 0
        # spike counts may differ by a handful of boundary crossings, not more
        assert abs(s32 - s64) <= max(5, 0.01 * s64)
        assert np.allclose(r32.final_outputs, r64.final_outputs, rtol=1e-3, atol=1e-3)

    def test_same_dtype_runs_are_deterministic(self, snn_and_data):
        snn, x = snn_and_data
        a = snn.run(x, SimulationConfig(time_steps=30, dtype="float32"))
        b = snn.run(x, SimulationConfig(time_steps=30, dtype="float32"))
        assert np.array_equal(a.output_history, b.output_history)
        assert a.total_spikes() == b.total_spikes()


@pytest.mark.skipif(not GOLDEN_PATH.exists(), reason="golden reference not recorded")
class TestGoldenFloat64Reference:
    """The refactored engine reproduces the seed engine's float64 outputs
    exactly (predictions, total spike counts and full-precision logits).

    Bit-identity to the seed is the **numpy reference backend's** contract
    (other backends are held to prediction-level agreement by
    ``tests/test_backends.py``), so the runs pin ``backend="numpy"`` — the
    guarantee must hold regardless of the process-wide backend default."""

    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(GOLDEN_PATH.read_text())

    def _run_case(self, case):
        from repro.backends import backend_scope
        from repro.experiments.sweep import make_pipeline
        from repro.experiments.workloads import build_workload

        with backend_scope("numpy"), simulation_precision("float64"):
            workload = build_workload(
                dataset=case["dataset"],
                model=case["model"],
                samples_per_class=case["samples_per_class"],
                epochs=case["epochs"],
                seed=0,
            )
            pipeline = make_pipeline(
                workload,
                time_steps=case["time_steps"],
                num_images=case["num_images"],
                batch_size=case["num_images"],
                seed=0,
            )
            for notation, expected in case["runs"].items():
                v_th = 0.125 if notation.endswith("burst") else None
                scheme = HybridCodingScheme.from_notation(notation, v_th=v_th)
                run = pipeline.run_scheme(scheme)
                assert run.outputs_final.dtype == np.float64
                assert run.outputs_final.argmax(axis=1).tolist() == expected["predictions"], notation
                assert run.total_spikes == expected["total_spikes"], notation
                assert np.array_equal(
                    run.outputs_final, np.asarray(expected["final_logits"], dtype=np.float64)
                ), f"{notation}: float64 logits drifted from the seed engine"

    def test_mnist_cnn_case_bit_exact(self, golden):
        case = next(c for c in golden["cases"] if c["name"] == "mnist-small_cnn")
        self._run_case(case)

    def test_cifar10_vgg_case_bit_exact(self, golden):
        case = next(c for c in golden["cases"] if c["name"] == "cifar10-vgg_small")
        self._run_case(case)
