"""Spike-train and inference analysis.

Implements every quantitative analysis the paper reports:

* inter-spike-interval histograms (Fig. 1 C1–C3) — :mod:`repro.analysis.isi`
* burst detection and burst-length composition vs ``v_th`` (Fig. 2) —
  :mod:`repro.analysis.burst_stats`
* firing rate (Eq. 11) and firing regularity (Eq. 12) scatter (Fig. 5) —
  :mod:`repro.analysis.firing`
* spiking density (Table 2) — :mod:`repro.analysis.density`
* inference curves, latency-to-target-accuracy and spikes-to-target
  (Fig. 3, Fig. 4, Table 1) — :mod:`repro.analysis.curves`
* consolidated per-run metrics — :mod:`repro.analysis.metrics`
"""

from repro.analysis.isi import inter_spike_intervals, isi_histogram, isi_per_neuron
from repro.analysis.burst_stats import (
    BurstStatistics,
    burst_lengths,
    burst_statistics,
    burst_composition,
)
from repro.analysis.firing import (
    FiringStatistics,
    firing_rate,
    firing_regularity,
    firing_statistics,
    mean_log_firing_rate,
)
from repro.analysis.density import spiking_density
from repro.analysis.curves import (
    latency_to_target,
    spikes_to_target,
    target_accuracies,
)
from repro.analysis.metrics import InferenceMetrics, compute_inference_metrics
from repro.analysis.information import (
    TransmissionSummary,
    TransmissionTrace,
    compare_codings,
    reconstruction_error,
    transmission_efficiency,
    transmission_trace,
)

__all__ = [
    "TransmissionSummary",
    "TransmissionTrace",
    "compare_codings",
    "reconstruction_error",
    "transmission_efficiency",
    "transmission_trace",
    "inter_spike_intervals",
    "isi_histogram",
    "isi_per_neuron",
    "BurstStatistics",
    "burst_lengths",
    "burst_statistics",
    "burst_composition",
    "FiringStatistics",
    "firing_rate",
    "firing_regularity",
    "firing_statistics",
    "mean_log_firing_rate",
    "spiking_density",
    "latency_to_target",
    "spikes_to_target",
    "target_accuracies",
    "InferenceMetrics",
    "compute_inference_metrics",
]
