"""Multi-layer perceptron builder.

MLPs are not used in the paper's headline results but are invaluable for fast
tests and for the quickstart example: they exercise the full
train → convert → spike pipeline in well under a second.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.ann.layers import Dense, Flatten, ReLU
from repro.ann.model import Sequential
from repro.utils.rng import SeedLike, spawn_rngs


def build_mlp(
    input_shape: Tuple[int, ...],
    hidden_sizes: Sequence[int],
    num_classes: int,
    use_bias: bool = True,
    seed: SeedLike = 0,
    name: str = "mlp",
) -> Sequential:
    """Build a ReLU MLP ``input → hidden_sizes... → num_classes``.

    Parameters
    ----------
    input_shape:
        Per-sample shape; image shapes are flattened automatically.
    hidden_sizes:
        Width of each hidden layer (each followed by ReLU).
    num_classes:
        Output dimensionality (logits).
    use_bias:
        Whether Dense layers carry biases (some conversion baselines drop them).
    """
    if num_classes <= 0:
        raise ValueError(f"num_classes must be positive, got {num_classes}")
    hidden_sizes = list(hidden_sizes)
    if any(h <= 0 for h in hidden_sizes):
        raise ValueError(f"hidden_sizes must be positive, got {hidden_sizes}")

    input_dim = int(np.prod(input_shape))
    rngs = spawn_rngs(seed, len(hidden_sizes) + 1)
    layers = []
    if len(input_shape) > 1:
        layers.append(Flatten(name="flatten"))
    previous = input_dim
    for index, width in enumerate(hidden_sizes):
        layers.append(
            Dense(previous, width, use_bias=use_bias, seed=rngs[index], name=f"dense_{index}")
        )
        layers.append(ReLU(name=f"relu_{index}"))
        previous = width
    layers.append(
        Dense(previous, num_classes, use_bias=use_bias, seed=rngs[-1], name="dense_out")
    )
    return Sequential(layers, input_shape=tuple(input_shape), name=name)
