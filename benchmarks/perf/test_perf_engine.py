"""Perf benchmark: engine throughput and end-to-end speedup vs the seed.

Writes ``benchmarks/results/BENCH_perf.json`` with per-component timings, the
end-to-end Table 2 VGG measurement, the speedup against the recorded seed
baseline (``seed_baseline.json``), and a float32/float64 equivalence check.

Run it alone with ``pytest benchmarks/perf -q`` (the perf smoke target) or
deselect it with ``-m "not perf"``.  ``REPRO_BENCH_PERF_FULL=1`` additionally
times the full five-method Table 2 block.  The scale knobs are the usual
``REPRO_BENCH_TIME_STEPS`` / ``REPRO_BENCH_NUM_IMAGES`` /
``REPRO_BENCH_SAMPLES_PER_CLASS``; at the default scale the measurement is
directly comparable to the committed seed baseline.
"""

import json
import subprocess

import numpy as np
import pytest

import perf_cases
from repro.backends import default_backend_name, fused_mode, fused_programs_enabled
from repro.core.hybrid import HybridCodingScheme
from repro.utils.dtypes import simulation_dtype, simulation_precision
from repro.utils.timing import load_bench_json, write_bench_json

pytestmark = pytest.mark.perf

BENCH_PERF_PATH = perf_cases.HERE.parent / "results" / "BENCH_perf.json"
BENCH_TRAJECTORY_PATH = perf_cases.HERE.parent / "results" / "BENCH_trajectory.json"

#: acceptance floor for the end-to-end speedup vs the recorded seed baseline
#: (PR 1's zero-allocation engine landed at ~2.4x; PR 2's sparsity-aware
#: propagation engine lands at ~4.4x on the recording machine)
MIN_END_TO_END_SPEEDUP = 4.0


def _git_revision() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=perf_cases.HERE,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def _append_trajectory(report: dict) -> None:
    """Record this run's end-to-end numbers in the cross-PR trajectory.

    Entries are keyed by ``(git_rev, scale, backend)``: re-running the
    benchmark at the same revision updates its row in place instead of
    accumulating duplicates, so the trajectory stays one row per measured
    revision per backend and per-backend speedups are tracked across PRs.
    """
    end_to_end = report.get("end_to_end", {})
    seconds = end_to_end.get("vgg_phase_burst_run_seconds")
    if seconds is None:
        return
    history = load_bench_json(BENCH_TRAJECTORY_PATH) or {"runs": []}
    entry = {
        "git_rev": _git_revision(),
        "scale": report["scale"],
        "backend": report.get("backend", "numpy"),
        "seconds": seconds,
        "speedup_vs_seed": end_to_end.get("speedup_vs_seed"),
        # which step-loop path measured the run; additive field — the row key
        # stays (git_rev, scale, backend) so existing rows keep matching
        "fused": report.get("fused", True),
        "fused_mode": report.get("fused_mode", "network"),
    }
    runs = history.setdefault("runs", [])
    for index, run in enumerate(runs):
        if (
            run.get("git_rev") == entry["git_rev"]
            and run.get("scale") == entry["scale"]
            and run.get("backend", "numpy") == entry["backend"]
        ):
            runs[index] = entry
            break
    else:
        runs.append(entry)
    BENCH_TRAJECTORY_PATH.parent.mkdir(parents=True, exist_ok=True)
    BENCH_TRAJECTORY_PATH.write_text(json.dumps(history, indent=2) + "\n")


@pytest.fixture(scope="module")
def perf_report():
    report = {
        "description": "engine perf report (components + end-to-end Table 2 VGG)",
        "dtype_default": str(simulation_dtype()),
        "backend": default_backend_name(),
        "fused": fused_programs_enabled(),
        "fused_mode": fused_mode(),
        "scale": perf_cases.current_scale(),
        "components": {},
        "end_to_end": {},
        "equivalence": {},
        "early_exit_sharding": {},
    }
    yield report
    write_bench_json(BENCH_PERF_PATH, report)
    _append_trajectory(report)
    print(f"\n[BENCH_perf written to {BENCH_PERF_PATH}; trajectory appended to "
          f"{BENCH_TRAJECTORY_PATH}]")


def test_component_throughput(perf_report):
    timings = perf_cases.component_timings(repeats=5)
    perf_report["components"] = {name: t.to_dict() for name, t in timings.items()}
    for name, timing in timings.items():
        assert timing.best_seconds < 1.0, f"{name} is pathologically slow"


def test_end_to_end_vgg_speedup(perf_report, cifar10_vgg_workload):
    pipeline = perf_cases.build_vgg_pipeline(cifar10_vgg_workload)
    # protocol: discarded warm runs (the first builds the scheme's SNN, plans
    # and calibrations; the rest settle the allocator / cpu into steady
    # state — this measures steady-state serving, not cold start), then
    # best-of-5 timed runs, mirroring the component micro-benchmarks.  The
    # seed baseline was a single post-warm run of an engine without reusable
    # plans, so its cold/warm gap was negligible; the cold-start figure is
    # recorded alongside for transparency.
    cold_seconds, _ = perf_cases.time_vgg_scheme_run(pipeline)
    perf_cases.time_vgg_scheme_run(pipeline, repeats=2)
    seconds, run = perf_cases.time_vgg_scheme_run(pipeline, repeats=5)

    baseline = perf_cases.load_seed_baseline()
    comparable = perf_cases.baseline_is_comparable(baseline)
    entry = {
        "vgg_phase_burst_run_seconds": seconds,
        "vgg_phase_burst_cold_run_seconds": cold_seconds,
        "timing_protocol": "best-of-5 after three warm runs (cached SNN)",
        "vgg_phase_burst_accuracy": run.accuracy,
        "vgg_phase_burst_total_spikes": run.total_spikes,
        "comparable_to_baseline": comparable,
    }
    if baseline is not None:
        entry["seed_baseline_seconds"] = baseline["vgg_phase_burst_run_seconds"]
        entry["speedup_vs_seed"] = baseline["vgg_phase_burst_run_seconds"] / seconds
    perf_report["end_to_end"].update(entry)

    if perf_cases.PERF_FULL:
        block_seconds, methods = perf_cases.time_table2_block(cifar10_vgg_workload)
        perf_report["end_to_end"]["table2_vgg_block_seconds"] = block_seconds
        perf_report["end_to_end"]["table2_vgg_block_methods"] = methods
        if baseline is not None and "table2_vgg_block_seconds" in baseline:
            perf_report["end_to_end"]["table2_block_speedup_vs_seed"] = (
                baseline["table2_vgg_block_seconds"] / block_seconds
            )

    if comparable:
        # same scale as the recorded seed baseline: the zero-allocation engine
        # must be decisively faster (recorded at ~2.5x; floor absorbs noise)
        assert entry["speedup_vs_seed"] >= MIN_END_TO_END_SPEEDUP, (
            f"end-to-end speedup {entry['speedup_vs_seed']:.2f}x fell below "
            f"{MIN_END_TO_END_SPEEDUP}x vs the seed baseline"
        )


def test_no_perf_drift_vs_trajectory(perf_report):
    """CI guard: the measured speedup must stay within 5% of the last
    recorded ``BENCH_trajectory.json`` row for the same (scale, backend).

    This is the tripwire for the 4.85x → 4.67x slide the backend-seam PRs
    caused: any PR that silently costs more than noise fails here instead of
    merging.  Rows from the current revision are skipped (re-running the
    benchmark at one revision must compare against the *previous* PR, not
    against itself).
    """
    current = perf_report["end_to_end"].get("speedup_vs_seed")
    if current is None:
        pytest.skip("no seed-comparable end-to-end measurement in this run")
    history = load_bench_json(BENCH_TRAJECTORY_PATH) or {}
    rev = _git_revision()
    previous = None
    for run in history.get("runs", []):
        if (
            run.get("scale") == perf_report["scale"]
            and run.get("backend", "numpy") == perf_report["backend"]
            and run.get("git_rev") != rev
            and run.get("speedup_vs_seed") is not None
        ):
            previous = run  # rows are appended chronologically: keep the last
    if previous is None:
        pytest.skip("no prior trajectory row at this (scale, backend)")
    floor = 0.95 * previous["speedup_vs_seed"]
    assert current >= floor, (
        f"end-to-end speedup regressed >5%: {current:.2f}x vs "
        f"{previous['speedup_vs_seed']:.2f}x recorded at {previous['git_rev']} "
        f"(floor {floor:.2f}x)"
    )


def test_early_exit_sharded_matches_dense(perf_report, cifar10_vgg_workload):
    """Converged-image early exit plus sharded evaluation reproduces the
    sequential dense run's Table 2 numbers within the reported tolerances.

    On the 1-CPU bench machine the shard request falls back to in-process
    execution (guarded, logged) and the parallel-speedup assertion is
    skipped; the statistical assertions run everywhere.
    """
    import os
    import time

    from repro.core.pipeline import PipelineConfig, SNNInferencePipeline

    scale = perf_cases.current_scale()
    pipeline = perf_cases.build_vgg_pipeline(cifar10_vgg_workload)
    scheme = HybridCodingScheme.from_notation("phase-burst", v_th=0.125)
    dense_start = time.perf_counter()
    dense_run = pipeline.run_scheme(scheme)
    dense_seconds = time.perf_counter() - dense_start

    fast_pipeline = SNNInferencePipeline(
        cifar10_vgg_workload.model,
        cifar10_vgg_workload.data,
        PipelineConfig(
            time_steps=scale["time_steps"],
            batch_size=8,
            max_test_images=scale["num_images"],
            seed=0,
            early_exit_patience=25,
            num_workers=2,
        ),
    )
    start = time.perf_counter()
    fast_run = fast_pipeline.run_scheme(scheme, keep_batch_results=True)
    fast_seconds = time.perf_counter() - start

    # frozen images stop spiking, so the Table 2 density over the *full* time
    # budget shrinks by design; the apples-to-apples comparison is the
    # per-active-step density, using each image's effective latency
    time_steps = scale["time_steps"]
    effective_steps = 0.0
    for result in fast_run.batch_results:
        frozen_at = result.frozen_at
        assert frozen_at is not None
        effective_steps += float(
            np.where(frozen_at > 0, frozen_at, time_steps).sum()
        )
    mean_latency = effective_steps / fast_run.num_images
    dense_density = dense_run.metrics().density
    fast_density_full = fast_run.metrics().density
    fast_density_active = (
        fast_run.spikes_per_image / (fast_run.num_neurons * mean_latency)
    )
    entry = {
        "dense_seconds_single_shot": dense_seconds,
        "dense_accuracy": dense_run.accuracy,
        "early_exit_accuracy": fast_run.accuracy,
        "dense_density": dense_density,
        "early_exit_density_full_window": fast_density_full,
        "early_exit_density_active_window": fast_density_active,
        "early_exit_mean_latency": mean_latency,
        "dense_spikes": dense_run.total_spikes,
        "early_exit_spikes": fast_run.total_spikes,
        "early_exit_sharded_seconds": fast_seconds,
        "cpu_count": os.cpu_count(),
    }
    perf_report["early_exit_sharding"].update(entry)

    # Table 2 tolerances: accuracy within one image; the per-active-step
    # density within the convergence-transient factor of the dense average
    # (activity is front-loaded, so the truncated window runs a bit hotter);
    # total spikes can only shrink
    assert abs(fast_run.accuracy - dense_run.accuracy) <= 1.0 / dense_run.num_images + 1e-9
    assert 0.5 * dense_density <= fast_density_active <= 2.0 * dense_density
    assert fast_run.total_spikes <= dense_run.total_spikes

    baseline = perf_cases.load_seed_baseline()
    if (os.cpu_count() or 1) > 1 and perf_cases.baseline_is_comparable(baseline):
        # real parallel machines at the full bench scale: early exit alone
        # already shrinks the work, so the sharded early-exit run must beat
        # the (same-protocol, single-shot) dense sequential run.  Skipped on
        # the 1-CPU bench machine (the shard request falls back in-process)
        # and at reduced CI scales, where fixed worker start-up/conversion
        # costs would dominate the little work there is to save.
        assert fast_seconds < dense_seconds


def test_float64_equivalence_on_vgg(perf_report, cifar10_vgg_workload):
    """The float64 opt-in classifies identically to the float32 default on the
    Table 2 VGG workload (and both match the recorded accuracy)."""
    pipeline = perf_cases.build_vgg_pipeline(cifar10_vgg_workload)
    scheme = HybridCodingScheme.from_notation("phase-burst", v_th=0.125)
    run32 = pipeline.run_scheme(scheme)
    with simulation_precision("float64"):
        run64 = pipeline.run_scheme(scheme)
    agree = bool(
        np.array_equal(
            run32.outputs_final.argmax(axis=1), run64.outputs_final.argmax(axis=1)
        )
    )
    spike_gap = abs(run32.total_spikes - run64.total_spikes) / max(run64.total_spikes, 1)
    perf_report["equivalence"] = {
        "float32_float64_predictions_agree": agree,
        "float32_total_spikes": run32.total_spikes,
        "float64_total_spikes": run64.total_spikes,
        "relative_spike_gap": spike_gap,
    }
    baseline = perf_cases.load_seed_baseline()
    if perf_cases.baseline_is_comparable(baseline):
        # float64 reproduces the seed engine exactly, spike for spike
        assert run64.total_spikes == baseline["vgg_phase_burst_total_spikes"]
        assert run64.accuracy == pytest.approx(baseline["vgg_phase_burst_accuracy"])
    assert agree
    assert spike_gap < 0.01
