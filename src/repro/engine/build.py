"""Build stage: turn a trained ANN into a converted spiking network.

The build stage is pure construction — it owns no simulation state.  Given a
trained :class:`~repro.ann.model.Sequential` and a
:class:`~repro.core.hybrid.HybridCodingScheme` it

1. resolves the scheme's input encoder and hidden-layer threshold dynamics
   through the coding registry (:mod:`repro.core.registry`),
2. normalises the weights (or reuses a shared
   :class:`~repro.conversion.normalization.NormalizationResult` so every
   scheme sees identical weights, as in the paper), and
3. runs the DNN→SNN converter.

The resulting :class:`~repro.snn.network.SpikingNetwork` keeps float64 weight
masters; casting to the simulation dtype, plan construction and buffer
preallocation are the *plan* stage's job (:mod:`repro.engine.plan`), and the
step loop is the *run* stage's (:mod:`repro.engine.run`).  The same split
applies to the compute backend (:mod:`repro.backends`): a built network is
backend-agnostic — ``SimulationConfig.backend`` is resolved at plan time and
bound to the layers at each reset, so one build can serve runs on different
backends.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.ann.model import Sequential
from repro.conversion.converter import ConversionConfig, convert_to_snn
from repro.conversion.normalization import NormalizationResult
from repro.core.hybrid import HybridCodingScheme
from repro.snn.network import SpikingNetwork
from repro.utils.rng import SeedLike


def build_network(
    model: Sequential,
    scheme: HybridCodingScheme,
    *,
    conversion: Optional[ConversionConfig] = None,
    normalization: Optional[NormalizationResult] = None,
    calibration_x: Optional[np.ndarray] = None,
    seed: SeedLike = None,
    input_shape: Optional[Tuple[int, ...]] = None,
    name: Optional[str] = None,
) -> SpikingNetwork:
    """Convert ``model`` into a spiking network configured for ``scheme``.

    Parameters
    ----------
    model:
        The trained ANN.
    scheme:
        The coding scheme; its encoder / threshold factories are resolved
        through the registry, so registered extensions (e.g. TTFS) convert
        without any engine changes.
    conversion:
        DNN→SNN conversion options (defaults to :class:`ConversionConfig`).
    normalization:
        Pre-computed weight normalisation, e.g. shared across schemes.
        When ``None``, normalisation is computed from ``calibration_x``.
    calibration_x:
        Calibration inputs for data-based normalisation (ignored when
        ``normalization`` is given).
    seed:
        Seed forwarded to stochastic encoders (Poisson rate input coding).
    """
    encoder = scheme.make_encoder(seed=seed)
    return convert_to_snn(
        model,
        encoder=encoder,
        threshold_factory=scheme.make_threshold_factory(),
        config=conversion,
        calibration_x=calibration_x,
        normalization_result=normalization,
        input_shape=input_shape,
        name=name or f"{model.name}-{scheme.notation}",
    )
