"""Normalized-energy estimation following the paper's proportional model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.energy.architectures import ArchitectureEnergyModel
from repro.utils.config import FrozenConfig, validate_positive


@dataclass(frozen=True)
class EnergyWorkload(FrozenConfig):
    """The workload statistics the energy model consumes (one Table 2 row).

    Attributes
    ----------
    spikes_per_image:
        Average number of spikes emitted per classified image.
    density:
        Spiking density (spikes / neuron / time step).
    latency:
        Classification latency in time steps.
    label:
        Identifier of the method/configuration (used in reports).
    """

    spikes_per_image: float
    density: float
    latency: float
    label: str = "workload"

    def __post_init__(self) -> None:
        if self.spikes_per_image < 0:
            raise ValueError(f"spikes_per_image must be non-negative, got {self.spikes_per_image}")
        if self.density < 0:
            raise ValueError(f"density must be non-negative, got {self.density}")
        validate_positive("latency", self.latency)


@dataclass
class EnergyEstimate:
    """Energy of one workload relative to a baseline workload.

    ``total`` is the normalised energy reported in Table 2 (baseline = 1.0);
    the three components show where the energy goes.
    """

    label: str
    architecture: str
    computation: float
    routing: float
    static: float

    @property
    def total(self) -> float:
        return self.computation + self.routing + self.static


def estimate_energy(
    workload: EnergyWorkload,
    baseline: EnergyWorkload,
    architecture: ArchitectureEnergyModel,
) -> EnergyEstimate:
    """Normalised energy of ``workload`` relative to ``baseline``.

    Each component of the baseline's energy is scaled by the ratio of the
    corresponding workload statistic (spikes → computation, density → routing,
    latency → static), so the baseline itself evaluates to exactly 1.0.
    """
    if baseline.spikes_per_image <= 0 and workload.spikes_per_image > 0:
        raise ValueError("baseline workload must have a positive spike count")
    spike_ratio = (
        workload.spikes_per_image / baseline.spikes_per_image
        if baseline.spikes_per_image > 0
        else 0.0
    )
    density_ratio = workload.density / baseline.density if baseline.density > 0 else 0.0
    latency_ratio = workload.latency / baseline.latency
    return EnergyEstimate(
        label=workload.label,
        architecture=architecture.name,
        computation=architecture.computation_fraction * spike_ratio,
        routing=architecture.routing_fraction * density_ratio,
        static=architecture.static_fraction * latency_ratio,
    )


def normalized_energy(
    workloads: Iterable[EnergyWorkload],
    baseline: EnergyWorkload,
    architectures: Iterable[ArchitectureEnergyModel],
) -> Dict[str, Dict[str, float]]:
    """Normalised energy for several workloads on several architectures.

    Returns a mapping ``workload label → {architecture name → normalised
    energy}`` — one number per (row, architecture) pair of Table 2.
    """
    architectures = list(architectures)
    results: Dict[str, Dict[str, float]] = {}
    for workload in workloads:
        per_arch: Dict[str, float] = {}
        for architecture in architectures:
            per_arch[architecture.name] = estimate_energy(workload, baseline, architecture).total
        results[workload.label] = per_arch
    return results
