"""The embeddable serving engine: replica session pools behind micro-batchers.

:class:`ServingEngine` is the in-process core of ``repro serve`` — tests,
examples and the HTTP front end all drive the same object:

* per coding scheme, a **pool of replica**
  :class:`~repro.engine.session.InferenceSession`\\ s
  (``ServingConfig.num_replicas``; built lazily through the scheme registry,
  weight normalisation computed once and shared across schemes *and*
  replicas, float64 weight masters aliased across the pool) behind one
  priority-aware :class:`~repro.serving.scheduler.MicroBatcher` whose worker
  pool runs one thread per replica — on a multi-core machine N replicas
  simulate N micro-batches concurrently;
* per-client admission control
  (:class:`~repro.serving.limits.ClientRateLimiter`): token-bucket rate
  limits (``max_rps`` / ``rate_burst``) and windowed quotas
  (``client_quota``), surfaced as
  :class:`~repro.serving.limits.RateLimitedError` with retry guidance;
* the scheme cache is **LRU-bounded** (``ServingConfig.session_cache_size``):
  the least recently used scheme's batcher is drained and its sessions
  dropped when a new scheme would exceed the bound;
* :meth:`ServingEngine.classify` is non-blocking and returns a future of a
  :class:`~repro.serving.protocol.ClassifyResult`;
  :meth:`~ServingEngine.classify_sync` waits for it.

Every replica is converted from the same model under the same shared
normalisation and runs the same configuration, and each is guarded by the
batcher worker owning it plus the session's own single-flight lock — so
float64 responses are bit-identical to running the same images through the
pipeline / a fresh session in one batch, *whichever replica serves them*.
Replication and micro-batching change *when* and *where* work happens, never
*what* is computed.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.ann.model import Sequential
from repro.conversion.converter import ConversionConfig
from repro.conversion.normalization import NormalizationResult, normalize_weights
from repro.core.hybrid import HybridCodingScheme
from repro.engine.session import InferenceSession
from repro.serving.limits import ClientRateLimiter
from repro.serving.metrics import ServerMetrics
from repro.serving.protocol import ClassifyResult, parse_image, scheme_listing
from repro.serving.scheduler import BatcherClosedError, BatchInfo, MicroBatcher
from repro.snn.network import SimulationConfig
from repro.utils.config import FrozenConfig, validate_positive
from repro.utils.logging import get_logger

logger = get_logger("serving.engine")


@dataclass(frozen=True)
class ServingConfig(FrozenConfig):
    """Knobs of one serving engine.

    Attributes
    ----------
    max_batch_size:
        Largest micro-batch the scheduler coalesces (flush trigger #1).
    max_wait_ms:
        Longest a non-full batch waits for company (flush trigger #2).
    max_queue:
        Admission-control bound per scheme queue; submissions beyond it are
        rejected — or shed lowest-priority-first — with retry guidance
        (HTTP 429 + ``Retry-After``).
    num_replicas:
        Inference sessions (and batcher workers) per scheme.  Replicas share
        the float64 weight masters and the weight normalisation but own
        their plan/scratch buffers, so N replicas serve N micro-batches
        concurrently on a multi-core machine.
    max_rps:
        Per-client token-bucket rate limit in requests/second
        (``None`` = unlimited).
    rate_burst:
        Token-bucket capacity — requests a quiet client may fire at once
        (``None`` = ``ceil(max_rps)``).
    client_quota:
        Admitted requests per client per ``quota_window_s`` window
        (``None`` = unlimited).
    quota_window_s:
        Length of the fixed quota window, seconds.
    time_steps:
        Simulation horizon every request is answered with.
    dtype:
        Simulation precision (``None`` = project policy, float32; float64
        answers are bit-identical to the batch pipeline).
    backend:
        Compute backend for every served simulation (a registered
        :mod:`repro.backends` name; ``None`` = the backend policy default).
    early_exit_patience:
        Optional converged-image early exit (see
        :class:`~repro.snn.network.SimulationConfig`).
    session_cache_size:
        Number of per-scheme session pools kept alive (LRU eviction beyond
        it).
    calibration_images:
        Training images used for the shared weight normalisation.
    request_timeout_s:
        How long synchronous waits (``classify_sync``, HTTP) block before
        giving up on a future.
    seed:
        Seed forwarded to conversion and simulation.
    """

    max_batch_size: int = 8
    max_wait_ms: float = 5.0
    max_queue: int = 64
    num_replicas: int = 1
    max_rps: Optional[float] = None
    rate_burst: Optional[float] = None
    client_quota: Optional[int] = None
    quota_window_s: float = 60.0
    time_steps: int = 100
    dtype: Optional[str] = None
    backend: Optional[str] = None
    early_exit_patience: Optional[int] = None
    session_cache_size: int = 4
    calibration_images: int = 128
    request_timeout_s: float = 60.0
    seed: int = 0
    conversion: ConversionConfig = field(default_factory=ConversionConfig)

    def __post_init__(self) -> None:
        validate_positive("max_batch_size", self.max_batch_size)
        validate_positive("max_queue", self.max_queue)
        validate_positive("num_replicas", self.num_replicas)
        validate_positive("time_steps", self.time_steps)
        validate_positive("session_cache_size", self.session_cache_size)
        validate_positive("calibration_images", self.calibration_images)
        validate_positive("quota_window_s", self.quota_window_s)
        if self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.max_rps is not None:
            validate_positive("max_rps", self.max_rps)
        if self.rate_burst is not None:
            validate_positive("rate_burst", self.rate_burst)
        if self.client_quota is not None:
            validate_positive("client_quota", self.client_quota)
        if self.early_exit_patience is not None:
            validate_positive("early_exit_patience", self.early_exit_patience)
        if self.backend is not None:
            from repro.backends import validate_backend_name

            validate_backend_name(self.backend)


class _SchemeServer:
    """One scheme's replica session pool plus the batcher feeding it."""

    def __init__(
        self, engine: "ServingEngine", scheme: HybridCodingScheme
    ) -> None:
        config = engine.config
        self.scheme = scheme
        self.sessions = InferenceSession.replica_pool(
            engine.model,
            scheme,
            count=config.num_replicas,
            config=SimulationConfig(
                time_steps=config.time_steps,
                record_outputs_every=config.time_steps,  # final scores only
                seed=config.seed,
                dtype=config.dtype,
                backend=config.backend,
                early_exit_patience=config.early_exit_patience,
            ),
            conversion=config.conversion,
            normalization=engine.normalization,
            seed=config.seed,
        )
        self.batcher = MicroBatcher(
            self._run_batch,
            max_batch_size=config.max_batch_size,
            max_wait_ms=config.max_wait_ms,
            max_queue=config.max_queue,
            num_workers=config.num_replicas,
            metrics=engine.metrics,
            clock=engine.clock,
            name=scheme.notation,
        )

    def _run_batch(
        self, payloads: List[np.ndarray], info: BatchInfo
    ) -> List[ClassifyResult]:
        """Simulate one coalesced batch on the worker's replica and split it
        into per-request results."""
        session = self.sessions[info.replica]
        started = time.monotonic()
        result = session.run(np.stack(payloads))
        batch_ms = (time.monotonic() - started) * 1000.0
        scores = result.final_outputs
        predictions = scores.argmax(axis=1)
        frozen = result.frozen_at
        return [
            ClassifyResult(
                prediction=int(predictions[i]),
                scores=scores[i].tolist(),
                scheme=self.scheme.notation,
                frozen_at=None
                if frozen is None or frozen[i] < 0
                else int(frozen[i]),
                batch_size=info.size,
                queue_ms=info.queue_ms[i],
                batch_ms=batch_ms,
                time_steps=result.time_steps,
                replica=info.replica,
            )
            for i in range(len(payloads))
        ]

    def stats(self) -> Dict[str, object]:
        """Per-scheme gauges for ``/metrics``."""
        return {
            "num_replicas": len(self.sessions),
            "batches_served": sum(s.batches_served for s in self.sessions),
            "images_served": sum(s.images_served for s in self.sessions),
            "batches_per_replica": [s.batches_served for s in self.sessions],
            "replica_utilisation": [
                round(u, 4) for u in self.batcher.replica_utilisation()
            ],
            "queue_depth": self.batcher.queue_depth,
        }

    def close(self) -> None:
        self.batcher.close()


class ServingEngine:
    """Serve classify requests for one model across registered schemes.

    Parameters
    ----------
    model:
        The trained :class:`~repro.ann.model.Sequential` ANN to convert.
    calibration_x:
        Training images for the shared data-based weight normalisation
        (every scheme sees identical weights, as in the paper).
    config:
        Serving knobs (see :class:`ServingConfig`).
    normalization:
        Optional precomputed normalisation (skips ``calibration_x``).
    clock:
        Monotonic time source shared by the batchers and the rate limiter
        (injectable so limiter refill and wait-window flushes are tested
        with a fake clock).
    """

    def __init__(
        self,
        model: Sequential,
        calibration_x: Optional[np.ndarray] = None,
        config: Optional[ServingConfig] = None,
        *,
        normalization: Optional[NormalizationResult] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if calibration_x is None and normalization is None:
            raise ValueError("provide calibration_x or a precomputed normalization")
        self.model = model
        self.config = config or ServingConfig()
        self.metrics = ServerMetrics()
        self.clock = clock
        self.limiter = ClientRateLimiter(
            self.config.max_rps,
            burst=self.config.rate_burst,
            quota=self.config.client_quota,
            quota_window_s=self.config.quota_window_s,
            clock=clock,
        )
        self._calibration_x = calibration_x
        self._normalization = normalization
        self._servers: "OrderedDict[str, _SchemeServer]" = OrderedDict()
        self._lock = threading.RLock()
        self._closed = False
        self.input_shape = tuple(model.input_shape)

    # -- shared conversion state ------------------------------------------
    @property
    def normalization(self) -> NormalizationResult:
        """Weight normalisation shared by every scheme (computed once)."""
        with self._lock:
            if self._normalization is None:
                conversion = self.config.conversion
                calibration = self._calibration_x[: self.config.calibration_images]
                self._normalization = normalize_weights(
                    self.model,
                    calibration_x=calibration,
                    percentile=conversion.percentile,
                    method=conversion.normalization,
                )
            return self._normalization

    # -- scheme servers (lazy build, LRU-bounded) --------------------------
    def _resolve_scheme(self, scheme: object) -> HybridCodingScheme:
        if isinstance(scheme, HybridCodingScheme):
            return scheme
        return HybridCodingScheme.from_notation(str(scheme))

    def _scheme_server(self, scheme: object) -> _SchemeServer:
        resolved = self._resolve_scheme(scheme)
        key = resolved.notation
        evicted: Optional[_SchemeServer] = None
        with self._lock:
            if self._closed:
                raise RuntimeError("serving engine is closed")
            server = self._servers.get(key)
            if server is not None:
                self._servers.move_to_end(key)
                return server
            self.normalization  # noqa: B018 - force the one-time computation
            logger.info(
                "building %d session replica(s) for scheme %s",
                self.config.num_replicas, key,
            )
            server = _SchemeServer(self, resolved)
            self._servers[key] = server
            if len(self._servers) > self.config.session_cache_size:
                old_key, evicted = self._servers.popitem(last=False)
                logger.info("evicting LRU scheme session pool %s", old_key)
        if evicted is not None:
            # drain outside the lock: eviction must not block new submissions
            evicted.close()
        return server

    def warm(self, scheme: object) -> None:
        """Pre-build the session pool for ``scheme`` (conversion + plans)."""
        self._scheme_server(scheme)

    def loaded_schemes(self) -> List[str]:
        """Notations with a live session pool, most recently used last."""
        with self._lock:
            return list(self._servers)

    # -- request path ------------------------------------------------------
    def classify(
        self,
        image: object,
        scheme: object = "phase-burst",
        *,
        priority: object = None,
        client_id: Optional[str] = None,
    ) -> "Future[ClassifyResult]":
        """Submit one image; returns a future of its :class:`ClassifyResult`.

        ``priority`` is ``"interactive"`` (default), ``"batch"``, or an
        integer (lower serves first); ``client_id`` keys the per-client rate
        limits and quotas (``None`` shares the anonymous identity).

        Raises :class:`~repro.serving.limits.RateLimitedError` when the
        client is over its rate limit or quota,
        :class:`~repro.core.registry.UnknownCodingError` for an unregistered
        scheme, :class:`ValueError` for a malformed image or priority and
        :class:`~repro.serving.scheduler.QueueFullError` when admission
        control rejects the request — the two 429-mapped errors both carry
        ``retry_after_s``.
        """
        try:
            self.limiter.admit(client_id)
        except Exception:
            self.metrics.record_rate_limited()
            raise
        payload = parse_image(image, self.input_shape)
        # an LRU eviction can close the batcher between lookup and submit
        # (eviction drains outside the engine lock); the evicted entry is
        # already out of the cache, so retrying rebuilds the session pool
        for _ in range(3):
            try:
                return self._scheme_server(scheme).batcher.submit(payload, priority)
            except BatcherClosedError:
                continue
        return self._scheme_server(scheme).batcher.submit(payload, priority)

    def classify_sync(
        self,
        image: object,
        scheme: object = "phase-burst",
        timeout: Optional[float] = None,
        *,
        priority: object = None,
        client_id: Optional[str] = None,
    ) -> ClassifyResult:
        """Blocking variant of :meth:`classify`."""
        future = self.classify(image, scheme, priority=priority, client_id=client_id)
        return future.result(
            timeout if timeout is not None else self.config.request_timeout_s
        )

    # -- introspection -----------------------------------------------------
    def queue_depth(self) -> int:
        """Requests currently queued across every scheme batcher."""
        with self._lock:
            return sum(server.batcher.queue_depth for server in self._servers.values())

    def stats(self) -> Dict[str, object]:
        """Metrics snapshot plus per-pool serving gauges (``/metrics``)."""
        with self._lock:
            sessions = {
                key: server.stats() for key, server in self._servers.items()
            }
        snapshot = self.metrics.snapshot(queue_depth=self.queue_depth())
        snapshot["sessions"] = sessions
        snapshot["rate_limits"] = self.limiter.snapshot()
        snapshot["config"] = {
            "max_batch_size": self.config.max_batch_size,
            "max_wait_ms": self.config.max_wait_ms,
            "max_queue": self.config.max_queue,
            "num_replicas": self.config.num_replicas,
            "time_steps": self.config.time_steps,
            "session_cache_size": self.config.session_cache_size,
        }
        return snapshot

    def schemes(self) -> Dict[str, object]:
        """Registry listing served at ``/v1/schemes`` (shared with the CLI)."""
        return scheme_listing()

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Graceful drain: every batcher flushes its queue across all
        replicas, and every admitted future resolves."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            servers = list(self._servers.values())
        for server in servers:
            server.close()
        logger.info(
            "serving engine drained (%d requests served)", self.metrics.requests_total
        )

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
