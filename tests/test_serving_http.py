"""Tests for the HTTP front end (repro.serving.http) and the ``repro serve``
CLI subcommand (start → answer → drain on SIGTERM)."""

import json
import os
import signal
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.serving.engine import ServingConfig, ServingEngine
from repro.serving.http import ServingHTTPServer

TIME_STEPS = 12


def _get(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, json.load(response)


def _post(url, payload, headers=None):
    status, body, _ = _post_full(url, payload, headers)
    return status, body


def _post_full(url, payload, headers=None):
    """POST returning ``(status, body, response_headers)``."""
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json", **(headers or {})}
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.load(response), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error), dict(error.headers)


@pytest.fixture(scope="module")
def served(trained_mlp, tiny_image_split):
    """An in-process engine + HTTP server on an ephemeral port."""
    engine = ServingEngine(
        trained_mlp,
        tiny_image_split.train.x,
        ServingConfig(
            max_batch_size=4, max_wait_ms=5.0, max_queue=4, time_steps=TIME_STEPS, seed=0
        ),
    )
    server = ServingHTTPServer(engine, port=0, default_scheme="phase-burst").start()
    yield server, engine, tiny_image_split.test.x
    server.close()


class TestEndpoints:
    def test_healthz(self, served):
        server, _, _ = served
        status, body = _get(server.url + "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert "queue_depth" in body

    def test_classify_roundtrip_uses_default_scheme(self, served):
        server, _, test_x = served
        status, body = _post(server.url + "/v1/classify", {"image": test_x[0].tolist()})
        assert status == 200
        assert body["scheme"] == "phase-burst"
        assert body["time_steps"] == TIME_STEPS
        assert 0 <= body["prediction"] < len(body["scores"])
        assert body["total_ms"] >= body["batch_ms"]
        assert body["frozen_at"] is None

    def test_classify_explicit_scheme_and_flat_image(self, served):
        server, _, test_x = served
        status, body = _post(
            server.url + "/v1/classify",
            {"image": test_x[1].ravel().tolist(), "scheme": "real-rate"},
        )
        assert status == 200
        assert body["scheme"] == "real-rate"

    def test_schemes_endpoint_shares_registry_metadata(self, served):
        from repro.core.registry import scheme_metadata

        server, _, _ = served
        status, body = _get(server.url + "/v1/schemes")
        assert status == 200
        assert body["codings"] == scheme_metadata()
        assert "input codings" in body["notation"]

    def test_metrics_endpoint(self, served):
        server, _, test_x = served
        _post(server.url + "/v1/classify", {"image": test_x[2].tolist()})
        status, body = _get(server.url + "/metrics")
        assert status == 200
        assert body["requests_total"] >= 1
        assert "batch_size_histogram" in body
        assert set(body["latency_ms"]) == {"count", "p50", "p95", "p99"}
        assert set(body["queue_wait_ms"]) == {"count", "p50", "p95", "p99"}
        assert "phase-burst" in body["sessions"]
        scheme_stats = body["sessions"]["phase-burst"]
        assert scheme_stats["num_replicas"] == 1
        assert len(scheme_stats["replica_utilisation"]) == 1
        assert "rate_limited_total" in body["rate_limits"]

    def test_health_after_traffic_lists_loaded_schemes(self, served):
        server, _, _ = served
        _, body = _get(server.url + "/healthz")
        assert "phase-burst" in body["schemes_loaded"]


class TestErrorMapping:
    def test_unknown_path_404(self, served):
        server, _, _ = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(server.url + "/nope", timeout=30)
        assert excinfo.value.code == 404

    def test_missing_image_400(self, served):
        server, _, _ = served
        status, body = _post(server.url + "/v1/classify", {"scheme": "phase-burst"})
        assert status == 400
        assert "image" in body["error"]

    def test_bad_json_400(self, served):
        server, _, _ = served
        request = urllib.request.Request(
            server.url + "/v1/classify",
            data=b"not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_wrong_shape_400(self, served):
        server, _, _ = served
        status, body = _post(server.url + "/v1/classify", {"image": [[1.0, 2.0]]})
        assert status == 400
        assert "does not match" in body["error"]

    def test_error_before_body_read_closes_keepalive_connection(self, served):
        """A POST rejected before its body is consumed must not keep the
        connection alive — the unread bytes would corrupt the next request."""
        import http.client

        server, _, _ = served
        host, port = server.address
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            connection.request(
                "POST",
                "/nope",
                body=b'{"image": [1, 2, 3]}',
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 404
            assert response.getheader("Connection") == "close"
            response.read()
        finally:
            connection.close()

    def test_unknown_scheme_400_with_hint(self, served):
        server, _, test_x = served
        status, body = _post(
            server.url + "/v1/classify",
            {"image": test_x[0].tolist(), "scheme": "phse-burst"},
        )
        assert status == 400
        assert "did you mean" in body["error"]

    def test_invalid_priority_400(self, served):
        server, _, test_x = served
        status, body = _post(
            server.url + "/v1/classify",
            {"image": test_x[0].tolist(), "priority": "urgent"},
        )
        assert status == 400
        assert "priority" in body["error"]

    def test_priority_field_accepted(self, served):
        server, _, test_x = served
        status, body = _post(
            server.url + "/v1/classify",
            {"image": test_x[0].tolist(), "priority": "batch"},
        )
        assert status == 200
        assert body["scheme"] == "phase-burst"

    def test_non_string_client_id_400(self, served):
        server, _, test_x = served
        status, body = _post(
            server.url + "/v1/classify",
            {"image": test_x[0].tolist(), "client_id": 7},
        )
        assert status == 400
        assert "client_id" in body["error"]

    def test_admission_control_maps_to_429(self, trained_mlp, tiny_image_split):
        """Saturate the scheme queue while its session is wedged; the next
        HTTP request must bounce with 429 instead of queueing forever.

        Uses a dedicated single-request-batch server (``max_batch_size=1``)
        so the wedged batch cannot absorb the backlog that fills the queue.
        """
        test_x = tiny_image_split.test.x
        engine = ServingEngine(
            trained_mlp,
            tiny_image_split.train.x,
            ServingConfig(
                max_batch_size=1, max_wait_ms=0.0, max_queue=3,
                time_steps=TIME_STEPS, seed=0,
            ),
        )
        server = ServingHTTPServer(engine, port=0, default_scheme="phase-burst").start()
        try:
            scheme_server = engine._scheme_server("phase-burst")
            with scheme_server.sessions[0]._run_lock:  # wedge the batch executor
                # let the worker pull one item into the stuck batch, then
                # fill the bounded queue behind it
                probe = engine.classify(test_x[0])
                deadline = time.monotonic() + 10
                while (
                    scheme_server.batcher.queue_depth > 0
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.005)
                backlog = [
                    engine.classify(test_x[0])
                    for _ in range(engine.config.max_queue)
                ]
                status, body, headers = _post_full(
                    server.url + "/v1/classify", {"image": test_x[0].tolist()}
                )
            assert status == 429
            assert "full" in body["error"]
            # the rejection tells the client when to come back
            assert int(headers["Retry-After"]) >= 1
            assert body["retry_after_s"] > 0.0
            # once the session is released every queued request still resolves
            assert probe.result(timeout=60).prediction >= 0
            for future in backlog:
                assert future.result(timeout=60).prediction >= 0
        finally:
            server.close()

    def test_rate_limited_client_maps_to_429_with_retry_after(
        self, trained_mlp, tiny_image_split
    ):
        """A client over its token-bucket budget gets 429 + Retry-After while
        an independently keyed client sails through."""
        test_x = tiny_image_split.test.x
        engine = ServingEngine(
            trained_mlp,
            tiny_image_split.train.x,
            ServingConfig(
                max_batch_size=1, max_wait_ms=0.0, time_steps=8,
                max_rps=0.001, rate_burst=1.0, seed=0,
            ),
        )
        server = ServingHTTPServer(engine, port=0, default_scheme="phase-burst").start()
        try:
            payload = {"image": test_x[0].tolist()}
            key = {"X-API-Key": "tenant-a"}
            status, _, _ = _post_full(server.url + "/v1/classify", payload, key)
            assert status == 200  # burst token
            status, body, headers = _post_full(
                server.url + "/v1/classify", payload, key
            )
            assert status == 429
            assert "rate limit" in body["error"]
            assert int(headers["Retry-After"]) >= 1
            assert body["retry_after_s"] > 0.0
            # a different API key has its own bucket
            status, _, _ = _post_full(
                server.url + "/v1/classify", payload, {"X-API-Key": "tenant-b"}
            )
            assert status == 200
            # the body client_id field keys the limiter too
            status, _, _ = _post_full(
                server.url + "/v1/classify", {**payload, "client_id": "tenant-a"}
            )
            assert status == 429
            assert engine.metrics.rate_limited_total == 2
        finally:
            server.close()


class TestCliServeSmoke:
    def test_serve_starts_answers_and_drains_on_sigterm(self, tmp_path):
        """`repro serve` over a tiny synthetic workload: wait for /healthz,
        POST one /v1/classify, SIGTERM, assert a clean exit."""
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        repo_root = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo_root / "src") + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--host", "127.0.0.1", "--port", str(port),
                "--dataset", "mnist", "--model", "mlp",
                "--samples-per-class", "6", "--epochs", "2",
                "--time-steps", "10", "--max-wait-ms", "2",
                "--scheme", "phase-burst",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        url = f"http://127.0.0.1:{port}"
        try:
            deadline = time.monotonic() + 120
            health = None
            while time.monotonic() < deadline:
                if process.poll() is not None:
                    pytest.fail(
                        f"repro serve exited early:\n{process.stdout.read()}"
                    )
                try:
                    _, health = _get(url + "/healthz")
                    break
                except (urllib.error.URLError, ConnectionError, OSError):
                    time.sleep(0.25)
            assert health is not None, "server never became healthy"
            assert health["status"] == "ok"

            image = np.zeros((1, 28, 28)).tolist()
            status, body = _post(url + "/v1/classify", {"image": image})
            assert status == 200
            assert body["scheme"] == "phase-burst"

            process.send_signal(signal.SIGTERM)
            stdout, _ = process.communicate(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate(timeout=30)
        assert process.returncode == 0, f"unclean exit {process.returncode}:\n{stdout}"
        assert "drained cleanly" in stdout
        assert "listening on" in stdout
