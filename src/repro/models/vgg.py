"""VGG-16 builders.

The paper's CIFAR-10 / CIFAR-100 experiments use VGG-16 (280,586 neurons).
:func:`build_vgg16` constructs the full 13-conv + 3-dense topology (with the
classifier widths adapted to 32x32 inputs, as is standard for CIFAR VGG).
Training the full model from scratch in pure numpy is too slow for the
benchmark harness, so :func:`build_vgg_small` provides a width-scaled variant
with the same depth pattern; DESIGN.md §2 records this substitution.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

from repro.ann.layers import AvgPool2D, Conv2D, Dense, Dropout, Flatten, MaxPool2D, ReLU
from repro.ann.model import Sequential
from repro.utils.rng import SeedLike, spawn_rngs

#: The canonical VGG-16 configuration: channel counts with "M" marking pooling.
VGG16_CONFIG: List[Union[int, str]] = [
    64, 64, "M",
    128, 128, "M",
    256, 256, 256, "M",
    512, 512, 512, "M",
    512, 512, 512, "M",
]


def _build_vgg(
    config: Sequence[Union[int, str]],
    input_shape: Tuple[int, int, int],
    num_classes: int,
    dense_sizes: Sequence[int],
    pool: str,
    dropout: float,
    seed: SeedLike,
    name: str,
) -> Sequential:
    if len(input_shape) != 3:
        raise ValueError(f"input_shape must be (C, H, W), got {input_shape}")
    if pool not in ("avg", "max"):
        raise ValueError(f"pool must be 'avg' or 'max', got {pool!r}")
    conv_count = sum(1 for item in config if item != "M")
    rngs = spawn_rngs(seed, conv_count + len(dense_sizes) + 1)
    rng_index = 0

    layers = []
    channels, height, width = input_shape
    conv_index = 0
    pool_index = 0
    for item in config:
        if item == "M":
            pool_layer = (
                AvgPool2D(2, name=f"pool_{pool_index}")
                if pool == "avg"
                else MaxPool2D(2, name=f"pool_{pool_index}")
            )
            layers.append(pool_layer)
            height //= 2
            width //= 2
            pool_index += 1
            if height < 1 or width < 1:
                raise ValueError(
                    f"VGG config has more pooling stages than input {input_shape} allows"
                )
            continue
        out_channels = int(item)
        layers.append(
            Conv2D(
                channels,
                out_channels,
                kernel_size=3,
                stride=1,
                padding=1,
                seed=rngs[rng_index],
                name=f"conv_{conv_index}",
            )
        )
        layers.append(ReLU(name=f"relu_conv_{conv_index}"))
        channels = out_channels
        conv_index += 1
        rng_index += 1

    layers.append(Flatten(name="flatten"))
    flat = channels * height * width
    previous = flat
    for dense_index, size in enumerate(dense_sizes):
        layers.append(
            Dense(previous, size, seed=rngs[rng_index], name=f"fc_{dense_index}")
        )
        layers.append(ReLU(name=f"relu_fc_{dense_index}"))
        if dropout > 0:
            layers.append(Dropout(dropout, seed=seed, name=f"dropout_{dense_index}"))
        previous = size
        rng_index += 1
    layers.append(Dense(previous, num_classes, seed=rngs[rng_index], name="fc_out"))
    return Sequential(layers, input_shape=tuple(input_shape), name=name)


def build_vgg16(
    input_shape: Tuple[int, int, int] = (3, 32, 32),
    num_classes: int = 10,
    dense_sizes: Sequence[int] = (512, 512),
    pool: str = "avg",
    dropout: float = 0.0,
    seed: SeedLike = 0,
    name: str = "vgg16",
) -> Sequential:
    """Full VGG-16 (13 conv + 3 dense) adapted to 32x32 inputs.

    The paper converts a trained VGG-16; average pooling is the default here
    because it converts exactly to spiking pooling.
    """
    return _build_vgg(
        VGG16_CONFIG, input_shape, num_classes, dense_sizes, pool, dropout, seed, name
    )


def build_vgg_small(
    input_shape: Tuple[int, int, int] = (3, 32, 32),
    num_classes: int = 10,
    width_factor: float = 0.125,
    depth_blocks: int = 3,
    dense_size: int = 128,
    pool: str = "avg",
    dropout: float = 0.0,
    seed: SeedLike = 0,
    name: str = "vgg-small",
) -> Sequential:
    """A width/depth-scaled VGG used by the benchmark harness.

    Parameters
    ----------
    width_factor:
        Multiplier applied to the canonical VGG channel counts (minimum 4).
    depth_blocks:
        Number of VGG blocks to keep (1–5); each block ends with a pooling
        layer, so ``depth_blocks`` also bounds the spatial down-sampling.
    """
    if not 1 <= depth_blocks <= 5:
        raise ValueError(f"depth_blocks must be between 1 and 5, got {depth_blocks}")
    if width_factor <= 0:
        raise ValueError(f"width_factor must be positive, got {width_factor}")

    config: List[Union[int, str]] = []
    blocks_seen = 0
    for item in VGG16_CONFIG:
        if item == "M":
            config.append("M")
            blocks_seen += 1
            if blocks_seen >= depth_blocks:
                break
        else:
            config.append(max(4, int(round(int(item) * width_factor))))
    return _build_vgg(
        config, input_shape, num_classes, (dense_size,), pool, dropout, seed, name
    )
