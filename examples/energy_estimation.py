#!/usr/bin/env python
"""Normalized-energy estimation on neuromorphic hardware (Table 2's energy
columns).

Three conversion methods — the rate-coding baseline (Diehl et al.), the
weighted-spike phase coding of Kim et al., and the paper's phase-burst hybrid
coding — are run on the same converted network, and their inference energy is
estimated with the proportional TrueNorth / SpiNNaker model (computation ∝
spikes, routing ∝ spiking density, static ∝ latency), normalised against the
rate-coding baseline.

Run with:  python examples/energy_estimation.py
Runtime:   ~30 seconds.
"""

from repro import (
    SPINNAKER,
    TRUENORTH,
    EnergyWorkload,
    HybridCodingScheme,
    PipelineConfig,
    SNNInferencePipeline,
    estimate_energy,
)
from repro.experiments.workloads import mnist_workload
from repro.utils.tables import Table

METHODS = {
    "rate-rate  (Diehl et al. 2015)": HybridCodingScheme.from_notation("rate-rate"),
    "phase-phase (Kim et al. 2018)": HybridCodingScheme.from_notation("phase-phase"),
    "phase-burst (this paper)": HybridCodingScheme.from_notation("phase-burst", v_th=0.125),
    "real-burst  (this paper)": HybridCodingScheme.from_notation("real-burst", v_th=0.125),
}


def main() -> None:
    workload = mnist_workload()
    pipeline = SNNInferencePipeline(
        workload.model,
        workload.data,
        PipelineConfig(time_steps=150, batch_size=16, max_test_images=16),
    )

    energy_workloads = {}
    rows = {}
    for label, scheme in METHODS.items():
        run = pipeline.run_scheme(scheme)
        metrics = run.metrics(target_accuracy=run.dnn_accuracy * 0.99)
        latency = metrics.latency if metrics.latency is not None else run.time_steps
        energy_workloads[label] = EnergyWorkload(
            spikes_per_image=metrics.density * run.num_neurons * latency,
            density=metrics.density,
            latency=float(latency),
            label=label,
        )
        rows[label] = (run, metrics, latency)

    baseline = energy_workloads["rate-rate  (Diehl et al. 2015)"]

    table = Table(
        ["method", "SNN acc %", "latency", "density", "E TrueNorth", "E SpiNNaker"],
        title=f"Normalized inference energy ({workload.name})",
    )
    for label, workload_stats in energy_workloads.items():
        run, metrics, latency = rows[label]
        truenorth = estimate_energy(workload_stats, baseline, TRUENORTH)
        spinnaker = estimate_energy(workload_stats, baseline, SPINNAKER)
        table.add_row(
            {
                "method": label,
                "SNN acc %": round(run.accuracy * 100, 2),
                "latency": latency,
                "density": round(metrics.density, 4),
                "E TrueNorth": round(truenorth.total, 3),
                "E SpiNNaker": round(spinnaker.total, 3),
            }
        )
    print(table.render())
    print(
        "\nEnergy model: each architecture splits a baseline workload's energy "
        "into computation / routing / static fractions and scales them with "
        "the spike count, spiking density and latency respectively "
        "(see repro.energy.architectures for the calibrated fractions)."
    )


if __name__ == "__main__":
    main()
