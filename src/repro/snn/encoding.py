"""Input-layer encoders: real, rate, phase and burst input coding.

The input layer's job is to turn a static, bounded analog input (an image in
``[0, 1]``) into the quantity injected into the first spiking layer at every
time step.  Following Eq. 5, a spike is *weighted*: what the next layer sees
is the spike amplitude, not just a 0/1 event.  The encoders therefore return
both the transmitted **values** (amplitudes, or the analog value itself for
real coding) and the boolean **spikes** (used for spike counting and energy
estimation — real coding transmits values without emitting spikes).

Throughput conventions (important for hybrid coding, see DESIGN.md):

* *real* and *rate* coding transmit on average ``x`` per time step
  (``throughput_factor = 1``);
* *phase* coding transmits the k-bit value ``x`` once per period of ``k``
  steps (``throughput_factor = 1/k``), exactly as in Kim et al. [14];
* *burst* input coding drives an IF neuron with burst threshold adaptation by
  a constant current ``x`` (``throughput_factor = 1``).

The pipeline uses ``throughput_factor`` to scale per-step bias injection so
biases stay proportionate to the rate at which evidence arrives.

Performance contract
--------------------
``reset(x, dtype=...)`` converts the input batch to the simulation dtype once
(float32 policy default, float64 opt-in — see :mod:`repro.utils.dtypes`) and
preallocates the per-step value/spike buffers; ``step`` is then
allocation-free.  The arrays inside the returned :class:`EncodedStep` are
reusable buffers, **valid only until the encoder's next step** — copy them if
they must survive longer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.snn.neurons import IFNeuronState, ResetMode
from repro.snn.thresholds import BurstThreshold
from repro.utils.config import validate_positive
from repro.utils.dtypes import DTypeLike, resolve_dtype
from repro.utils.rng import SeedLike, as_rng


@dataclass
class EncodedStep:
    """What the input layer transmits during one time step.

    Attributes
    ----------
    values:
        Array with the same shape as the input batch; the weighted-spike
        amplitudes (or analog values for real coding) delivered to the first
        layer's synapses.
    spikes:
        Boolean array marking which input neurons emitted a spike this step.
    """

    values: np.ndarray
    spikes: np.ndarray

    @property
    def spike_count(self) -> int:
        """Total number of spikes emitted this step."""
        return int(np.count_nonzero(self.spikes))


class InputEncoder:
    """Base class for input encoders.

    Usage: ``encoder.reset(x)`` with the input batch (values in ``[0, 1]``),
    then ``encoder.step(t)`` for ``t = 0, 1, …``.
    """

    #: short name used in configuration strings
    coding = "base"
    #: average fraction of the analog value transmitted per time step
    throughput_factor = 1.0
    #: True when the transmitted values are nonzero exactly where spikes were
    #: emitted (weighted-spike encoders); real coding transmits dense analog
    #: values without spikes and overrides this to False
    values_nonzero_tracks_spikes = True
    #: False for stochastic encoders whose RNG stream advances across runs;
    #: the pipeline neither caches nor shards networks built around them
    #: (reuse or re-splitting would change which random numbers each batch
    #: sees relative to one sequential pass)
    deterministic = True

    @property
    def steady_period(self) -> Optional[int]:
        """Period (in steps) after which the encoder's output repeats exactly.

        ``None`` for encoders whose output is stateful or stochastic.  When a
        period is declared, the simulation engine caches the first layer's
        synaptic input per phase and replays it — bit-exact, since the cached
        arrays are the identical earlier results.
        """
        return None

    def shrink_batch(self, keep: np.ndarray) -> None:
        """Keep only the batch rows ``keep`` (converged-image early exit)."""
        keep = np.asarray(keep, dtype=np.intp)
        if keep.size == 0:
            raise ValueError("shrink_batch requires at least one kept row")
        if hasattr(self, "_x"):
            self._x = np.ascontiguousarray(self._x[keep])

    def reset(self, x: np.ndarray, dtype: DTypeLike = None) -> None:
        """Load a new input batch (clipped to ``[0, 1]``).

        ``dtype`` selects the simulation precision (``None`` resolves through
        the project dtype policy).
        """
        self.dtype = resolve_dtype(dtype)
        x = np.asarray(x, dtype=self.dtype)
        if np.any(x < -1e-9) or np.any(x > 1.0 + 1e-9):
            raise ValueError(
                "input encoders expect values in [0, 1]; normalise inputs first "
                f"(got range [{x.min():.4f}, {x.max():.4f}])"
            )
        self._x = np.clip(x, 0.0, 1.0)

    def step(self, t: int) -> EncodedStep:
        """Produce the transmitted values and spikes for time step ``t``."""
        raise NotImplementedError

    @property
    def input(self) -> np.ndarray:
        if not hasattr(self, "_x"):
            raise RuntimeError("encoder.reset(x) must be called before step()")
        return self._x

    def describe(self) -> str:
        return type(self).__name__


class RealEncoder(InputEncoder):
    """Real coding: deliver the analog value itself at every step.

    No spikes are emitted — the first layer receives an analog current, as in
    Rueckauer et al. [12, 13] ("real" input in Table 1).  The same value and
    (empty) spike buffers are returned every step.
    """

    coding = "real"
    throughput_factor = 1.0
    values_nonzero_tracks_spikes = False  # analog values, no spikes

    @property
    def steady_period(self) -> Optional[int]:
        return 1  # the analog values are re-delivered unchanged every step

    def reset(self, x: np.ndarray, dtype: DTypeLike = None) -> None:
        super().reset(x, dtype)
        self._no_spikes = np.zeros(self._x.shape, dtype=bool)

    def shrink_batch(self, keep: np.ndarray) -> None:
        super().shrink_batch(keep)
        self._no_spikes = np.zeros(self._x.shape, dtype=bool)

    def step(self, t: int) -> EncodedStep:
        del t
        return EncodedStep(values=self.input, spikes=self._no_spikes)


class RateEncoder(InputEncoder):
    """Deterministic rate coding via an integrate-and-fire input neuron.

    Each input neuron integrates its pixel value every step and emits a
    unit-amplitude spike (amplitude ``v_th``) whenever the accumulated value
    crosses ``v_th`` — so the long-run spike rate is proportional to the pixel
    value.  This is the deterministic variant commonly used in conversion
    work; :class:`PoissonRateEncoder` provides the stochastic variant.
    """

    coding = "rate"
    throughput_factor = 1.0

    def __init__(self, v_th: float = 1.0) -> None:
        validate_positive("v_th", v_th)
        self.v_th = float(v_th)
        self._state: Optional[IFNeuronState] = None
        self._threshold: Optional[np.ndarray] = None

    def reset(self, x: np.ndarray, dtype: DTypeLike = None) -> None:
        super().reset(x, dtype)
        self._state = IFNeuronState(
            self.input.shape, reset_mode=ResetMode.SUBTRACT, dtype=self.dtype
        )
        self._threshold = np.asarray(self.v_th, dtype=self.dtype)

    def shrink_batch(self, keep: np.ndarray) -> None:
        super().shrink_batch(keep)
        if self._state is not None:
            self._state.shrink_batch(np.asarray(keep, dtype=np.intp))

    def step(self, t: int) -> EncodedStep:
        del t
        if self._state is None or self._threshold is None:
            raise RuntimeError("encoder.reset(x) must be called before step()")
        spikes, amplitudes = self._state.step(self.input, self._threshold)
        return EncodedStep(values=amplitudes, spikes=spikes)


class PoissonRateEncoder(InputEncoder):
    """Stochastic rate coding: spike with probability equal to the pixel value.

    Spikes have amplitude ``v_th``; the expected transmitted value per step is
    ``x · v_th``.  Used for robustness experiments and property tests; the
    deterministic :class:`RateEncoder` is the default for reproducibility.
    """

    coding = "rate-poisson"
    throughput_factor = 1.0
    deterministic = False

    def __init__(self, v_th: float = 1.0, seed: SeedLike = None) -> None:
        validate_positive("v_th", v_th)
        self.v_th = float(v_th)
        self._rng = as_rng(seed)
        self._spikes: Optional[np.ndarray] = None
        self._values: Optional[np.ndarray] = None

    def reset(self, x: np.ndarray, dtype: DTypeLike = None) -> None:
        super().reset(x, dtype)
        self._spikes = np.empty(self._x.shape, dtype=bool)
        self._values = np.empty(self._x.shape, dtype=self.dtype)

    def shrink_batch(self, keep: np.ndarray) -> None:
        super().shrink_batch(keep)
        self._spikes = np.empty(self._x.shape, dtype=bool)
        self._values = np.empty(self._x.shape, dtype=self.dtype)

    def step(self, t: int) -> EncodedStep:
        del t
        x = self.input
        if self._spikes is None or self._values is None:
            raise RuntimeError("encoder.reset(x) must be called before step()")
        np.less(self._rng.uniform(size=x.shape), x, out=self._spikes)
        np.multiply(self._spikes, self.v_th, out=self._values)
        return EncodedStep(values=self._values, spikes=self._spikes)


class PhaseEncoder(InputEncoder):
    """Phase coding of the input (weighted spikes, Kim et al. [14]).

    The pixel value is quantised to ``period`` bits; during phase ``p`` of each
    period a spike of amplitude ``2^-(1+p) · v_th`` is emitted iff bit ``p`` of
    the quantised value is set.  One full period therefore transmits the value
    with ``period``-bit precision, and the per-step throughput is ``1/period``.
    """

    coding = "phase"

    def __init__(self, v_th: float = 1.0, period: int = 8) -> None:
        validate_positive("v_th", v_th)
        if period <= 0 or period > 30:
            raise ValueError(f"period must be in [1, 30], got {period}")
        self.v_th = float(v_th)
        self.period = int(period)
        self._bits: Optional[np.ndarray] = None
        self._values: Optional[np.ndarray] = None

    @property
    def throughput_factor(self) -> float:  # type: ignore[override]
        return 1.0 / self.period

    @property
    def steady_period(self) -> Optional[int]:
        return self.period  # the quantised bit pattern repeats every period

    def shrink_batch(self, keep: np.ndarray) -> None:
        super().shrink_batch(keep)
        if self._bits is not None:
            self._bits = np.ascontiguousarray(self._bits[:, np.asarray(keep, dtype=np.intp)])
            self._values = np.empty(self._x.shape, dtype=self.dtype)

    def reset(self, x: np.ndarray, dtype: DTypeLike = None) -> None:
        super().reset(x, dtype)
        # Quantise to `period` bits: x ≈ sum_p bit_p 2^-(p+1)
        scaled = np.round(np.asarray(self.input, dtype=np.float64) * (2**self.period)).astype(np.int64)
        scaled = np.clip(scaled, 0, 2**self.period - 1)
        bits = np.empty((self.period,) + self.input.shape, dtype=bool)
        for p in range(self.period):
            # bit for weight 2^-(p+1) is bit (period-1-p) of the integer
            bits[p] = (scaled >> (self.period - 1 - p)) & 1
        self._bits = bits
        self._values = np.empty(self.input.shape, dtype=self.dtype)

    def step(self, t: int) -> EncodedStep:
        if self._bits is None or self._values is None:
            raise RuntimeError("encoder.reset(x) must be called before step()")
        phase = t % self.period
        spikes = self._bits[phase]
        amplitude = (2.0 ** (-(1 + phase))) * self.v_th
        np.multiply(spikes, amplitude, out=self._values)
        return EncodedStep(values=self._values, spikes=spikes)


class BurstEncoder(InputEncoder):
    """Burst coding of the input: an IF neuron with burst threshold adaptation
    driven by a constant current equal to the pixel value.

    Not evaluated as an input coding in the paper (its Table 1 uses real, rate
    and phase inputs) but provided for completeness; it behaves like rate
    coding for small pixel values and emits short bursts for bright pixels.
    """

    coding = "burst"
    throughput_factor = 1.0

    def __init__(self, v_th: float = 0.125, beta: float = 2.0) -> None:
        self.threshold = BurstThreshold(v_th=v_th, beta=beta)
        self._state: Optional[IFNeuronState] = None

    def reset(self, x: np.ndarray, dtype: DTypeLike = None) -> None:
        super().reset(x, dtype)
        self._state = IFNeuronState(
            self.input.shape, reset_mode=ResetMode.SUBTRACT, dtype=self.dtype
        )
        self.threshold.reset(self.input.shape, dtype=self.dtype)

    def shrink_batch(self, keep: np.ndarray) -> None:
        super().shrink_batch(keep)
        keep = np.asarray(keep, dtype=np.intp)
        if self._state is not None:
            self._state.shrink_batch(keep)
        self.threshold.shrink_batch(keep)

    def step(self, t: int) -> EncodedStep:
        if self._state is None:
            raise RuntimeError("encoder.reset(x) must be called before step()")
        thresholds = self.threshold.thresholds(t)
        spikes, amplitudes = self._state.step(self.input, thresholds)
        self.threshold.update(
            spikes, self._state.spike_signals, spike_count=self._state.last_spike_count
        )
        return EncodedStep(values=amplitudes, spikes=spikes)


def make_encoder(
    coding: str,
    v_th: Optional[float] = None,
    phase_period: int = 8,
    beta: float = 2.0,
    seed: SeedLike = None,
    stochastic: bool = False,
) -> InputEncoder:
    """Build an input encoder by coding name.

    Resolution goes through the scheme registry
    (:mod:`repro.core.registry`), so registered extensions (e.g. ``"ttfs"``)
    work here without this function knowing about them.

    Parameters
    ----------
    coding:
        ``"real"``, ``"rate"``, ``"phase"``, ``"burst"`` or any registered
        coding name.
    v_th:
        Spike amplitude scale; defaults to the coding's registered default
        (1.0 for most, 0.125 for burst).
    phase_period:
        Bit-depth / period of phase coding (also the TTFS window).
    stochastic:
        For rate coding, use the Poisson variant instead of the deterministic
        integrate-and-fire one.
    """
    from repro.core.coding import CodingParams
    from repro.core.registry import build_encoder

    params = CodingParams(
        v_th=v_th, beta=beta, phase_period=phase_period, stochastic_input=stochastic
    )
    return build_encoder(coding, params=params, seed=seed)


# -- registry wiring ---------------------------------------------------------
# Placed after the encoder classes so this module stays importable while
# ``repro.core`` is still initialising (the registry module itself is
# runtime-import-free).  Factories receive a CodingParams whose ``v_th`` has
# been resolved against ``default_v_th``.
from repro.core.registry import register_encoder  # noqa: E402


@register_encoder(
    "real",
    default_v_th=1.0,
    description="deliver the analog value itself every step (no spikes; input-only)",
)
def _build_real_encoder(params, seed: SeedLike = None) -> InputEncoder:
    del params, seed
    return RealEncoder()


@register_encoder(
    "rate",
    default_v_th=1.0,
    description="spike rate proportional to the value (IF or Poisson input neuron)",
)
def _build_rate_encoder(params, seed: SeedLike = None) -> InputEncoder:
    if params.stochastic_input:
        return PoissonRateEncoder(v_th=params.v_th, seed=seed)
    return RateEncoder(v_th=params.v_th)


@register_encoder(
    "phase",
    default_v_th=1.0,
    description="k-bit weighted spikes, one value per period of k steps (Kim et al.)",
)
def _build_phase_encoder(params, seed: SeedLike = None) -> InputEncoder:
    del seed
    return PhaseEncoder(v_th=params.v_th, period=params.phase_period)


@register_encoder(
    "burst",
    default_v_th=0.125,
    description="IF neuron with burst threshold adaptation (this paper)",
)
def _build_burst_encoder(params, seed: SeedLike = None) -> InputEncoder:
    del seed
    return BurstEncoder(v_th=params.v_th, beta=params.beta)
