"""Run every experiment of the paper in one call.

``run_all`` is what the CLI's ``repro experiment all`` command and the
documentation's "reproduce everything" instructions use.  Each experiment
returns its rendered text block; callers decide whether to print or save it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.fig1 import format_fig1, run_fig1
from repro.experiments.fig2 import format_fig2, run_fig2
from repro.experiments.fig3 import format_fig3, run_fig3
from repro.experiments.fig4 import format_fig4, run_fig4
from repro.experiments.fig5 import format_fig5, run_fig5
from repro.experiments.sweep import run_all_schemes
from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.table2 import format_table2, run_table2
from repro.experiments.workloads import cifar10_workload, mnist_workload
from repro.utils.logging import get_logger

logger = get_logger("experiments.runner")

#: identifiers accepted by :func:`run_experiment`
EXPERIMENT_NAMES = ("fig1", "fig2", "table1", "fig3", "fig4", "table2", "fig5")


@dataclass
class RunnerConfig:
    """Scale knobs shared by all experiments.

    ``fast`` presets are sized for a quick sanity run (a couple of minutes);
    the default preset matches the benchmark harness.
    """

    time_steps: int = 150
    num_images: int = 24
    samples_per_class: int = 30
    table2_datasets: Sequence[str] = ("mnist", "cifar10")
    seed: int = 0

    @classmethod
    def fast(cls) -> "RunnerConfig":
        return cls(time_steps=60, num_images=8, samples_per_class=12, table2_datasets=("mnist",))


def run_experiment(name: str, config: Optional[RunnerConfig] = None) -> str:
    """Run one named experiment and return its rendered text output."""
    config = config or RunnerConfig()
    key = name.lower()
    if key not in EXPERIMENT_NAMES:
        raise ValueError(f"unknown experiment {name!r}; expected one of {EXPERIMENT_NAMES}")

    if key == "fig1":
        return format_fig1(run_fig1(time_steps=max(200, config.time_steps)))

    if key in ("fig2", "fig5"):
        workload = mnist_workload(samples_per_class=config.samples_per_class, seed=config.seed)
        if key == "fig2":
            points = run_fig2(
                workload=workload,
                time_steps=config.time_steps,
                num_images=max(4, config.num_images // 3),
                seed=config.seed,
            )
            return format_fig2(points)
        points = run_fig5(
            workload=workload,
            time_steps=config.time_steps,
            num_images=max(3, config.num_images // 4),
            seed=config.seed,
        )
        return format_fig5(points)

    if key == "table2":
        workloads = {}
        if "mnist" in config.table2_datasets:
            workloads["mnist"] = mnist_workload(
                samples_per_class=config.samples_per_class, seed=config.seed
            )
        if "cifar10" in config.table2_datasets:
            workloads["cifar10"] = cifar10_workload(
                samples_per_class=config.samples_per_class, seed=config.seed
            )
        rows = run_table2(
            datasets=tuple(config.table2_datasets),
            workloads=workloads,
            time_steps=config.time_steps,
            num_images=min(16, config.num_images),
            seed=config.seed,
        )
        return format_table2(rows)

    # table1 / fig3 / fig4 share the nine-scheme sweep
    workload = cifar10_workload(samples_per_class=config.samples_per_class, seed=config.seed)
    runs = run_all_schemes(
        workload,
        time_steps=config.time_steps,
        num_images=config.num_images,
        seed=config.seed,
    )
    if key == "table1":
        return format_table1(run_table1(runs=runs))
    if key == "fig3":
        return format_fig3(run_fig3(runs=runs))
    return format_fig4(run_fig4(runs=runs))


def run_all(
    config: Optional[RunnerConfig] = None,
    experiments: Sequence[str] = EXPERIMENT_NAMES,
    on_result: Optional[Callable[[str, str], None]] = None,
) -> Dict[str, str]:
    """Run the requested experiments and return ``{name: rendered text}``.

    The Table 1 / Fig. 3 / Fig. 4 trio shares one nine-scheme sweep so running
    all experiments costs roughly one sweep plus the smaller workloads.
    """
    config = config or RunnerConfig()
    outputs: Dict[str, str] = {}
    shared_runs = None
    shared_workload = None

    for name in experiments:
        key = name.lower()
        logger.info("running experiment %s", key)
        if key in ("table1", "fig3", "fig4"):
            if shared_runs is None:
                shared_workload = cifar10_workload(
                    samples_per_class=config.samples_per_class, seed=config.seed
                )
                shared_runs = run_all_schemes(
                    shared_workload,
                    time_steps=config.time_steps,
                    num_images=config.num_images,
                    seed=config.seed,
                )
            if key == "table1":
                outputs[key] = format_table1(run_table1(runs=shared_runs))
            elif key == "fig3":
                outputs[key] = format_fig3(run_fig3(runs=shared_runs))
            else:
                outputs[key] = format_fig4(run_fig4(runs=shared_runs))
        else:
            outputs[key] = run_experiment(key, config)
        if on_result is not None:
            on_result(key, outputs[key])
    return outputs
