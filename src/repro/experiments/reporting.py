"""Shared rendering helpers for the experiment harness."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.utils.tables import Table, format_float


def render_table(title: str, columns: Sequence[str], rows: Iterable[Dict[str, object]]) -> str:
    """Render a list of row dictionaries as an aligned text table."""
    table = Table(columns, title=title)
    table.add_rows(rows)
    return table.render()


def render_series(
    title: str,
    x: Sequence[float],
    series: Dict[str, Sequence[float]],
    x_label: str = "step",
    digits: int = 3,
    max_points: int = 12,
) -> str:
    """Render several named series over a shared x-axis as a compact table.

    Used for figure-style outputs (inference curves, sweeps): the series are
    sub-sampled to at most ``max_points`` rows so the printout stays readable.
    """
    x = list(x)
    if not x:
        return f"{title}\n(no data)"
    indices = np.linspace(0, len(x) - 1, num=min(max_points, len(x)), dtype=int)
    columns = [x_label] + list(series)
    rows = []
    for index in indices:
        row: Dict[str, object] = {x_label: x[index]}
        for name, values in series.items():
            values = list(values)
            row[name] = format_float(values[index], digits) if index < len(values) else "-"
        rows.append(row)
    return render_table(title, columns, rows)


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """A tiny unicode sparkline for quick visual inspection of a curve."""
    values = [float(v) for v in values]
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    span = hi - lo if hi > lo else 1.0
    indices = np.linspace(0, len(values) - 1, num=min(width, len(values)), dtype=int)
    return "".join(blocks[int((values[i] - lo) / span * (len(blocks) - 1))] for i in indices)
