"""Loss functions for training the convertible DNNs."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.ann.activations import softmax


class Loss:
    """Base class: losses return ``(value, gradient_wrt_logits)``."""

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
        raise NotImplementedError


class SoftmaxCrossEntropy(Loss):
    """Softmax + cross-entropy on integer or one-hot targets.

    The gradient is returned with respect to the raw logits, i.e. the softmax
    is fused with the loss for numerical stability.
    """

    def __init__(self, eps: float = 1e-12) -> None:
        self.eps = eps

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
        logits = np.asarray(logits, dtype=np.float64)
        if logits.ndim != 2:
            raise ValueError(f"logits must be (N, classes), got shape {logits.shape}")
        n, num_classes = logits.shape
        targets = np.asarray(targets)
        if targets.ndim == 1:
            if targets.shape[0] != n:
                raise ValueError("targets length must match logits batch size")
            one_hot = np.zeros_like(logits)
            one_hot[np.arange(n), targets.astype(int)] = 1.0
        elif targets.shape == logits.shape:
            one_hot = targets.astype(np.float64)
        else:
            raise ValueError(
                f"targets must be (N,) class indices or one-hot of shape {logits.shape}, "
                f"got {targets.shape}"
            )
        probs = softmax(logits, axis=1)
        value = float(-(one_hot * np.log(probs + self.eps)).sum() / n)
        grad = (probs - one_hot) / n
        return value, grad


class MeanSquaredError(Loss):
    """Mean squared error (used in tests and for regression-style checks)."""

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
        predictions = np.asarray(predictions, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"predictions and targets must share a shape, got "
                f"{predictions.shape} vs {targets.shape}"
            )
        diff = predictions - targets
        value = float(np.mean(diff**2))
        grad = 2.0 * diff / diff.size
        return value, grad
