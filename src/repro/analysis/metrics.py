"""Consolidated per-run inference metrics.

One :class:`InferenceMetrics` instance corresponds to one row of Table 1 or
Table 2: a coding scheme evaluated on a dataset with a given time budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.analysis.curves import latency_to_target, spikes_to_target
from repro.analysis.density import spiking_density


@dataclass
class InferenceMetrics:
    """Metrics of one SNN inference run (one table row).

    Attributes
    ----------
    scheme:
        "input-hidden" coding notation, e.g. ``"phase-burst"``.
    accuracy:
        Final SNN accuracy after ``time_steps`` steps.
    dnn_accuracy:
        Accuracy of the source DNN (the conversion target).
    time_steps:
        Simulated horizon.
    latency:
        Steps needed to reach the target accuracy (``None`` if never reached);
        when no target is specified this equals ``time_steps``.
    total_spikes:
        Network-wide spike count over the whole run and all evaluated samples.
    spikes_per_image:
        ``total_spikes / num_images``.
    num_neurons:
        Spiking neurons per sample (input + hidden layers).
    density:
        Spiking density at the reported latency.
    accuracy_curve / recorded_steps / cumulative_spikes:
        The underlying curves, kept for plotting and for Fig. 3/4 harnesses.
    extra:
        Free-form additional values (e.g. energy estimates).
    """

    scheme: str
    accuracy: float
    dnn_accuracy: float
    time_steps: int
    latency: Optional[int]
    total_spikes: int
    spikes_per_image: float
    num_neurons: int
    density: float
    num_images: int
    accuracy_curve: np.ndarray = field(repr=False, default_factory=lambda: np.zeros(0))
    recorded_steps: np.ndarray = field(repr=False, default_factory=lambda: np.zeros(0, dtype=int))
    cumulative_spikes: np.ndarray = field(repr=False, default_factory=lambda: np.zeros(0))
    extra: Dict[str, float] = field(default_factory=dict)

    def reached_target(self) -> bool:
        """True if the run reached its target accuracy within the horizon."""
        return self.latency is not None

    def as_row(self) -> Dict[str, object]:
        """Row representation used by the table renderer."""
        return {
            "scheme": self.scheme,
            "accuracy_%": round(self.accuracy * 100.0, 2),
            "dnn_accuracy_%": round(self.dnn_accuracy * 100.0, 2),
            "latency": self.latency if self.latency is not None else f">{self.time_steps}",
            "spikes": int(self.total_spikes),
            "spikes_per_image": round(self.spikes_per_image, 1),
            "density": round(self.density, 5),
            "neurons": self.num_neurons,
            **{k: (round(v, 4) if isinstance(v, float) else v) for k, v in self.extra.items()},
        }


def compute_inference_metrics(
    scheme: str,
    accuracy_curve: np.ndarray,
    recorded_steps: np.ndarray,
    cumulative_spikes: np.ndarray,
    num_neurons: int,
    num_images: int,
    dnn_accuracy: float,
    time_steps: int,
    target_accuracy: Optional[float] = None,
) -> InferenceMetrics:
    """Derive an :class:`InferenceMetrics` row from recorded curves.

    Parameters
    ----------
    accuracy_curve, recorded_steps:
        SNN accuracy at the recorded time steps (over the whole test set).
    cumulative_spikes:
        Cumulative network-wide spikes (summed over all test images) at every
        simulation step (length ``time_steps``).
    target_accuracy:
        If given, latency and the spike count are measured at the first step
        reaching the target; otherwise the full horizon is used.
    """
    accuracy_curve = np.asarray(accuracy_curve, dtype=np.float64)
    recorded_steps = np.asarray(recorded_steps)
    cumulative_spikes = np.asarray(cumulative_spikes, dtype=np.float64)
    if num_images <= 0:
        raise ValueError(f"num_images must be positive, got {num_images}")

    final_accuracy = float(accuracy_curve[-1]) if accuracy_curve.size else 0.0
    if target_accuracy is None:
        latency: Optional[int] = int(time_steps)
        spikes_at_latency = float(cumulative_spikes[-1]) if cumulative_spikes.size else 0.0
    else:
        latency = latency_to_target(accuracy_curve, recorded_steps, target_accuracy)
        spikes = spikes_to_target(
            accuracy_curve, recorded_steps, cumulative_spikes, target_accuracy
        )
        spikes_at_latency = (
            float(spikes)
            if spikes is not None
            else (float(cumulative_spikes[-1]) if cumulative_spikes.size else 0.0)
        )

    effective_latency = latency if latency is not None else time_steps
    total_spikes = float(cumulative_spikes[-1]) if cumulative_spikes.size else 0.0
    spikes_per_image = spikes_at_latency / num_images
    density = spiking_density(spikes_per_image, num_neurons, max(effective_latency, 1))

    return InferenceMetrics(
        scheme=scheme,
        accuracy=final_accuracy,
        dnn_accuracy=dnn_accuracy,
        time_steps=time_steps,
        latency=latency,
        total_spikes=int(total_spikes),
        spikes_per_image=float(total_spikes / num_images),
        num_neurons=num_neurons,
        density=density,
        num_images=num_images,
        accuracy_curve=accuracy_curve,
        recorded_steps=recorded_steps,
        cumulative_spikes=cumulative_spikes,
    )
