"""Integrate-and-fire neuron populations.

Implements the membrane dynamics of Eqs. 1–4 of the paper for a whole layer at
once (vectorised over the batch and the neuron dimensions):

* Eq. 2 — a neuron fires when its membrane potential reaches the (possibly
  time-varying, possibly per-neuron) threshold ``V_th(t)``.
* Eq. 3 — *reset-to-zero*: after a spike the membrane returns to the resting
  potential (0).
* Eq. 4 — *reset-by-subtraction*: the threshold value is subtracted instead,
  which preserves the residual charge and avoids the information loss that
  plagues reset-to-zero in converted SNNs (Rueckauer et al. [12, 13]).

The spike *amplitude* transmitted downstream equals the neuron's threshold at
firing time (weighted spikes, Eq. 5), which is what makes phase and burst
coding transmit more than one "unit" of information per spike.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

import numpy as np


class ResetMode(str, enum.Enum):
    """Membrane reset behaviour after a spike."""

    #: Reset the membrane to the resting potential (Eq. 3).
    ZERO = "zero"
    #: Subtract the firing threshold from the membrane (Eq. 4).
    SUBTRACT = "subtract"

    @classmethod
    def from_value(cls, value: "ResetMode | str") -> "ResetMode":
        if isinstance(value, ResetMode):
            return value
        try:
            return cls(value)
        except ValueError as exc:
            raise ValueError(
                f"reset mode must be one of {[m.value for m in cls]}, got {value!r}"
            ) from exc


class IFNeuronState:
    """Vectorised membrane state of one spiking layer.

    Parameters
    ----------
    shape:
        Full state shape including the batch dimension, e.g. ``(N, units)`` or
        ``(N, C, H, W)``.
    reset_mode:
        :class:`ResetMode` or its string value.
    v_rest:
        Resting potential used by reset-to-zero (default 0).
    allow_negative_membrane:
        If False the membrane is clamped at ``v_rest`` from below, which some
        neuromorphic hardware enforces.  The paper's model allows negative
        potentials, so the default is True.
    """

    def __init__(
        self,
        shape: Tuple[int, ...],
        reset_mode: "ResetMode | str" = ResetMode.SUBTRACT,
        v_rest: float = 0.0,
        allow_negative_membrane: bool = True,
    ) -> None:
        if not shape or any(int(dim) <= 0 for dim in shape):
            raise ValueError(f"shape must contain positive dimensions, got {shape}")
        self.shape = tuple(int(dim) for dim in shape)
        self.reset_mode = ResetMode.from_value(reset_mode)
        self.v_rest = float(v_rest)
        self.allow_negative_membrane = allow_negative_membrane
        self.v_mem = np.full(self.shape, self.v_rest, dtype=np.float64)
        self.total_spikes = 0

    def reset(self) -> None:
        """Return the membrane to the resting potential and clear counters."""
        self.v_mem.fill(self.v_rest)
        self.total_spikes = 0

    def step(self, z: np.ndarray, threshold: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Advance the population by one time step.

        Parameters
        ----------
        z:
            Post-synaptic potential (Eq. 1/5) accumulated this step; must be
            broadcastable to the state shape.
        threshold:
            Firing threshold ``V_th(t)`` per neuron (broadcastable).

        Returns
        -------
        spikes:
            Boolean array of emitted spikes (Eq. 2).
        amplitudes:
            Weighted spike amplitudes (``spikes * threshold``) transmitted to
            the next layer.
        """
        z = np.asarray(z, dtype=np.float64)
        threshold = np.broadcast_to(np.asarray(threshold, dtype=np.float64), self.shape)
        if np.any(threshold <= 0):
            raise ValueError("thresholds must be strictly positive")

        self.v_mem = self.v_mem + z
        spikes = self.v_mem >= threshold
        amplitudes = np.where(spikes, threshold, 0.0)

        if self.reset_mode is ResetMode.SUBTRACT:
            self.v_mem = self.v_mem - amplitudes
        else:
            self.v_mem = np.where(spikes, self.v_rest, self.v_mem)

        if not self.allow_negative_membrane:
            np.maximum(self.v_mem, self.v_rest, out=self.v_mem)

        self.total_spikes += int(spikes.sum())
        return spikes, amplitudes

    @property
    def num_neurons(self) -> int:
        """Number of neurons per sample (state size without the batch dim)."""
        size = 1
        for dim in self.shape[1:]:
            size *= dim
        return size

    def membrane_copy(self) -> np.ndarray:
        """A copy of the current membrane potentials (for tests / analysis)."""
        return self.v_mem.copy()


def expected_rate_spike_count(value: float, threshold: float, time_steps: int) -> int:
    """Number of spikes an IF neuron with constant input ``value`` and constant
    threshold emits in ``time_steps`` steps under reset-by-subtraction.

    Used by tests as an analytic reference: the neuron accumulates ``value``
    per step and emits ``floor(total / threshold)`` spikes overall, capped at
    one spike per time step.
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    if time_steps < 0:
        raise ValueError("time_steps must be non-negative")
    if value <= 0:
        return 0
    return int(min(time_steps, np.floor(value * time_steps / threshold + 1e-12)))
