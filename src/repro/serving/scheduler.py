"""Request queue and micro-batching scheduler.

A :class:`MicroBatcher` coalesces individual requests from many concurrent
clients into batches handed to a pool of workers:

* **submit** is non-blocking: the request joins a bounded **priority queue**
  (lower priority values run first; ties serve in submission order) and the
  caller gets a :class:`concurrent.futures.Future` that resolves to the
  handler's per-request result.  When the queue is at capacity, admission
  control sheds the **lowest-priority** queued request to make room for a
  more important one (its future fails with :class:`QueueFullError`) and
  rejects the submission outright when it is itself the least important —
  either way the raised/injected :class:`QueueFullError` carries a computed
  ``retry_after_s`` (estimated drain time from the current queue depth and
  the recent batch latency) that the HTTP layer surfaces as *429 Too Many
  Requests* with a ``Retry-After`` header.
* ``num_workers`` **worker threads** (one per session replica) drain the
  queue work-conservingly: each worker independently pulls the
  highest-priority queued requests into a batch and flushes when either
  ``max_batch_size`` requests have been collected or ``max_wait_ms`` has
  elapsed since its batch opened — whichever comes first.  Under load every
  replica stays busy and batches fill instantly; a lone request (of any
  priority) pays at most the wait window.  The handler learns which replica
  it is running on through :attr:`BatchInfo.replica`.
* **close** performs a graceful drain: no new submissions are admitted,
  every queued request is still executed (flushed immediately, without
  waiting out the batch window) across all workers, and every in-flight
  future resolves.

Time is read through an injectable ``clock`` (default
:func:`time.monotonic`), so tests can drive the ``max_wait_ms`` flush with a
fake clock instead of sleeping.
"""

from __future__ import annotations

import heapq
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.serving.metrics import ServerMetrics
from repro.utils.logging import get_logger

logger = get_logger("serving.scheduler")

#: priority of latency-sensitive traffic (served first)
PRIORITY_INTERACTIVE = 0
#: priority of throughput traffic (served when no interactive work waits,
#: shed first under queue pressure)
PRIORITY_BATCH = 10

_PRIORITY_NAMES = {
    "interactive": PRIORITY_INTERACTIVE,
    "batch": PRIORITY_BATCH,
}


def resolve_priority(value: object) -> int:
    """Normalise a request priority: a name (``interactive`` / ``batch``),
    an integer (lower runs first), or ``None`` → interactive."""
    if value is None:
        return PRIORITY_INTERACTIVE
    if isinstance(value, str):
        try:
            return _PRIORITY_NAMES[value.lower()]
        except KeyError:
            names = ", ".join(sorted(_PRIORITY_NAMES))
            raise ValueError(
                f"unknown priority {value!r} (expected one of: {names}, or an integer)"
            ) from None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"priority must be a name or an integer, got {value!r}")
    return int(value)


class QueueFullError(RuntimeError):
    """Raised by :meth:`MicroBatcher.submit` (or injected into a shed
    request's future) when admission control rejects work because the bounded
    queue is at capacity.

    ``retry_after_s`` is the batcher's estimate of when capacity frees up:
    the queued backlog divided by the pool's batch slots, times the recent
    per-batch latency.  The HTTP layer rounds it up into a ``Retry-After``
    header.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class BatcherClosedError(RuntimeError):
    """Raised by :meth:`MicroBatcher.submit` after the batcher was closed."""


@dataclass
class BatchInfo:
    """Context handed to the batch handler alongside the payloads."""

    size: int
    #: per-request milliseconds spent waiting in the queue, aligned with the
    #: payload list
    queue_ms: List[float] = field(default_factory=list)
    #: index of the worker (= session replica) executing this batch
    replica: int = 0


#: executes one micro-batch; must return one result per payload, in order
BatchHandler = Callable[[List[Any], BatchInfo], List[Any]]


class _Item:
    __slots__ = ("payload", "future", "enqueued_at", "priority", "seq")

    def __init__(self, payload: Any, enqueued_at: float, priority: int, seq: int) -> None:
        self.payload = payload
        self.future: Future = Future()
        self.enqueued_at = enqueued_at
        self.priority = priority
        self.seq = seq

    def __lt__(self, other: "_Item") -> bool:
        return (self.priority, self.seq) < (other.priority, other.seq)


class MicroBatcher:
    """Coalesce submitted requests into batches executed by a worker pool.

    Parameters
    ----------
    handler:
        ``handler(payloads, info) -> results`` executing one micro-batch;
        must return exactly one result per payload, in batch order.
        ``info.replica`` identifies the executing worker so handlers can
        route to per-replica state (e.g. one inference session per worker).
    max_batch_size:
        Flush as soon as this many requests are collected.
    max_wait_ms:
        Flush a non-full batch this many milliseconds after it opened.
    max_queue:
        Admission-control bound on queued (not yet collected) requests.
    num_workers:
        Worker threads draining the queue concurrently (= session replicas).
    metrics:
        Optional shared :class:`~repro.serving.metrics.ServerMetrics`.
    clock:
        Monotonic time source in seconds (injectable for fake-clock tests).
    """

    def __init__(
        self,
        handler: BatchHandler,
        *,
        max_batch_size: int = 8,
        max_wait_ms: float = 5.0,
        max_queue: int = 64,
        num_workers: int = 1,
        metrics: Optional[ServerMetrics] = None,
        clock: Callable[[], float] = time.monotonic,
        name: str = "batcher",
        start: bool = True,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self._handler = handler
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_ms) / 1000.0
        self.max_queue = int(max_queue)
        self.num_workers = int(num_workers)
        self.metrics = metrics or ServerMetrics()
        self._clock = clock
        self.name = name
        self._heap: List[_Item] = []
        self._seq = 0
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        #: recent per-batch execution seconds (EWMA feeding retry-after)
        self._recent_batch_s: Optional[float] = None
        self._busy_s = [0.0] * self.num_workers
        self._started_at: Optional[float] = None
        self._threads = [
            threading.Thread(
                target=self._worker,
                args=(index,),
                name=f"repro-serve-{name}-{index}",
                daemon=True,
            )
            for index in range(self.num_workers)
        ]
        if start:
            self.start()

    def start(self) -> "MicroBatcher":
        """Start the worker threads (for batchers created with ``start=False``,
        e.g. tests that want to queue submissions before collection begins)."""
        if self._started_at is None:
            self._started_at = self._clock()
        for thread in self._threads:
            if not thread.is_alive():
                thread.start()
        return self

    # -- client side -------------------------------------------------------
    def submit(self, payload: Any, priority: object = None) -> Future:
        """Enqueue one request; returns the future of its handler result.

        ``priority`` is a name or integer (see :func:`resolve_priority`);
        lower values are served first, and under queue pressure the least
        important queued request is shed to admit a more important one.
        """
        resolved = resolve_priority(priority)
        shed: Optional[_Item] = None
        with self._not_empty:
            if self._closed:
                raise BatcherClosedError(f"batcher {self.name!r} is closed")
            if len(self._heap) >= self.max_queue:
                retry_after = self._estimate_retry_after_locked()
                worst = max(self._heap, key=lambda item: (item.priority, item.seq))
                if worst.priority <= resolved:
                    self.metrics.record_reject()
                    raise QueueFullError(
                        f"batcher {self.name!r} queue is full "
                        f"({self.max_queue} requests waiting)",
                        retry_after_s=retry_after,
                    )
                # backpressure: shed the lowest-priority queued request to
                # make room for this more important one
                self._heap.remove(worst)
                heapq.heapify(self._heap)
                shed = worst
                self.metrics.record_shed()
            item = _Item(payload, self._clock(), resolved, self._seq)
            self._seq += 1
            heapq.heappush(self._heap, item)
            self.metrics.record_submit()
            self._not_empty.notify()
            if shed is not None:
                retry_after = self._estimate_retry_after_locked()
        if shed is not None:
            # resolve the shed future outside the lock: client callbacks on
            # the future must not run under (or deadlock against) the batcher
            shed.future.set_exception(
                QueueFullError(
                    f"batcher {self.name!r} shed this request for higher-priority "
                    f"work (queue of {self.max_queue} is full)",
                    retry_after_s=retry_after,
                )
            )
        return item.future

    @property
    def queue_depth(self) -> int:
        """Requests admitted but not yet collected into a batch."""
        with self._lock:
            return len(self._heap)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def estimate_retry_after(self) -> float:
        """Seconds until the current backlog has likely drained (the
        ``Retry-After`` guidance attached to 429 responses)."""
        with self._lock:
            return self._estimate_retry_after_locked()

    def _estimate_retry_after_locked(self) -> float:
        # batches ahead of a would-be new request, spread over the pool
        backlog = len(self._heap) + 1
        batches = -(-backlog // self.max_batch_size)  # ceil
        waves = -(-batches // self.num_workers)
        per_batch = self._recent_batch_s
        if per_batch is None:
            # nothing measured yet: the wait window is the only latency floor
            per_batch = max(self.max_wait_s, 0.05)
        return max(0.05, waves * per_batch)

    def replica_utilisation(self) -> List[float]:
        """Per-worker fraction of wall-clock time spent executing batches
        since :meth:`start` (a coarse saturation gauge for ``/metrics``)."""
        with self._lock:
            if self._started_at is None:
                return [0.0] * self.num_workers
            elapsed = self._clock() - self._started_at
            if elapsed <= 0.0:
                return [0.0] * self.num_workers
            return [min(1.0, busy / elapsed) for busy in self._busy_s]

    # -- worker side -------------------------------------------------------
    def _worker(self, replica: int) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            self._execute(batch, replica)

    def _next_batch(self) -> Optional[List[_Item]]:
        """Block until a batch is ready; ``None`` when closed and drained.

        A batch opens when a worker pops the first queued request; it flushes
        when full, when ``max_wait_ms`` has elapsed since it opened, or
        immediately when the batcher is draining.  The wait loop re-reads the
        clock every iteration, so an injected fake clock deterministically
        expires the window without real sleeping.  Workers pull
        highest-priority-first, so interactive requests overtake queued batch
        work without starving it (ties keep submission order).
        """
        with self._not_empty:
            while not self._heap:
                if self._closed:
                    return None
                self._not_empty.wait(0.05)
            batch = [heapq.heappop(self._heap)]
            deadline = self._clock() + self.max_wait_s
            while len(batch) < self.max_batch_size:
                if self._heap:
                    batch.append(heapq.heappop(self._heap))
                    continue
                remaining = deadline - self._clock()
                if remaining <= 0 or self._closed:
                    break
                self._not_empty.wait(min(remaining, 0.05))
            return batch

    def _execute(self, batch: List[_Item], replica: int) -> None:
        started = self._clock()
        queue_ms = [(started - item.enqueued_at) * 1000.0 for item in batch]
        info = BatchInfo(size=len(batch), queue_ms=queue_ms, replica=replica)
        try:
            results = self._handler([item.payload for item in batch], info)
        except BaseException as exc:  # noqa: BLE001 - forwarded to the futures
            logger.warning(
                "batcher %s[%d]: batch of %d failed: %s",
                self.name, replica, len(batch), exc,
            )
            self._record_execution(started, replica)
            self.metrics.record_batch(len(batch), error=True, queue_ms=queue_ms)
            for item in batch:
                item.future.set_exception(exc)
            return
        if len(results) != len(batch):
            exc = RuntimeError(
                f"batch handler returned {len(results)} results for {len(batch)} requests"
            )
            self._record_execution(started, replica)
            self.metrics.record_batch(len(batch), error=True, queue_ms=queue_ms)
            for item in batch:
                item.future.set_exception(exc)
            return
        elapsed_s = self._record_execution(started, replica)
        self.metrics.record_batch(
            len(batch),
            latencies_ms=[q + elapsed_s * 1000.0 for q in queue_ms],
            queue_ms=queue_ms,
        )
        for item, result in zip(batch, results):
            item.future.set_result(result)

    def _record_execution(self, started: float, replica: int) -> float:
        """Fold one batch execution into the EWMA + utilisation gauges."""
        elapsed = max(0.0, self._clock() - started)
        with self._lock:
            self._busy_s[replica] += elapsed
            if self._recent_batch_s is None:
                self._recent_batch_s = elapsed
            else:
                self._recent_batch_s += 0.3 * (elapsed - self._recent_batch_s)
        return elapsed

    # -- lifecycle ---------------------------------------------------------
    def close(self, timeout: Optional[float] = 30.0) -> None:
        """Graceful drain: reject new work, flush the queue, join the pool.

        Every request admitted before the close is still executed (the wait
        window is skipped) and its future resolves — callers blocked on
        results are released, never abandoned, whichever replica their batch
        lands on.  Idempotent.
        """
        with self._not_empty:
            already = self._closed
            self._closed = True
            self._not_empty.notify_all()
        if not already:
            logger.info("batcher %s: draining (%d queued)", self.name, self.queue_depth)
        current = threading.current_thread()
        for thread in self._threads:
            if thread.is_alive() and current is not thread:
                thread.join(timeout)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
