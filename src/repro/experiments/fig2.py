"""Figure 2: percentage of burst spikes and burst-length composition vs v_th.

The paper sweeps the burst base threshold ``v_th`` over
{0.5, 0.25, 0.125, 0.0625, 0.03125} and reports, for the hidden layers of a
converted network, which fraction of all spikes belongs to a burst and how
that fraction splits across burst lengths 2, 3, 4, 5 and >5.  Smaller ``v_th``
(finer precision) should produce more and longer bursts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.burst_stats import BURST_LENGTH_LABELS, BurstStatistics, burst_statistics
from repro.core.hybrid import HybridCodingScheme
from repro.core.pipeline import AggregatedRun
from repro.experiments.reporting import render_table
from repro.experiments.sweep import make_pipeline
from repro.experiments.workloads import Workload, mnist_workload

#: the v_th sweep of Fig. 2
FIG2_V_TH_VALUES = (0.5, 0.25, 0.125, 0.0625, 0.03125)


@dataclass
class Fig2Point:
    """One bar of Fig. 2: burst statistics at a given v_th."""

    v_th: float
    statistics: BurstStatistics

    def as_row(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "v_th": self.v_th,
            "burst_%": round(self.statistics.burst_fraction * 100.0, 2),
            "total_spikes": self.statistics.total_spikes,
            "mean_burst_len": round(self.statistics.mean_burst_length, 2),
        }
        for label in BURST_LENGTH_LABELS:
            row[f"len {label} %"] = round(self.statistics.composition[label] * 100.0, 2)
        return row


def hidden_spike_trains(run: AggregatedRun) -> np.ndarray:
    """Concatenate the sampled hidden-layer spike trains of a run.

    Returns a boolean array of shape ``(T, neurons)`` pooling the sampled
    neurons of every hidden spiking layer across the recorded batches.
    """
    columns: List[np.ndarray] = []
    for result in run.batch_results:
        for layer_record in result.record.layers:
            if not layer_record.is_spiking:
                continue
            trains = layer_record.spike_trains_flat()
            if trains.size:
                columns.append(trains)
    if not columns:
        return np.zeros((0, 0), dtype=bool)
    time_steps = min(c.shape[0] for c in columns)
    return np.concatenate([c[:time_steps] for c in columns], axis=1)


def run_fig2(
    workload: Optional[Workload] = None,
    v_th_values: Sequence[float] = FIG2_V_TH_VALUES,
    time_steps: int = 80,
    num_images: int = 8,
    input_coding: str = "phase",
    beta: float = 2.0,
    seed: int = 0,
) -> List[Fig2Point]:
    """Reproduce Fig. 2: burst composition for a sweep of v_th.

    Parameters
    ----------
    workload:
        Dataset + trained DNN; defaults to the MNIST-like CNN workload (small
        enough that recording full spike trains stays cheap).
    input_coding:
        Input coding paired with the burst hidden layers (paper: phase/real).
    """
    workload = workload or mnist_workload()
    points: List[Fig2Point] = []
    for v_th in v_th_values:
        pipeline = make_pipeline(
            workload,
            time_steps=time_steps,
            num_images=num_images,
            batch_size=num_images,
            record_trains=True,
            sample_fraction=0.1,
            seed=seed,
        )
        scheme = HybridCodingScheme.from_notation(
            f"{input_coding}-burst", v_th=v_th, beta=beta
        )
        run = pipeline.run_scheme(scheme, keep_batch_results=True)
        trains = hidden_spike_trains(run)
        points.append(Fig2Point(v_th=v_th, statistics=burst_statistics(trains)))
    return points


def format_fig2(points: List[Fig2Point]) -> str:
    """Render the Fig. 2 sweep as a table (one row per v_th)."""
    columns = ["v_th", "burst_%", "mean_burst_len", "total_spikes"] + [
        f"len {label} %" for label in BURST_LENGTH_LABELS
    ]
    return render_table(
        "Fig. 2 — burst spikes vs v_th (hidden layers, burst coding)",
        columns,
        [point.as_row() for point in points],
    )
