"""End-to-end integration tests: train → convert → simulate → analyse.

These exercise the whole stack the way the benchmark harness does, on tiny
workloads, and assert the soundness properties that make the reproduction
meaningful:

* a converted SNN under the proposed hybrid coding recovers the DNN accuracy,
* the SNN's long-run transmitted rates track the DNN's ReLU activations,
* the analysis pipeline (ISI / burst / firing / density / energy) runs on real
  simulation output and produces sane values,
* failure injection: mis-shaped inputs and unsupported layers are rejected
  with clear errors.
"""

import numpy as np
import pytest

from repro.analysis.burst_stats import burst_statistics
from repro.analysis.firing import firing_statistics
from repro.analysis.isi import isi_histogram
from repro.core.hybrid import HybridCodingScheme
from repro.core.pipeline import PipelineConfig, SNNInferencePipeline
from repro.conversion.converter import convert_to_snn
from repro.energy.architectures import TRUENORTH
from repro.energy.estimator import EnergyWorkload, estimate_energy
from repro.snn.encoding import RealEncoder
from repro.snn.layers import SpikingDense
from repro.snn.network import SimulationConfig
from repro.snn.thresholds import make_threshold


class TestConvertedSNNSoundness:
    def test_cnn_phase_burst_recovers_dnn_accuracy(self, trained_cnn, tiny_color_split):
        """The paper's headline configuration (phase input, burst hidden)
        matches the DNN accuracy on a convolutional network."""
        config = PipelineConfig(time_steps=60, batch_size=12, max_test_images=12, calibration_images=24)
        pipeline = SNNInferencePipeline(trained_cnn, tiny_color_split, config)
        run = pipeline.run_scheme(HybridCodingScheme.from_notation("phase-burst"))
        assert run.accuracy >= run.dnn_accuracy - 0.1

    def test_transmitted_rates_track_relu_activations(self, trained_mlp, tiny_image_split):
        """With real input and rate hidden coding, the hidden layer's average
        transmitted amplitude per step converges to the normalised DNN
        activation (the firing-rate ≈ activation correspondence that DNN→SNN
        conversion is built on)."""
        x = tiny_image_split.test.x[:6]
        calibration = tiny_image_split.train.x[:30]
        snn = convert_to_snn(
            trained_mlp,
            encoder=RealEncoder(),
            threshold_factory=lambda i, n: make_threshold("rate"),
            calibration_x=calibration,
        )
        hidden = next(layer for layer in snn.layers if isinstance(layer, SpikingDense))

        # normalised DNN activations of the hidden ReLU
        from repro.conversion.normalization import normalize_weights

        result = normalize_weights(trained_mlp, calibration_x=calibration, method="data")
        original = trained_mlp.get_weights()
        trained_mlp.set_weights(result.weights)
        try:
            activations = trained_mlp.forward_collect(x.reshape(x.shape[0], -1) if x.ndim == 2 else x)
            relu_index = next(
                i for i, layer in enumerate(trained_mlp.layers) if type(layer).__name__ == "ReLU"
            )
            target = activations[relu_index]
        finally:
            trained_mlp.set_weights(original)

        time_steps = 120
        totals = np.zeros_like(target)
        snn.encoder.reset(x)
        for layer in snn.layers:
            layer.reset(x.shape[0])
        values = None
        for t in range(time_steps):
            values = snn.encoder.step(t).values
            for layer in snn.layers:
                values = layer.step(values, t)
                if layer is hidden:
                    totals += values
                    break
        rates = totals / time_steps
        # compare on the units that are meaningfully active
        active = target > 0.05
        assert active.any()
        assert np.allclose(rates[active], target[active], atol=0.05)

    def test_zero_input_produces_no_hidden_spikes(self, trained_mlp, tiny_image_split):
        """A blank input through a bias-free path must not hallucinate spikes
        from the input layer (failure-injection sanity check)."""
        snn = convert_to_snn(
            trained_mlp,
            encoder=RealEncoder(),
            threshold_factory=lambda i, n: make_threshold("rate"),
            calibration_x=tiny_image_split.train.x[:20],
        )
        x = np.zeros((2,) + tiny_image_split.input_shape)
        result = snn.run(x, SimulationConfig(time_steps=20))
        # input layer (real coding) emits no spikes; hidden spikes can only be
        # caused by positive biases, so they are bounded by bias-driven firing
        assert result.record.input_record.total_spikes == 0

    def test_longer_horizon_never_reduces_accuracy_much(self, trained_mlp, tiny_image_split):
        """Accuracy as a function of time steps stabilises (does not collapse)."""
        config = PipelineConfig(time_steps=80, batch_size=16, max_test_images=16, calibration_images=30)
        pipeline = SNNInferencePipeline(trained_mlp, tiny_image_split, config)
        run = pipeline.run_scheme(HybridCodingScheme.from_notation("phase-burst"))
        final = run.accuracy
        mid_index = len(run.accuracy_curve) // 2
        assert final >= run.accuracy_curve[mid_index] - 0.1


class TestAnalysisOnSimulationOutput:
    @pytest.fixture(scope="class")
    def burst_run(self, trained_mlp, tiny_image_split):
        config = PipelineConfig(
            time_steps=60,
            batch_size=6,
            max_test_images=6,
            record_trains=True,
            sample_fraction=1.0,
            calibration_images=30,
        )
        pipeline = SNNInferencePipeline(trained_mlp, tiny_image_split, config)
        return pipeline.run_scheme(
            HybridCodingScheme.from_notation("real-burst"), keep_batch_results=True
        )

    def _hidden_trains(self, run):
        records = [r for r in run.batch_results[0].record.layers if r.is_spiking]
        return np.concatenate([r.spike_trains_flat() for r in records], axis=1)

    def test_isi_histogram_counts_match(self, burst_run):
        trains = self._hidden_trains(burst_run)
        _, counts = isi_histogram(trains, max_isi=60)
        spikes_per_neuron = trains.sum(axis=0)
        assert counts.sum() == int(np.sum(np.maximum(spikes_per_neuron - 1, 0)))

    def test_burst_statistics_consistent_with_spike_count(self, burst_run):
        trains = self._hidden_trains(burst_run)
        stats = burst_statistics(trains)
        assert stats.total_spikes == int(trains.sum())

    def test_firing_statistics_finite(self, burst_run):
        trains = self._hidden_trains(burst_run)
        stats = firing_statistics(trains)
        if stats.num_neurons:
            assert np.isfinite(stats.mean_log_rate)
            assert stats.mean_regularity >= 0.0

    def test_density_and_energy_chain(self, burst_run):
        metrics = burst_run.metrics()
        assert metrics.density > 0.0
        workload = EnergyWorkload(
            spikes_per_image=metrics.spikes_per_image,
            density=metrics.density,
            latency=float(metrics.time_steps),
            label="run",
        )
        estimate = estimate_energy(workload, workload, TRUENORTH)
        assert estimate.total == pytest.approx(1.0)


class TestFailureInjection:
    def test_wrong_input_shape_rejected(self, trained_mlp, tiny_image_split):
        snn = convert_to_snn(
            trained_mlp,
            encoder=RealEncoder(),
            threshold_factory=lambda i, n: make_threshold("burst"),
            calibration_x=tiny_image_split.train.x[:10],
        )
        with pytest.raises(ValueError):
            snn.run(np.zeros((2, 3, 3)), SimulationConfig(time_steps=3))

    def test_out_of_range_inputs_rejected(self, trained_mlp, tiny_image_split):
        snn = convert_to_snn(
            trained_mlp,
            encoder=RealEncoder(),
            threshold_factory=lambda i, n: make_threshold("burst"),
            calibration_x=tiny_image_split.train.x[:10],
        )
        bad = np.full((1,) + tiny_image_split.input_shape, 2.0)
        with pytest.raises(ValueError):
            snn.run(bad, SimulationConfig(time_steps=3))

    def test_unsupported_layer_rejected(self):
        from repro.ann.layers import Dense, Layer
        from repro.ann.model import Sequential

        class Exotic(Layer):
            def forward(self, x, training=False):
                return x

            def output_shape(self, input_shape):
                return input_shape

        model = Sequential([Exotic(), Dense(4, 2, seed=0)], input_shape=(4,))
        with pytest.raises(TypeError):
            convert_to_snn(
                model,
                encoder=RealEncoder(),
                threshold_factory=lambda i, n: make_threshold("rate"),
                calibration_x=np.random.default_rng(0).uniform(size=(4, 4)),
            )
