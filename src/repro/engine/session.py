"""Reusable serving session: prepare once, serve many batches.

An :class:`InferenceSession` pins down a converted network and one simulation
configuration, then serves any number of input batches through the layered
engine.  The expensive work happens once and is amortised across requests:

* **build** — the DNN→SNN conversion (when constructed via
  :meth:`InferenceSession.from_model`) happens once per session,
* **plan** — the dtype and compute-backend resolution and the snapshot
  schedule are computed once, and the per-geometry kernel plans, sparsity
  calibrations and scratch buffers cached inside the network's layers
  survive across batches (all kernel hot paths run on the plan's resolved
  :class:`~repro.backends.base.KernelBackend`),
* **run** — every :meth:`run` call only pays the per-batch state reset and
  the step loop.

Results are bit-identical to fresh one-shot simulations of an identically
built network in both dtypes (for deterministic encoders; a stochastic
Poisson input encoder advances its RNG stream across requests, exactly as it
would across sequential batches).  The pipeline serves every batch of
``run_scheme`` through a session, and the CLI / experiments route through
the pipeline.

Thread safety
-------------
A session is **single-flight**: the network's layers hold shared plan
buffers, scratch arrays and recording state, so only one simulation may be
in flight per session at any time.  :meth:`InferenceSession.run` enforces
this with an internal lock — concurrent callers (e.g. the serving engine's
batcher threads, or user threads sharing one session) serialise instead of
corrupting each other's buffers.  For *parallel* execution build one session
per thread (each owns its own converted network) or use the sharded
evaluation path.
"""

from __future__ import annotations

import threading
from typing import Optional

import numpy as np

from repro.ann.model import Sequential
from repro.conversion.converter import ConversionConfig
from repro.conversion.normalization import NormalizationResult
from repro.core.hybrid import HybridCodingScheme
from repro.engine.build import build_network
from repro.engine.plan import SimulationPlan, plan_simulation
from repro.engine.run import execute
from repro.snn.network import SimulationConfig, SimulationResult, SpikingNetwork
from repro.utils.rng import SeedLike


class InferenceSession:
    """Serve repeated inference requests over one converted network.

    Parameters
    ----------
    network:
        The converted :class:`~repro.snn.network.SpikingNetwork` (build it
        with :func:`repro.engine.build.build_network`, or use
        :meth:`from_model`).
    config:
        Simulation parameters shared by every request (defaults to
        :class:`~repro.snn.network.SimulationConfig`).
    """

    def __init__(
        self, network: SpikingNetwork, config: Optional[SimulationConfig] = None
    ) -> None:
        self.network = network
        self.config = config or SimulationConfig()
        self._plan: Optional[SimulationPlan] = None
        # the network's layers hold shared plan buffers and scratch arrays;
        # one simulation at a time per session (see "Thread safety" above)
        self._run_lock = threading.RLock()
        #: number of batches served so far
        self.batches_served = 0
        #: number of images served so far
        self.images_served = 0

    @classmethod
    def from_model(
        cls,
        model: Sequential,
        scheme: HybridCodingScheme,
        *,
        config: Optional[SimulationConfig] = None,
        conversion: Optional[ConversionConfig] = None,
        normalization: Optional[NormalizationResult] = None,
        calibration_x: Optional[np.ndarray] = None,
        seed: SeedLike = None,
    ) -> "InferenceSession":
        """Build (convert) and wrap a network for ``scheme`` in one call."""
        network = build_network(
            model,
            scheme,
            conversion=conversion,
            normalization=normalization,
            calibration_x=calibration_x,
            seed=seed,
        )
        return cls(network, config)

    @property
    def plan(self) -> SimulationPlan:
        """The session's (lazily built, reused) simulation plan."""
        if self._plan is None:
            self._plan = plan_simulation(self.network, self.config)
        return self._plan

    def run(
        self, x: np.ndarray, labels: Optional[np.ndarray] = None
    ) -> SimulationResult:
        """Simulate one input batch and return its result.

        Safe to call from multiple threads: calls serialise on the session's
        internal lock (the prepare/execute pair mutates shared layer state,
        so overlapping runs would corrupt each other's buffers).
        """
        with self._run_lock:
            result = execute(self.plan.prepare(x), labels=labels)
            self.batches_served += 1
            self.images_served += result.batch_size
        return result

    def describe(self) -> str:
        """One-line summary used in logs."""
        return (
            f"InferenceSession({self.network.name!r}, dtype={self.plan.dtype}, "
            f"time_steps={self.config.time_steps}, batches_served={self.batches_served})"
        )
