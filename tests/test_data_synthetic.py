"""Tests for repro.data.synthetic and repro.data.transforms."""

import numpy as np
import pytest

from repro.data.synthetic import (
    SyntheticImageConfig,
    load_dataset,
    make_cifar10_like,
    make_cifar100_like,
    make_classification_images,
    make_mnist_like,
)
from repro.data.transforms import clip01, flatten_images, normalize_minmax, standardize


class TestSyntheticImageConfig:
    def test_defaults_valid(self):
        SyntheticImageConfig()

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            SyntheticImageConfig(image_shape=(28, 28))

    def test_rejects_zero_classes(self):
        with pytest.raises(ValueError):
            SyntheticImageConfig(num_classes=0)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            SyntheticImageConfig(occlusion_probability=1.5)


class TestMakeClassificationImages:
    def test_shapes_and_ranges(self):
        config = SyntheticImageConfig(num_classes=3, image_shape=(1, 10, 10), samples_per_class=5)
        data = make_classification_images(config, seed=0)
        assert data.x.shape == (15, 1, 10, 10)
        assert data.y.shape == (15,)
        assert data.x.min() >= 0.0 and data.x.max() <= 1.0
        assert data.num_classes == 3

    def test_all_classes_present(self):
        config = SyntheticImageConfig(num_classes=5, image_shape=(1, 8, 8), samples_per_class=4)
        data = make_classification_images(config, seed=1)
        assert set(np.unique(data.y)) == set(range(5))

    def test_deterministic_given_seed(self):
        config = SyntheticImageConfig(num_classes=2, image_shape=(1, 8, 8), samples_per_class=3)
        a = make_classification_images(config, seed=5)
        b = make_classification_images(config, seed=5)
        assert np.array_equal(a.x, b.x)
        assert np.array_equal(a.y, b.y)

    def test_different_seeds_differ(self):
        config = SyntheticImageConfig(num_classes=2, image_shape=(1, 8, 8), samples_per_class=3)
        a = make_classification_images(config, seed=1)
        b = make_classification_images(config, seed=2)
        assert not np.array_equal(a.x, b.x)

    def test_classes_are_distinguishable(self):
        """Per-class mean images should differ substantially between classes."""
        config = SyntheticImageConfig(
            num_classes=3, image_shape=(1, 12, 12), samples_per_class=10, noise_std=0.05
        )
        data = make_classification_images(config, seed=2)
        means = [data.x[data.y == c].mean(axis=0) for c in range(3)]
        for i in range(3):
            for j in range(i + 1, 3):
                assert np.abs(means[i] - means[j]).mean() > 0.02

    def test_noise_free_config(self):
        config = SyntheticImageConfig(
            num_classes=2,
            image_shape=(1, 8, 8),
            samples_per_class=3,
            noise_std=0.0,
            max_shift=0,
            brightness_jitter=0.0,
            contrast_jitter=0.0,
            occlusion_probability=0.0,
        )
        data = make_classification_images(config, seed=0)
        # without augmentation every sample of a class is identical
        for c in range(2):
            cls = data.x[data.y == c]
            assert np.allclose(cls, cls[0])


class TestNamedDatasets:
    def test_mnist_like_shapes(self):
        split = make_mnist_like(samples_per_class=4, seed=0)
        assert split.input_shape == (1, 28, 28)
        assert split.num_classes == 10

    def test_cifar10_like_shapes(self):
        split = make_cifar10_like(samples_per_class=4, seed=0)
        assert split.input_shape == (3, 32, 32)
        assert split.num_classes == 10

    def test_cifar100_like_shapes(self):
        split = make_cifar100_like(samples_per_class=2, seed=0)
        assert split.input_shape == (3, 32, 32)
        assert split.num_classes == 100

    @pytest.mark.parametrize("name", ["mnist", "cifar10", "mnist-like", "CIFAR10"])
    def test_load_dataset_known_names(self, name):
        split = load_dataset(name, samples_per_class=4, seed=0)
        assert len(split.train) > 0 and len(split.test) > 0

    def test_load_dataset_unknown(self):
        with pytest.raises(ValueError):
            load_dataset("imagenet")


class TestTransforms:
    def test_normalize_minmax_range(self):
        x = np.array([-5.0, 0.0, 5.0])
        normalized = normalize_minmax(x)
        assert normalized.min() == 0.0 and normalized.max() == 1.0

    def test_normalize_minmax_constant_input(self):
        assert np.allclose(normalize_minmax(np.full(5, 3.0)), 0.0)

    def test_standardize(self):
        x = np.random.default_rng(0).normal(5.0, 2.0, size=1000)
        standardized, mean, std = standardize(x)
        assert abs(standardized.mean()) < 1e-9
        assert abs(standardized.std() - 1.0) < 1e-9
        assert mean == pytest.approx(x.mean())
        assert std == pytest.approx(x.std())

    def test_standardize_constant(self):
        standardized, _, std = standardize(np.full(10, 2.0))
        assert std == 1.0
        assert np.allclose(standardized, 0.0)

    def test_clip01(self):
        clipped = clip01(np.array([-1.0, 0.5, 2.0]))
        assert np.array_equal(clipped, [0.0, 0.5, 1.0])

    def test_flatten_images(self):
        x = np.zeros((4, 3, 5, 5))
        assert flatten_images(x).shape == (4, 75)

    def test_flatten_passthrough_2d(self):
        x = np.zeros((4, 10))
        assert flatten_images(x).shape == (4, 10)

    def test_flatten_rejects_3d(self):
        with pytest.raises(ValueError):
            flatten_images(np.zeros((4, 5, 5)))
