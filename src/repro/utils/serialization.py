"""Saving and loading trained model weights.

Training the DNN is the slowest part of the pipeline, so the experiment
harness and the examples can persist trained weights to a compressed ``.npz``
archive and reload them later (or ship them with a paper artifact).  Only the
parameters are stored — architectures are rebuilt from code, which keeps the
format trivial and forward-compatible.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.ann.model import Sequential

#: archive key separating layer index and parameter name
_KEY_SEPARATOR = "::"
#: metadata keys stored alongside the weights
_META_NUM_LAYERS = "__num_layers__"
_META_MODEL_NAME = "__model_name__"


def weights_to_arrays(weights: List[Dict[str, np.ndarray]]) -> Dict[str, np.ndarray]:
    """Flatten a per-layer weight list into a flat ``{key: array}`` mapping."""
    arrays: Dict[str, np.ndarray] = {}
    for index, layer_weights in enumerate(weights):
        for name, value in layer_weights.items():
            arrays[f"{index}{_KEY_SEPARATOR}{name}"] = np.asarray(value)
    return arrays


def arrays_to_weights(arrays: Dict[str, np.ndarray], num_layers: int) -> List[Dict[str, np.ndarray]]:
    """Rebuild the per-layer weight list from a flat mapping."""
    weights: List[Dict[str, np.ndarray]] = [{} for _ in range(num_layers)]
    for key, value in arrays.items():
        if key.startswith("__"):
            continue
        index_text, _, name = key.partition(_KEY_SEPARATOR)
        if not name:
            raise ValueError(f"malformed weight key {key!r}")
        index = int(index_text)
        if not 0 <= index < num_layers:
            raise ValueError(
                f"weight key {key!r} refers to layer {index} but the archive declares "
                f"{num_layers} layers"
            )
        weights[index][name] = np.asarray(value)
    return weights


def save_model_weights(model: Sequential, path: Union[str, Path]) -> Path:
    """Save a model's parameters to a compressed ``.npz`` archive.

    Returns the path written.  The archive stores the number of layers and the
    model name as metadata so :func:`load_model_weights` can validate the
    target architecture.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = weights_to_arrays(model.get_weights())
    arrays[_META_NUM_LAYERS] = np.asarray(len(model.layers))
    arrays[_META_MODEL_NAME] = np.asarray(model.name)
    np.savez_compressed(path, **arrays)
    # np.savez appends .npz only when missing; normalise the returned path.
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    return path


def load_model_weights(model: Sequential, path: Union[str, Path], strict_name: bool = False) -> Sequential:
    """Load parameters saved by :func:`save_model_weights` into ``model``.

    Parameters
    ----------
    model:
        A freshly built model with the same architecture as the saved one.
    strict_name:
        If True, require the archive's model name to match ``model.name``.
    """
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path, allow_pickle=False) as archive:
        arrays = {key: archive[key] for key in archive.files}
    if _META_NUM_LAYERS not in arrays:
        raise ValueError(f"{path} is not a repro weight archive (missing metadata)")
    num_layers = int(arrays[_META_NUM_LAYERS])
    if num_layers != len(model.layers):
        raise ValueError(
            f"architecture mismatch: archive has {num_layers} layers, model has "
            f"{len(model.layers)}"
        )
    if strict_name:
        saved_name = str(arrays.get(_META_MODEL_NAME, ""))
        if saved_name != model.name:
            raise ValueError(
                f"model name mismatch: archive {saved_name!r} vs model {model.name!r}"
            )
    model.set_weights(arrays_to_weights(arrays, num_layers))
    return model
