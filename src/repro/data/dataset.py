"""Dataset containers and batching helpers used by the ANN trainer and the SNN
simulator.

Conventions
-----------
* Images are stored channel-first as ``(N, C, H, W)`` float arrays in
  ``[0, 1]``; flat feature matrices are ``(N, D)``.
* Labels are integer class indices ``(N,)``; :func:`one_hot` converts them to
  ``(N, num_classes)`` when a loss requires it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Convert integer labels to a one-hot matrix.

    Parameters
    ----------
    labels:
        Integer array of shape ``(N,)`` with values in ``[0, num_classes)``.
    num_classes:
        Number of classes (columns of the result).
    """
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if num_classes <= 0:
        raise ValueError(f"num_classes must be positive, got {num_classes}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError(
            f"labels must lie in [0, {num_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


@dataclass
class Dataset:
    """A supervised dataset: inputs ``x`` and integer labels ``y``.

    Attributes
    ----------
    x:
        Input array, either images ``(N, C, H, W)`` or features ``(N, D)``.
    y:
        Integer labels ``(N,)``.
    num_classes:
        Number of distinct classes the labels can take.
    name:
        Human-readable identifier used in logs and experiment reports.
    """

    x: np.ndarray
    y: np.ndarray
    num_classes: int
    name: str = "dataset"

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=np.float64)
        self.y = np.asarray(self.y, dtype=np.int64)
        if self.x.shape[0] != self.y.shape[0]:
            raise ValueError(
                f"x and y must have the same first dimension: "
                f"{self.x.shape[0]} vs {self.y.shape[0]}"
            )
        if self.y.ndim != 1:
            raise ValueError(f"y must be 1-D, got shape {self.y.shape}")
        if self.num_classes <= 0:
            raise ValueError(f"num_classes must be positive, got {self.num_classes}")
        if self.y.size and self.y.max() >= self.num_classes:
            raise ValueError(
                f"labels exceed num_classes={self.num_classes}: max label {self.y.max()}"
            )

    def __len__(self) -> int:
        return int(self.x.shape[0])

    @property
    def input_shape(self) -> Tuple[int, ...]:
        """Per-sample input shape (without the batch dimension)."""
        return tuple(self.x.shape[1:])

    @property
    def is_image(self) -> bool:
        """True if samples are channel-first images."""
        return self.x.ndim == 4

    def labels_one_hot(self) -> np.ndarray:
        """Labels as a one-hot matrix of shape ``(N, num_classes)``."""
        return one_hot(self.y, self.num_classes)

    def subset(self, indices: np.ndarray, name: Optional[str] = None) -> "Dataset":
        """Return a new dataset restricted to ``indices``."""
        indices = np.asarray(indices)
        return Dataset(
            x=self.x[indices],
            y=self.y[indices],
            num_classes=self.num_classes,
            name=name or self.name,
        )

    def take(self, count: int, name: Optional[str] = None) -> "Dataset":
        """Return the first ``count`` samples (useful for fast benchmarks)."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return self.subset(np.arange(min(count, len(self))), name=name)

    def shuffled(self, seed: SeedLike = None) -> "Dataset":
        """Return a copy with samples shuffled."""
        rng = as_rng(seed)
        order = rng.permutation(len(self))
        return self.subset(order)

    def class_counts(self) -> np.ndarray:
        """Number of samples per class, shape ``(num_classes,)``."""
        return np.bincount(self.y, minlength=self.num_classes)


@dataclass
class DataSplit:
    """A train / test split of one synthetic task."""

    train: Dataset
    test: Dataset
    name: str = "split"
    metadata: dict = field(default_factory=dict)

    @property
    def num_classes(self) -> int:
        return self.train.num_classes

    @property
    def input_shape(self) -> Tuple[int, ...]:
        return self.train.input_shape


def train_test_split(
    dataset: Dataset,
    test_fraction: float = 0.2,
    seed: SeedLike = None,
    stratified: bool = True,
) -> DataSplit:
    """Split ``dataset`` into train and test subsets.

    Parameters
    ----------
    dataset:
        The dataset to split.
    test_fraction:
        Fraction of samples placed in the test subset (0 < f < 1).
    seed:
        RNG seed controlling the shuffle.
    stratified:
        If True (default) each class contributes proportionally to the test
        set, which keeps small synthetic test sets balanced.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = as_rng(seed)
    n = len(dataset)
    if stratified:
        test_idx = []
        train_idx = []
        for cls in range(dataset.num_classes):
            cls_idx = np.flatnonzero(dataset.y == cls)
            rng.shuffle(cls_idx)
            n_test = int(round(len(cls_idx) * test_fraction))
            test_idx.append(cls_idx[:n_test])
            train_idx.append(cls_idx[n_test:])
        test_indices = np.concatenate(test_idx) if test_idx else np.array([], dtype=int)
        train_indices = np.concatenate(train_idx) if train_idx else np.array([], dtype=int)
        rng.shuffle(test_indices)
        rng.shuffle(train_indices)
    else:
        order = rng.permutation(n)
        n_test = int(round(n * test_fraction))
        test_indices = order[:n_test]
        train_indices = order[n_test:]
    return DataSplit(
        train=dataset.subset(train_indices, name=f"{dataset.name}-train"),
        test=dataset.subset(test_indices, name=f"{dataset.name}-test"),
        name=dataset.name,
    )


def iterate_minibatches(
    x: np.ndarray,
    y: np.ndarray,
    batch_size: int,
    shuffle: bool = True,
    seed: SeedLike = None,
    drop_last: bool = False,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield ``(x_batch, y_batch)`` minibatches.

    Parameters
    ----------
    batch_size:
        Number of samples per batch; the final smaller batch is yielded unless
        ``drop_last`` is True.
    shuffle:
        Shuffle sample order before batching.
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    x = np.asarray(x)
    y = np.asarray(y)
    if x.shape[0] != y.shape[0]:
        raise ValueError("x and y must have the same number of samples")
    n = x.shape[0]
    indices = np.arange(n)
    if shuffle:
        as_rng(seed).shuffle(indices)
    for start in range(0, n, batch_size):
        batch = indices[start : start + batch_size]
        if drop_last and batch.shape[0] < batch_size:
            break
        yield x[batch], y[batch]
