"""Concurrent serving demo: micro-batching, replicas, priorities, quotas.

Starts a :class:`~repro.serving.engine.ServingEngine` (and, to show the full
stack, the stdlib HTTP front end on an ephemeral port) over a small trained
workload, then answers the same set of classify requests two ways:

1. **sequential single-image runs** — each image simulated alone through one
   shared session, the way independent callers without a serving layer
   would;
2. **concurrent clients through the micro-batching scheduler** — requests
   submitted together, coalesced into batches of up to ``max_batch_size``,
   one simulation serving several requests.

The printed metrics show the batch-size histogram (proof the scheduler
coalesced) and the wall-clock amortisation; the predictions are identical in
both modes.

It then scales the same workload out over a **replica session pool**
(``num_replicas=2``: two inference sessions sharing one set of float64
weight masters, drained by two batcher workers), submits a mix of
``interactive`` and ``batch`` **priority** traffic, and demonstrates the
per-client **rate limits**: a client that exceeds its ``max_rps`` budget gets
HTTP 429 with a computed ``Retry-After`` while other clients sail through.

Run with:  PYTHONPATH=src python examples/serving_client.py
"""

import json
import time
import urllib.error
import urllib.request

from repro.experiments.workloads import build_workload
from repro.serving.engine import ServingConfig, ServingEngine
from repro.serving.http import ServingHTTPServer

NUM_REQUESTS = 16
TIME_STEPS = 60
SCHEME = "phase-burst"


def main() -> None:
    print("training the served workload (synthetic MNIST, small CNN) ...")
    workload = build_workload(
        dataset="mnist", model="small_cnn", samples_per_class=12, epochs=8, seed=0
    )
    images = workload.data.test.x[:NUM_REQUESTS]

    engine = ServingEngine(
        workload.model,
        workload.data.train.x,
        ServingConfig(
            max_batch_size=8, max_wait_ms=25.0, time_steps=TIME_STEPS, seed=0
        ),
    )
    engine.warm(SCHEME)

    # -- baseline: each request simulated alone, one after another ---------
    started = time.perf_counter()
    sequential = [engine.classify_sync(image, SCHEME) for image in images]
    sequential_s = time.perf_counter() - started
    # classify_sync waits for each answer before submitting the next request,
    # so every one of these rode in a batch of exactly 1
    assert all(result.batch_size == 1 for result in sequential)

    # -- concurrent clients: submit everything, let the scheduler batch ----
    started = time.perf_counter()
    futures = [engine.classify(image, SCHEME) for image in images]
    batched = [future.result(timeout=120) for future in futures]
    batched_s = time.perf_counter() - started

    assert [r.prediction for r in batched] == [r.prediction for r in sequential]
    histogram = engine.metrics.batch_size_histogram()
    print(f"\n{NUM_REQUESTS} requests, {TIME_STEPS} steps, scheme {SCHEME}")
    print(f"sequential single-image runs : {sequential_s * 1000:8.1f} ms total")
    print(f"micro-batched concurrent run : {batched_s * 1000:8.1f} ms total "
          f"({sequential_s / batched_s:.1f}x amortisation)")
    print(f"batch-size histogram         : {histogram}")
    print(f"largest coalesced batch      : {engine.metrics.max_batch_size_seen()}")

    # -- the same engine behind the HTTP front end -------------------------
    with ServingHTTPServer(engine, port=0, default_scheme=SCHEME).start() as server:
        health = json.load(urllib.request.urlopen(server.url + "/healthz", timeout=30))
        body = json.dumps({"image": images[0].tolist()}).encode("utf-8")
        request = urllib.request.Request(
            server.url + "/v1/classify",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        answer = json.load(urllib.request.urlopen(request, timeout=60))
        metrics = json.load(urllib.request.urlopen(server.url + "/metrics", timeout=30))
        print(f"\nHTTP front end on {server.url}")
        print(f"/healthz      : {health['status']}, schemes {health['schemes_loaded']}")
        print(f"/v1/classify  : prediction={answer['prediction']} "
              f"(queue {answer['queue_ms']} ms, batch {answer['batch_ms']} ms)")
        print(f"/metrics      : {metrics['requests_total']} requests, "
              f"p95 latency {metrics['latency_ms']['p95']} ms")
    print("server drained cleanly")

    # -- replica scale-out, priorities, per-client rate limits -------------
    print("\nscaling out: 2 session replicas, priority traffic, rate limits ...")
    engine = ServingEngine(
        workload.model,
        workload.data.train.x,
        ServingConfig(
            max_batch_size=8,
            max_wait_ms=25.0,
            time_steps=TIME_STEPS,
            num_replicas=2,      # two sessions share one set of weight masters
            max_rps=2.0,         # per-client token bucket: 2 req/s ...
            rate_burst=3.0,      # ... with a burst allowance of 3
            seed=0,
        ),
    )
    engine.warm(SCHEME)
    # interactive requests overtake queued batch work; lower value = sooner
    futures = [
        engine.classify(image, SCHEME, priority="batch", client_id=f"tenant-{i % 4}")
        for i, image in enumerate(images[:8])
    ] + [
        engine.classify(images[8], SCHEME, priority="interactive", client_id="vip")
    ]
    answers = [future.result(timeout=120) for future in futures]
    stats = engine.stats()["sessions"][SCHEME]
    print(f"replicas                     : {stats['num_replicas']} "
          f"(batches per replica {stats['batches_per_replica']})")
    print(f"replica utilisation          : {stats['replica_utilisation']}")
    print(f"replicas that served answers : {sorted({a.replica for a in answers})}")

    with ServingHTTPServer(engine, port=0, default_scheme=SCHEME).start() as server:
        body = json.dumps({"image": images[0].tolist()}).encode("utf-8")
        statuses = []
        retry_after = None
        for _ in range(6):  # burst past the 3-token allowance
            request = urllib.request.Request(
                server.url + "/v1/classify",
                data=body,
                headers={"Content-Type": "application/json",
                         "X-API-Key": "greedy-client"},
            )
            try:
                with urllib.request.urlopen(request, timeout=60) as response:
                    statuses.append(response.status)
                    json.load(response)
            except urllib.error.HTTPError as error:
                statuses.append(error.code)
                retry_after = error.headers.get("Retry-After")
                json.load(error)
        print(f"\ngreedy client statuses       : {statuses}")
        print(f"429 Retry-After guidance     : {retry_after} s")
    print("server drained cleanly")


if __name__ == "__main__":
    main()
