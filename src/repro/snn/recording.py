"""Spike recording during SNN simulation.

Two levels of detail are supported:

* **counts** — number of spikes per layer per time step (always recorded);
  this is all that Table 1 / Table 2 (spike counts, spiking density, energy)
  need.
* **trains** — full boolean spike trains for a sampled subset of neurons per
  layer; needed by the spike-pattern analyses (ISI histograms of Fig. 1,
  burst-length composition of Fig. 2, the firing rate / regularity scatter of
  Fig. 5).  Sampling mirrors the paper, which analyses 10% of the neurons of
  each layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.utils.rng import SeedLike, as_rng


@dataclass
class LayerRecord:
    """Recorded spiking activity of one layer."""

    name: str
    num_neurons: int
    is_spiking: bool
    #: spikes emitted by the whole layer at each time step, length T
    spike_counts: List[int] = field(default_factory=list)
    #: flat indices (within a sample's neuron array) of the sampled neurons
    sampled_indices: Optional[np.ndarray] = None
    #: per-step boolean arrays of shape (batch, n_sampled); stacked on demand
    _train_steps: List[np.ndarray] = field(default_factory=list)

    def record_step(self, spikes: Optional[np.ndarray], record_trains: bool) -> None:
        """Record one simulation step given the layer's boolean spike array."""
        if spikes is None:
            self.spike_counts.append(0)
            if record_trains and self.sampled_indices is not None:
                self._train_steps.append(
                    np.zeros((1, len(self.sampled_indices)), dtype=bool)
                )
            return
        self.spike_counts.append(int(np.count_nonzero(spikes)))
        if record_trains and self.sampled_indices is not None and self.sampled_indices.size:
            flat = spikes.reshape(spikes.shape[0], -1)
            self._train_steps.append(flat[:, self.sampled_indices].copy())

    @property
    def total_spikes(self) -> int:
        return int(sum(self.spike_counts))

    def spike_trains(self) -> np.ndarray:
        """Sampled spike trains as a boolean array of shape (T, batch, n_sampled)."""
        if not self._train_steps:
            return np.zeros((0, 0, 0), dtype=bool)
        return np.stack(self._train_steps, axis=0)

    def spike_trains_flat(self) -> np.ndarray:
        """Sampled spike trains as shape (T, batch * n_sampled) boolean array."""
        trains = self.spike_trains()
        if trains.size == 0:
            return np.zeros((0, 0), dtype=bool)
        return trains.reshape(trains.shape[0], -1)


class SpikeRecord:
    """Container aggregating :class:`LayerRecord` objects for one simulation.

    Parameters
    ----------
    sample_fraction:
        Fraction of each spiking layer's neurons whose full spike trains are
        recorded (only when ``record_trains`` is enabled on the network run).
    """

    def __init__(
        self,
        sample_fraction: float = 0.1,
        record_trains: bool = False,
        seed: SeedLike = 0,
    ) -> None:
        if not 0.0 < sample_fraction <= 1.0:
            raise ValueError(f"sample_fraction must be in (0, 1], got {sample_fraction}")
        self.sample_fraction = sample_fraction
        self.record_trains = record_trains
        self._rng = as_rng(seed)
        self.layers: List[LayerRecord] = []
        self.input_record: Optional[LayerRecord] = None
        self.time_steps = 0

    # -- setup -----------------------------------------------------------
    def register_input(self, num_neurons: int) -> LayerRecord:
        """Register the input layer (encoder spikes)."""
        record = LayerRecord(name="input", num_neurons=num_neurons, is_spiking=True)
        record.sampled_indices = self._sample_indices(num_neurons)
        self.input_record = record
        return record

    def register_layer(self, name: str, num_neurons: int, is_spiking: bool) -> LayerRecord:
        """Register one network layer and return its record."""
        record = LayerRecord(name=name, num_neurons=num_neurons, is_spiking=is_spiking)
        if is_spiking and num_neurons > 0:
            record.sampled_indices = self._sample_indices(num_neurons)
        self.layers.append(record)
        return record

    def _sample_indices(self, num_neurons: int) -> np.ndarray:
        if not self.record_trains or num_neurons == 0:
            return np.array([], dtype=np.int64)
        count = max(1, int(round(num_neurons * self.sample_fraction)))
        return np.sort(self._rng.choice(num_neurons, size=count, replace=False))

    # -- aggregation -----------------------------------------------------
    def advance(self) -> None:
        """Mark the end of one simulation time step."""
        self.time_steps += 1

    @property
    def all_records(self) -> List[LayerRecord]:
        records = list(self.layers)
        if self.input_record is not None:
            records = [self.input_record] + records
        return records

    def total_spikes(self, include_input: bool = True) -> int:
        """Total number of spikes across the run."""
        records = self.all_records if include_input else self.layers
        return int(sum(record.total_spikes for record in records))

    def total_neurons(self, include_input: bool = True) -> int:
        """Total number of spiking neurons per sample."""
        records = self.all_records if include_input else self.layers
        return int(sum(record.num_neurons for record in records if record.is_spiking))

    def spikes_per_step(self, include_input: bool = True) -> np.ndarray:
        """Network-wide spike counts per time step, shape ``(T,)``."""
        records = self.all_records if include_input else self.layers
        if not records or self.time_steps == 0:
            return np.zeros(0, dtype=np.int64)
        totals = np.zeros(self.time_steps, dtype=np.int64)
        for record in records:
            counts = np.asarray(record.spike_counts[: self.time_steps], dtype=np.int64)
            if counts.size:
                totals[: counts.size] += counts
        return totals

    def cumulative_spikes(self, include_input: bool = True) -> np.ndarray:
        """Cumulative network-wide spike counts, shape ``(T,)``."""
        return np.cumsum(self.spikes_per_step(include_input=include_input))

    def per_layer_totals(self) -> Dict[str, int]:
        """Mapping layer name → total spikes (includes the input layer)."""
        return {record.name: record.total_spikes for record in self.all_records}
