"""Spiking layers assembled by the DNN→SNN converter.

Each layer consumes the *weighted spike amplitudes* emitted by the previous
layer (or by the input encoder) and produces its own amplitudes:

``z = W · incoming + bias_scale · b``          (Eq. 1 / Eq. 5)
``spike if V_mem + z ≥ V_th(t)``               (Eq. 2)
``amplitude = V_th(t)``, reset by subtraction  (Eq. 4 / Eq. 5)

The pooling and flatten layers are linear re-arrangements of amplitudes and
carry no neurons of their own (the paper's neuron counts likewise exclude
them); max pooling uses the standard spiking gating approach of Rueckauer et
al. [12]: each window forwards the amplitude of the input unit with the
largest cumulative transmitted value.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.ann.im2col import conv_output_size, im2col
from repro.snn.neurons import IFNeuronState, ResetMode
from repro.snn.thresholds import ThresholdDynamics


class SpikingLayer:
    """Base class for all layers of a :class:`~repro.snn.network.SpikingNetwork`."""

    #: whether the layer contains integrate-and-fire neurons that emit spikes
    is_spiking = False

    def __init__(self, name: str) -> None:
        self.name = name
        self.batch_size: Optional[int] = None
        #: boolean spike array of the most recent step (spiking layers only)
        self.last_spikes: Optional[np.ndarray] = None

    def reset(self, batch_size: int) -> None:
        """Allocate per-simulation state for a batch of ``batch_size`` samples."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.batch_size = batch_size
        self.last_spikes = None

    def step(self, incoming: np.ndarray, t: int) -> np.ndarray:
        """Consume incoming amplitudes at step ``t`` and return outgoing ones."""
        raise NotImplementedError

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Per-sample output shape given a per-sample input shape."""
        raise NotImplementedError

    @property
    def num_neurons(self) -> int:
        """Number of IF neurons per sample (0 for linear re-arrangement layers)."""
        return 0

    def spike_count(self) -> int:
        """Number of spikes emitted at the most recent step."""
        if self.last_spikes is None:
            return 0
        return int(np.count_nonzero(self.last_spikes))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class _SpikingNeuronLayer(SpikingLayer):
    """Shared machinery for layers that own IF neurons (dense and conv)."""

    is_spiking = True

    def __init__(
        self,
        name: str,
        threshold: ThresholdDynamics,
        reset_mode: "ResetMode | str" = ResetMode.SUBTRACT,
        bias_scale: float = 1.0,
    ) -> None:
        super().__init__(name)
        self.threshold = threshold
        self.reset_mode = ResetMode.from_value(reset_mode)
        self.bias_scale = float(bias_scale)
        self.state: Optional[IFNeuronState] = None

    def _state_shape(self, batch_size: int) -> Tuple[int, ...]:
        raise NotImplementedError

    def reset(self, batch_size: int) -> None:
        super().reset(batch_size)
        shape = self._state_shape(batch_size)
        self.state = IFNeuronState(shape, reset_mode=self.reset_mode)
        self.threshold.reset(shape)

    def _synaptic_input(self, incoming: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def step(self, incoming: np.ndarray, t: int) -> np.ndarray:
        if self.state is None:
            raise RuntimeError(f"{self.name}: reset(batch_size) must be called before step()")
        z = self._synaptic_input(np.asarray(incoming, dtype=np.float64))
        thresholds = self.threshold.thresholds(t)
        spikes, amplitudes = self.state.step(z, thresholds)
        self.threshold.update(spikes)
        self.last_spikes = spikes
        return amplitudes

    def membrane(self) -> np.ndarray:
        """Copy of the current membrane potentials (analysis / tests)."""
        if self.state is None:
            raise RuntimeError(f"{self.name}: layer has no state before reset()")
        return self.state.membrane_copy()


class SpikingDense(_SpikingNeuronLayer):
    """Fully connected spiking layer.

    Parameters
    ----------
    weight:
        Normalised weight matrix of shape ``(in_features, out_features)``.
    bias:
        Optional bias of shape ``(out_features,)``; injected every time step
        scaled by ``bias_scale``.
    threshold:
        The layer's :class:`~repro.snn.thresholds.ThresholdDynamics` (the
        hidden-layer coding scheme).
    """

    def __init__(
        self,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        threshold: ThresholdDynamics,
        reset_mode: "ResetMode | str" = ResetMode.SUBTRACT,
        bias_scale: float = 1.0,
        name: str = "spiking_dense",
    ) -> None:
        super().__init__(name, threshold, reset_mode, bias_scale)
        weight = np.asarray(weight, dtype=np.float64)
        if weight.ndim != 2:
            raise ValueError(f"{name}: weight must be 2-D, got shape {weight.shape}")
        self.weight = weight
        self.bias = None if bias is None else np.asarray(bias, dtype=np.float64)
        if self.bias is not None and self.bias.shape != (weight.shape[1],):
            raise ValueError(
                f"{name}: bias shape {self.bias.shape} does not match out features "
                f"{weight.shape[1]}"
            )

    @property
    def in_features(self) -> int:
        return int(self.weight.shape[0])

    @property
    def out_features(self) -> int:
        return int(self.weight.shape[1])

    @property
    def num_neurons(self) -> int:
        return self.out_features

    def _state_shape(self, batch_size: int) -> Tuple[int, ...]:
        return (batch_size, self.out_features)

    def _synaptic_input(self, incoming: np.ndarray) -> np.ndarray:
        if incoming.ndim != 2 or incoming.shape[1] != self.in_features:
            raise ValueError(
                f"{self.name}: expected incoming shape (N, {self.in_features}), "
                f"got {incoming.shape}"
            )
        z = incoming @ self.weight
        if self.bias is not None:
            z = z + self.bias_scale * self.bias
        return z

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (self.out_features,)


class SpikingConv2D(_SpikingNeuronLayer):
    """Convolutional spiking layer (im2col-based, channel-first)."""

    def __init__(
        self,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        threshold: ThresholdDynamics,
        stride: int = 1,
        padding: int = 0,
        reset_mode: "ResetMode | str" = ResetMode.SUBTRACT,
        bias_scale: float = 1.0,
        input_shape: Optional[Tuple[int, int, int]] = None,
        name: str = "spiking_conv",
    ) -> None:
        super().__init__(name, threshold, reset_mode, bias_scale)
        weight = np.asarray(weight, dtype=np.float64)
        if weight.ndim != 4 or weight.shape[2] != weight.shape[3]:
            raise ValueError(
                f"{name}: weight must be (out_c, in_c, k, k), got shape {weight.shape}"
            )
        self.weight = weight
        self.bias = None if bias is None else np.asarray(bias, dtype=np.float64)
        if self.bias is not None and self.bias.shape != (weight.shape[0],):
            raise ValueError(
                f"{name}: bias shape {self.bias.shape} does not match out channels "
                f"{weight.shape[0]}"
            )
        if stride <= 0:
            raise ValueError(f"{name}: stride must be positive, got {stride}")
        if padding < 0:
            raise ValueError(f"{name}: padding must be non-negative, got {padding}")
        self.stride = stride
        self.padding = padding
        if input_shape is None:
            raise ValueError(f"{name}: input_shape (C, H, W) is required")
        self.input_shape = tuple(int(v) for v in input_shape)
        if self.input_shape[0] != weight.shape[1]:
            raise ValueError(
                f"{name}: input channels {self.input_shape[0]} do not match weight "
                f"in_channels {weight.shape[1]}"
            )
        self._out_shape = self.output_shape(self.input_shape)
        self._weight_matrix = self.weight.reshape(self.weight.shape[0], -1)

    @property
    def out_channels(self) -> int:
        return int(self.weight.shape[0])

    @property
    def kernel_size(self) -> int:
        return int(self.weight.shape[2])

    @property
    def num_neurons(self) -> int:
        c, h, w = self._out_shape
        return int(c * h * w)

    def _state_shape(self, batch_size: int) -> Tuple[int, ...]:
        return (batch_size,) + self._out_shape

    def _synaptic_input(self, incoming: np.ndarray) -> np.ndarray:
        expected = (self.input_shape[0],)
        if incoming.ndim != 4 or incoming.shape[1] != expected[0]:
            raise ValueError(
                f"{self.name}: expected incoming shape (N, {expected[0]}, H, W), "
                f"got {incoming.shape}"
            )
        n = incoming.shape[0]
        cols, out_h, out_w = im2col(
            incoming, self.kernel_size, self.kernel_size, self.stride, self.padding
        )
        z = cols @ self._weight_matrix.T
        if self.bias is not None:
            z = z + self.bias_scale * self.bias
        return z.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, h, w = input_shape
        out_h = conv_output_size(h, self.kernel_size, self.stride, self.padding)
        out_w = conv_output_size(w, self.kernel_size, self.stride, self.padding)
        return (self.out_channels, out_h, out_w)


class SpikingAvgPool2D(SpikingLayer):
    """Average pooling of spike amplitudes (linear, neuron-free)."""

    def __init__(self, pool_size: int = 2, stride: Optional[int] = None, name: str = "spiking_avgpool") -> None:
        super().__init__(name)
        if pool_size <= 0:
            raise ValueError(f"{name}: pool_size must be positive, got {pool_size}")
        self.pool_size = pool_size
        self.stride = stride if stride is not None else pool_size

    def step(self, incoming: np.ndarray, t: int) -> np.ndarray:
        del t
        incoming = np.asarray(incoming, dtype=np.float64)
        n, c, h, w = incoming.shape
        cols, out_h, out_w = im2col(
            incoming.reshape(n * c, 1, h, w), self.pool_size, self.pool_size, self.stride, 0
        )
        return cols.mean(axis=1).reshape(n, c, out_h, out_w)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, h, w = input_shape
        out_h = conv_output_size(h, self.pool_size, self.stride, 0)
        out_w = conv_output_size(w, self.pool_size, self.stride, 0)
        return (c, out_h, out_w)


class SpikingMaxPool2D(SpikingLayer):
    """Spiking max pooling via cumulative-evidence gating.

    Each pooling window forwards the current amplitude of the input unit whose
    *cumulative* transmitted amplitude is largest so far — the output-gating
    scheme proposed for converted SNNs by Rueckauer et al. [12].
    """

    def __init__(self, pool_size: int = 2, stride: Optional[int] = None, name: str = "spiking_maxpool") -> None:
        super().__init__(name)
        if pool_size <= 0:
            raise ValueError(f"{name}: pool_size must be positive, got {pool_size}")
        self.pool_size = pool_size
        self.stride = stride if stride is not None else pool_size
        self._cumulative: Optional[np.ndarray] = None

    def reset(self, batch_size: int) -> None:
        super().reset(batch_size)
        self._cumulative = None

    def step(self, incoming: np.ndarray, t: int) -> np.ndarray:
        del t
        incoming = np.asarray(incoming, dtype=np.float64)
        if self._cumulative is None:
            self._cumulative = np.zeros_like(incoming)
        elif self._cumulative.shape != incoming.shape:
            raise ValueError(
                f"{self.name}: incoming shape changed mid-simulation "
                f"({self._cumulative.shape} -> {incoming.shape})"
            )
        self._cumulative += incoming

        n, c, h, w = incoming.shape
        cum_cols, out_h, out_w = im2col(
            self._cumulative.reshape(n * c, 1, h, w),
            self.pool_size,
            self.pool_size,
            self.stride,
            0,
        )
        in_cols, _, _ = im2col(
            incoming.reshape(n * c, 1, h, w), self.pool_size, self.pool_size, self.stride, 0
        )
        winners = cum_cols.argmax(axis=1)
        gated = in_cols[np.arange(in_cols.shape[0]), winners]
        return gated.reshape(n, c, out_h, out_w)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, h, w = input_shape
        out_h = conv_output_size(h, self.pool_size, self.stride, 0)
        out_w = conv_output_size(w, self.pool_size, self.stride, 0)
        return (c, out_h, out_w)


class SpikingFlatten(SpikingLayer):
    """Reshape ``(N, C, H, W)`` amplitudes to ``(N, C*H*W)`` rows."""

    def __init__(self, name: str = "spiking_flatten") -> None:
        super().__init__(name)

    def step(self, incoming: np.ndarray, t: int) -> np.ndarray:
        del t
        incoming = np.asarray(incoming, dtype=np.float64)
        return incoming.reshape(incoming.shape[0], -1)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        size = 1
        for dim in input_shape:
            size *= dim
        return (size,)


class OutputAccumulator(SpikingLayer):
    """Non-spiking output layer.

    The final dense layer of a converted SNN is read out by accumulating its
    membrane potential (the standard choice in conversion work): the class
    scores at time ``t`` are the accumulated ``W·incoming + bias_scale·b``.
    """

    def __init__(
        self,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        bias_scale: float = 1.0,
        name: str = "output",
    ) -> None:
        super().__init__(name)
        weight = np.asarray(weight, dtype=np.float64)
        if weight.ndim != 2:
            raise ValueError(f"{name}: weight must be 2-D, got shape {weight.shape}")
        self.weight = weight
        self.bias = None if bias is None else np.asarray(bias, dtype=np.float64)
        self.bias_scale = float(bias_scale)
        self._logits: Optional[np.ndarray] = None

    @property
    def num_classes(self) -> int:
        return int(self.weight.shape[1])

    def reset(self, batch_size: int) -> None:
        super().reset(batch_size)
        self._logits = np.zeros((batch_size, self.num_classes), dtype=np.float64)

    def step(self, incoming: np.ndarray, t: int) -> np.ndarray:
        del t
        if self._logits is None:
            raise RuntimeError(f"{self.name}: reset(batch_size) must be called before step()")
        incoming = np.asarray(incoming, dtype=np.float64)
        if incoming.ndim != 2 or incoming.shape[1] != self.weight.shape[0]:
            raise ValueError(
                f"{self.name}: expected incoming shape (N, {self.weight.shape[0]}), "
                f"got {incoming.shape}"
            )
        update = incoming @ self.weight
        if self.bias is not None:
            update = update + self.bias_scale * self.bias
        self._logits += update
        return self._logits

    @property
    def logits(self) -> np.ndarray:
        """Accumulated class scores."""
        if self._logits is None:
            raise RuntimeError(f"{self.name}: reset(batch_size) must be called before use")
        return self._logits

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (self.num_classes,)
