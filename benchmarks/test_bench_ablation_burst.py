"""Ablation bench: the burst coding hyper-parameters.

Two sweeps on the MNIST-like CNN workload under phase-burst coding:

* the precision / spike-count trade-off of the base threshold ``v_th``
  (Table 2 evaluates v_th = 0.125 and 0.0625: smaller v_th → more precise and
  usually faster, but more spikes), and
* the burst constant β (Eq. 8; the paper uses β = 2) including a capped
  burst length, showing that the speed-up indeed comes from letting the
  effective weight grow during a burst.
"""

from repro.core.hybrid import HybridCodingScheme
from repro.core.pipeline import PipelineConfig, SNNInferencePipeline
from repro.utils.tables import Table


def _pipeline(workload, time_steps=120, num_images=16):
    config = PipelineConfig(
        time_steps=time_steps, batch_size=16, max_test_images=num_images, seed=0
    )
    return SNNInferencePipeline(workload.model, workload.data, config)


def test_bench_ablation_burst_v_th(benchmark, save_result, mnist_cnn_workload):
    v_th_values = (0.5, 0.25, 0.125, 0.0625)

    def run_sweep():
        pipeline = _pipeline(mnist_cnn_workload)
        return {
            v_th: pipeline.run_scheme(HybridCodingScheme.from_notation("phase-burst", v_th=v_th))
            for v_th in v_th_values
        }

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = Table(
        ["v_th", "accuracy_%", "latency_to_99%dnn", "spikes/image"],
        title="Ablation — burst precision v_th (phase-burst coding)",
    )
    rows = {}
    for v_th, run in results.items():
        metrics = run.metrics(target_accuracy=run.dnn_accuracy * 0.99)
        rows[v_th] = metrics
        table.add_row(
            {
                "v_th": v_th,
                "accuracy_%": round(run.accuracy * 100, 2),
                "latency_to_99%dnn": metrics.latency if metrics.latency else f">{run.time_steps}",
                "spikes/image": round(run.spikes_per_image, 1),
            }
        )
    save_result("ablation_burst_v_th", table.render())

    # finer precision (smaller v_th) never hurts accuracy on this workload
    assert results[0.0625].accuracy >= results[0.5].accuracy - 0.05
    # and costs more spikes than the coarsest setting (the paper's trade-off)
    assert results[0.0625].spikes_per_image >= results[0.5].spikes_per_image


def test_bench_ablation_burst_beta(benchmark, save_result, mnist_cnn_workload):
    configurations = {
        "beta=2 (paper)": {"v_th": 0.125, "beta": 2.0},
        "beta=4": {"v_th": 0.125, "beta": 4.0},
        "beta=2, burst<=2": {"v_th": 0.125, "beta": 2.0, "max_burst_length": 2},
    }

    def run_sweep():
        pipeline = _pipeline(mnist_cnn_workload)
        return {
            name: pipeline.run_scheme(HybridCodingScheme.from_notation("phase-burst", **kwargs))
            for name, kwargs in configurations.items()
        }

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = Table(
        ["configuration", "accuracy_%", "dnn_%", "spikes/image"],
        title="Ablation — burst constant beta and burst-length cap",
    )
    for name, run in results.items():
        table.add_row(
            {
                "configuration": name,
                "accuracy_%": round(run.accuracy * 100, 2),
                "dnn_%": round(run.dnn_accuracy * 100, 2),
                "spikes/image": round(run.spikes_per_image, 1),
            }
        )
    save_result("ablation_burst_beta", table.render())

    # every configuration still classifies well above chance
    for run in results.values():
        assert run.accuracy > 0.3
    # the paper's beta=2 configuration reaches the DNN accuracy
    assert results["beta=2 (paper)"].accuracy >= results["beta=2 (paper)"].dnn_accuracy - 0.1
