"""Tests for the coding-scheme registry (repro.core.registry), the layered
engine (repro.engine), the reusable InferenceSession, and the TTFS
registry-extension coding."""

import numpy as np
import pytest

from repro.core import registry
from repro.core.coding import CodingParams, NeuralCoding
from repro.core.hybrid import HybridCodingScheme
from repro.core.pipeline import PipelineConfig, SNNInferencePipeline
from repro.engine import InferenceSession, build_network, plan_simulation
from repro.snn.encoding import (
    BurstEncoder,
    PhaseEncoder,
    PoissonRateEncoder,
    RateEncoder,
    RealEncoder,
    make_encoder,
)
from repro.snn.network import SimulationConfig
from repro.snn.thresholds import (
    BurstThreshold,
    ConstantThreshold,
    PhaseThreshold,
    make_threshold,
)
from repro.snn.ttfs import TTFSEncoder


class TestRegistryResolution:
    """Every built-in scheme resolves through the registry to the same
    encoder / threshold classes the pre-registry dispatch produced."""

    @pytest.mark.parametrize(
        "name, cls",
        [("real", RealEncoder), ("rate", RateEncoder), ("phase", PhaseEncoder),
         ("burst", BurstEncoder), ("ttfs", TTFSEncoder)],
    )
    def test_encoder_classes(self, name, cls):
        assert isinstance(make_encoder(name), cls)

    def test_stochastic_rate_resolves_to_poisson(self):
        assert isinstance(make_encoder("rate", stochastic=True), PoissonRateEncoder)

    @pytest.mark.parametrize(
        "name, cls",
        [("rate", ConstantThreshold), ("phase", PhaseThreshold), ("burst", BurstThreshold)],
    )
    def test_threshold_classes(self, name, cls):
        assert isinstance(make_threshold(name), cls)

    def test_registered_defaults_match_paper(self):
        assert registry.default_v_th("burst") == 0.125
        assert registry.default_v_th("rate") == 1.0
        assert registry.default_v_th("phase") == 1.0
        assert make_threshold("burst").v_th == 0.125
        assert make_encoder("burst").threshold.v_th == 0.125

    def test_input_and_hidden_listings(self):
        assert set(registry.input_codings()) >= {"real", "rate", "phase", "burst", "ttfs"}
        assert set(registry.hidden_codings()) == {"rate", "phase", "burst"}

    def test_unknown_coding_suggests_and_lists(self):
        with pytest.raises(ValueError, match="did you mean 'phase'"):
            make_encoder("phse")
        with pytest.raises(ValueError, match="available:"):
            registry.get("morse")

    def test_enum_members_still_resolve_identically(self):
        assert NeuralCoding.from_value("burst") is NeuralCoding.BURST
        scheme = HybridCodingScheme.from_notation("phase-burst")
        assert scheme.input_coding is NeuralCoding.PHASE
        assert isinstance(scheme.make_encoder(), PhaseEncoder)

    def test_extension_resolves_to_coding_tag(self):
        tag = NeuralCoding.from_value("ttfs")
        assert not isinstance(tag, NeuralCoding)
        assert tag.value == "ttfs"
        assert tag == "ttfs"  # str-compatible, like the str-enum members
        assert not tag.valid_for_hidden

    def test_ttfs_invalid_as_hidden_coding(self):
        with pytest.raises(ValueError, match="only valid for the input layer"):
            HybridCodingScheme.from_notation("phase-ttfs")

    def test_resolved_v_th_goes_through_registry(self):
        params = CodingParams()
        assert params.resolved_v_th(NeuralCoding.BURST) == 0.125
        assert params.resolved_v_th("ttfs") == 1.0

    def test_second_registration_keeps_explicit_default_v_th(self):
        """A threshold registration without default_v_th must not clobber the
        default the encoder registration set (and vice versa)."""
        from repro.core.registry import _REGISTRY, register_encoder, register_threshold

        try:
            @register_encoder("test-coding", default_v_th=0.5)
            def _encoder(params, seed=None):
                return RealEncoder()

            @register_threshold("test-coding")
            def _threshold(params):
                return ConstantThreshold(v_th=params.v_th)

            assert registry.default_v_th("test-coding") == 0.5
            assert registry.build_threshold("test-coding").v_th == 0.5
        finally:
            _REGISTRY.pop("test-coding", None)

    def test_scheme_parameters_reach_the_factories(self):
        scheme = HybridCodingScheme.from_notation("ttfs-burst", phase_period=5, v_th=0.0625)
        encoder = scheme.make_encoder()
        assert isinstance(encoder, TTFSEncoder)
        assert encoder.window == 5
        threshold = scheme.make_threshold_factory()(0, "h0")
        assert isinstance(threshold, BurstThreshold)
        assert threshold.v_th == 0.0625


class TestTTFSEncoder:
    def test_one_spike_per_window_ordered_by_intensity(self):
        encoder = TTFSEncoder(v_th=1.0, window=8)
        x = np.array([[0.0, 0.25, 0.5, 1.0]])
        encoder.reset(x)
        fire_step = {}
        for t in range(8):
            step = encoder.step(t)
            for idx in np.flatnonzero(step.spikes[0]):
                assert idx not in fire_step, "a neuron spiked twice in one window"
                fire_step[int(idx)] = t
                assert step.values[0, idx] == pytest.approx(x[0, idx])
        assert 0 not in fire_step  # exact zeros stay silent
        assert fire_step[3] < fire_step[2] < fire_step[1]  # brighter fires earlier

    def test_periodicity_matches_declared_steady_period(self):
        encoder = TTFSEncoder(window=6)
        encoder.reset(np.array([[0.2, 0.9]]))
        assert encoder.steady_period == 6
        assert encoder.throughput_factor == pytest.approx(1.0 / 6.0)
        first = []
        for t in range(6):
            step = encoder.step(t)
            first.append((step.spikes.copy(), step.values.copy()))
        for t in range(6, 12):
            spikes, values = first[t - 6]
            step = encoder.step(t)
            assert np.array_equal(step.spikes, spikes)
            assert np.array_equal(step.values, values)

    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    def test_dtype_follows_policy(self, dtype):
        encoder = TTFSEncoder(window=4)
        encoder.reset(np.array([[0.5]]), dtype=dtype)
        assert encoder.step(0).values.dtype == np.dtype(dtype)

    def test_shrink_batch_keeps_rows(self):
        encoder = TTFSEncoder(window=4)
        x = np.array([[0.1, 0.9], [0.9, 0.1], [0.5, 0.5]])
        encoder.reset(x)
        reference = TTFSEncoder(window=4)
        reference.reset(x[[0, 2]])
        encoder.shrink_batch(np.array([0, 2]))
        for t in range(4):
            a, b = encoder.step(t), reference.step(t)
            assert np.array_equal(a.spikes, b.spikes)
            assert np.array_equal(a.values, b.values)

    def test_validation(self):
        with pytest.raises(ValueError):
            TTFSEncoder(v_th=0.0)
        with pytest.raises(ValueError):
            TTFSEncoder(window=0)


@pytest.fixture(scope="module")
def mlp_pipeline(trained_mlp, tiny_image_split):
    return SNNInferencePipeline(
        trained_mlp,
        tiny_image_split,
        PipelineConfig(time_steps=40, batch_size=8, max_test_images=12, seed=0),
    )


class TestInferenceSession:
    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    def test_session_reuse_bit_identical_to_fresh_runs(
        self, trained_mlp, tiny_image_split, dtype
    ):
        """Serving several batches through one session matches freshly built
        one-shot simulations bit for bit, in both dtypes."""
        scheme = HybridCodingScheme.from_notation("phase-burst", v_th=0.125)
        config = SimulationConfig(time_steps=30, dtype=dtype)
        calibration = tiny_image_split.train.x[:32]
        batches = [tiny_image_split.test.x[:6], tiny_image_split.test.x[6:12]]

        session = InferenceSession.from_model(
            trained_mlp, scheme, config=config, calibration_x=calibration
        )
        for batch in batches:
            served = session.run(batch)
            fresh_network = build_network(trained_mlp, scheme, calibration_x=calibration)
            fresh = fresh_network.run(batch, config)
            assert served.output_history.dtype == np.dtype(dtype)
            assert np.array_equal(served.output_history, fresh.output_history)
            assert np.array_equal(
                served.record.cumulative_spikes(), fresh.record.cumulative_spikes()
            )
        assert session.batches_served == 2
        assert session.images_served == 12

    def test_plan_is_reused_across_batches(self, trained_mlp, tiny_image_split):
        scheme = HybridCodingScheme.from_notation("real-rate")
        session = InferenceSession.from_model(
            trained_mlp,
            scheme,
            config=SimulationConfig(time_steps=10),
            calibration_x=tiny_image_split.train.x[:16],
        )
        first_plan = session.plan
        session.run(tiny_image_split.test.x[:4])
        session.run(tiny_image_split.test.x[4:10])  # different batch size, same plan
        assert session.plan is first_plan
        assert "InferenceSession" in session.describe()

    def test_network_run_delegates_to_engine(self, trained_mlp, tiny_image_split):
        """SpikingNetwork.run / .simulate and engine plan+execute agree."""
        from repro.engine.run import execute

        scheme = HybridCodingScheme.from_notation("phase-burst")
        network = build_network(
            trained_mlp, scheme, calibration_x=tiny_image_split.train.x[:16]
        )
        config = SimulationConfig(time_steps=15)
        x = tiny_image_split.test.x[:5]
        via_run = network.run(x, config)
        via_alias = network.simulate(x, config)
        plan = plan_simulation(network, config)
        via_engine = execute(plan.prepare(x))
        assert np.array_equal(via_run.output_history, via_alias.output_history)
        assert np.array_equal(via_run.output_history, via_engine.output_history)
        assert plan.recorded_steps == list(via_run.recorded_steps)

    def test_pipeline_serves_through_session(self, mlp_pipeline):
        """The pipeline path (which routes batches through a session) matches
        a hand-rolled session over the same cached network."""
        scheme = HybridCodingScheme.from_notation("phase-burst", v_th=0.125)
        run = mlp_pipeline.run_scheme(scheme)
        snn = mlp_pipeline.build_snn(scheme)
        session = InferenceSession(snn, mlp_pipeline._sim_config(40))
        x, y = mlp_pipeline._test_arrays()
        outputs = np.concatenate(
            [session.run(x[i : i + 8]).final_outputs for i in range(0, x.shape[0], 8)]
        )
        assert np.array_equal(run.outputs_final, outputs)


class TestTTFSEndToEnd:
    def test_ttfs_burst_through_pipeline(self, mlp_pipeline):
        """TTFS runs end-to-end (Table-2-style evaluation) purely via the
        registry — no enum/make_encoder edits — and classifies sanely."""
        run = mlp_pipeline.run_scheme(HybridCodingScheme.from_notation("ttfs-burst"))
        assert run.scheme == "ttfs-burst"
        assert run.total_spikes > 0
        # one spike per input neuron per window keeps input activity below
        # an always-spiking encoder's; the scheme should still classify most
        # of the tiny test set once enough windows have accumulated
        assert run.accuracy >= 0.5 * run.dnn_accuracy

    def test_ttfs_through_session(self, trained_mlp, tiny_image_split):
        scheme = HybridCodingScheme.from_notation("ttfs-burst", v_th=0.125)
        session = InferenceSession.from_model(
            trained_mlp,
            scheme,
            config=SimulationConfig(time_steps=40),
            calibration_x=tiny_image_split.train.x[:32],
        )
        result = session.run(tiny_image_split.test.x[:8], labels=tiny_image_split.test.y[:8])
        assert result.output_history.shape[-1] == tiny_image_split.num_classes
        assert result.total_spikes() > 0
