"""Figure 3: latency and number of spikes needed to reach target accuracies.

The paper picks three target accuracies (roughly 99.5%, 99% and 95% of the
DNN accuracy) and reports, for each coding combination, how many time steps
and how many spikes are required to reach each target; configurations that
never reach a target within the budget are excluded.  Expected shape:

* ``real-burst`` reaches every target fastest,
* ``phase-burst`` needs the fewest spikes,
* schemes with rate input coding fail to reach the targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.curves import latency_to_target, spikes_to_target, target_accuracies
from repro.core.pipeline import AggregatedRun
from repro.experiments.reporting import render_table
from repro.experiments.sweep import run_all_schemes
from repro.experiments.workloads import Workload, cifar10_workload

#: target accuracies as fractions of the DNN accuracy (paper: 91.0 / 90.49 /
#: 86.83 % for a 91.41 % DNN ≈ 99.5 / 99 / 95 %).
FIG3_TARGET_FRACTIONS = (0.995, 0.99, 0.95)


@dataclass
class Fig3Entry:
    """Latency / spikes of one scheme for one target accuracy."""

    scheme: str
    target_fraction: float
    target_accuracy: float
    latency: Optional[int]
    spikes: Optional[float]
    spikes_per_image: Optional[float]
    reached: bool

    def as_row(self) -> Dict[str, object]:
        return {
            "scheme": self.scheme,
            "target_%": round(self.target_accuracy * 100.0, 2),
            "latency": self.latency if self.reached else "not reached",
            "spikes/image": round(self.spikes_per_image, 1) if self.reached else "-",
        }


def run_fig3(
    workload: Optional[Workload] = None,
    runs: Optional[Dict[str, AggregatedRun]] = None,
    target_fractions: Sequence[float] = FIG3_TARGET_FRACTIONS,
    time_steps: int = 150,
    num_images: int = 24,
    v_th: float = 0.125,
    seed: int = 0,
) -> List[Fig3Entry]:
    """Reproduce Fig. 3 (latency and spikes to reach each target accuracy)."""
    if runs is None:
        workload = workload or cifar10_workload()
        runs = run_all_schemes(
            workload, time_steps=time_steps, num_images=num_images, v_th=v_th, seed=seed
        )
    entries: List[Fig3Entry] = []
    for notation, run in runs.items():
        targets = target_accuracies(run.dnn_accuracy, target_fractions)
        for fraction, target in zip(target_fractions, targets):
            latency = latency_to_target(run.accuracy_curve, run.recorded_steps, target)
            spikes = spikes_to_target(
                run.accuracy_curve, run.recorded_steps, run.cumulative_spikes, target
            )
            entries.append(
                Fig3Entry(
                    scheme=notation,
                    target_fraction=fraction,
                    target_accuracy=target,
                    latency=latency,
                    spikes=spikes,
                    spikes_per_image=(
                        spikes / run.num_images if spikes is not None and run.num_images else None
                    ),
                    reached=latency is not None,
                )
            )
    return entries


def format_fig3(entries: List[Fig3Entry]) -> str:
    """Render Fig. 3 as a table grouped by target accuracy."""
    ordered = sorted(entries, key=lambda e: (-e.target_fraction, e.scheme))
    return render_table(
        "Fig. 3 — latency and spikes to reach target accuracy",
        ["scheme", "target_%", "latency", "spikes/image"],
        [entry.as_row() for entry in ordered],
    )
