"""Procedural image-classification datasets standing in for MNIST / CIFAR.

The real datasets are not available offline, so we generate tasks with the
same input shapes and value ranges.  Each class is defined by a smooth random
*prototype* image; a sample is its prototype after random spatial shift,
per-sample brightness/contrast jitter, additive Gaussian noise and optional
occlusion patches.  The resulting task:

* has bounded static inputs in ``[0, 1]`` (the property the paper's input
  coding discussion relies on),
* is learnable to high accuracy by a small CNN/MLP but not linearly trivial
  once noise and shift are enabled,
* degrades gracefully when information transmission is poor, which is what
  the coding-scheme comparison measures.

See DESIGN.md §2 for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.data.dataset import Dataset, DataSplit, train_test_split
from repro.utils.config import FrozenConfig, validate_positive, validate_probability
from repro.utils.rng import SeedLike, as_rng


@dataclass(frozen=True)
class SyntheticImageConfig(FrozenConfig):
    """Parameters of the procedural image generator.

    Attributes
    ----------
    num_classes:
        Number of classes (each with its own prototype).
    image_shape:
        Channel-first per-sample shape ``(C, H, W)``.
    samples_per_class:
        Number of generated samples per class.
    noise_std:
        Standard deviation of additive pixel noise (before clipping to [0,1]).
    max_shift:
        Maximum absolute spatial shift (pixels) applied per sample.
    brightness_jitter:
        Maximum absolute brightness offset applied per sample.
    contrast_jitter:
        Maximum relative contrast change applied per sample.
    occlusion_probability:
        Probability that a random square patch of the image is zeroed.
    occlusion_size:
        Side length of the occlusion patch in pixels.
    prototype_smoothness:
        Number of smoothing passes applied to the random prototypes; higher
        values give smoother, lower-frequency class templates.
    background_scale:
        Multiplier applied to the smooth background texture of each prototype
        before the bright class strokes are drawn.  1.0 gives dense,
        CIFAR-like images; small values (e.g. 0.15) give mostly-dark,
        MNIST-like images whose low mean pixel value matters for spike-count
        comparisons (most MNIST pixels are background).
    """

    num_classes: int = 10
    image_shape: Tuple[int, int, int] = (1, 28, 28)
    samples_per_class: int = 50
    noise_std: float = 0.08
    max_shift: int = 2
    brightness_jitter: float = 0.08
    contrast_jitter: float = 0.15
    occlusion_probability: float = 0.1
    occlusion_size: int = 4
    prototype_smoothness: int = 3
    background_scale: float = 1.0

    def __post_init__(self) -> None:
        validate_positive("num_classes", self.num_classes)
        validate_positive("samples_per_class", self.samples_per_class)
        validate_positive("noise_std", self.noise_std, allow_zero=True)
        validate_positive("max_shift", self.max_shift, allow_zero=True)
        validate_probability("occlusion_probability", self.occlusion_probability)
        if len(self.image_shape) != 3:
            raise ValueError(f"image_shape must be (C, H, W), got {self.image_shape}")
        if any(dim <= 0 for dim in self.image_shape):
            raise ValueError(f"image_shape entries must be positive, got {self.image_shape}")
        if not 0.0 <= self.background_scale <= 1.0:
            raise ValueError(
                f"background_scale must be in [0, 1], got {self.background_scale}"
            )


def _smooth(image: np.ndarray, passes: int) -> np.ndarray:
    """Box-smooth a (C, H, W) image ``passes`` times with a 3x3 kernel."""
    smoothed = image.copy()
    for _ in range(max(passes, 0)):
        padded = np.pad(smoothed, ((0, 0), (1, 1), (1, 1)), mode="edge")
        acc = np.zeros_like(smoothed)
        for dy in range(3):
            for dx in range(3):
                acc += padded[:, dy : dy + smoothed.shape[1], dx : dx + smoothed.shape[2]]
        smoothed = acc / 9.0
    return smoothed


def _make_prototypes(config: SyntheticImageConfig, rng: np.random.Generator) -> np.ndarray:
    """Generate one smooth random prototype image per class, values in [0,1]."""
    c, h, w = config.image_shape
    prototypes = rng.uniform(0.0, 1.0, size=(config.num_classes, c, h, w))
    for idx in range(config.num_classes):
        proto = _smooth(prototypes[idx], config.prototype_smoothness)
        # Stretch to full dynamic range so classes are visually distinct.
        lo, hi = proto.min(), proto.max()
        if hi - lo > 1e-9:
            proto = (proto - lo) / (hi - lo)
        proto = proto * config.background_scale
        # Add a class-specific bright stroke to make classes separable even
        # under heavy noise (mimics digit strokes / object silhouettes).
        stroke_row = int((idx * (h - 4)) / max(config.num_classes - 1, 1)) + 2
        stroke_col = int(((idx * 7) % max(w - 4, 1))) + 2
        proto[:, stroke_row - 1 : stroke_row + 1, :] = np.maximum(
            proto[:, stroke_row - 1 : stroke_row + 1, :], 0.9
        )
        proto[:, :, stroke_col - 1 : stroke_col + 1] = np.maximum(
            proto[:, :, stroke_col - 1 : stroke_col + 1], 0.8
        )
        prototypes[idx] = proto
    return prototypes


def _shift_image(image: np.ndarray, dy: int, dx: int) -> np.ndarray:
    """Shift a (C, H, W) image by (dy, dx) pixels, zero-filling the border."""
    shifted = np.zeros_like(image)
    h, w = image.shape[1], image.shape[2]
    src_y = slice(max(0, -dy), min(h, h - dy))
    dst_y = slice(max(0, dy), min(h, h + dy))
    src_x = slice(max(0, -dx), min(w, w - dx))
    dst_x = slice(max(0, dx), min(w, w + dx))
    shifted[:, dst_y, dst_x] = image[:, src_y, src_x]
    return shifted


def make_classification_images(
    config: SyntheticImageConfig,
    seed: SeedLike = None,
    name: str = "synthetic",
) -> Dataset:
    """Generate a synthetic image-classification dataset.

    Returns a :class:`~repro.data.dataset.Dataset` with images of shape
    ``(N, C, H, W)`` in ``[0, 1]`` and integer labels.
    """
    rng = as_rng(seed)
    prototypes = _make_prototypes(config, rng)
    c, h, w = config.image_shape
    total = config.num_classes * config.samples_per_class
    images = np.empty((total, c, h, w), dtype=np.float64)
    labels = np.empty(total, dtype=np.int64)

    index = 0
    for cls in range(config.num_classes):
        for _ in range(config.samples_per_class):
            sample = prototypes[cls].copy()
            if config.max_shift > 0:
                dy = int(rng.integers(-config.max_shift, config.max_shift + 1))
                dx = int(rng.integers(-config.max_shift, config.max_shift + 1))
                sample = _shift_image(sample, dy, dx)
            if config.contrast_jitter > 0:
                contrast = 1.0 + rng.uniform(-config.contrast_jitter, config.contrast_jitter)
                sample = (sample - 0.5) * contrast + 0.5
            if config.brightness_jitter > 0:
                sample = sample + rng.uniform(
                    -config.brightness_jitter, config.brightness_jitter
                )
            if config.noise_std > 0:
                sample = sample + rng.normal(0.0, config.noise_std, size=sample.shape)
            if config.occlusion_probability > 0 and rng.uniform() < config.occlusion_probability:
                size = min(config.occlusion_size, h, w)
                top = int(rng.integers(0, h - size + 1))
                left = int(rng.integers(0, w - size + 1))
                sample[:, top : top + size, left : left + size] = 0.0
            images[index] = np.clip(sample, 0.0, 1.0)
            labels[index] = cls
            index += 1

    order = rng.permutation(total)
    return Dataset(x=images[order], y=labels[order], num_classes=config.num_classes, name=name)


def make_mnist_like(
    samples_per_class: int = 40,
    seed: SeedLike = 0,
    test_fraction: float = 0.25,
) -> DataSplit:
    """MNIST-shaped task: 10 classes of 1x28x28 grayscale images."""
    config = SyntheticImageConfig(
        num_classes=10,
        image_shape=(1, 28, 28),
        samples_per_class=samples_per_class,
        noise_std=0.08,
        max_shift=2,
        background_scale=0.15,
    )
    dataset = make_classification_images(config, seed=seed, name="mnist-like")
    split = train_test_split(dataset, test_fraction=test_fraction, seed=seed)
    split.metadata["config"] = config
    return split


def make_cifar10_like(
    samples_per_class: int = 40,
    seed: SeedLike = 1,
    test_fraction: float = 0.25,
) -> DataSplit:
    """CIFAR-10-shaped task: 10 classes of 3x32x32 colour images."""
    config = SyntheticImageConfig(
        num_classes=10,
        image_shape=(3, 32, 32),
        samples_per_class=samples_per_class,
        noise_std=0.1,
        max_shift=2,
        occlusion_probability=0.15,
    )
    dataset = make_classification_images(config, seed=seed, name="cifar10-like")
    split = train_test_split(dataset, test_fraction=test_fraction, seed=seed)
    split.metadata["config"] = config
    return split


def make_cifar100_like(
    samples_per_class: int = 8,
    seed: SeedLike = 2,
    test_fraction: float = 0.25,
) -> DataSplit:
    """CIFAR-100-shaped task: 100 classes of 3x32x32 colour images."""
    config = SyntheticImageConfig(
        num_classes=100,
        image_shape=(3, 32, 32),
        samples_per_class=samples_per_class,
        noise_std=0.08,
        max_shift=1,
        occlusion_probability=0.1,
    )
    dataset = make_classification_images(config, seed=seed, name="cifar100-like")
    split = train_test_split(dataset, test_fraction=test_fraction, seed=seed)
    split.metadata["config"] = config
    return split


_DATASET_FACTORIES = {
    "mnist": make_mnist_like,
    "mnist-like": make_mnist_like,
    "cifar10": make_cifar10_like,
    "cifar10-like": make_cifar10_like,
    "cifar100": make_cifar100_like,
    "cifar100-like": make_cifar100_like,
}


def load_dataset(name: str, samples_per_class: Optional[int] = None, seed: SeedLike = 0) -> DataSplit:
    """Load one of the named synthetic tasks by dataset name.

    Parameters
    ----------
    name:
        One of ``mnist``, ``cifar10``, ``cifar100`` (with or without a
        ``-like`` suffix).
    samples_per_class:
        Override the default per-class sample count (useful for quick tests).
    seed:
        RNG seed for data generation and splitting.
    """
    key = name.lower()
    if key not in _DATASET_FACTORIES:
        raise ValueError(
            f"unknown dataset {name!r}; expected one of {sorted(set(_DATASET_FACTORIES))}"
        )
    factory = _DATASET_FACTORIES[key]
    if samples_per_class is None:
        return factory(seed=seed)
    return factory(samples_per_class=samples_per_class, seed=seed)
