"""Firing-threshold dynamics implementing the neural coding schemes.

The coding scheme used by a (hidden) layer is entirely determined by how its
firing threshold ``V_th(t)`` evolves:

* **rate coding** — constant threshold ``v_th`` (Diehl et al. [11]);
* **phase coding** — global oscillation ``V_th(t) = Π(t)·v_th`` with
  ``Π(t) = 2^-(1 + mod(t, k))`` (Eq. 6–7, Kim et al. [14]);
* **burst coding** (this paper) — per-neuron adaptation
  ``g(t) = β·g(t−1)`` while the neuron keeps firing and ``g(t) = 1``
  otherwise, with ``V_th(t) = g(t)·v_th`` (Eq. 8–9).

Because spikes are *weighted* by the presynaptic threshold at firing time
(Eq. 5 / Eq. 10), a burst of consecutive spikes carries geometrically growing
amplitudes ``v_th, β·v_th, β²·v_th, …`` — this is the "synaptic potentiation"
effect that lets a neuron drain a large membrane backlog in logarithmically
many steps, which is the paper's central mechanism.

Performance contract
--------------------
``thresholds(t)`` is called once per layer per simulation step, so it must
not allocate: :class:`ConstantThreshold` caches its 0-d array,
:class:`PhaseThreshold` caches one 0-d array per phase of the period, and
:class:`BurstThreshold` writes ``g·v_th`` into a preallocated buffer (only
valid until the next call — copy if you keep it).  ``reset`` accepts the
simulation dtype from the owning layer (policy default float32, see
:mod:`repro.utils.dtypes`); positivity of ``v_th`` is validated once at
construction rather than per step.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.config import validate_positive
from repro.utils.dtypes import DTypeLike, resolve_dtype


class ThresholdDynamics:
    """Interface for per-layer threshold evolution.

    Subclasses are attached to one spiking layer.  The network engine calls
    :meth:`reset` once per simulation, then alternates :meth:`thresholds`
    (before spike generation at step ``t``) and :meth:`update` (after spike
    generation, with the boolean spike array).
    """

    #: short name used in configuration strings ("rate", "phase", "burst")
    coding = "base"

    def reset(self, shape: Tuple[int, ...], dtype: DTypeLike = None) -> None:
        """Prepare internal state for a layer of the given state shape."""
        self._shape = tuple(shape)
        self._dtype = resolve_dtype(dtype)

    @property
    def dtype(self) -> np.dtype:
        """Effective dtype of the threshold arrays (policy default until reset)."""
        return getattr(self, "_dtype", None) or resolve_dtype(None)

    def thresholds(self, t: int) -> np.ndarray:
        """Threshold values ``V_th(t)`` (broadcastable to the layer shape).

        May return a cached / reused array; treat it as read-only and copy it
        if it must survive past the next call.
        """
        raise NotImplementedError

    def update(self, spikes: np.ndarray) -> None:
        """Observe the spikes emitted at the current step (default: stateless)."""
        del spikes

    def describe(self) -> str:
        """One-line description used in experiment logs."""
        return f"{type(self).__name__}"


class ConstantThreshold(ThresholdDynamics):
    """Rate coding: a fixed threshold ``v_th`` for every neuron and step.

    The 0-d threshold array is built once per ``reset`` (or lazily on first
    use) instead of on every step of every layer.
    """

    coding = "rate"

    def __init__(self, v_th: float = 1.0) -> None:
        validate_positive("v_th", v_th)
        self.v_th = float(v_th)
        self._cached: Optional[np.ndarray] = None

    def reset(self, shape: Tuple[int, ...], dtype: DTypeLike = None) -> None:
        super().reset(shape, dtype)
        self._cached = np.asarray(self.v_th, dtype=self._dtype)

    def thresholds(self, t: int) -> np.ndarray:
        del t
        if self._cached is None:
            self._cached = np.asarray(self.v_th, dtype=self.dtype)
        return self._cached

    def describe(self) -> str:
        return f"ConstantThreshold(v_th={self.v_th})"


class PhaseThreshold(ThresholdDynamics):
    """Phase coding: threshold oscillates with the global phase function.

    ``V_th(t) = 2^-(1 + mod(t, k)) · v_th`` (Eq. 6–7).  The same oscillation is
    shared by every neuron in the layer (it is a *global reference*), so a
    spike's amplitude encodes the bit-position of the phase at which it fired.
    The ``k`` per-phase 0-d arrays are precomputed once and reused.
    """

    coding = "phase"

    def __init__(self, v_th: float = 1.0, period: int = 8, phase_offset: int = 0) -> None:
        validate_positive("v_th", v_th)
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if phase_offset < 0:
            raise ValueError(f"phase_offset must be non-negative, got {phase_offset}")
        self.v_th = float(v_th)
        self.period = int(period)
        self.phase_offset = int(phase_offset)
        self._table: Optional[Tuple[np.ndarray, ...]] = None

    def oscillation(self, t: int) -> float:
        """The phase function ``Π(t)`` of Eq. 6."""
        phase = (t + self.phase_offset) % self.period
        return float(2.0 ** (-(1 + phase)))

    def reset(self, shape: Tuple[int, ...], dtype: DTypeLike = None) -> None:
        super().reset(shape, dtype)
        self._table = self._build_table(self._dtype)

    def _build_table(self, dtype: np.dtype) -> Tuple[np.ndarray, ...]:
        return tuple(
            np.asarray(2.0 ** (-(1 + phase)) * self.v_th, dtype=dtype)
            for phase in range(self.period)
        )

    def thresholds(self, t: int) -> np.ndarray:
        if self._table is None:
            self._table = self._build_table(self.dtype)
        return self._table[(t + self.phase_offset) % self.period]

    def describe(self) -> str:
        return f"PhaseThreshold(v_th={self.v_th}, period={self.period})"


class BurstThreshold(ThresholdDynamics):
    """Burst coding (the paper's proposal): per-neuron adaptive threshold.

    After a spike the burst function grows by the burst constant ``β > 1``
    (``g ← β·g``), so an immediately following spike carries a larger
    amplitude; as soon as the neuron stays silent for one step the function
    resets to 1 (Eq. 8).  ``V_th(t) = g(t)·v_th`` (Eq. 9) and the effective
    synaptic weight during a burst is ``ŵ = w·g`` (Eq. 10).

    All per-step state (``g``, the consecutive-spike counter, the threshold
    and growth scratch buffers) is preallocated at ``reset`` and updated in
    place; ``thresholds`` / ``update`` allocate nothing.

    Parameters
    ----------
    v_th:
        Base threshold; smaller values mean finer transmission precision but
        more spikes (the trade-off of Fig. 2 / Table 2).
    beta:
        Burst constant (> 1); the paper uses 2.
    max_burst_length:
        Optional cap on consecutive burst spikes: after this many consecutive
        spikes the burst function stops growing.  ``None`` (default) matches
        the paper, which reports bursts of length > 5.
    """

    coding = "burst"

    def __init__(
        self,
        v_th: float = 0.125,
        beta: float = 2.0,
        max_burst_length: Optional[int] = None,
    ) -> None:
        validate_positive("v_th", v_th)
        if beta <= 1.0:
            raise ValueError(
                f"beta must be > 1 (burst spikes potentiate the synapse), got {beta}"
            )
        if max_burst_length is not None and max_burst_length < 1:
            raise ValueError(f"max_burst_length must be >= 1, got {max_burst_length}")
        self.v_th = float(v_th)
        self.beta = float(beta)
        self.max_burst_length = max_burst_length
        self._g: Optional[np.ndarray] = None
        self._consecutive: Optional[np.ndarray] = None
        self._th_buf: Optional[np.ndarray] = None
        self._grown: Optional[np.ndarray] = None
        self._silent: Optional[np.ndarray] = None

    def reset(self, shape: Tuple[int, ...], dtype: DTypeLike = None) -> None:
        super().reset(shape, dtype)
        self._g = np.ones(shape, dtype=self._dtype)
        self._consecutive = np.zeros(shape, dtype=np.int64)
        self._th_buf = np.empty(shape, dtype=self._dtype)
        self._grown = np.empty(shape, dtype=self._dtype)
        self._silent = np.empty(shape, dtype=bool)
        self._ceiling = np.finfo(self._dtype).max
        if self.max_burst_length is not None:
            self._cons_scratch = np.empty(shape, dtype=np.int64)
            self._capped = np.empty(shape, dtype=bool)

    def thresholds(self, t: int) -> np.ndarray:
        del t
        if self._g is None or self._th_buf is None:
            raise RuntimeError("BurstThreshold.reset(shape) must be called before use")
        np.multiply(self._g, self.v_th, out=self._th_buf)
        return self._th_buf

    def update(self, spikes: np.ndarray) -> None:
        if self._g is None or self._consecutive is None:
            raise RuntimeError("BurstThreshold.reset(shape) must be called before use")
        g = self._g
        grown = self._grown
        silent = self._silent
        consecutive = self._consecutive
        if spikes.dtype != np.bool_:
            spikes = np.asarray(spikes, dtype=bool)
        np.logical_not(spikes, out=silent)

        np.multiply(g, self.beta, out=grown)
        # Clamp to the largest finite value: an extreme burst can overflow
        # g·β to inf, and the mask-free combine below would then produce
        # inf·0 = NaN on the first silent step and poison g permanently.
        # A neuron at the ceiling behaves like one at inf (the threshold is
        # unreachable, so it falls silent and resets to 1 next step).
        np.minimum(grown, self._ceiling, out=grown)
        if self.max_burst_length is not None:
            # stop growing once the burst reaches the cap
            np.add(consecutive, 1, out=self._cons_scratch)
            np.greater_equal(self._cons_scratch, self.max_burst_length, out=self._capped)
            np.copyto(grown, g, where=self._capped)
            np.multiply(self._cons_scratch, spikes, out=consecutive)
        # g ← spikes ? grown : 1, as three unmasked passes (masked copyto is
        # far slower).  Exact for finite grown: x·1 = x, x·0 = 0, 0+1 = 1.
        np.multiply(grown, spikes, out=grown)
        np.add(grown, silent, out=g)

    @property
    def burst_function(self) -> np.ndarray:
        """Current value of ``g`` per neuron (for tests and analysis)."""
        if self._g is None:
            raise RuntimeError("BurstThreshold.reset(shape) must be called before use")
        return self._g.copy()

    def describe(self) -> str:
        return (
            f"BurstThreshold(v_th={self.v_th}, beta={self.beta}, "
            f"max_burst_length={self.max_burst_length})"
        )


def make_threshold(
    coding: str,
    v_th: Optional[float] = None,
    beta: float = 2.0,
    phase_period: int = 8,
    max_burst_length: Optional[int] = None,
) -> ThresholdDynamics:
    """Build the threshold dynamics for a hidden-layer coding scheme by name.

    Parameters
    ----------
    coding:
        ``"rate"``, ``"phase"`` or ``"burst"``.
    v_th:
        Base threshold; defaults are 1.0 for rate/phase and 0.125 for burst
        (the paper's main configuration).
    beta, phase_period, max_burst_length:
        Scheme-specific parameters (ignored by the schemes that do not use
        them).
    """
    key = coding.lower()
    if key == "rate":
        return ConstantThreshold(v_th=1.0 if v_th is None else v_th)
    if key == "phase":
        return PhaseThreshold(v_th=1.0 if v_th is None else v_th, period=phase_period)
    if key == "burst":
        return BurstThreshold(
            v_th=0.125 if v_th is None else v_th,
            beta=beta,
            max_burst_length=max_burst_length,
        )
    raise ValueError(f"unknown hidden-layer coding {coding!r}; expected rate, phase or burst")
