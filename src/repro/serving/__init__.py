"""Concurrent batching inference serving.

The serving subsystem turns the layered engine's *prepare once, serve many
batches* seam (:class:`~repro.engine.session.InferenceSession`) into an
actual server: many concurrent clients share one prepared network per coding
scheme, with their individual requests coalesced into micro-batches.

* :mod:`repro.serving.scheduler` — the request queue + micro-batching
  scheduler (:class:`MicroBatcher`): priority-ordered flush on
  ``max_batch_size`` or ``max_wait_ms``, a worker pool (one thread per
  session replica), bounded-queue admission control with
  lowest-priority-first shedding and computed retry-after estimates,
  graceful drain;
* :mod:`repro.serving.limits` — per-client token-bucket rate limits and
  windowed quotas (:class:`ClientRateLimiter`), LRU-bounded and fake-clock
  testable;
* :mod:`repro.serving.engine` — the embeddable :class:`ServingEngine`:
  per-scheme **replica session pools** built lazily through the scheme
  registry behind an LRU-bounded cache, shared weight normalisation and
  shared float64 weight masters, per-request futures;
* :mod:`repro.serving.http` — the stdlib-only JSON front end
  (:class:`ServingHTTPServer`): ``/v1/classify``, ``/v1/schemes``,
  ``/healthz``, ``/metrics``;
* :mod:`repro.serving.protocol` / :mod:`repro.serving.metrics` — wire types
  and thread-safe serving statistics.

``repro serve`` (the CLI subcommand) wires a trained workload into these
pieces; tests and examples drive :class:`ServingEngine` in-process without
sockets.
"""

from repro.serving.engine import ServingConfig, ServingEngine
from repro.serving.http import ServingHTTPServer
from repro.serving.limits import (
    ANONYMOUS_CLIENT,
    ClientRateLimiter,
    RateLimitedError,
    TokenBucket,
)
from repro.serving.metrics import ServerMetrics
from repro.serving.protocol import ClassifyResult, parse_image, scheme_listing
from repro.serving.scheduler import (
    PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
    BatcherClosedError,
    BatchInfo,
    MicroBatcher,
    QueueFullError,
    resolve_priority,
)

__all__ = [
    "ServingConfig",
    "ServingEngine",
    "ServingHTTPServer",
    "ServerMetrics",
    "ClassifyResult",
    "parse_image",
    "scheme_listing",
    "MicroBatcher",
    "BatchInfo",
    "QueueFullError",
    "BatcherClosedError",
    "PRIORITY_INTERACTIVE",
    "PRIORITY_BATCH",
    "resolve_priority",
    "ClientRateLimiter",
    "TokenBucket",
    "RateLimitedError",
    "ANONYMOUS_CLIENT",
]
