"""Backend instrumentation: count and time every kernel-seam crossing.

``InstrumentedBackend`` wraps any :class:`~repro.backends.base.KernelBackend`
and records, per primitive name, how many times it was called and how long
the calls took.  It exists for two consumers:

* the backend-call-count tests (``tests/test_backends.py``), which assert
  the fused step programs actually collapsed the per-layer seam traffic, and
* ``benchmarks/perf/profile_step.py``, which reports the per-kernel seam tax
  of one simulation step.

The wrapper reports the inner backend's ``name`` so calibration caches keyed
by backend stay warm, and it forwards ``compile_step_program`` with *itself*
as the backend — compiled programs therefore capture the counting wrappers
for the primitives they keep calling through the seam (GEMMs, gathers,
scans), while their inlined elementwise chains correctly count as zero
crossings.  Each compiled program is additionally wrapped so program
invocations themselves show up under ``program:<layer name>``.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.backends.base import KernelBackend
from repro.backends.programs import StepProgram

__all__ = ["KernelCallRecorder", "InstrumentedBackend", "PRIMITIVE_NAMES"]

#: every seam primitive the recorder intercepts
PRIMITIVE_NAMES = (
    "empty",
    "zeros",
    "fill",
    "matmul",
    "add_inplace",
    "scale",
    "take",
    "take_flat",
    "active_features",
    "active_channels",
    "count_nonzero",
    "im2col_plan",
    "direct_conv_plan",
    "avgpool2x2",
    "mean_columns",
    "argmax_columns",
    "if_step",
    "burst_grow",
    "burst_cap",
    "burst_commit_signals",
    "burst_commit_bool",
)


class KernelCallRecorder:
    """Per-primitive call counts and wall-clock seconds."""

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}
        self.seconds: Dict[str, float] = {}

    def record(self, name: str, elapsed: float) -> None:
        self.counts[name] = self.counts.get(name, 0) + 1
        self.seconds[name] = self.seconds.get(name, 0.0) + elapsed

    def reset(self) -> None:
        self.counts.clear()
        self.seconds.clear()

    def total_calls(self) -> int:
        return sum(self.counts.values())

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        return {
            name: {"calls": self.counts[name], "seconds": self.seconds[name]}
            for name in sorted(self.counts)
        }


class _InstrumentedProgram(StepProgram):
    """Counts each compiled-program invocation as ``program:<layer>``."""

    def __init__(self, inner: StepProgram, recorder: KernelCallRecorder) -> None:
        super().__init__(inner.layer)
        self.fused = inner.fused
        self._inner = inner
        self._recorder = recorder
        self._key = f"program:{inner.layer.name}"

    def run(self, incoming, t, incoming_nonzero=None):
        start = time.perf_counter()
        try:
            return self._inner.run(incoming, t, incoming_nonzero)
        finally:
            self._recorder.record(self._key, time.perf_counter() - start)

    @property
    def seam_inner(self):
        """The wrapped program — a network program composes these directly,
        since inside a block the layer boundary is no longer an engine seam
        (the block call itself is counted instead)."""
        return self._inner

    def describe(self) -> str:
        return self._inner.describe()


class _InstrumentedNetworkProgram:
    """Counts each whole-network block invocation as ``network_program``."""

    fused = True

    def __init__(self, inner, recorder: KernelCallRecorder) -> None:
        self._inner = inner
        self._recorder = recorder

    def run_block(self, t0, n, **kwargs):
        start = time.perf_counter()
        try:
            return self._inner.run_block(t0, n, **kwargs)
        finally:
            self._recorder.record("network_program", time.perf_counter() - start)

    def describe(self) -> str:
        return self._inner.describe()

    def __getattr__(self, attribute):
        return getattr(self._inner, attribute)


class InstrumentedBackend(KernelBackend):
    """Counting/timing proxy around a real backend (tests and profiling)."""

    def __init__(
        self, inner: KernelBackend, recorder: Optional[KernelCallRecorder] = None
    ) -> None:
        self._inner = inner
        self.recorder = recorder if recorder is not None else KernelCallRecorder()
        # same registry name: calibration caches keyed by backend stay warm
        self.name = inner.name
        self.description = f"instrumented({inner.name})"
        for primitive in PRIMITIVE_NAMES:
            target = getattr(inner, primitive, None)
            if target is None:
                continue
            setattr(self, primitive, self._wrap(primitive, target))

    def _wrap(self, primitive: str, target):
        recorder = self.recorder

        def counted(*args, **kwargs):
            start = time.perf_counter()
            try:
                return target(*args, **kwargs)
            finally:
                recorder.record(primitive, time.perf_counter() - start)

        counted.__name__ = primitive
        return counted

    def available(self) -> bool:
        return self._inner.available()

    def availability_error(self):
        return self._inner.availability_error()

    def compile_step_program(self, layer):
        # dispatch on the *inner* backend's class but pass ourselves as the
        # backend, so fused programs capture the counting wrappers for every
        # primitive they still route through the seam
        program = type(self._inner).compile_step_program(self, layer)
        if program is None:
            return None
        return _InstrumentedProgram(program, self.recorder)

    def compile_network_program(self, prepared):
        # same unbound dispatch as compile_step_program: the inner backend's
        # network compiler composes per-layer programs that already capture
        # this proxy's counting primitives; the block driver itself is then
        # wrapped so seam traffic is counted at block granularity
        program = type(self._inner).compile_network_program(self, prepared)
        if program is None:
            return None
        return _InstrumentedNetworkProgram(program, self.recorder)

    def __getattr__(self, attribute):
        # anything not wrapped above (tuning knobs like min_rows/threads,
        # helper methods) resolves on the real backend
        return getattr(self._inner, attribute)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InstrumentedBackend({self._inner!r})"
