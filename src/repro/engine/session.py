"""Reusable serving session: prepare once, serve many batches.

An :class:`InferenceSession` pins down a converted network and one simulation
configuration, then serves any number of input batches through the layered
engine.  The expensive work happens once and is amortised across requests:

* **build** — the DNN→SNN conversion (when constructed via
  :meth:`InferenceSession.from_model`) happens once per session,
* **plan** — the dtype and compute-backend resolution and the snapshot
  schedule are computed once, and the per-geometry kernel plans, sparsity
  calibrations and scratch buffers cached inside the network's layers
  survive across batches (all kernel hot paths run on the plan's resolved
  :class:`~repro.backends.base.KernelBackend`),
* **run** — every :meth:`run` call only pays the per-batch state reset and
  the step loop.

Results are bit-identical to fresh one-shot simulations of an identically
built network in both dtypes (for deterministic encoders; a stochastic
Poisson input encoder advances its RNG stream across requests, exactly as it
would across sequential batches).  The pipeline serves every batch of
``run_scheme`` through a session, and the CLI / experiments route through
the pipeline.

Thread safety
-------------
A session is **single-flight**: the network's layers hold shared plan
buffers, scratch arrays and recording state, so only one simulation may be
in flight per session at any time.  :meth:`InferenceSession.run` enforces
this with an internal lock — concurrent callers (e.g. the serving engine's
batcher threads, or user threads sharing one session) serialise instead of
corrupting each other's buffers.  For *parallel* execution build one session
per thread (each owns its own converted network) — or a whole pool in one
call with :meth:`InferenceSession.replica_pool`, which shares the float64
weight masters across replicas (per-replica plan/scratch buffers and
sparsity-calibration cache keys, so replicas never contend on plan state) —
or use the sharded evaluation path.
"""

from __future__ import annotations

import threading
from typing import List, Optional

import numpy as np

from repro.ann.model import Sequential
from repro.conversion.converter import ConversionConfig
from repro.conversion.normalization import NormalizationResult, normalize_weights
from repro.core.hybrid import HybridCodingScheme
from repro.engine.build import build_network
from repro.engine.plan import SimulationPlan, plan_simulation
from repro.engine.run import execute
from repro.snn.network import SimulationConfig, SimulationResult, SpikingNetwork
from repro.utils.rng import SeedLike

#: float64 master arrays shared across replica networks (read-only during
#: simulation: runs cast them into per-replica buffers, never write them)
_SHARED_MASTER_ATTRS = ("weight", "bias", "_weight_matrix", "_tap_master")


def _share_weight_masters(primary: SpikingNetwork, replica: SpikingNetwork) -> None:
    """Alias ``replica``'s weight masters to ``primary``'s arrays.

    Replicas are built from the same model and normalisation, so the values
    are already identical — aliasing just deduplicates the float64 masters in
    memory.  Per-replica state (cast caches, kernel plans, scratch buffers,
    neuron state) stays owned by each replica's own layers.
    """
    for p_layer, r_layer in zip(primary.layers, replica.layers):
        for attr in _SHARED_MASTER_ATTRS:
            master = getattr(p_layer, attr, None)
            if master is not None and getattr(r_layer, attr, None) is not None:
                setattr(r_layer, attr, master)


class InferenceSession:
    """Serve repeated inference requests over one converted network.

    Parameters
    ----------
    network:
        The converted :class:`~repro.snn.network.SpikingNetwork` (build it
        with :func:`repro.engine.build.build_network`, or use
        :meth:`from_model`).
    config:
        Simulation parameters shared by every request (defaults to
        :class:`~repro.snn.network.SimulationConfig`).
    """

    def __init__(
        self, network: SpikingNetwork, config: Optional[SimulationConfig] = None
    ) -> None:
        self.network = network
        self.config = config or SimulationConfig()
        self._plan: Optional[SimulationPlan] = None
        # the network's layers hold shared plan buffers and scratch arrays;
        # one simulation at a time per session (see "Thread safety" above)
        self._run_lock = threading.RLock()
        #: number of batches served so far
        self.batches_served = 0
        #: number of images served so far
        self.images_served = 0
        #: position of this session inside a :meth:`replica_pool` (0 for a
        #: standalone session and for the pool's primary)
        self.replica_index = 0

    @classmethod
    def from_model(
        cls,
        model: Sequential,
        scheme: HybridCodingScheme,
        *,
        config: Optional[SimulationConfig] = None,
        conversion: Optional[ConversionConfig] = None,
        normalization: Optional[NormalizationResult] = None,
        calibration_x: Optional[np.ndarray] = None,
        seed: SeedLike = None,
    ) -> "InferenceSession":
        """Build (convert) and wrap a network for ``scheme`` in one call."""
        network = build_network(
            model,
            scheme,
            conversion=conversion,
            normalization=normalization,
            calibration_x=calibration_x,
            seed=seed,
        )
        return cls(network, config)

    @classmethod
    def replica_pool(
        cls,
        model: Sequential,
        scheme: HybridCodingScheme,
        *,
        count: int,
        config: Optional[SimulationConfig] = None,
        conversion: Optional[ConversionConfig] = None,
        normalization: Optional[NormalizationResult] = None,
        calibration_x: Optional[np.ndarray] = None,
        seed: SeedLike = None,
    ) -> List["InferenceSession"]:
        """Build ``count`` independently runnable sessions over one model.

        Every replica is converted from the same model with the same (shared,
        computed-once) weight normalisation and identical configuration, so a
        float64 batch answers bit-identically on any replica.  The float64
        weight masters are aliased across replicas (one copy in memory);
        everything mutable — plan buffers, kernel plans, cast caches, neuron
        state — is per-replica, and each replica beyond the first tags its
        sparsity-calibration cache keys (``sparsity_cache_tag``) so replicas
        calibrating concurrently never contend on shared plan state.

        Note: a stochastic (Poisson) input encoder owns one RNG stream *per
        replica* — deterministic encoders (phase, TTFS, real amplitudes) are
        unaffected and keep the pool's bit-identity guarantee.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if normalization is None:
            if calibration_x is None:
                raise ValueError(
                    "replica_pool needs a shared normalization or calibration_x "
                    "to compute one"
                )
            shared_conversion = conversion or ConversionConfig()
            normalization = normalize_weights(
                model,
                calibration_x=calibration_x,
                percentile=shared_conversion.percentile,
                method=shared_conversion.normalization,
            )
        sessions: List[InferenceSession] = []
        for index in range(count):
            session = cls.from_model(
                model,
                scheme,
                config=config,
                conversion=conversion,
                normalization=normalization,
                seed=seed,
            )
            session.replica_index = index
            if index > 0:
                _share_weight_masters(sessions[0].network, session.network)
                for layer in session.network.layers:
                    layer.sparsity_cache_tag = f"replica-{index}"
            sessions.append(session)
        return sessions

    @property
    def plan(self) -> SimulationPlan:
        """The session's (lazily built, reused) simulation plan."""
        if self._plan is None:
            self._plan = plan_simulation(self.network, self.config)
        return self._plan

    def run(
        self, x: np.ndarray, labels: Optional[np.ndarray] = None
    ) -> SimulationResult:
        """Simulate one input batch and return its result.

        Safe to call from multiple threads: calls serialise on the session's
        internal lock (the prepare/execute pair mutates shared layer state,
        so overlapping runs would corrupt each other's buffers).
        """
        with self._run_lock:
            result = execute(self.plan.prepare(x), labels=labels)
            self.batches_served += 1
            self.images_served += result.batch_size
        return result

    def describe(self) -> str:
        """One-line summary used in logs."""
        return (
            f"InferenceSession({self.network.name!r}, dtype={self.plan.dtype}, "
            f"time_steps={self.config.time_steps}, batches_served={self.batches_served})"
        )
