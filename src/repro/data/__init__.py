"""Dataset containers and procedurally generated image-classification data.

The paper evaluates on MNIST, CIFAR-10 and CIFAR-100.  Those datasets are not
available offline in this environment, so this package generates synthetic
image-classification tasks with the same shapes and value ranges (inputs in
``[0, 1]``, one-hot class labels).  See DESIGN.md §2 for the substitution
rationale: the coding-scheme comparison needs a non-trivial task with bounded
static inputs, which the synthetic generators provide.
"""

from repro.data.dataset import Dataset, DataSplit, iterate_minibatches, one_hot, train_test_split
from repro.data.synthetic import (
    SyntheticImageConfig,
    make_classification_images,
    make_mnist_like,
    make_cifar10_like,
    make_cifar100_like,
    load_dataset,
)
from repro.data.transforms import normalize_minmax, standardize, flatten_images, clip01

__all__ = [
    "Dataset",
    "DataSplit",
    "iterate_minibatches",
    "one_hot",
    "train_test_split",
    "SyntheticImageConfig",
    "make_classification_images",
    "make_mnist_like",
    "make_cifar10_like",
    "make_cifar100_like",
    "load_dataset",
    "normalize_minmax",
    "standardize",
    "flatten_images",
    "clip01",
]
