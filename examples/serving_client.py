"""Concurrent serving demo: micro-batching amortisation, in-process.

Starts a :class:`~repro.serving.engine.ServingEngine` (and, to show the full
stack, the stdlib HTTP front end on an ephemeral port) over a small trained
workload, then answers the same set of classify requests two ways:

1. **sequential single-image runs** — each image simulated alone through one
   shared session, the way independent callers without a serving layer
   would;
2. **concurrent clients through the micro-batching scheduler** — requests
   submitted together, coalesced into batches of up to ``max_batch_size``,
   one simulation serving several requests.

The printed metrics show the batch-size histogram (proof the scheduler
coalesced) and the wall-clock amortisation; the predictions are identical in
both modes.

Run with:  PYTHONPATH=src python examples/serving_client.py
"""

import json
import time
import urllib.request

from repro.experiments.workloads import build_workload
from repro.serving.engine import ServingConfig, ServingEngine
from repro.serving.http import ServingHTTPServer

NUM_REQUESTS = 16
TIME_STEPS = 60
SCHEME = "phase-burst"


def main() -> None:
    print("training the served workload (synthetic MNIST, small CNN) ...")
    workload = build_workload(
        dataset="mnist", model="small_cnn", samples_per_class=12, epochs=8, seed=0
    )
    images = workload.data.test.x[:NUM_REQUESTS]

    engine = ServingEngine(
        workload.model,
        workload.data.train.x,
        ServingConfig(
            max_batch_size=8, max_wait_ms=25.0, time_steps=TIME_STEPS, seed=0
        ),
    )
    engine.warm(SCHEME)

    # -- baseline: each request simulated alone, one after another ---------
    started = time.perf_counter()
    sequential = [engine.classify_sync(image, SCHEME) for image in images]
    sequential_s = time.perf_counter() - started
    # classify_sync waits for each answer before submitting the next request,
    # so every one of these rode in a batch of exactly 1
    assert all(result.batch_size == 1 for result in sequential)

    # -- concurrent clients: submit everything, let the scheduler batch ----
    started = time.perf_counter()
    futures = [engine.classify(image, SCHEME) for image in images]
    batched = [future.result(timeout=120) for future in futures]
    batched_s = time.perf_counter() - started

    assert [r.prediction for r in batched] == [r.prediction for r in sequential]
    histogram = engine.metrics.batch_size_histogram()
    print(f"\n{NUM_REQUESTS} requests, {TIME_STEPS} steps, scheme {SCHEME}")
    print(f"sequential single-image runs : {sequential_s * 1000:8.1f} ms total")
    print(f"micro-batched concurrent run : {batched_s * 1000:8.1f} ms total "
          f"({sequential_s / batched_s:.1f}x amortisation)")
    print(f"batch-size histogram         : {histogram}")
    print(f"largest coalesced batch      : {engine.metrics.max_batch_size_seen()}")

    # -- the same engine behind the HTTP front end -------------------------
    with ServingHTTPServer(engine, port=0, default_scheme=SCHEME).start() as server:
        health = json.load(urllib.request.urlopen(server.url + "/healthz", timeout=30))
        body = json.dumps({"image": images[0].tolist()}).encode("utf-8")
        request = urllib.request.Request(
            server.url + "/v1/classify",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        answer = json.load(urllib.request.urlopen(request, timeout=60))
        metrics = json.load(urllib.request.urlopen(server.url + "/metrics", timeout=30))
        print(f"\nHTTP front end on {server.url}")
        print(f"/healthz      : {health['status']}, schemes {health['schemes_loaded']}")
        print(f"/v1/classify  : prediction={answer['prediction']} "
              f"(queue {answer['queue_ms']} ms, batch {answer['batch_ms']} ms)")
        print(f"/metrics      : {metrics['requests_total']} requests, "
              f"p95 latency {metrics['latency_ms']['p95']} ms")
    print("server drained cleanly")


if __name__ == "__main__":
    main()
