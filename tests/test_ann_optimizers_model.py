"""Tests for optimizers, the Sequential model and the model zoo builders."""

import numpy as np
import pytest

from repro.ann.layers import Dense, Flatten, ReLU
from repro.ann.losses import SoftmaxCrossEntropy
from repro.ann.model import Sequential
from repro.ann.optimizers import SGD, Adam
from repro.models.cnn import build_cnn, build_small_cnn
from repro.models.mlp import build_mlp
from repro.models.vgg import VGG16_CONFIG, build_vgg16, build_vgg_small


def _quadratic_layers(start=5.0):
    """A single 1x1 Dense 'layer' whose weight should be driven to zero."""
    layer = Dense(1, 1, use_bias=False, seed=0)
    layer.params["weight"] = np.array([[start]])
    return [layer]


def _quadratic_grad(layers):
    # loss = 0.5 * w^2  ->  grad = w
    layers[0].grads["weight"] = layers[0].params["weight"].copy()


class TestSGD:
    def test_plain_step(self):
        layers = _quadratic_layers(2.0)
        opt = SGD(learning_rate=0.1)
        _quadratic_grad(layers)
        opt.step(layers)
        assert layers[0].params["weight"][0, 0] == pytest.approx(1.8)

    def test_convergence(self):
        layers = _quadratic_layers(5.0)
        opt = SGD(learning_rate=0.2, momentum=0.5)
        for _ in range(200):
            _quadratic_grad(layers)
            opt.step(layers)
        assert abs(layers[0].params["weight"][0, 0]) < 1e-4

    def test_weight_decay_shrinks_weights(self):
        layers = _quadratic_layers(1.0)
        opt = SGD(learning_rate=0.1, weight_decay=1.0)
        layers[0].grads["weight"] = np.zeros((1, 1))
        opt.step(layers)
        assert layers[0].params["weight"][0, 0] == pytest.approx(0.9)

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.0)
        with pytest.raises(ValueError):
            SGD(learning_rate=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD(learning_rate=0.1, weight_decay=-1)

    def test_skips_non_trainable_layers(self):
        layer = Dense(1, 1, use_bias=False, seed=0)
        layer.trainable = False
        original = layer.params["weight"].copy()
        layer.grads["weight"] = np.ones((1, 1))
        SGD(0.5).step([layer])
        assert np.array_equal(layer.params["weight"], original)


class TestAdam:
    def test_convergence(self):
        layers = _quadratic_layers(5.0)
        opt = Adam(learning_rate=0.3)
        for _ in range(300):
            _quadratic_grad(layers)
            opt.step(layers)
        assert abs(layers[0].params["weight"][0, 0]) < 1e-3

    def test_first_step_size_is_lr(self):
        layers = _quadratic_layers(1.0)
        opt = Adam(learning_rate=0.1)
        _quadratic_grad(layers)
        opt.step(layers)
        # bias-corrected Adam moves by ~lr on the first step
        assert layers[0].params["weight"][0, 0] == pytest.approx(0.9, abs=1e-6)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam(learning_rate=0.1, beta1=1.0)

    def test_missing_grad_is_skipped(self):
        layer = Dense(2, 2, seed=0)
        before = layer.params["weight"].copy()
        Adam(0.1).step([layer])
        assert np.array_equal(layer.params["weight"], before)


class TestSequential:
    def _xor_model(self):
        layers = [Dense(2, 8, seed=0), ReLU(), Dense(8, 2, seed=1)]
        return Sequential(layers, input_shape=(2,), name="xor")

    def test_requires_layers(self):
        with pytest.raises(ValueError):
            Sequential([], input_shape=(2,))

    def test_shape_validation_on_init(self):
        with pytest.raises(ValueError):
            Sequential([Dense(3, 2, seed=0)], input_shape=(4,))

    def test_layer_shapes(self):
        model = self._xor_model()
        assert model.layer_shapes() == [(8,), (8,), (2,)]

    def test_summary_mentions_layers(self):
        text = self._xor_model().summary()
        assert "Dense" in text and "total params" in text

    def test_num_params(self):
        model = self._xor_model()
        assert model.num_params() == (2 * 8 + 8) + (8 * 2 + 2)

    def test_fit_learns_xor(self):
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        y = np.array([0, 1, 1, 0])
        model = self._xor_model()
        model.fit(x, y, epochs=400, batch_size=4, optimizer=Adam(5e-3), seed=0)
        assert model.evaluate(x, y) == 1.0

    def test_fit_history_records_epochs(self):
        x = np.random.default_rng(0).uniform(size=(20, 2))
        y = (x[:, 0] > 0.5).astype(int)
        model = self._xor_model()
        history = model.fit(x, y, epochs=3, batch_size=5, validation_data=(x, y), seed=0)
        assert len(history.loss) == 3
        assert len(history.val_accuracy) == 3
        assert "loss" in history.last()

    def test_fit_rejects_zero_epochs(self):
        model = self._xor_model()
        with pytest.raises(ValueError):
            model.fit(np.zeros((2, 2)), np.zeros(2), epochs=0)

    def test_predict_scores_and_labels(self):
        model = self._xor_model()
        x = np.random.default_rng(0).uniform(size=(5, 2))
        scores = model.predict_scores(x)
        labels = model.predict(x)
        assert scores.shape == (5, 2)
        assert np.array_equal(labels, scores.argmax(axis=1))

    def test_forward_collect_lengths(self):
        model = self._xor_model()
        activations = model.forward_collect(np.zeros((3, 2)))
        assert len(activations) == 3
        assert activations[-1].shape == (3, 2)

    def test_get_set_weights_roundtrip(self):
        model = self._xor_model()
        weights = model.get_weights()
        x = np.random.default_rng(1).uniform(size=(4, 2))
        before = model.predict_scores(x)
        # perturb then restore
        model.layers[0].params["weight"] += 1.0
        model.set_weights(weights)
        assert np.allclose(model.predict_scores(x), before)

    def test_set_weights_shape_mismatch(self):
        model = self._xor_model()
        weights = model.get_weights()
        weights[0]["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            model.set_weights(weights)

    def test_set_weights_wrong_length(self):
        model = self._xor_model()
        with pytest.raises(ValueError):
            model.set_weights([{}])

    def test_training_reduces_loss(self, tiny_image_split):
        data = tiny_image_split
        model = build_mlp(data.input_shape, [16], data.num_classes, seed=0)
        history = model.fit(
            data.train.x, data.train.y, epochs=8, batch_size=16, optimizer=Adam(2e-3), seed=0
        )
        assert history.loss[-1] < history.loss[0]


class TestModelZoo:
    def test_mlp_structure(self):
        model = build_mlp((1, 8, 8), [32, 16], 5, seed=0)
        assert model.layer_shapes()[-1] == (5,)

    def test_mlp_flat_input_no_flatten(self):
        model = build_mlp((10,), [4], 2, seed=0)
        assert not any(isinstance(layer, Flatten) for layer in model.layers)

    def test_mlp_invalid_hidden(self):
        with pytest.raises(ValueError):
            build_mlp((10,), [0], 2)

    def test_cnn_output_shape(self):
        model = build_cnn((1, 28, 28), 10, conv_channels=(4, 8), kernel_size=3, dense_size=16, seed=0)
        assert model.validate_shapes((1, 28, 28)) == (10,)

    def test_cnn_max_pool_option(self):
        model = build_cnn((1, 16, 16), 4, conv_channels=(4,), pool="max", seed=0)
        assert model.validate_shapes((1, 16, 16)) == (4,)

    def test_cnn_rejects_bad_pool(self):
        with pytest.raises(ValueError):
            build_cnn((1, 16, 16), 4, pool="median")

    def test_cnn_too_many_pools(self):
        with pytest.raises(ValueError):
            build_cnn((1, 4, 4), 2, conv_channels=(4, 4, 4, 4), seed=0)

    def test_small_cnn(self):
        model = build_small_cnn((3, 16, 16), 3, seed=0)
        assert model.validate_shapes((3, 16, 16)) == (3,)

    def test_vgg16_structure(self):
        model = build_vgg16((3, 32, 32), 10, seed=0)
        conv_layers = [l for l in model.layers if type(l).__name__ == "Conv2D"]
        dense_layers = [l for l in model.layers if type(l).__name__ == "Dense"]
        assert len(conv_layers) == 13
        assert len(dense_layers) == 3
        assert model.validate_shapes((3, 32, 32)) == (10,)

    def test_vgg16_config_has_five_blocks(self):
        assert VGG16_CONFIG.count("M") == 5

    def test_vgg_small_scales_width(self):
        model = build_vgg_small((3, 32, 32), 10, width_factor=0.125, depth_blocks=2, seed=0)
        first_conv = next(l for l in model.layers if type(l).__name__ == "Conv2D")
        assert first_conv.out_channels == 8
        assert model.validate_shapes((3, 32, 32)) == (10,)

    def test_vgg_small_invalid_depth(self):
        with pytest.raises(ValueError):
            build_vgg_small(depth_blocks=6)

    def test_vgg_small_forward(self):
        model = build_vgg_small((3, 16, 16), 4, width_factor=0.0625, depth_blocks=2, seed=0)
        out = model.forward(np.random.default_rng(0).uniform(size=(2, 3, 16, 16)))
        assert out.shape == (2, 4)
