"""Record the perf baseline and the float64 golden reference of the engine.

Run from the repo root with ``PYTHONPATH=src python benchmarks/perf/record_baseline.py``.

Two artefacts are (re)written next to this script:

* ``seed_baseline.json`` — wall-clock timings of the end-to-end Table 2 VGG
  workload (the single ``phase-burst`` scheme run and the full five-method
  CIFAR-10 block) at the default benchmark scale.  The committed copy was
  recorded with the *seed* engine (PR 0 state) so later engines can prove
  speedups against it; re-running this script on a faster engine simply
  re-baselines the comparison.
* ``seed_reference.json`` — float64 predictions, total spike counts and final
  logits of small deterministic workloads.  The committed copy captures the
  seed engine's float64 outputs; the refactored engine must reproduce them
  exactly (see ``tests/test_dtype_policy.py``).

The script is deliberately self-contained (stdlib ``json``/``time`` only on
top of the repro package) so it runs identically on the seed tree.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

HERE = Path(__file__).resolve().parent

BENCH_TIME_STEPS = int(os.environ.get("REPRO_BENCH_TIME_STEPS", "150"))
BENCH_NUM_IMAGES = int(os.environ.get("REPRO_BENCH_NUM_IMAGES", "24"))
BENCH_SAMPLES_PER_CLASS = int(os.environ.get("REPRO_BENCH_SAMPLES_PER_CLASS", "30"))

#: scale of the golden-reference workloads (small but exercises conv, max/avg
#: pooling, dense, and the three deterministic coding families)
REFERENCE_CASES = (
    {
        "name": "mnist-small_cnn",
        "dataset": "mnist",
        "model": "small_cnn",
        "samples_per_class": 8,
        "epochs": 3,
        "time_steps": 40,
        "num_images": 8,
        "schemes": [["real-burst", 0.125], ["rate-rate", None], ["phase-phase", None]],
    },
    {
        "name": "cifar10-vgg_small",
        "dataset": "cifar10",
        "model": "vgg_small",
        "samples_per_class": 4,
        "epochs": 2,
        "time_steps": 25,
        "num_images": 4,
        "schemes": [["phase-burst", 0.125], ["real-rate", None]],
    },
)


def machine_fingerprint() -> dict:
    import numpy as np

    return {
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
    }


def record_baseline() -> dict:
    from repro.core.hybrid import HybridCodingScheme
    from repro.experiments.sweep import make_pipeline
    from repro.experiments.table2 import run_table2
    from repro.experiments.workloads import cifar10_workload

    num_images = min(16, BENCH_NUM_IMAGES)

    t0 = time.perf_counter()
    workload = cifar10_workload(samples_per_class=BENCH_SAMPLES_PER_CLASS, epochs=15, seed=0)
    workload_seconds = time.perf_counter() - t0

    pipeline = make_pipeline(workload, time_steps=BENCH_TIME_STEPS, num_images=num_images, seed=0)
    pipeline.dnn_accuracy  # warm the caches outside the timed region
    pipeline.normalization
    scheme = HybridCodingScheme.from_notation("phase-burst", v_th=0.125)
    t0 = time.perf_counter()
    run = pipeline.run_scheme(scheme)
    scheme_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    rows = run_table2(
        datasets=("cifar10",),
        workloads={"cifar10": workload},
        time_steps=BENCH_TIME_STEPS,
        num_images=num_images,
        target_fraction=0.99,
    )
    block_seconds = time.perf_counter() - t0

    try:  # the seed tree predates fused step programs: record as unfused
        from repro.backends import fused_programs_enabled

        fused = fused_programs_enabled()
    except ImportError:
        fused = False

    return {
        "description": "seed-engine wall-clock baseline for the Table 2 VGG workload",
        "machine": machine_fingerprint(),
        # which step-loop path (fused step programs vs composed per-kernel
        # calls) measured this baseline
        "fused": fused,
        "scale": {
            "time_steps": BENCH_TIME_STEPS,
            "num_images": num_images,
            "samples_per_class": BENCH_SAMPLES_PER_CLASS,
        },
        "workload_build_seconds": workload_seconds,
        "vgg_phase_burst_run_seconds": scheme_seconds,
        "vgg_phase_burst_accuracy": run.accuracy,
        "vgg_phase_burst_total_spikes": run.total_spikes,
        "table2_vgg_block_seconds": block_seconds,
        "table2_vgg_block_methods": len(rows),
    }


def record_reference() -> dict:
    from repro.core.hybrid import HybridCodingScheme
    from repro.experiments.sweep import make_pipeline
    from repro.experiments.workloads import build_workload

    cases = []
    for spec in REFERENCE_CASES:
        workload = build_workload(
            dataset=spec["dataset"],
            model=spec["model"],
            samples_per_class=spec["samples_per_class"],
            epochs=spec["epochs"],
            seed=0,
        )
        pipeline = make_pipeline(
            workload,
            time_steps=spec["time_steps"],
            num_images=spec["num_images"],
            batch_size=spec["num_images"],
            seed=0,
        )
        runs = {}
        for notation, v_th in spec["schemes"]:
            scheme = HybridCodingScheme.from_notation(notation, v_th=v_th)
            run = pipeline.run_scheme(scheme)
            runs[notation] = {
                "predictions": run.outputs_final.argmax(axis=1).tolist(),
                "total_spikes": int(run.total_spikes),
                "final_logits": run.outputs_final.tolist(),
            }
        cases.append({**{k: spec[k] for k in spec if k != "schemes"}, "runs": runs})
    return {
        "description": "seed-engine float64 golden outputs (exact-match reference)",
        "machine": machine_fingerprint(),
        "cases": cases,
    }


def main() -> None:
    baseline = record_baseline()
    (HERE / "seed_baseline.json").write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"wrote seed_baseline.json: "
          f"scheme run {baseline['vgg_phase_burst_run_seconds']:.2f}s, "
          f"table2 block {baseline['table2_vgg_block_seconds']:.2f}s")
    reference = record_reference()
    (HERE / "seed_reference.json").write_text(json.dumps(reference, indent=2) + "\n")
    print("wrote seed_reference.json")


if __name__ == "__main__":
    main()
