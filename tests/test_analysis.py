"""Tests for the spike-train and inference analyses (ISI, bursts, firing,
density, curves, metrics)."""

import numpy as np
import pytest

from repro.analysis.burst_stats import burst_composition, burst_lengths, burst_statistics
from repro.analysis.curves import latency_to_target, spikes_to_target, target_accuracies
from repro.analysis.density import spiking_density
from repro.analysis.firing import (
    firing_rate,
    firing_regularity,
    firing_statistics,
    mean_log_firing_rate,
)
from repro.analysis.isi import (
    inter_spike_intervals,
    isi_histogram,
    isi_per_neuron,
    short_isi_fraction,
)
from repro.analysis.metrics import compute_inference_metrics


def _train_from_times(times, length):
    train = np.zeros(length, dtype=bool)
    train[list(times)] = True
    return train


class TestISI:
    def test_per_neuron_intervals(self):
        train = _train_from_times([2, 5, 9], 12)
        intervals = isi_per_neuron(train)
        assert len(intervals) == 1
        assert list(intervals[0]) == [3, 4]

    def test_single_spike_has_no_isi(self):
        intervals = isi_per_neuron(_train_from_times([4], 10))
        assert intervals[0].size == 0

    def test_pooled_intervals(self):
        trains = np.stack(
            [_train_from_times([0, 1, 2], 10), _train_from_times([0, 5], 10)], axis=1
        )
        pooled = inter_spike_intervals(trains)
        assert sorted(pooled.tolist()) == [1, 1, 5]

    def test_histogram_counts(self):
        trains = _train_from_times([0, 1, 2, 10], 20)[:, None]
        bins, counts = isi_histogram(trains, max_isi=10)
        assert bins[0] == 1
        assert counts[0] == 2  # two ISIs of 1
        assert counts[7] == 1  # one ISI of 8

    def test_histogram_clips_long_intervals(self):
        trains = _train_from_times([0, 50], 60)[:, None]
        _, counts = isi_histogram(trains, max_isi=10)
        assert counts[-1] == 1

    def test_histogram_invalid_max(self):
        with pytest.raises(ValueError):
            isi_histogram(np.zeros((5, 1), dtype=bool), max_isi=0)

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            isi_per_neuron(np.zeros((2, 2, 2), dtype=bool))

    def test_short_isi_fraction(self):
        train = _train_from_times([0, 1, 2, 10], 20)[:, None]
        assert short_isi_fraction(train, short_threshold=2) == pytest.approx(2 / 3)

    def test_short_isi_fraction_empty(self):
        assert short_isi_fraction(np.zeros((10, 2), dtype=bool)) == 0.0


class TestBurstStats:
    def test_burst_lengths_runs(self):
        train = _train_from_times([0, 1, 2, 5, 8, 9], 12)
        lengths = burst_lengths(train)
        assert sorted(lengths.tolist()) == [1, 2, 3]

    def test_burst_lengths_min_length(self):
        train = _train_from_times([0, 1, 2, 5], 12)
        assert burst_lengths(train, min_length=2).tolist() == [3]

    def test_burst_statistics_fraction(self):
        # 3-spike burst + isolated spike: 3 of 4 spikes are burst spikes
        train = _train_from_times([0, 1, 2, 6], 12)
        stats = burst_statistics(train)
        assert stats.total_spikes == 4
        assert stats.burst_spikes == 3
        assert stats.burst_fraction == pytest.approx(0.75)
        assert stats.composition["3"] == pytest.approx(0.75)
        assert stats.mean_burst_length == pytest.approx(3.0)

    def test_burst_statistics_empty(self):
        stats = burst_statistics(np.zeros((10, 3), dtype=bool))
        assert stats.total_spikes == 0
        assert stats.burst_fraction == 0.0

    def test_composition_sums_to_burst_fraction(self):
        rng = np.random.default_rng(0)
        trains = rng.uniform(size=(200, 20)) < 0.3
        stats = burst_statistics(trains)
        assert sum(stats.composition.values()) == pytest.approx(stats.burst_fraction, abs=1e-9)

    def test_long_burst_bucket(self):
        train = _train_from_times(range(0, 7), 12)  # burst of length 7
        composition = burst_composition(train)
        assert composition[">5"] == pytest.approx(1.0)

    def test_invalid_min_length(self):
        with pytest.raises(ValueError):
            burst_lengths(np.zeros((5, 1), dtype=bool), min_length=0)


class TestFiring:
    def test_firing_rate_formula(self):
        # ISIs 2, 2 -> rate = 2 / 4 = 0.5 (Eq. 11)
        assert firing_rate(np.array([2, 2])) == pytest.approx(0.5)

    def test_firing_rate_no_isis(self):
        assert firing_rate(np.array([])) == 0.0

    def test_regularity_constant_isis(self):
        assert firing_regularity(np.array([3, 3, 3])) == 0.0

    def test_regularity_cv(self):
        isis = np.array([1.0, 3.0])
        assert firing_regularity(isis) == pytest.approx(np.std(isis) / np.mean(isis))

    def test_firing_statistics_population(self):
        trains = np.zeros((20, 2), dtype=bool)
        trains[::2, 0] = True     # period 2 -> rate 0.5, perfectly regular
        trains[::5, 1] = True     # period 5 -> rate 0.2
        stats = firing_statistics(trains)
        assert stats.num_neurons == 2
        assert stats.mean_regularity == pytest.approx(0.0)
        expected_log = np.mean([np.log(0.5), np.log(0.2)])
        assert stats.mean_log_rate == pytest.approx(expected_log)

    def test_firing_statistics_excludes_silent_neurons(self):
        trains = np.zeros((20, 3), dtype=bool)
        trains[::2, 0] = True
        stats = firing_statistics(trains)
        assert stats.num_neurons == 1

    def test_firing_statistics_all_silent(self):
        stats = firing_statistics(np.zeros((10, 4), dtype=bool))
        assert stats.num_neurons == 0
        assert np.isnan(stats.mean_log_rate)

    def test_mean_log_firing_rate_wrapper(self):
        trains = np.zeros((10, 1), dtype=bool)
        trains[::2, 0] = True
        assert mean_log_firing_rate(trains) == pytest.approx(np.log(0.5))

    def test_min_spikes_validation(self):
        with pytest.raises(ValueError):
            firing_statistics(np.zeros((5, 1), dtype=bool), min_spikes=1)


class TestDensity:
    def test_formula(self):
        # Table 2 footnote: spikes per image / (neurons * latency)
        assert spiking_density(9.334e6, 280_586, 1500) == pytest.approx(0.0222, abs=1e-4)

    def test_zero_spikes(self):
        assert spiking_density(0.0, 100, 10) == 0.0

    @pytest.mark.parametrize("kwargs", [
        {"spikes_per_image": -1, "num_neurons": 10, "latency": 10},
        {"spikes_per_image": 1, "num_neurons": 0, "latency": 10},
        {"spikes_per_image": 1, "num_neurons": 10, "latency": 0},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            spiking_density(**kwargs)


class TestCurves:
    def test_target_accuracies(self):
        targets = target_accuracies(0.9141, (0.995, 0.99, 0.95))
        assert targets[0] == pytest.approx(0.9141 * 0.995)
        assert len(targets) == 3

    def test_target_accuracies_invalid(self):
        with pytest.raises(ValueError):
            target_accuracies(0.0)

    def test_latency_first_crossing(self):
        curve = np.array([0.1, 0.5, 0.8, 0.9])
        steps = np.array([10, 20, 30, 40])
        assert latency_to_target(curve, steps, 0.75) == 30

    def test_latency_not_reached(self):
        assert latency_to_target(np.array([0.1, 0.2]), np.array([1, 2]), 0.5) is None

    def test_latency_sustained(self):
        curve = np.array([0.8, 0.2, 0.85, 0.9])
        steps = np.array([1, 2, 3, 4])
        assert latency_to_target(curve, steps, 0.7) == 1
        assert latency_to_target(curve, steps, 0.7, sustained=True) == 3

    def test_latency_shape_mismatch(self):
        with pytest.raises(ValueError):
            latency_to_target(np.array([0.1]), np.array([1, 2]), 0.5)

    def test_latency_invalid_target(self):
        with pytest.raises(ValueError):
            latency_to_target(np.array([0.1]), np.array([1]), 1.5)

    def test_spikes_to_target(self):
        curve = np.array([0.2, 0.6, 0.9])
        steps = np.array([1, 2, 3])
        cumulative = np.array([10.0, 25.0, 45.0])
        assert spikes_to_target(curve, steps, cumulative, 0.5) == 25.0

    def test_spikes_to_target_not_reached(self):
        assert spikes_to_target(np.array([0.1]), np.array([1]), np.array([5.0]), 0.9) is None

    def test_spikes_to_target_sparse_recording(self):
        """Recording every 5 steps: the spike count is read at the recorded step."""
        curve = np.array([0.3, 0.8])
        steps = np.array([5, 10])
        cumulative = np.arange(1, 11, dtype=float)
        assert spikes_to_target(curve, steps, cumulative, 0.7) == 10.0


class TestInferenceMetrics:
    def _metrics(self, target=None):
        curve = np.array([0.2, 0.6, 0.9, 0.9])
        steps = np.array([1, 2, 3, 4])
        cumulative = np.array([100.0, 220.0, 360.0, 500.0])
        return compute_inference_metrics(
            scheme="phase-burst",
            accuracy_curve=curve,
            recorded_steps=steps,
            cumulative_spikes=cumulative,
            num_neurons=50,
            num_images=10,
            dnn_accuracy=0.92,
            time_steps=4,
            target_accuracy=target,
        )

    def test_without_target_uses_full_horizon(self):
        metrics = self._metrics()
        assert metrics.latency == 4
        assert metrics.accuracy == pytest.approx(0.9)
        assert metrics.spikes_per_image == pytest.approx(50.0)
        assert metrics.density == pytest.approx(50.0 / (50 * 4))

    def test_with_target(self):
        metrics = self._metrics(target=0.85)
        assert metrics.latency == 3
        assert metrics.reached_target()
        # density is computed at the latency, with the spikes seen by then
        assert metrics.density == pytest.approx((360.0 / 10) / (50 * 3))

    def test_target_never_reached(self):
        metrics = self._metrics(target=0.99)
        assert metrics.latency is None
        assert not metrics.reached_target()

    def test_as_row_keys(self):
        row = self._metrics().as_row()
        assert {"scheme", "accuracy_%", "latency", "density"} <= set(row)

    def test_invalid_num_images(self):
        with pytest.raises(ValueError):
            compute_inference_metrics(
                scheme="x",
                accuracy_curve=np.array([0.5]),
                recorded_steps=np.array([1]),
                cumulative_spikes=np.array([1.0]),
                num_neurons=1,
                num_images=0,
                dnn_accuracy=0.9,
                time_steps=1,
            )
