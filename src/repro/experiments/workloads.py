"""Workloads shared by the experiment harness.

A *workload* is a dataset plus a DNN trained on it — the starting point of
every conversion experiment.  The paper's workloads are MNIST/CIFAR-10 with a
CNN and CIFAR-10/100 with VGG-16; here the datasets are the synthetic
look-alikes of :mod:`repro.data.synthetic` and the models are the (optionally
width-scaled) builders of :mod:`repro.models`, sized so the full benchmark
suite runs on a laptop (see DESIGN.md §2 for the substitution table).

Workloads are cached in-process so that several experiments (Table 1, Fig. 3,
Fig. 4, …) reuse the same trained network, exactly as the paper evaluates one
trained VGG-16 under every coding scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.ann.model import Sequential
from repro.ann.optimizers import Adam
from repro.data.dataset import DataSplit, train_test_split
from repro.data.synthetic import SyntheticImageConfig, make_classification_images
from repro.models.cnn import build_cnn, build_small_cnn
from repro.models.mlp import build_mlp
from repro.models.vgg import build_vgg16, build_vgg_small
from repro.utils.config import FrozenConfig, validate_positive
from repro.utils.logging import get_logger

logger = get_logger("experiments.workloads")


@dataclass(frozen=True)
class WorkloadSpec(FrozenConfig):
    """Specification of one dataset + model workload.

    Attributes
    ----------
    dataset:
        ``"mnist"``, ``"cifar10"`` or ``"cifar100"`` (synthetic look-alikes).
    model:
        ``"mlp"``, ``"cnn"``, ``"small_cnn"``, ``"vgg_small"`` or ``"vgg16"``.
    samples_per_class / epochs:
        Dataset size and training budget (kept small for benchmark runs).
    difficulty:
        ``"easy"`` (low noise — DNN reaches ~100%) or ``"hard"`` (noise,
        shifts and occlusions — DNN lands around 80–95%, so the SNN's
        convergence towards the DNN accuracy is informative).
    seed:
        Controls data generation, the train/test split and weight init.
    """

    dataset: str = "cifar10"
    model: str = "vgg_small"
    samples_per_class: int = 30
    epochs: int = 15
    difficulty: str = "hard"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.dataset not in ("mnist", "cifar10", "cifar100"):
            raise ValueError(f"unknown dataset {self.dataset!r}")
        if self.model not in ("mlp", "cnn", "small_cnn", "vgg_small", "vgg16"):
            raise ValueError(f"unknown model {self.model!r}")
        if self.difficulty not in ("easy", "hard"):
            raise ValueError(f"difficulty must be 'easy' or 'hard', got {self.difficulty!r}")
        validate_positive("samples_per_class", self.samples_per_class)
        validate_positive("epochs", self.epochs)


@dataclass
class Workload:
    """A dataset split plus the DNN trained on it."""

    spec: WorkloadSpec
    data: DataSplit
    model: Sequential
    dnn_train_accuracy: float
    dnn_test_accuracy: float

    @property
    def name(self) -> str:
        return f"{self.spec.dataset}-{self.spec.model}"


_DATASET_SHAPES: Dict[str, Tuple[Tuple[int, int, int], int]] = {
    "mnist": ((1, 28, 28), 10),
    "cifar10": ((3, 32, 32), 10),
    "cifar100": ((3, 32, 32), 100),
}


def _dataset_config(spec: WorkloadSpec) -> SyntheticImageConfig:
    shape, num_classes = _DATASET_SHAPES[spec.dataset]
    # MNIST digits are mostly black background; the synthetic stand-in mirrors
    # that sparsity because mean pixel intensity directly drives spike counts.
    background_scale = 0.15 if spec.dataset == "mnist" else 1.0
    if spec.difficulty == "easy":
        return SyntheticImageConfig(
            num_classes=num_classes,
            image_shape=shape,
            samples_per_class=spec.samples_per_class,
            noise_std=0.08,
            max_shift=1,
            occlusion_probability=0.05,
            background_scale=background_scale,
        )
    return SyntheticImageConfig(
        num_classes=num_classes,
        image_shape=shape,
        samples_per_class=spec.samples_per_class,
        noise_std=0.22,
        max_shift=3,
        brightness_jitter=0.15,
        contrast_jitter=0.3,
        occlusion_probability=0.35,
        occlusion_size=6,
        background_scale=background_scale,
    )


def _build_model(spec: WorkloadSpec, data: DataSplit) -> Sequential:
    input_shape = data.input_shape
    num_classes = data.num_classes
    if spec.model == "mlp":
        return build_mlp(input_shape, [128, 64], num_classes, seed=spec.seed)
    if spec.model == "small_cnn":
        return build_small_cnn(input_shape, num_classes, seed=spec.seed)
    if spec.model == "cnn":
        return build_cnn(input_shape, num_classes, conv_channels=(12, 24), kernel_size=3,
                         dense_size=96, seed=spec.seed)
    if spec.model == "vgg_small":
        return build_vgg_small(input_shape, num_classes, width_factor=0.125,
                               depth_blocks=3, dense_size=128, seed=spec.seed)
    if spec.model == "vgg16":
        return build_vgg16(input_shape, num_classes, seed=spec.seed)
    raise ValueError(f"unknown model {spec.model!r}")


_WORKLOAD_CACHE: Dict[WorkloadSpec, Workload] = {}


def clear_workload_cache() -> None:
    """Drop every cached workload (used by tests)."""
    _WORKLOAD_CACHE.clear()


def build_workload(spec: Optional[WorkloadSpec] = None, **overrides) -> Workload:
    """Build (or fetch from cache) the workload described by ``spec``.

    Keyword overrides are applied on top of ``spec`` (or the default spec),
    e.g. ``build_workload(dataset="mnist", model="small_cnn")``.
    """
    if spec is None:
        spec = WorkloadSpec(**overrides)
    elif overrides:
        spec = spec.replace(**overrides)
    cached = _WORKLOAD_CACHE.get(spec)
    if cached is not None:
        return cached

    config = _dataset_config(spec)
    dataset = make_classification_images(config, seed=spec.seed, name=f"{spec.dataset}-like")
    data = train_test_split(dataset, test_fraction=0.25, seed=spec.seed)
    model = _build_model(spec, data)
    history = model.fit(
        data.train.x,
        data.train.y,
        epochs=spec.epochs,
        batch_size=32,
        optimizer=Adam(learning_rate=1e-3),
        seed=spec.seed,
    )
    train_acc = history.train_accuracy[-1] if history.train_accuracy else 0.0
    test_acc = model.evaluate(data.test.x, data.test.y)
    workload = Workload(
        spec=spec,
        data=data,
        model=model,
        dnn_train_accuracy=train_acc,
        dnn_test_accuracy=test_acc,
    )
    logger.info(
        "workload %s: %d train / %d test images, DNN train=%.3f test=%.3f",
        workload.name, len(data.train), len(data.test), train_acc, test_acc,
    )
    _WORKLOAD_CACHE[spec] = workload
    return workload


def mnist_workload(samples_per_class: int = 30, epochs: int = 12, seed: int = 0) -> Workload:
    """MNIST-like CNN workload (the paper's MNIST rows use a small CNN)."""
    return build_workload(
        WorkloadSpec(dataset="mnist", model="small_cnn", samples_per_class=samples_per_class,
                     epochs=epochs, seed=seed)
    )


def cifar10_workload(samples_per_class: int = 30, epochs: int = 15, seed: int = 0) -> Workload:
    """CIFAR-10-like VGG workload (the paper's main Table 1 / Fig. 3–5 setup)."""
    return build_workload(
        WorkloadSpec(dataset="cifar10", model="vgg_small", samples_per_class=samples_per_class,
                     epochs=epochs, seed=seed)
    )


def cifar100_workload(samples_per_class: int = 6, epochs: int = 15, seed: int = 0) -> Workload:
    """CIFAR-100-like VGG workload (Table 2, bottom block)."""
    return build_workload(
        WorkloadSpec(dataset="cifar100", model="vgg_small", samples_per_class=samples_per_class,
                     epochs=epochs, seed=seed)
    )
