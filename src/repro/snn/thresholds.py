"""Firing-threshold dynamics implementing the neural coding schemes.

The coding scheme used by a (hidden) layer is entirely determined by how its
firing threshold ``V_th(t)`` evolves:

* **rate coding** — constant threshold ``v_th`` (Diehl et al. [11]);
* **phase coding** — global oscillation ``V_th(t) = Π(t)·v_th`` with
  ``Π(t) = 2^-(1 + mod(t, k))`` (Eq. 6–7, Kim et al. [14]);
* **burst coding** (this paper) — per-neuron adaptation
  ``g(t) = β·g(t−1)`` while the neuron keeps firing and ``g(t) = 1``
  otherwise, with ``V_th(t) = g(t)·v_th`` (Eq. 8–9).

Because spikes are *weighted* by the presynaptic threshold at firing time
(Eq. 5 / Eq. 10), a burst of consecutive spikes carries geometrically growing
amplitudes ``v_th, β·v_th, β²·v_th, …`` — this is the "synaptic potentiation"
effect that lets a neuron drain a large membrane backlog in logarithmically
many steps, which is the paper's central mechanism.

Performance contract
--------------------
``thresholds(t)`` is called once per layer per simulation step, so it must
not allocate: :class:`ConstantThreshold` caches its 0-d array,
:class:`PhaseThreshold` caches one 0-d array per phase of the period, and
:class:`BurstThreshold` writes ``g·v_th`` into a preallocated buffer (only
valid until the next call — copy if you keep it).  ``reset`` accepts the
simulation dtype from the owning layer (policy default float32, see
:mod:`repro.utils.dtypes`); positivity of ``v_th`` is validated once at
construction rather than per step.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.backends import resolve_backend
from repro.utils.config import validate_positive
from repro.utils.dtypes import DTypeLike, resolve_dtype


class ThresholdDynamics:
    """Interface for per-layer threshold evolution.

    Subclasses are attached to one spiking layer.  The network engine calls
    :meth:`reset` once per simulation, then alternates :meth:`thresholds`
    (before spike generation at step ``t``) and :meth:`update` (after spike
    generation, with the boolean spike array).

    Stateful dynamics run their elementwise update kernels on the
    :class:`~repro.backends.base.KernelBackend` handed to :meth:`reset` (the
    owning layer forwards its resolved backend; ``None`` falls back to the
    backend policy default).
    """

    #: short name used in configuration strings ("rate", "phase", "burst")
    coding = "base"

    def reset(
        self, shape: Tuple[int, ...], dtype: DTypeLike = None, backend=None
    ) -> None:
        """Prepare internal state for a layer of the given state shape."""
        self._shape = tuple(shape)
        self._dtype = resolve_dtype(dtype)
        self.ops = resolve_backend(backend)

    def shrink_batch(self, keep: np.ndarray) -> None:
        """Keep only the batch rows ``keep`` (converged-image early exit).

        The default covers the stateless / globally shared dynamics (rate and
        phase thresholds are scalar); per-neuron dynamics override this.
        """
        shape = getattr(self, "_shape", None)
        if shape:
            self._shape = (int(len(keep)),) + tuple(shape[1:])

    @property
    def dtype(self) -> np.dtype:
        """Effective dtype of the threshold arrays (policy default until reset)."""
        return getattr(self, "_dtype", None) or resolve_dtype(None)

    def thresholds(self, t: int) -> np.ndarray:
        """Threshold values ``V_th(t)`` (broadcastable to the layer shape).

        May return a cached / reused array; treat it as read-only and copy it
        if it must survive past the next call.
        """
        raise NotImplementedError

    def update(
        self,
        spikes: np.ndarray,
        spike_signals: Optional[np.ndarray] = None,
        spike_count: Optional[int] = None,
    ) -> None:
        """Observe the spikes emitted at the current step (default: stateless).

        ``spike_signals`` is an optional exact 0.0/1.0 float rendering of
        ``spikes`` (see :attr:`repro.snn.neurons.IFNeuronState.spike_signals`);
        stateful dynamics use it to stay on all-float ufunc loops.
        ``spike_count`` is an optional precomputed ``count_nonzero(spikes)``,
        letting per-neuron dynamics skip whole-array work on silent steps.
        """
        del spikes, spike_signals, spike_count

    def describe(self) -> str:
        """One-line description used in experiment logs."""
        return f"{type(self).__name__}"


class ConstantThreshold(ThresholdDynamics):
    """Rate coding: a fixed threshold ``v_th`` for every neuron and step.

    The 0-d threshold array is built once per ``reset`` (or lazily on first
    use) instead of on every step of every layer.
    """

    coding = "rate"

    def __init__(self, v_th: float = 1.0) -> None:
        validate_positive("v_th", v_th)
        self.v_th = float(v_th)
        self._cached: Optional[np.ndarray] = None

    def reset(
        self, shape: Tuple[int, ...], dtype: DTypeLike = None, backend=None
    ) -> None:
        super().reset(shape, dtype, backend)
        self._cached = np.asarray(self.v_th, dtype=self._dtype)

    def thresholds(self, t: int) -> np.ndarray:
        del t
        if self._cached is None:
            self._cached = np.asarray(self.v_th, dtype=self.dtype)
        return self._cached

    def describe(self) -> str:
        return f"ConstantThreshold(v_th={self.v_th})"


class PhaseThreshold(ThresholdDynamics):
    """Phase coding: threshold oscillates with the global phase function.

    ``V_th(t) = 2^-(1 + mod(t, k)) · v_th`` (Eq. 6–7).  The same oscillation is
    shared by every neuron in the layer (it is a *global reference*), so a
    spike's amplitude encodes the bit-position of the phase at which it fired.
    The ``k`` per-phase 0-d arrays are precomputed once and reused.
    """

    coding = "phase"

    def __init__(self, v_th: float = 1.0, period: int = 8, phase_offset: int = 0) -> None:
        validate_positive("v_th", v_th)
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if phase_offset < 0:
            raise ValueError(f"phase_offset must be non-negative, got {phase_offset}")
        self.v_th = float(v_th)
        self.period = int(period)
        self.phase_offset = int(phase_offset)
        self._table: Optional[Tuple[np.ndarray, ...]] = None

    def oscillation(self, t: int) -> float:
        """The phase function ``Π(t)`` of Eq. 6."""
        phase = (t + self.phase_offset) % self.period
        return float(2.0 ** (-(1 + phase)))

    def reset(
        self, shape: Tuple[int, ...], dtype: DTypeLike = None, backend=None
    ) -> None:
        super().reset(shape, dtype, backend)
        self._table = self._build_table(self._dtype)

    def _build_table(self, dtype: np.dtype) -> Tuple[np.ndarray, ...]:
        return tuple(
            np.asarray(2.0 ** (-(1 + phase)) * self.v_th, dtype=dtype)
            for phase in range(self.period)
        )

    def thresholds(self, t: int) -> np.ndarray:
        if self._table is None:
            self._table = self._build_table(self.dtype)
        return self._table[(t + self.phase_offset) % self.period]

    def describe(self) -> str:
        return f"PhaseThreshold(v_th={self.v_th}, period={self.period})"


class BurstThreshold(ThresholdDynamics):
    """Burst coding (the paper's proposal): per-neuron adaptive threshold.

    After a spike the burst function grows by the burst constant ``β > 1``
    (``g ← β·g``), so an immediately following spike carries a larger
    amplitude; as soon as the neuron stays silent for one step the function
    resets to 1 (Eq. 8).  ``V_th(t) = g(t)·v_th`` (Eq. 9) and the effective
    synaptic weight during a burst is ``ŵ = w·g`` (Eq. 10).

    All per-step state (``g``, the consecutive-spike counter, the threshold
    and growth scratch buffers) is preallocated at ``reset`` and updated in
    place; ``thresholds`` / ``update`` allocate nothing.

    Parameters
    ----------
    v_th:
        Base threshold; smaller values mean finer transmission precision but
        more spikes (the trade-off of Fig. 2 / Table 2).
    beta:
        Burst constant (> 1); the paper uses 2.
    max_burst_length:
        Optional cap on consecutive burst spikes: after this many consecutive
        spikes the burst function stops growing.  ``None`` (default) matches
        the paper, which reports bursts of length > 5.
    """

    coding = "burst"

    def __init__(
        self,
        v_th: float = 0.125,
        beta: float = 2.0,
        max_burst_length: Optional[int] = None,
    ) -> None:
        validate_positive("v_th", v_th)
        if beta <= 1.0:
            raise ValueError(
                f"beta must be > 1 (burst spikes potentiate the synapse), got {beta}"
            )
        if max_burst_length is not None and max_burst_length < 1:
            raise ValueError(f"max_burst_length must be >= 1, got {max_burst_length}")
        self.v_th = float(v_th)
        self.beta = float(beta)
        self.max_burst_length = max_burst_length
        self._g: Optional[np.ndarray] = None
        self._consecutive: Optional[np.ndarray] = None
        self._th_buf: Optional[np.ndarray] = None
        self._grown: Optional[np.ndarray] = None
        self._silent: Optional[np.ndarray] = None

    def reset(
        self, shape: Tuple[int, ...], dtype: DTypeLike = None, backend=None
    ) -> None:
        previous_ops = getattr(self, "ops", None)
        super().reset(shape, dtype, backend)
        ops_unchanged = previous_ops is None or previous_ops is self.ops
        shape = tuple(shape)
        if (
            self._g is not None
            and ops_unchanged
            and self._g.shape == shape
            and self._g.dtype == self._dtype
        ):
            # reuse the allocated buffers across simulation runs
            self._g.fill(1.0)
            self._consecutive.fill(0)
        else:
            ops = self.ops
            self._g = ops.fill(ops.empty(shape, self._dtype), 1.0)
            self._consecutive = ops.zeros(shape, np.dtype(np.int64))
            self._th_buf = ops.empty(shape, self._dtype)
            self._grown = ops.empty(shape, self._dtype)
            self._silent = ops.empty(shape, np.dtype(bool))
            self._silent_signal = ops.empty(shape, self._dtype)
        self._ceiling = np.finfo(self._dtype).max
        # g is bounded by β^updates (it resets to 1 on any silent step), so
        # the overflow clamp is provably the identity until β^(updates+1)
        # could reach the ceiling — skip the pass until then (bit-exact)
        self._updates = 0
        self._clamp_after = max(0, int(np.log(self._ceiling) / np.log(self.beta)) - 2)
        # silent-step short-circuit: after a fully silent step g is all ones,
        # and while the layer stays silent both update() and thresholds() are
        # identities — key to cheap converged/sparse regimes
        self._g_uniform = True
        self._th_valid = False
        if self.max_burst_length is not None:
            self._cons_scratch = self.ops.empty(shape, np.dtype(np.int64))
            self._capped = self.ops.empty(shape, np.dtype(bool))

    def shrink_batch(self, keep: np.ndarray) -> None:
        super().shrink_batch(keep)
        if self._g is None:
            return
        keep = np.asarray(keep, dtype=np.intp)
        self._g = np.ascontiguousarray(self._g[keep])
        self._consecutive = np.ascontiguousarray(self._consecutive[keep])
        shape = self._g.shape
        ops = self.ops
        self._th_buf = ops.empty(shape, self._dtype)
        self._grown = ops.empty(shape, self._dtype)
        self._silent = ops.empty(shape, np.dtype(bool))
        self._silent_signal = ops.empty(shape, self._dtype)
        self._th_valid = False
        if self.max_burst_length is not None:
            self._cons_scratch = ops.empty(shape, np.dtype(np.int64))
            self._capped = ops.empty(shape, np.dtype(bool))

    def thresholds(self, t: int) -> np.ndarray:
        del t
        if self._g is None or self._th_buf is None:
            raise RuntimeError("BurstThreshold.reset(shape) must be called before use")
        if self._th_valid:
            # g has not changed since the last call (silent regime): the
            # buffer already holds g·v_th
            return self._th_buf
        self.ops.scale(self._g, self.v_th, self._th_buf)
        self._th_valid = True
        return self._th_buf

    def update(
        self,
        spikes: np.ndarray,
        spike_signals: Optional[np.ndarray] = None,
        spike_count: Optional[int] = None,
    ) -> None:
        if self._g is None or self._consecutive is None:
            raise RuntimeError("BurstThreshold.reset(shape) must be called before use")
        if spike_count == 0 and self._g_uniform and self.max_burst_length is None:
            # a silent step over an already-reset burst function: g stays all
            # ones, so the whole update is the identity
            self._updates += 1
            return
        g = self._g
        grown = self._grown
        ops = self.ops
        if spikes.dtype != np.bool_:
            spikes = np.asarray(spikes, dtype=bool)

        # Clamp to the largest finite value: an extreme burst can overflow
        # g·β to inf, and the mask-free combine below would then produce
        # inf·0 = NaN on the first silent step and poison g permanently.
        # A neuron at the ceiling behaves like one at inf (the threshold is
        # unreachable, so it falls silent and resets to 1 next step).  While
        # β^(updates+1) provably cannot reach the ceiling the clamp is the
        # identity and the pass is skipped.
        ceiling = self._ceiling if self._updates >= self._clamp_after else None
        ops.burst_grow(g, grown, self.beta, ceiling)
        self._updates += 1
        if self.max_burst_length is not None:
            ops.burst_cap(
                grown, g, spikes, self._consecutive,
                self._cons_scratch, self._capped, self.max_burst_length,
            )
        # g ← spikes ? grown : 1 — preferring the exact 0.0/1.0 float
        # rendering of the spikes when the producing state supplies it (the
        # all-float kernel avoids slow bool→float casts, bit-identically).
        if spike_signals is not None and spike_signals.dtype == self._dtype:
            ops.burst_commit_signals(grown, spike_signals, self._silent_signal, g)
        else:
            ops.burst_commit_bool(grown, spikes, self._silent, g)
        self._th_valid = False  # g changed; thresholds() must recompute
        if spike_count is None:
            self._g_uniform = False  # unknown: assume g may have grown
        else:
            self._g_uniform = spike_count == 0

    @property
    def burst_function(self) -> np.ndarray:
        """Current value of ``g`` per neuron (for tests and analysis)."""
        if self._g is None:
            raise RuntimeError("BurstThreshold.reset(shape) must be called before use")
        return self._g.copy()

    def describe(self) -> str:
        return (
            f"BurstThreshold(v_th={self.v_th}, beta={self.beta}, "
            f"max_burst_length={self.max_burst_length})"
        )


def make_threshold(
    coding: str,
    v_th: Optional[float] = None,
    beta: float = 2.0,
    phase_period: int = 8,
    max_burst_length: Optional[int] = None,
) -> ThresholdDynamics:
    """Build the threshold dynamics for a hidden-layer coding scheme by name.

    Resolution goes through the scheme registry
    (:mod:`repro.core.registry`), so registered hidden codings work here
    without this function enumerating them.

    Parameters
    ----------
    coding:
        ``"rate"``, ``"phase"``, ``"burst"`` or any registered hidden coding.
    v_th:
        Base threshold; defaults to the coding's registered default (1.0 for
        rate/phase, 0.125 for burst — the paper's main configuration).
    beta, phase_period, max_burst_length:
        Scheme-specific parameters (ignored by the schemes that do not use
        them).
    """
    from repro.core.coding import CodingParams
    from repro.core.registry import build_threshold

    params = CodingParams(
        v_th=v_th, beta=beta, phase_period=phase_period, max_burst_length=max_burst_length
    )
    return build_threshold(coding, params=params)


# -- registry wiring ---------------------------------------------------------
# Placed after the dynamics classes so this module stays importable while
# ``repro.core`` is still initialising (the registry module itself is
# runtime-import-free).  Factories receive a CodingParams whose ``v_th`` has
# been resolved against ``default_v_th``.
from repro.core.registry import register_threshold  # noqa: E402


@register_threshold(
    "rate",
    default_v_th=1.0,
    description="constant threshold (Diehl et al. rate coding)",
)
def _build_constant_threshold(params) -> ThresholdDynamics:
    return ConstantThreshold(v_th=params.v_th)


@register_threshold(
    "phase",
    default_v_th=1.0,
    description="globally oscillating threshold, period k (Kim et al. phase coding)",
)
def _build_phase_threshold(params) -> ThresholdDynamics:
    return PhaseThreshold(v_th=params.v_th, period=params.phase_period)


@register_threshold(
    "burst",
    default_v_th=0.125,
    description="per-neuron adaptive burst threshold g(t)·v_th (this paper)",
)
def _build_burst_threshold(params) -> ThresholdDynamics:
    return BurstThreshold(
        v_th=params.v_th, beta=params.beta, max_burst_length=params.max_burst_length
    )
