"""Wall-clock timing helpers backing the perf benchmark harness.

The perf suite (``benchmarks/perf/``) measures encoder / layer / step
throughput and end-to-end experiment runs, then writes a machine-readable
``BENCH_perf.json`` so successive PRs can prove (or disprove) speedups against
the recorded seed baseline.  These helpers keep that harness free of timing
boilerplate and give every measurement the same shape:

* :class:`Timer` — a ``perf_counter`` context manager;
* :func:`time_callable` — best-of-N repeat timing with warmup (the standard
  protocol for micro-benchmarks, robust to one-off cache effects);
* :func:`machine_info` — the fingerprint stored next to every measurement so
  cross-machine comparisons are detectable;
* :func:`write_bench_json` / :func:`load_bench_json` — the on-disk format.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union


@dataclass
class Timer:
    """Context manager measuring one wall-clock interval.

    >>> with Timer() as t:
    ...     do_work()
    >>> t.seconds
    """

    seconds: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.seconds = time.perf_counter() - self._start


@dataclass
class TimingResult:
    """Summary of one timed operation."""

    name: str
    best_seconds: float
    mean_seconds: float
    repeats: int
    #: operations per call (e.g. time steps), for throughput reporting
    items_per_call: int = 1

    @property
    def items_per_second(self) -> float:
        if self.best_seconds <= 0.0:
            return float("inf")
        return self.items_per_call / self.best_seconds

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "best_seconds": self.best_seconds,
            "mean_seconds": self.mean_seconds,
            "repeats": self.repeats,
            "items_per_call": self.items_per_call,
            "items_per_second": self.items_per_second,
        }


def time_callable(
    fn: Callable[[], Any],
    name: str = "callable",
    repeats: int = 3,
    warmup: int = 1,
    items_per_call: int = 1,
) -> TimingResult:
    """Time ``fn()`` with ``warmup`` unrecorded calls and ``repeats`` recorded
    ones, reporting best-of and mean wall-clock seconds."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        fn()
    samples: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return TimingResult(
        name=name,
        best_seconds=min(samples),
        mean_seconds=sum(samples) / len(samples),
        repeats=repeats,
        items_per_call=items_per_call,
    )


def machine_info() -> Dict[str, Any]:
    """Fingerprint of the measuring host, stored alongside every benchmark."""
    import numpy as np

    return {
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
    }


def write_bench_json(path: Union[str, Path], payload: Dict[str, Any]) -> Path:
    """Write a benchmark payload (with machine fingerprint) as pretty JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {"machine": machine_info(), **payload}
    path.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    return path


def load_bench_json(path: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """Load a benchmark JSON document, or ``None`` if it does not exist."""
    path = Path(path)
    if not path.exists():
        return None
    return json.loads(path.read_text())
