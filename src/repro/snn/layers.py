"""Spiking layers assembled by the DNN→SNN converter.

Each layer consumes the *weighted spike amplitudes* emitted by the previous
layer (or by the input encoder) and produces its own amplitudes:

``z = W · incoming + bias_scale · b``          (Eq. 1 / Eq. 5)
``spike if V_mem + z ≥ V_th(t)``               (Eq. 2)
``amplitude = V_th(t)``, reset by subtraction  (Eq. 4 / Eq. 5)

The pooling and flatten layers are linear re-arrangements of amplitudes and
carry no neurons of their own (the paper's neuron counts likewise exclude
them); max pooling uses the standard spiking gating approach of Rueckauer et
al. [12]: each window forwards the amplitude of the input unit with the
largest cumulative transmitted value.

Every kernel primitive a layer's hot path touches — GEMMs, gathers, conv
plans, pooling slabs and the IF/threshold elementwise updates — runs on the
layer's resolved :class:`~repro.backends.base.KernelBackend` (``self.ops``,
bound at ``reset``); the layers orchestrate *which* kernel runs per step but
never call a kernel library directly.  The default numpy backend is the
original code relocated behind the seam, so all guarantees below are
unchanged.

Performance contract
--------------------
``step`` is called once per layer per simulation time step and is
allocation-free in the steady state (modulo the small per-step index arrays
of the sparse paths):

* weights are kept as float64 masters and cast **once per reset** to the
  simulation dtype (float32 by default, float64 opt-in — see
  :mod:`repro.utils.dtypes`); per-step bias injection uses a precomputed
  ``bias_scale·b`` vector;
* every synaptic layer dispatches each step through a per-layer
  :class:`~repro.utils.sparsity.SparsityDispatcher`: an all-zero incoming
  tensor short-circuits to a precomputed bias response (exact in every
  dtype); on the tolerance-based float32 path, measured activity below the
  layer's auto-calibrated crossover selects a **sparse kernel** —
  gather-matmul over the active input features for :class:`SpikingDense`, a
  channel-packed :class:`~repro.ann.im2col.DirectConvPlan` for
  :class:`SpikingConv2D` — and dense float32 stride-1 convolutions run on
  the direct (halo) plan rather than the column fill;
* the float64 exact path keeps the canonical cached
  :class:`~repro.ann.im2col.Im2colPlan` + GEMM pipeline, so float64 runs
  stay bit-identical to the seed engine;
* layers whose incoming drive is *periodic* (a phase- or real-coded input
  encoder feeding the first layer) can cache their synaptic input per phase
  via :meth:`_SpikingNeuronLayer.enable_input_caching` — bit-exact in every
  dtype, since the cached array is the identical GEMM result;
* GEMMs write into preallocated output buffers, and the max-pool gather uses
  precomputed index arithmetic instead of unfolding its input a second time;
* the arrays returned by ``step`` are reusable buffers, **valid only until
  the layer's next step** — copy them if they must survive longer;
* :meth:`SpikingLayer.shrink_batch` drops converged images mid-run (the
  engine's early-exit path), slicing carry-over state and rebuilding the
  per-batch scratch buffers.

In float64 mode every operation matches the original (allocating) engine
bit for bit.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ann.im2col import DirectConvPlan, Im2colPlan, conv_output_size
from repro.backends import resolve_backend
from repro.backends.programs import ComposedStepProgram, fused_programs_enabled
from repro.snn.neurons import IFNeuronState, ResetMode
from repro.snn.thresholds import ThresholdDynamics
from repro.utils import sparsity
from repro.utils.dtypes import DTypeLike, resolve_dtype
from repro.utils.sparsity import SparsityDispatcher

#: cap on cached periodic synaptic input (elements across all phases) so the
#: phase cache cannot balloon on huge layers
_INPUT_CACHE_MAX_ELEMENTS = 16_000_000


def _cast_cached(cache: Dict[str, np.ndarray], key: str, master: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Fetch (or create) the ``dtype`` cast of a master array.

    ``np.asarray`` returns the master itself when the dtype already matches,
    so float64 simulations run directly on the float64 masters.
    """
    cached = cache.get(key)
    if cached is None or cached.dtype != dtype:
        cached = np.asarray(master, dtype=dtype)
        cache[key] = cached
    return cached


class SpikingLayer:
    """Base class for all layers of a :class:`~repro.snn.network.SpikingNetwork`."""

    #: whether the layer contains integrate-and-fire neurons that emit spikes
    is_spiking = False

    def __init__(self, name: str) -> None:
        self.name = name
        self.batch_size: Optional[int] = None
        #: simulation dtype resolved at the most recent reset()
        self.dtype: np.dtype = resolve_dtype(None)
        self._ops = None
        #: whether the most recent reset() switched backends — subclasses use
        #: it to drop plans/buffers built by the previous backend (a built
        #: network can be re-reset onto a different backend)
        self.backend_changed = False
        #: boolean spike array of the most recent step (spiking layers only)
        self.last_spikes: Optional[np.ndarray] = None
        #: nonzero count of the most recent step's output, when the layer can
        #: report it for free (spiking layers: the spike count); the engine
        #: forwards it to the next layer as ``incoming_nonzero`` so cheap
        #: layers can skip re-scanning their input for activity
        self.output_nonzero: Optional[int] = None
        #: the compiled per-step program (fused when the backend offers one,
        #: composed otherwise); dropped whenever captured buffers may change
        self._program = None
        #: extra component of the sparsity-calibration cache key; replica
        #: session pools set a per-replica tag so replicas calibrating the
        #: same geometry concurrently never contend on one cache entry
        self.sparsity_cache_tag = ""

    def reset(self, batch_size: int, dtype: DTypeLike = None, backend=None) -> None:
        """Allocate per-simulation state for a batch of ``batch_size`` samples.

        ``dtype`` selects the simulation precision for this run (``None``
        resolves through the project dtype policy); ``backend`` selects the
        :class:`~repro.backends.base.KernelBackend` running the layer's kernel
        primitives (name, instance, or ``None`` for the backend policy
        default).
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.batch_size = batch_size
        self.dtype = resolve_dtype(dtype)
        resolved = resolve_backend(backend)
        # backends are process-wide singletons, so identity is the right test
        self.backend_changed = self._ops is not None and resolved is not self._ops
        self._ops = resolved
        self.last_spikes = None
        self._program = None

    @property
    def ops(self):
        """The layer's :class:`~repro.backends.base.KernelBackend`.

        Bound by :meth:`reset`; resolves the policy default lazily for layers
        stepped without an explicit reset (the linear re-arrangement layers).
        """
        ops = self._ops
        if ops is None:
            ops = self._ops = resolve_backend(None)
        return ops

    @ops.setter
    def ops(self, value) -> None:
        self._ops = value

    def step(
        self, incoming: np.ndarray, t: int, incoming_nonzero: Optional[int] = None
    ) -> np.ndarray:
        """Consume incoming amplitudes at step ``t`` and return outgoing ones.

        ``incoming_nonzero`` is an optional exact nonzero count of
        ``incoming`` supplied by the producing layer (see
        :attr:`output_nonzero`); layers may use it to skip an activity scan.

        Runs through the layer's compiled :class:`~repro.backends.programs.
        StepProgram` — fused when the backend offers one for this layer,
        otherwise the composed multi-call body (:meth:`_step_composed`).
        """
        program = self._program
        if program is None:
            program = self.ensure_step_program()
        return program.run(incoming, t, incoming_nonzero)

    def ensure_step_program(self):
        """Resolve (compiling if needed) and cache the layer's step program.

        Compilation is lazy — it happens on the first step after a reset —
        so anything pinned between ``reset()`` and the first step (dispatcher
        ``force`` modes, environment variables) is honoured.  The engine also
        calls this eagerly at plan-prepare time and again after mid-run batch
        shrinks so program resolution never lands inside the timed loop.
        """
        program = self._program
        if program is None:
            if fused_programs_enabled():
                program = self.ops.compile_step_program(self)
            if program is None:
                program = ComposedStepProgram(self)
            self._program = program
        return program

    def _step_composed(
        self, incoming: np.ndarray, t: int, incoming_nonzero: Optional[int] = None
    ) -> np.ndarray:
        """The layer's original unfused step body (one backend primitive per
        kernel) — the universal fallback every backend can run."""
        raise NotImplementedError

    def shrink_batch(self, keep: np.ndarray) -> None:
        """Keep only the batch rows ``keep`` (converged-image early exit).

        Called mid-simulation by the engine when images freeze; subclasses
        slice their carry-over state and rebuild per-batch scratch buffers.
        """
        keep = np.asarray(keep, dtype=np.intp)
        if keep.size == 0:
            raise ValueError(f"{self.name}: shrink_batch requires at least one kept row")
        self.batch_size = int(keep.size)
        self.last_spikes = None
        # compiled programs capture per-batch buffers — recompile after slicing
        self._program = None

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Per-sample output shape given a per-sample input shape."""
        raise NotImplementedError

    @property
    def num_neurons(self) -> int:
        """Number of IF neurons per sample (0 for linear re-arrangement layers)."""
        return 0

    def spike_count(self) -> int:
        """Number of spikes emitted at the most recent step."""
        if self.last_spikes is None:
            return 0
        return int(np.count_nonzero(self.last_spikes))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class _SpikingNeuronLayer(SpikingLayer):
    """Shared machinery for layers that own IF neurons (dense and conv)."""

    is_spiking = True

    def __init__(
        self,
        name: str,
        threshold: ThresholdDynamics,
        reset_mode: "ResetMode | str" = ResetMode.SUBTRACT,
        bias_scale: float = 1.0,
    ) -> None:
        super().__init__(name)
        self.threshold = threshold
        self.reset_mode = ResetMode.from_value(reset_mode)
        self.bias_scale = float(bias_scale)
        self.state: Optional[IFNeuronState] = None
        self._cast_cache: Dict[str, np.ndarray] = {}
        self.dispatcher: Optional[SparsityDispatcher] = None
        self._input_period: Optional[int] = None
        self._z_cache: Optional[List[Optional[np.ndarray]]] = None
        #: the engine's exact incoming nonzero count for the current step
        #: (None outside an engine-driven step); lets _synaptic_input skip
        #: the activity scan when the hint already decides the outcome
        self._incoming_nonzero: Optional[int] = None

    def _hinted_decision(self, incoming: np.ndarray) -> Optional[str]:
        """Dispatch from the engine's nonzero-count hint when conclusive.

        The hint is exact, so a zero count is the (provably exact) empty
        shortcut in every dtype.  A nonzero count settles the decision when
        the sparse path cannot be taken anyway (exactness-gated float64), or
        when the element fraction already reaches the crossover — the
        structured (channel/feature) fraction is always ≥ the element
        fraction, so the sparse branch could not have been chosen.
        """
        count = self._incoming_nonzero
        self._incoming_nonzero = None
        if count is None:
            return None
        dispatcher = self.dispatcher
        assert dispatcher is not None
        if dispatcher.force is not None or os.environ.get("REPRO_SPARSE_MODE"):
            return None  # forced modes keep the full (scanned) dispatch path
        fraction = count / incoming.size
        if count == 0:
            return dispatcher.choose(0.0)
        if dispatcher.exact_only or fraction >= dispatcher.crossover:
            return dispatcher.choose(fraction)
        return None

    def _state_shape(self, batch_size: int) -> Tuple[int, ...]:
        raise NotImplementedError

    def _prepare_buffers(self, batch_size: int) -> None:
        """Hook for subclasses to (re)build their per-run scratch buffers."""

    def _calibrate_dispatcher(self) -> None:
        """Hook: auto-calibrate the sparse/dense crossover on first reset."""

    def reset(self, batch_size: int, dtype: DTypeLike = None, backend=None) -> None:
        super().reset(batch_size, dtype, backend)
        shape = self._state_shape(batch_size)
        if (
            self.state is not None
            and not self.backend_changed
            and self.state.shape == shape
            and self.state.dtype == self.dtype
            and self.state.reset_mode is self.reset_mode
        ):
            self.state.ops = self.ops  # the backend may change between runs
            self.state.reset()  # reuse the allocated membrane/scratch buffers
        else:
            self.state = IFNeuronState(
                shape, reset_mode=self.reset_mode, dtype=self.dtype, ops=self.ops
            )
        self.threshold.reset(shape, dtype=self.dtype, backend=self.ops)
        exact_only = self.dtype == np.float64
        if self.dispatcher is None:
            self.dispatcher = SparsityDispatcher(self.name, exact_only=exact_only)
        else:
            self.dispatcher.exact_only = exact_only
            self.dispatcher.reset_counters()
        self._z_cache = None if self._input_period is None else [None] * self._input_period
        self._prepare_buffers(batch_size)
        self._calibrate_dispatcher()

    def enable_input_caching(self, period: Optional[int]) -> None:
        """Cache the synaptic input per phase of a ``period``-periodic drive.

        The simulation engine enables this on the first layer when the input
        encoder declares a steady period (phase coding repeats its weighted
        spike pattern every ``period`` steps; real coding every step), so the
        layer's GEMM runs only during the first period and is replayed from
        the cache afterwards — bit-exact in every dtype, since the cached
        array *is* the earlier result.  ``None`` disables caching.
        """
        self._program = None  # programs bind the cache list at compile time
        if period is None or period <= 0:
            self._input_period = None
            self._z_cache = None
            return
        period = int(period)
        cache_elements = period * (self.batch_size or 0) * max(self.num_neurons, 1)
        if cache_elements > _INPUT_CACHE_MAX_ELEMENTS:
            self._input_period = None
            self._z_cache = None
            return
        self._input_period = period
        self._z_cache = [None] * period

    def shrink_batch(self, keep: np.ndarray) -> None:
        super().shrink_batch(keep)
        keep = np.asarray(keep, dtype=np.intp)
        if self.state is not None:
            self.state.shrink_batch(keep)
        self.threshold.shrink_batch(keep)
        if self._z_cache is not None:
            self._z_cache = [
                None if z is None else np.ascontiguousarray(z[keep]) for z in self._z_cache
            ]
        self._prepare_buffers(self.batch_size)

    def _synaptic_input(self, incoming: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _step_composed(
        self, incoming: np.ndarray, t: int, incoming_nonzero: Optional[int] = None
    ) -> np.ndarray:
        if self.state is None:
            raise RuntimeError(f"{self.name}: reset(batch_size) must be called before step()")
        self._incoming_nonzero = incoming_nonzero
        cache = self._z_cache
        if cache is not None:
            phase = t % self._input_period
            z = cache[phase]
            if z is None:
                # np.array copies the (possibly strided) result into a private
                # contiguous block that survives future steps
                z = np.array(self._synaptic_input(np.asarray(incoming)))
                cache[phase] = z
        else:
            z = self._synaptic_input(np.asarray(incoming))
        thresholds = self.threshold.thresholds(t)
        spikes, amplitudes = self.state.step(z, thresholds)
        self.threshold.update(
            spikes, self.state.spike_signals, spike_count=self.state.last_spike_count
        )
        self.last_spikes = spikes
        self.output_nonzero = self.state.last_spike_count
        return amplitudes

    def membrane(self) -> np.ndarray:
        """Copy of the current membrane potentials (analysis / tests)."""
        if self.state is None:
            raise RuntimeError(f"{self.name}: layer has no state before reset()")
        return self.state.membrane_copy()


class SpikingDense(_SpikingNeuronLayer):
    """Fully connected spiking layer.

    Parameters
    ----------
    weight:
        Normalised weight matrix of shape ``(in_features, out_features)``;
        kept as a float64 master and cast to the simulation dtype at reset.
    bias:
        Optional bias of shape ``(out_features,)``; injected every time step
        scaled by ``bias_scale``.
    threshold:
        The layer's :class:`~repro.snn.thresholds.ThresholdDynamics` (the
        hidden-layer coding scheme).
    """

    def __init__(
        self,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        threshold: ThresholdDynamics,
        reset_mode: "ResetMode | str" = ResetMode.SUBTRACT,
        bias_scale: float = 1.0,
        name: str = "spiking_dense",
    ) -> None:
        super().__init__(name, threshold, reset_mode, bias_scale)
        weight = np.asarray(weight, dtype=np.float64)
        if weight.ndim != 2:
            raise ValueError(f"{name}: weight must be 2-D, got shape {weight.shape}")
        self.weight = weight
        self.bias = None if bias is None else np.asarray(bias, dtype=np.float64)
        if self.bias is not None and self.bias.shape != (weight.shape[1],):
            raise ValueError(
                f"{name}: bias shape {self.bias.shape} does not match out features "
                f"{weight.shape[1]}"
            )
        self._w_sim: Optional[np.ndarray] = None
        self._scaled_bias: Optional[np.ndarray] = None
        self._z: Optional[np.ndarray] = None
        self._z_empty: Optional[np.ndarray] = None
        self._xa_flat: Optional[np.ndarray] = None
        self._wa_flat: Optional[np.ndarray] = None

    @property
    def in_features(self) -> int:
        return int(self.weight.shape[0])

    @property
    def out_features(self) -> int:
        return int(self.weight.shape[1])

    @property
    def num_neurons(self) -> int:
        return self.out_features

    def _state_shape(self, batch_size: int) -> Tuple[int, ...]:
        return (batch_size, self.out_features)

    def _prepare_buffers(self, batch_size: int) -> None:
        ops = self.ops
        if self.backend_changed:
            # buffers built by the previous backend must not leak into this run
            self._z = self._xa_flat = self._wa_flat = self._z_empty = None
        self._w_sim = _cast_cached(self._cast_cache, "weight", self.weight, self.dtype)
        if self.bias is not None:
            self._scaled_bias = _cast_cached(
                self._cast_cache, "scaled_bias", self.bias_scale * self.bias, self.dtype
            )
        if self._z is None or self._z.shape != (batch_size, self.out_features) or self._z.dtype != self.dtype:
            self._z = ops.empty((batch_size, self.out_features), self.dtype)
            # gather-path input accumulator: flat scratch carved into (N, a)
            # views for the step's active-feature count a
            self._xa_flat = ops.empty((batch_size * self.in_features,), self.dtype)
        if self._wa_flat is None or self._wa_flat.dtype != self.dtype:
            # weight gather scratch is batch-independent: rebuild on dtype only
            self._wa_flat = ops.empty((self.in_features * self.out_features,), self.dtype)
        if self._z_empty is None or self._z_empty.shape != self._z.shape or self._z_empty.dtype != self.dtype:
            self._z_empty = ops.zeros((batch_size, self.out_features), self.dtype)
            if self._scaled_bias is not None:
                ops.add_inplace(self._z_empty, self._scaled_bias)

    def _calibrate_dispatcher(self) -> None:
        dispatcher = self.dispatcher
        assert dispatcher is not None
        if dispatcher.exact_only or dispatcher._forced_mode() is not None:
            return
        batch = self.batch_size or 1
        # keyed by backend: crossovers timed on one backend's kernels must
        # never steer another backend's dispatch (see repro.utils.sparsity)
        cache_key = (
            "dense", self.ops.name, self.sparsity_cache_tag, batch,
            self.in_features, self.out_features, str(self.dtype),
        )
        rng = np.random.default_rng(0)

        def make_input(fraction: float) -> np.ndarray:
            # feature-structured probe: the dispatch metric is the fraction of
            # *features* active anywhere in the batch, which is what the
            # gather path's cost scales with
            count = max(1, int(round(fraction * self.in_features)))
            features = rng.choice(self.in_features, size=count, replace=False)
            x = np.zeros((batch, self.in_features), dtype=self.dtype)
            x[:, features] = np.asarray(
                (rng.random((batch, count)) < 0.5) * 0.125, dtype=self.dtype
            )
            return x

        dispatcher.calibrate(
            cache_key,
            self._dense_input,
            lambda x: self._sparse_input(x, self.ops.active_features(x)),
            make_input,
        )

    def _dense_input(self, incoming: np.ndarray) -> np.ndarray:
        z = self._z
        assert z is not None and self._w_sim is not None
        ops = self.ops
        ops.matmul(incoming, self._w_sim, z)
        if self._scaled_bias is not None:
            ops.add_inplace(z, self._scaled_bias)
        return z

    def _sparse_input(self, incoming: np.ndarray, active: np.ndarray) -> np.ndarray:
        """Gather-matmul over the active input features.

        ``incoming[:, active] @ W[active, :]`` with the gathered operands and
        the output written into preallocated accumulators; features silent
        across the whole batch contribute exactly zero and are skipped.
        """
        count = int(active.size)
        if count == 0:
            return self._z_empty
        if count == self.in_features:
            return self._dense_input(incoming)
        batch = incoming.shape[0]
        assert self._xa_flat is not None and self._wa_flat is not None
        ops = self.ops
        gathered_x = self._xa_flat[: batch * count].reshape(batch, count)
        gathered_w = self._wa_flat[: count * self.out_features].reshape(count, self.out_features)
        ops.take(incoming, active, 1, gathered_x)
        ops.take(self._w_sim, active, 0, gathered_w)
        z = self._z
        assert z is not None
        ops.matmul(gathered_x, gathered_w, z)
        if self._scaled_bias is not None:
            ops.add_inplace(z, self._scaled_bias)
        return z

    def _synaptic_input(self, incoming: np.ndarray) -> np.ndarray:
        if incoming.ndim != 2 or incoming.shape[1] != self.in_features:
            raise ValueError(
                f"{self.name}: expected incoming shape (N, {self.in_features}), "
                f"got {incoming.shape}"
            )
        dispatcher = self.dispatcher
        assert dispatcher is not None
        decision = self._hinted_decision(incoming)  # EMPTY / DENSE / None
        if decision is None:
            # dispatch metric: fraction of input features active anywhere in
            # the batch — the gather path's cost driver, exact for emptiness
            active = self.ops.active_features(incoming)
            decision = dispatcher.choose(active.size / self.in_features)
            if decision == sparsity.SPARSE:
                return self._sparse_input(incoming, active)
        if decision == sparsity.EMPTY:
            return self._z_empty
        return self._dense_input(incoming)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (self.out_features,)


class SpikingConv2D(_SpikingNeuronLayer):
    """Convolutional spiking layer (channel-first).

    Three propagation kernels back the layer, selected per step by its
    :class:`~repro.utils.sparsity.SparsityDispatcher`:

    * **canonical** — cached :class:`~repro.ann.im2col.Im2colPlan` fill + one
      GEMM, bit-identical to the seed engine (the float64 exact path);
    * **direct** — a stride-1 :class:`~repro.ann.im2col.DirectConvPlan` (one
      accumulating GEMM per kernel tap over a padded halo buffer) that skips
      the column materialisation; the float32 dense path;
    * **sparse** — the direct plan packed down to the input channels that
      carry at least one spike this step (the sparse-column path), entered
      when the measured activity falls below the layer's auto-calibrated
      crossover.

    All buffers are built lazily per (batch, dtype) geometry and reused
    across steps.
    """

    def __init__(
        self,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        threshold: ThresholdDynamics,
        stride: int = 1,
        padding: int = 0,
        reset_mode: "ResetMode | str" = ResetMode.SUBTRACT,
        bias_scale: float = 1.0,
        input_shape: Optional[Tuple[int, int, int]] = None,
        name: str = "spiking_conv",
    ) -> None:
        super().__init__(name, threshold, reset_mode, bias_scale)
        weight = np.asarray(weight, dtype=np.float64)
        if weight.ndim != 4 or weight.shape[2] != weight.shape[3]:
            raise ValueError(
                f"{name}: weight must be (out_c, in_c, k, k), got shape {weight.shape}"
            )
        self.weight = weight
        self.bias = None if bias is None else np.asarray(bias, dtype=np.float64)
        if self.bias is not None and self.bias.shape != (weight.shape[0],):
            raise ValueError(
                f"{name}: bias shape {self.bias.shape} does not match out channels "
                f"{weight.shape[0]}"
            )
        if stride <= 0:
            raise ValueError(f"{name}: stride must be positive, got {stride}")
        if padding < 0:
            raise ValueError(f"{name}: padding must be non-negative, got {padding}")
        self.stride = stride
        self.padding = padding
        if input_shape is None:
            raise ValueError(f"{name}: input_shape (C, H, W) is required")
        self.input_shape = tuple(int(v) for v in input_shape)
        if self.input_shape[0] != weight.shape[1]:
            raise ValueError(
                f"{name}: input channels {self.input_shape[0]} do not match weight "
                f"in_channels {weight.shape[1]}"
            )
        self._out_shape = self.output_shape(self.input_shape)
        self._weight_matrix = self.weight.reshape(self.weight.shape[0], -1)
        # (K·K, C, out_c) tap stack for the direct plan (float64 master)
        self._tap_master = np.ascontiguousarray(
            self.weight.transpose(2, 3, 1, 0).reshape(-1, self.weight.shape[1], self.weight.shape[0])
        )
        self._plan: Optional[Im2colPlan] = None
        self._direct: Optional[DirectConvPlan] = None
        self._wmat_t: Optional[np.ndarray] = None
        self._taps: Optional[np.ndarray] = None
        self._taps_scratch_flat: Optional[np.ndarray] = None
        self._scaled_bias: Optional[np.ndarray] = None
        self._z2d: Optional[np.ndarray] = None
        self._z4: Optional[np.ndarray] = None
        self._z_empty: Optional[np.ndarray] = None

    @property
    def out_channels(self) -> int:
        return int(self.weight.shape[0])

    @property
    def kernel_size(self) -> int:
        return int(self.weight.shape[2])

    @property
    def num_neurons(self) -> int:
        c, h, w = self._out_shape
        return int(c * h * w)

    def _state_shape(self, batch_size: int) -> Tuple[int, ...]:
        return (batch_size,) + self._out_shape

    @property
    def _direct_available(self) -> bool:
        """The direct (halo) plan covers every stride-1 convolution."""
        return self.stride == 1

    def _prepare_buffers(self, batch_size: int) -> None:
        out_c, out_h, out_w = self._out_shape
        ops = self.ops
        if self.backend_changed:
            # plans and buffers built by the previous backend must not leak
            self._plan = self._direct = None
            self._z2d = self._z4 = self._z_empty = self._taps_scratch_flat = None
        wmat = _cast_cached(self._cast_cache, "weight_matrix", self._weight_matrix, self.dtype)
        self._wmat_t = wmat.T
        self._taps = _cast_cached(self._cast_cache, "taps", self._tap_master, self.dtype)
        if self._taps_scratch_flat is None or self._taps_scratch_flat.dtype != self.dtype:
            # gather scratch for the sparse path's channel-packed tap stack
            self._taps_scratch_flat = ops.empty((self._taps.size,), self.dtype)
        if self.bias is not None:
            self._scaled_bias = _cast_cached(
                self._cast_cache, "scaled_bias", self.bias_scale * self.bias, self.dtype
            )
        empty_shape = (batch_size, out_c, out_h, out_w)
        if self._z_empty is None or self._z_empty.shape != empty_shape or self._z_empty.dtype != self.dtype:
            self._z_empty = ops.zeros(empty_shape, self.dtype)
            if self._scaled_bias is not None:
                ops.add_inplace(self._z_empty, self._scaled_bias[:, None, None])

    def _canonical_plan(self) -> Im2colPlan:
        c, h, w = self.input_shape
        out_c, out_h, out_w = self._out_shape
        batch_size = self.batch_size
        if (
            self._plan is None
            or self._plan.input_shape != (batch_size, c, h, w)
            or self._plan.dtype != self.dtype
        ):
            self._plan = self.ops.im2col_plan(
                batch_size, c, h, w,
                self.kernel_size, self.kernel_size, self.stride, self.padding,
                self.dtype,
            )
            self._z2d = self.ops.empty((batch_size * out_h * out_w, out_c), self.dtype)
            # (N, out_h, out_w, out_c) -> (N, out_c, out_h, out_w) view, built once
            self._z4 = self._z2d.reshape(batch_size, out_h, out_w, out_c).transpose(0, 3, 1, 2)
        return self._plan

    def _direct_plan(self) -> DirectConvPlan:
        c, h, w = self.input_shape
        batch_size = self.batch_size
        if (
            self._direct is None
            or self._direct.input_shape != (batch_size, c, h, w)
            or self._direct.dtype != self.dtype
        ):
            self._direct = self.ops.direct_conv_plan(
                batch_size, c, h, w,
                self.kernel_size, self.padding, self.out_channels, self.dtype,
            )
        return self._direct

    def _calibrate_dispatcher(self) -> None:
        dispatcher = self.dispatcher
        assert dispatcher is not None
        if (
            dispatcher.exact_only
            or not self._direct_available
            or dispatcher._forced_mode() is not None
        ):
            return
        batch = self.batch_size or 1
        # keyed by backend, like the dense layer's crossover cache
        cache_key = (
            "conv", self.ops.name, self.sparsity_cache_tag, batch,
            self.input_shape, self.kernel_size,
            self.stride, self.padding, self.out_channels, str(self.dtype),
        )
        rng = np.random.default_rng(0)
        channels = self.input_shape[0]

        def make_input(fraction: float) -> np.ndarray:
            # channel-structured probe: the dispatch metric is the fraction of
            # input channels carrying any spike, which is what the packed
            # (sparse-column) path's cost scales with
            count = max(1, int(round(fraction * channels)))
            chosen = rng.choice(channels, size=count, replace=False)
            x = np.zeros((batch,) + self.input_shape, dtype=self.dtype)
            plane = (batch, count) + self.input_shape[1:]
            x[:, chosen] = np.asarray((rng.random(plane) < 0.2) * 0.125, dtype=self.dtype)
            return x

        dispatcher.calibrate(
            cache_key,
            self._dense_input,
            lambda x: self._sparse_input(x, self.ops.active_channels(x)),
            make_input,
        )
        # probe the direct plan's GEMM engine now (rather than lazily on the
        # first step), so resetting a network in the parent process fully
        # warms the process-wide caches shard workers inherit
        self._direct_plan()._select_engine()

    def _canonical_input(self, incoming: np.ndarray) -> np.ndarray:
        plan = self._canonical_plan()
        assert self._z2d is not None and self._z4 is not None
        ops = self.ops
        cols = plan.fill(incoming)
        ops.matmul(cols, self._wmat_t, self._z2d)
        if self._scaled_bias is not None:
            ops.add_inplace(self._z2d, self._scaled_bias)
        return self._z4

    def _dense_input(self, incoming: np.ndarray) -> np.ndarray:
        # float64 is the exact-match reference precision: stay on the
        # canonical im2col pipeline there (see repro.utils.sparsity)
        if self.dtype == np.float64 or not self._direct_available:
            return self._canonical_input(incoming)
        return self._direct_plan().run(incoming, self._taps, self._scaled_bias)

    def _sparse_input(self, incoming: np.ndarray, active: np.ndarray) -> np.ndarray:
        """Sparse-column path: lift and multiply only the input channels that
        carry at least one spike this step."""
        count = int(active.size)
        if count == 0:
            return self._z_empty
        if count == incoming.shape[1]:
            return self._direct_plan().run(incoming, self._taps, self._scaled_bias)
        assert self._taps is not None and self._taps_scratch_flat is not None
        kk = self.kernel_size * self.kernel_size
        taps = self._taps_scratch_flat[: kk * count * self.out_channels].reshape(
            kk, count, self.out_channels
        )
        self.ops.take(self._taps, active, 1, taps)
        return self._direct_plan().run(
            incoming, taps, self._scaled_bias, active_channels=active
        )

    def _synaptic_input(self, incoming: np.ndarray) -> np.ndarray:
        expected_c = self.input_shape[0]
        if incoming.ndim != 4 or incoming.shape[1] != expected_c:
            raise ValueError(
                f"{self.name}: expected incoming shape (N, {expected_c}, H, W), "
                f"got {incoming.shape}"
            )
        dispatcher = self.dispatcher
        assert dispatcher is not None
        decision = self._hinted_decision(incoming)  # EMPTY / DENSE / None
        if decision is None:
            # dispatch metric: fraction of input channels carrying any spike —
            # a cheap reduction that doubles as the sparse path's channel list
            # and is exact for empty detection (no active channel ⟺ all zero)
            active = self.ops.active_channels(incoming)
            decision = dispatcher.choose(
                active.size / expected_c, sparse_available=self._direct_available
            )
            if decision == sparsity.SPARSE:
                return self._sparse_input(incoming, active)
        if decision == sparsity.EMPTY:
            return self._z_empty
        return self._dense_input(incoming)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, h, w = input_shape
        out_h = conv_output_size(h, self.kernel_size, self.stride, self.padding)
        out_w = conv_output_size(w, self.kernel_size, self.stride, self.padding)
        return (self.out_channels, out_h, out_w)


class SpikingAvgPool2D(SpikingLayer):
    """Average pooling of spike amplitudes (linear, neuron-free).

    Uses a cached im2col plan (built lazily on the first step, when the input
    geometry is known) and a preallocated output buffer.
    """

    def __init__(self, pool_size: int = 2, stride: Optional[int] = None, name: str = "spiking_avgpool") -> None:
        super().__init__(name)
        if pool_size <= 0:
            raise ValueError(f"{name}: pool_size must be positive, got {pool_size}")
        self.pool_size = pool_size
        self.stride = stride if stride is not None else pool_size
        self._plan: Optional[Im2colPlan] = None
        self._shape: Optional[Tuple[int, int, int, int]] = None
        self._out: Optional[np.ndarray] = None
        self._mean_flat: Optional[np.ndarray] = None
        # pooling has no cheaper kernel for nonzero input, so the dispatcher
        # only contributes the (exact) empty-step shortcut
        self.dispatcher = SparsityDispatcher(name, exact_only=True)

    def reset(self, batch_size: int, dtype: DTypeLike = None, backend=None) -> None:
        super().reset(batch_size, dtype, backend)
        if self.backend_changed:
            self._shape = None  # buffers rebuilt by the new backend on next step

    @property
    def _slab_mode(self) -> bool:
        """2×2 / stride-2 pooling (the only config the models use) averages
        four strided slab views directly — ~10× faster than unfold + mean and
        bit-identical (same sequential add order, same final divide)."""
        return self.pool_size == 2 and self.stride == 2

    def _ensure_buffers(self, shape: Tuple[int, int, int, int]) -> None:
        n, c, h, w = shape
        if self._shape == shape and self._out is not None and self._out.dtype == self.dtype:
            return
        self._shape = shape
        if self._slab_mode:
            out_h = conv_output_size(h, self.pool_size, self.stride, 0)
            out_w = conv_output_size(w, self.pool_size, self.stride, 0)
            self._plan = None
            self._out = self.ops.empty((n, c, out_h, out_w), self.dtype)
            self._mean_flat = None
        else:
            self._plan = self.ops.im2col_plan(
                n * c, 1, h, w, self.pool_size, self.pool_size, self.stride, 0, self.dtype
            )
            self._out = self.ops.empty((n, c, self._plan.out_h, self._plan.out_w), self.dtype)
            self._mean_flat = self._out.reshape(-1)

    def shrink_batch(self, keep: np.ndarray) -> None:
        super().shrink_batch(keep)
        self._shape = None  # buffers rebuilt for the smaller batch on next step

    def _step_composed(
        self, incoming: np.ndarray, t: int, incoming_nonzero: Optional[int] = None
    ) -> np.ndarray:
        del t
        incoming = np.asarray(incoming)
        if not incoming.flags.c_contiguous:
            incoming = np.ascontiguousarray(incoming)
        n, c, h, w = incoming.shape
        self._ensure_buffers((n, c, h, w))
        out = self._out
        assert out is not None
        ops = self.ops
        fraction = (
            incoming_nonzero / incoming.size
            if incoming_nonzero is not None
            else ops.count_nonzero(incoming) / incoming.size
        )
        if self.dispatcher.choose(fraction, sparse_available=False) == sparsity.EMPTY:
            # pooling an all-zero step is exactly zero in every dtype
            ops.fill(out, 0.0)
            return out
        if self._slab_mode:
            return ops.avgpool2x2(incoming, out)
        plan = self._plan
        assert plan is not None and self._mean_flat is not None
        cols = plan.fill(incoming.reshape(n * c, 1, h, w))
        ops.mean_columns(cols, self._mean_flat)
        return out

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, h, w = input_shape
        out_h = conv_output_size(h, self.pool_size, self.stride, 0)
        out_w = conv_output_size(w, self.pool_size, self.stride, 0)
        return (c, out_h, out_w)


class SpikingMaxPool2D(SpikingLayer):
    """Spiking max pooling via cumulative-evidence gating.

    Each pooling window forwards the current amplitude of the input unit whose
    *cumulative* transmitted amplitude is largest so far — the output-gating
    scheme proposed for converted SNNs by Rueckauer et al. [12].

    Only the cumulative evidence is unfolded (through a cached im2col plan);
    the winning input amplitudes are gathered directly from the incoming
    array with precomputed index arithmetic, eliminating the second unfold the
    original implementation performed every step.
    """

    def __init__(self, pool_size: int = 2, stride: Optional[int] = None, name: str = "spiking_maxpool") -> None:
        super().__init__(name)
        if pool_size <= 0:
            raise ValueError(f"{name}: pool_size must be positive, got {pool_size}")
        self.pool_size = pool_size
        self.stride = stride if stride is not None else pool_size
        self._cumulative: Optional[np.ndarray] = None
        self._plan: Optional[Im2colPlan] = None
        self._steps_seen = 0
        self.dispatcher = SparsityDispatcher(name, exact_only=True)
        # gather machinery (built with the plan)
        self._winners: Optional[np.ndarray] = None
        self._ky: Optional[np.ndarray] = None
        self._kx: Optional[np.ndarray] = None
        self._base_y: Optional[np.ndarray] = None
        self._base_x: Optional[np.ndarray] = None
        self._base_off: Optional[np.ndarray] = None
        self._gated: Optional[np.ndarray] = None
        self._gated_flat: Optional[np.ndarray] = None

    def reset(self, batch_size: int, dtype: DTypeLike = None, backend=None) -> None:
        super().reset(batch_size, dtype, backend)
        self._steps_seen = 0
        if self.backend_changed:
            self._cumulative = None  # full rebuild by the new backend
        elif self._cumulative is not None:
            self._cumulative.fill(0.0)

    def shrink_batch(self, keep: np.ndarray) -> None:
        super().shrink_batch(keep)
        keep = np.asarray(keep, dtype=np.intp)
        if self._cumulative is not None:
            # the cumulative evidence is carry-over state: keep the surviving
            # rows while the index machinery is rebuilt for the smaller batch
            kept = np.ascontiguousarray(self._cumulative[keep])
            self._cumulative = None
            self._ensure_buffers(kept.shape)
            np.copyto(self._cumulative, kept)

    def _ensure_buffers(self, shape: Tuple[int, int, int, int]) -> None:
        n, c, h, w = shape
        if (
            self._cumulative is not None
            and self._cumulative.shape == shape
            and self._cumulative.dtype == self.dtype
        ):
            return
        self._cumulative = self.ops.zeros(shape, self.dtype)
        self._plan = self.ops.im2col_plan(
            n * c, 1, h, w, self.pool_size, self.pool_size, self.stride, 0, self.dtype
        )
        out_h, out_w = self._plan.out_h, self._plan.out_w
        rows = n * c * out_h * out_w
        position = np.arange(rows, dtype=np.intp)
        oy = (position // out_w) % out_h
        ox = position % out_w
        nc = position // (out_h * out_w)
        self._base_y = oy * self.stride
        self._base_x = ox * self.stride
        self._base_off = nc * (h * w)
        self._winners = self.ops.empty((rows,), np.dtype(np.intp))
        self._ky = self.ops.empty((rows,), np.dtype(np.intp))
        self._kx = self.ops.empty((rows,), np.dtype(np.intp))
        self._gated = self.ops.empty((n, c, out_h, out_w), self.dtype)
        self._gated_flat = self._gated.reshape(-1)

    def _step_composed(
        self, incoming: np.ndarray, t: int, incoming_nonzero: Optional[int] = None
    ) -> np.ndarray:
        del t
        incoming = np.asarray(incoming)
        if not incoming.flags.c_contiguous:
            incoming = np.ascontiguousarray(incoming)
        if (
            self._steps_seen > 0
            and self._cumulative is not None
            and self._cumulative.shape != incoming.shape
        ):
            raise ValueError(
                f"{self.name}: incoming shape changed mid-simulation "
                f"({self._cumulative.shape} -> {incoming.shape})"
            )
        n, c, h, w = incoming.shape
        self._ensure_buffers((n, c, h, w))
        self._steps_seen += 1
        cumulative = self._cumulative
        plan = self._plan
        ops = self.ops
        assert cumulative is not None and plan is not None
        fraction = (
            incoming_nonzero / incoming.size
            if incoming_nonzero is not None
            else ops.count_nonzero(incoming) / incoming.size
        )
        if self.dispatcher.choose(fraction, sparse_available=False) == sparsity.EMPTY:
            # nothing spiked: the cumulative evidence is unchanged, and every
            # window's winner forwards an amplitude of exactly zero
            assert self._gated is not None
            ops.fill(self._gated, 0.0)
            return self._gated
        ops.add_inplace(cumulative, incoming)

        cum_cols = plan.fill(cumulative.reshape(n * c, 1, h, w))
        winners, ky, kx = self._winners, self._ky, self._kx
        assert winners is not None and ky is not None and kx is not None
        ops.argmax_columns(cum_cols, winners)
        # winner index within the window -> absolute flat index into
        # `incoming` (plain intp bookkeeping, backend-independent)
        np.floor_divide(winners, self.pool_size, out=ky)
        np.remainder(winners, self.pool_size, out=kx)
        ky += self._base_y
        kx += self._base_x
        ky *= w
        ky += kx
        ky += self._base_off
        ops.take_flat(incoming, ky, self._gated_flat)
        return self._gated

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, h, w = input_shape
        out_h = conv_output_size(h, self.pool_size, self.stride, 0)
        out_w = conv_output_size(w, self.pool_size, self.stride, 0)
        return (c, out_h, out_w)


class SpikingFlatten(SpikingLayer):
    """Reshape ``(N, C, H, W)`` amplitudes to ``(N, C*H*W)`` rows (a view)."""

    def __init__(self, name: str = "spiking_flatten") -> None:
        super().__init__(name)

    def _step_composed(
        self, incoming: np.ndarray, t: int, incoming_nonzero: Optional[int] = None
    ) -> np.ndarray:
        del t
        self.output_nonzero = incoming_nonzero  # a reshape preserves the count
        incoming = np.asarray(incoming)
        return incoming.reshape(incoming.shape[0], -1)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        size = 1
        for dim in input_shape:
            size *= dim
        return (size,)


class OutputAccumulator(SpikingLayer):
    """Non-spiking output layer.

    The final dense layer of a converted SNN is read out by accumulating its
    membrane potential (the standard choice in conversion work): the class
    scores at time ``t`` are the accumulated ``W·incoming + bias_scale·b``.
    """

    def __init__(
        self,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        bias_scale: float = 1.0,
        name: str = "output",
    ) -> None:
        super().__init__(name)
        weight = np.asarray(weight, dtype=np.float64)
        if weight.ndim != 2:
            raise ValueError(f"{name}: weight must be 2-D, got shape {weight.shape}")
        self.weight = weight
        self.bias = None if bias is None else np.asarray(bias, dtype=np.float64)
        self.bias_scale = float(bias_scale)
        self._cast_cache: Dict[str, np.ndarray] = {}
        self._w_sim: Optional[np.ndarray] = None
        self._scaled_bias: Optional[np.ndarray] = None
        self._update: Optional[np.ndarray] = None
        self._logits: Optional[np.ndarray] = None

    @property
    def num_classes(self) -> int:
        return int(self.weight.shape[1])

    def reset(self, batch_size: int, dtype: DTypeLike = None, backend=None) -> None:
        super().reset(batch_size, dtype, backend)
        self._w_sim = _cast_cached(self._cast_cache, "weight", self.weight, self.dtype)
        if self.bias is not None:
            self._scaled_bias = _cast_cached(
                self._cast_cache, "scaled_bias", self.bias_scale * self.bias, self.dtype
            )
        shape = (batch_size, self.num_classes)
        if (
            self._logits is not None
            and not self.backend_changed
            and self._logits.shape == shape
            and self._logits.dtype == self.dtype
        ):
            self._logits.fill(0.0)
        else:
            self._logits = self.ops.zeros(shape, self.dtype)
            self._update = self.ops.empty(shape, self.dtype)

    def shrink_batch(self, keep: np.ndarray) -> None:
        super().shrink_batch(keep)
        keep = np.asarray(keep, dtype=np.intp)
        if self._logits is not None:
            self._logits = np.ascontiguousarray(self._logits[keep])
            self._update = np.empty_like(self._logits)

    def _step_composed(
        self, incoming: np.ndarray, t: int, incoming_nonzero: Optional[int] = None
    ) -> np.ndarray:
        del t, incoming_nonzero
        if self._logits is None or self._update is None or self._w_sim is None:
            raise RuntimeError(f"{self.name}: reset(batch_size) must be called before step()")
        incoming = np.asarray(incoming)
        if incoming.ndim != 2 or incoming.shape[1] != self.weight.shape[0]:
            raise ValueError(
                f"{self.name}: expected incoming shape (N, {self.weight.shape[0]}), "
                f"got {incoming.shape}"
            )
        ops = self.ops
        ops.matmul(incoming, self._w_sim, self._update)
        if self._scaled_bias is not None:
            ops.add_inplace(self._update, self._scaled_bias)
        ops.add_inplace(self._logits, self._update)
        return self._logits

    @property
    def logits(self) -> np.ndarray:
        """Accumulated class scores."""
        if self._logits is None:
            raise RuntimeError(f"{self.name}: reset(batch_size) must be called before use")
        return self._logits

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (self.num_classes,)
