"""Ablation bench: reset-by-subtraction (Eq. 4) vs reset-to-zero (Eq. 3).

The paper adopts the reset-by-subtraction neurons of Rueckauer et al. [12, 13]
because reset-to-zero discards the residual membrane charge and loses
information between layers.  This bench quantifies that choice on the
MNIST-like CNN workload: reset-by-subtraction should give at least as high an
SNN accuracy as reset-to-zero under the same coding scheme and time budget.
"""

from repro.conversion.converter import ConversionConfig
from repro.core.hybrid import HybridCodingScheme
from repro.core.pipeline import PipelineConfig, SNNInferencePipeline
from repro.utils.tables import Table


def _run(workload, reset_mode, scheme_notation, time_steps=120, num_images=16):
    config = PipelineConfig(
        time_steps=time_steps,
        batch_size=16,
        max_test_images=num_images,
        conversion=ConversionConfig(reset_mode=reset_mode),
        seed=0,
    )
    pipeline = SNNInferencePipeline(workload.model, workload.data, config)
    return pipeline.run_scheme(HybridCodingScheme.from_notation(scheme_notation))


def test_bench_ablation_reset_mode(benchmark, save_result, mnist_cnn_workload):
    def run_ablation():
        results = {}
        for reset_mode in ("subtract", "zero"):
            for notation in ("real-rate", "phase-burst"):
                results[(reset_mode, notation)] = _run(mnist_cnn_workload, reset_mode, notation)
        return results

    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    table = Table(
        ["reset_mode", "scheme", "accuracy_%", "dnn_%", "spikes/image"],
        title="Ablation — membrane reset mode (Eq. 3 vs Eq. 4)",
    )
    for (reset_mode, notation), run in results.items():
        table.add_row(
            {
                "reset_mode": reset_mode,
                "scheme": notation,
                "accuracy_%": round(run.accuracy * 100, 2),
                "dnn_%": round(run.dnn_accuracy * 100, 2),
                "spikes/image": round(run.spikes_per_image, 1),
            }
        )
    save_result("ablation_reset_mode", table.render())

    # reset-by-subtraction is never worse than reset-to-zero for the same scheme
    for notation in ("real-rate", "phase-burst"):
        assert (
            results[("subtract", notation)].accuracy
            >= results[("zero", notation)].accuracy - 0.05
        )
