"""Minimal structured logging for experiment runs.

The experiment harness needs two things: a standard library logger configured
once, and a per-run record of scalar metrics that can be rendered as the rows
of a paper table.  Both live here to avoid ad-hoc ``print`` calls scattered
through the library.
"""

from __future__ import annotations

import logging
import time
from typing import Any, Dict, List, Optional

_LOGGER_NAME = "repro"
_configured = False


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return the package logger (configured with a console handler once)."""
    global _configured
    logger = logging.getLogger(_LOGGER_NAME)
    if not _configured:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("[%(name)s] %(levelname)s %(message)s"))
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        logger.propagate = False
        _configured = True
    if name:
        return logger.getChild(name)
    return logger


class RunLogger:
    """Accumulates scalar records for one experiment run.

    Each record is a flat ``dict`` of scalars; records are typically one table
    row each.  The class intentionally stores plain Python objects so results
    can be serialised or compared in tests without extra dependencies.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.records: List[Dict[str, Any]] = []
        self._start = time.perf_counter()

    def log(self, **fields: Any) -> Dict[str, Any]:
        """Append one record and return it."""
        record = dict(fields)
        record.setdefault("elapsed_s", round(time.perf_counter() - self._start, 3))
        self.records.append(record)
        return record

    def column(self, key: str) -> List[Any]:
        """Return the value of ``key`` from every record that contains it."""
        return [r[key] for r in self.records if key in r]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)
