"""Tests for the embeddable serving engine (repro.serving.engine) and the
single-flight contract of InferenceSession (repro.engine.session)."""

import threading

import numpy as np
import pytest

from repro.core.hybrid import HybridCodingScheme
from repro.core.registry import UnknownCodingError
from repro.engine.session import InferenceSession
from repro.serving.engine import ServingConfig, ServingEngine
from repro.serving.limits import RateLimitedError
from repro.snn.network import SimulationConfig

TIME_STEPS = 20


@pytest.fixture()
def engine(trained_mlp, tiny_image_split):
    """A float64 serving engine over the tiny trained MLP.

    The wait window is generous (200 ms) so asynchronously submitted
    requests reliably coalesce into micro-batches on slow CI machines.
    """
    engine = ServingEngine(
        trained_mlp,
        tiny_image_split.train.x,
        ServingConfig(
            max_batch_size=4,
            max_wait_ms=200.0,
            time_steps=TIME_STEPS,
            dtype="float64",
            seed=0,
        ),
    )
    yield engine
    engine.close()


def _reference_scores(engine, model, images, notation="phase-burst"):
    """Final float64 scores of ``images`` run as ONE batch through a fresh
    session built on the same shared normalisation."""
    session = InferenceSession.from_model(
        model,
        HybridCodingScheme.from_notation(notation),
        config=SimulationConfig(time_steps=TIME_STEPS, dtype="float64"),
        normalization=engine.normalization,
        seed=0,
    )
    return session.run(images).final_outputs


class TestBitIdentity:
    def test_concurrent_singles_match_batch_run_bitwise(
        self, engine, trained_mlp, tiny_image_split
    ):
        """The acceptance check: N concurrent single-image requests answer
        bit-identically (float64) to the equivalent pipeline batch run, and
        micro-batching actually coalesced (>= one executed batch of size > 1)."""
        images = tiny_image_split.test.x[:6]
        reference = _reference_scores(engine, trained_mlp, images)

        futures = [engine.classify(images[i]) for i in range(len(images))]
        results = [future.result(timeout=60) for future in futures]

        served = np.array([result.scores for result in results], dtype=np.float64)
        assert served.dtype == reference.dtype
        assert np.array_equal(served, reference)
        # the scheduler really coalesced: some batch served more than one image
        assert engine.metrics.max_batch_size_seen() > 1
        assert max(result.batch_size for result in results) > 1
        # with early exit off, no request reports a freeze step
        assert all(result.frozen_at is None for result in results)
        assert all(result.time_steps == TIME_STEPS for result in results)
        assert all(result.scheme == "phase-burst" for result in results)
        predictions = np.array([result.prediction for result in results])
        assert np.array_equal(predictions, reference.argmax(axis=1))

    def test_threaded_clients_match_batch_run_bitwise(
        self, engine, trained_mlp, tiny_image_split
    ):
        """Same equivalence with real concurrent client threads."""
        images = tiny_image_split.test.x[:8]
        reference = _reference_scores(engine, trained_mlp, images)
        results = [None] * len(images)
        barrier = threading.Barrier(len(images))

        def client(index):
            barrier.wait(timeout=30)
            results[index] = engine.classify_sync(images[index], timeout=60)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(len(images))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        served = np.array([result.scores for result in results], dtype=np.float64)
        assert np.array_equal(served, reference)


class TestEngineBehaviour:
    def test_timing_and_stats_are_populated(self, engine, tiny_image_split):
        result = engine.classify_sync(tiny_image_split.test.x[0])
        assert result.batch_ms >= 0.0
        assert result.queue_ms >= 0.0
        assert result.total_ms == result.queue_ms + result.batch_ms
        stats = engine.stats()
        assert stats["requests_total"] >= 1
        assert stats["sessions"]["phase-burst"]["images_served"] >= 1
        assert stats["config"]["max_batch_size"] == 4
        assert "p95" in stats["latency_ms"]

    def test_flat_image_payload_accepted(self, engine, tiny_image_split):
        image = tiny_image_split.test.x[0]
        nested = engine.classify_sync(image)
        flat = engine.classify_sync(image.ravel().tolist())
        assert flat.scores == nested.scores

    def test_malformed_image_rejected(self, engine):
        with pytest.raises(ValueError, match="does not match"):
            engine.classify(np.zeros((2, 2)))
        with pytest.raises(ValueError, match="not numeric"):
            engine.classify([["a", "b"]])

    def test_unknown_scheme_has_did_you_mean(self, engine, tiny_image_split):
        with pytest.raises(UnknownCodingError, match="did you mean"):
            engine.classify(tiny_image_split.test.x[0], scheme="phse-burst")

    def test_scheme_listing_matches_registry(self, engine):
        from repro.core.registry import scheme_metadata

        listing = engine.schemes()
        assert listing["codings"] == scheme_metadata()
        assert "phase" in listing["input_codings"]

    def test_lru_eviction_drains_oldest_session(self, trained_mlp, tiny_image_split):
        engine = ServingEngine(
            trained_mlp,
            tiny_image_split.train.x,
            ServingConfig(
                max_batch_size=2,
                max_wait_ms=1.0,
                time_steps=8,
                session_cache_size=2,
                seed=0,
            ),
        )
        try:
            image = tiny_image_split.test.x[0]
            engine.classify_sync(image, scheme="phase-burst")
            engine.classify_sync(image, scheme="real-rate")
            assert engine.loaded_schemes() == ["phase-burst", "real-rate"]
            # touching phase-burst refreshes it; a third scheme evicts real-rate
            engine.classify_sync(image, scheme="phase-burst")
            engine.classify_sync(image, scheme="real-burst")
            assert engine.loaded_schemes() == ["phase-burst", "real-burst"]
            # the evicted scheme transparently rebuilds on demand
            result = engine.classify_sync(image, scheme="real-rate")
            assert result.scheme == "real-rate"
        finally:
            engine.close()

    def test_early_exit_reports_frozen_step(self, trained_mlp, tiny_image_split):
        engine = ServingEngine(
            trained_mlp,
            tiny_image_split.train.x,
            ServingConfig(
                max_batch_size=2,
                max_wait_ms=1.0,
                time_steps=40,
                early_exit_patience=5,
                seed=0,
            ),
        )
        try:
            result = engine.classify_sync(tiny_image_split.test.x[0])
            assert result.frozen_at is None or 1 <= result.frozen_at <= 40
        finally:
            engine.close()

    def test_requires_calibration_or_normalization(self, trained_mlp):
        with pytest.raises(ValueError, match="calibration_x"):
            ServingEngine(trained_mlp)

    def test_classify_after_close_raises(self, trained_mlp, tiny_image_split):
        engine = ServingEngine(
            trained_mlp,
            tiny_image_split.train.x,
            ServingConfig(time_steps=8, seed=0),
        )
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            engine.classify(tiny_image_split.test.x[0])


class TestReplicaPool:
    def test_pool_replicas_answer_bit_identically(self, trained_mlp, tiny_image_split):
        """Every replica of a pool produces the exact float64 scores of a
        standalone session for the same batch, and the float64 weight
        masters are genuinely shared (aliased, not copied)."""
        scheme = HybridCodingScheme.from_notation("phase-burst")
        config = SimulationConfig(time_steps=TIME_STEPS, dtype="float64")
        pool = InferenceSession.replica_pool(
            trained_mlp,
            scheme,
            count=3,
            config=config,
            calibration_x=tiny_image_split.train.x[:64],
            seed=0,
        )
        solo = InferenceSession.from_model(
            trained_mlp,
            scheme,
            config=config,
            calibration_x=tiny_image_split.train.x[:64],
            seed=0,
        )
        batch = tiny_image_split.test.x[:5]
        reference = solo.run(batch).final_outputs
        for session in pool:
            assert np.array_equal(session.run(batch).final_outputs, reference)
        assert [session.replica_index for session in pool] == [0, 1, 2]
        # weight masters are aliased across the pool; calibration cache keys
        # are tagged per replica beyond the primary
        for replica, session in enumerate(pool[1:], start=1):
            for primary_layer, layer in zip(pool[0].network.layers, session.network.layers):
                if getattr(layer, "weight", None) is not None:
                    assert layer.weight is primary_layer.weight
                assert layer.sparsity_cache_tag == f"replica-{replica}"
        assert all(layer.sparsity_cache_tag == "" for layer in pool[0].network.layers)

    def test_replica_pool_requires_normalization_source(self, trained_mlp):
        with pytest.raises(ValueError, match="normalization or calibration_x"):
            InferenceSession.replica_pool(
                trained_mlp,
                HybridCodingScheme.from_notation("phase-burst"),
                count=2,
            )
        with pytest.raises(ValueError, match="count"):
            InferenceSession.replica_pool(
                trained_mlp,
                HybridCodingScheme.from_notation("phase-burst"),
                count=0,
                calibration_x=np.zeros((1, 1, 12, 12)),
            )

    def test_replicated_engine_matches_single_session_bitwise(
        self, trained_mlp, tiny_image_split
    ):
        """The tentpole acceptance check: a replica-pooled engine serves the
        exact float64 answers of a single fresh session, whichever replica a
        request lands on (single-image batches keep the coalescing — and
        hence the summation order — identical on both sides)."""
        engine = ServingEngine(
            trained_mlp,
            tiny_image_split.train.x,
            ServingConfig(
                max_batch_size=1,
                max_wait_ms=0.0,
                num_replicas=2,
                time_steps=TIME_STEPS,
                dtype="float64",
                seed=0,
            ),
        )
        try:
            images = tiny_image_split.test.x[:8]
            session = InferenceSession.from_model(
                trained_mlp,
                HybridCodingScheme.from_notation("phase-burst"),
                config=SimulationConfig(time_steps=TIME_STEPS, dtype="float64"),
                normalization=engine.normalization,
                seed=0,
            )
            reference = np.stack(
                [session.run(image[None]).final_outputs[0] for image in images]
            )
            futures = [engine.classify(image) for image in images]
            results = [future.result(timeout=60) for future in futures]
            served = np.array([result.scores for result in results], dtype=np.float64)
            assert np.array_equal(served, reference)
            stats = engine.stats()["sessions"]["phase-burst"]
            assert stats["num_replicas"] == 2
            assert len(stats["replica_utilisation"]) == 2
            assert sum(stats["batches_per_replica"]) == len(images)
            assert {result.replica for result in results} <= {0, 1}
        finally:
            engine.close()

    def test_multi_replica_drain_resolves_every_future(
        self, trained_mlp, tiny_image_split
    ):
        engine = ServingEngine(
            trained_mlp,
            tiny_image_split.train.x,
            ServingConfig(
                max_batch_size=2,
                max_wait_ms=50.0,
                num_replicas=3,
                time_steps=8,
                seed=0,
            ),
        )
        futures = [
            engine.classify(tiny_image_split.test.x[i % 12]) for i in range(13)
        ]
        engine.close()  # graceful drain across all three replicas
        assert all(future.done() for future in futures)
        predictions = [future.result(timeout=0).prediction for future in futures]
        assert len(predictions) == 13


class TestEngineAdmissionControl:
    class ManualClock:
        def __init__(self):
            self.now = 0.0

        def __call__(self):
            return self.now

    @pytest.fixture()
    def limited_engine(self, trained_mlp, tiny_image_split):
        """Rate-limited engine on a manual clock (max_batch_size=1 so batches
        flush on size — a frozen clock never expires the wait window)."""
        clock = self.ManualClock()
        engine = ServingEngine(
            trained_mlp,
            tiny_image_split.train.x,
            ServingConfig(
                max_batch_size=1,
                max_wait_ms=0.0,
                time_steps=8,
                max_rps=1.0,
                client_quota=3,
                quota_window_s=60.0,
                seed=0,
            ),
            clock=clock,
        )
        yield engine, clock
        engine.close()

    def test_rate_limit_bounces_and_recovers(self, limited_engine, tiny_image_split):
        engine, clock = limited_engine
        image = tiny_image_split.test.x[0]
        engine.classify_sync(image, client_id="alice")
        with pytest.raises(RateLimitedError) as excinfo:
            engine.classify(image, client_id="alice")
        assert excinfo.value.retry_after_s == pytest.approx(1.0)
        engine.classify_sync(image, client_id="bob")  # independent client
        clock.now += 1.0  # refill alice's bucket
        engine.classify_sync(image, client_id="alice")
        stats = engine.stats()
        assert stats["rate_limited_total"] == 1
        assert stats["rate_limits"]["rate_limited_total"] == 1
        assert stats["rate_limits"]["clients_tracked"] == 2

    def test_quota_exhaustion_names_the_window(self, limited_engine, tiny_image_split):
        engine, clock = limited_engine
        image = tiny_image_split.test.x[0]
        for _ in range(3):
            engine.classify_sync(image, client_id="carol")
            clock.now += 2.0  # stay under the rate limit
        with pytest.raises(RateLimitedError, match="quota"):
            engine.classify(image, client_id="carol")

    def test_priority_is_validated_before_submission(
        self, limited_engine, tiny_image_split
    ):
        engine, clock = limited_engine
        image = tiny_image_split.test.x[0]
        result = engine.classify_sync(image, priority="batch", client_id="dave")
        assert result.prediction >= 0
        clock.now += 10.0
        with pytest.raises(ValueError, match="priority"):
            engine.classify(image, priority="urgent", client_id="dave")


class TestSessionSingleFlight:
    def test_concurrent_session_runs_never_corrupt_plan_buffers(
        self, trained_mlp, tiny_image_split
    ):
        """Satellite regression test: `serve()` calls racing on one session
        must serialise on the internal lock — every thread gets the exact
        result a sequential run produces, for its own batch."""
        scheme = HybridCodingScheme.from_notation("phase-burst")
        session = InferenceSession.from_model(
            trained_mlp,
            scheme,
            config=SimulationConfig(time_steps=15, dtype="float64"),
            calibration_x=tiny_image_split.train.x[:64],
            seed=0,
        )
        batches = [tiny_image_split.test.x[i : i + 3] for i in range(0, 12, 3)]
        expected = [session.run(batch).final_outputs.copy() for batch in batches]

        outputs = [None] * len(batches)
        errors = []
        barrier = threading.Barrier(len(batches))

        def worker(index):
            try:
                barrier.wait(timeout=30)
                for _ in range(3):  # repeated runs raise the interleaving odds
                    result = session.run(batches[index])
                outputs[index] = result.final_outputs.copy()
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(len(batches))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        for got, want in zip(outputs, expected):
            assert np.array_equal(got, want)
        assert session.batches_served == len(batches) * 4
