"""im2col / col2im utilities backing the Conv2D and pooling layers.

A convolution over a channel-first batch ``(N, C, H, W)`` is expressed as a
single matrix multiplication by unfolding every receptive field into a column.
The same unfolding is reused by the pooling layers and by the spiking
convolution layer in :mod:`repro.snn.layers`, which keeps the ANN forward pass
and the SNN per-time-step pass numerically identical for the same weights.

Two entry points are provided:

* :func:`im2col` — the one-shot form used by the ANN forward/backward passes
  (geometry recomputed and a fresh column matrix allocated per call);
* :class:`Im2colPlan` — the cached form used by the SNN engine, which unfolds
  the *same* geometry hundreds of times (once per simulation step).  The plan
  precomputes the output geometry and the strided-window view once, owns a
  reusable padded input buffer and column buffer, and each :meth:`fill` is a
  single strided copy with no allocations.  The column layout is identical to
  :func:`im2col`'s, so results are bit-for-bit the same.

A third form, :class:`DirectConvPlan`, skips the column matrix entirely for
stride-1 convolutions (one accumulating GEMM per kernel tap over a padded
NHWC halo buffer, with optional packing to the spike-carrying input
channels).  It reassociates the reduction, so the SNN engine uses it only on
its tolerance-based float32 fast path — the float64 exact path stays on
:class:`Im2colPlan`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

try:  # pragma: no cover - exercised indirectly via DirectConvPlan
    from scipy.linalg.blas import dgemm as _dgemm, sgemm as _sgemm

    _ACCUMULATING_GEMM = {np.dtype(np.float32): _sgemm, np.dtype(np.float64): _dgemm}
except ImportError:  # pragma: no cover - scipy is optional
    _ACCUMULATING_GEMM = {}

#: per-geometry GEMM engine choice for DirectConvPlan (probed once per
#: process so identical runs stay bit-identical to each other)
_DIRECT_ENGINE_CACHE: dict = {}


def direct_engine_cache_snapshot() -> dict:
    """Copy of the engine-choice cache (shipped to shard workers so their
    direct-conv kernels match the parent's)."""
    return dict(_DIRECT_ENGINE_CACHE)


def install_direct_engine_cache(snapshot: dict) -> None:
    """Install a parent process's engine-choice cache (worker-side)."""
    _DIRECT_ENGINE_CACHE.update(snapshot)


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"invalid convolution geometry: size={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding} gives non-positive output {out}"
        )
    return out


def im2col(
    x: np.ndarray, kernel_h: int, kernel_w: int, stride: int, padding: int
) -> Tuple[np.ndarray, int, int]:
    """Unfold ``x`` of shape (N, C, H, W) into columns.

    Returns
    -------
    cols:
        Array of shape ``(N * out_h * out_w, C * kernel_h * kernel_w)``.
    out_h, out_w:
        Spatial output dimensions.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 4:
        raise ValueError(f"im2col expects (N, C, H, W), got shape {x.shape}")
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)

    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant")

    # Strided sliding-window view: (N, C, out_h, out_w, kernel_h, kernel_w)
    stride_n, stride_c, stride_h, stride_w = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kernel_h, kernel_w),
        strides=(stride_n, stride_c, stride_h * stride, stride_w * stride, stride_h, stride_w),
        writeable=False,
    )
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * out_h * out_w, c * kernel_h * kernel_w)
    return np.ascontiguousarray(cols), out_h, out_w


class Im2colPlan:
    """Cached im2col execution plan for a fixed unfold geometry.

    The SNN engine unfolds the same ``(N, C, H, W)`` geometry at every
    simulation step.  This plan computes the geometry once, owns

    * a reusable (padded) input buffer,
    * the strided sliding-window view over that buffer, and
    * a reusable column buffer laid out exactly like :func:`im2col`'s output,

    so that each :meth:`fill` call is two strided copies (input → padded
    buffer, window view → column buffer) with zero allocations.  Column
    values are bit-for-bit identical to ``im2col(x, ...)[0]``.

    Parameters
    ----------
    batch_size, channels, height, width:
        Input geometry (per step), batch dimension included.
    kernel_h, kernel_w, stride, padding:
        Unfold geometry, as in :func:`im2col`.
    dtype:
        dtype of the buffers (the simulation dtype of the owning layer).
    """

    def __init__(
        self,
        batch_size: int,
        channels: int,
        height: int,
        width: int,
        kernel_h: int,
        kernel_w: int,
        stride: int,
        padding: int,
        dtype: "np.dtype | type" = np.float64,
    ) -> None:
        if batch_size <= 0 or channels <= 0 or height <= 0 or width <= 0:
            raise ValueError(
                f"invalid input geometry ({batch_size}, {channels}, {height}, {width})"
            )
        self.input_shape = (batch_size, channels, height, width)
        self.kernel_h = int(kernel_h)
        self.kernel_w = int(kernel_w)
        self.stride = int(stride)
        self.padding = int(padding)
        self.dtype = np.dtype(dtype)
        self.out_h = conv_output_size(height, kernel_h, stride, padding)
        self.out_w = conv_output_size(width, kernel_w, stride, padding)

        n, c = batch_size, channels
        padded_h = height + 2 * padding
        padded_w = width + 2 * padding
        # Padded input buffer; the zero border is written once and never
        # touched again (fill() only overwrites the interior).
        self._padded = np.zeros((n, c, padded_h, padded_w), dtype=self.dtype)
        if padding > 0:
            self._interior = self._padded[
                :, :, padding : padding + height, padding : padding + width
            ]
        else:
            self._interior = self._padded

        stride_n, stride_c, stride_h, stride_w = self._padded.strides
        windows = np.lib.stride_tricks.as_strided(
            self._padded,
            shape=(n, c, self.out_h, self.out_w, self.kernel_h, self.kernel_w),
            strides=(
                stride_n,
                stride_c,
                stride_h * self.stride,
                stride_w * self.stride,
                stride_h,
                stride_w,
            ),
            writeable=False,
        )
        # Source view in the column ordering (N, out_h, out_w, C, kh, kw); the
        # destination buffer is C-contiguous so its 2-D reshape is a free view.
        self._windows = windows.transpose(0, 2, 3, 1, 4, 5)
        self._cols6 = np.empty(
            (n, self.out_h, self.out_w, c, self.kernel_h, self.kernel_w), dtype=self.dtype
        )
        self.cols = self._cols6.reshape(
            n * self.out_h * self.out_w, c * self.kernel_h * self.kernel_w
        )
        # Copy strategy: one 6-D strided copy, or one 4-D copy per kernel
        # position.  The 6-D iterator wins only for very small channel counts;
        # per-position slabs win everywhere else (and always for pooling,
        # where stride == kernel).  Values are identical either way.
        self._use_slabs = c >= 4 or self.kernel_h * self.kernel_w <= 4
        self._slab_pairs = []
        for ky in range(self.kernel_h):
            for kx in range(self.kernel_w):
                src = self._padded[
                    :,
                    :,
                    ky : ky + self.out_h * self.stride : self.stride,
                    kx : kx + self.out_w * self.stride : self.stride,
                ].transpose(0, 2, 3, 1)
                self._slab_pairs.append((self._cols6[:, :, :, :, ky, kx], src))

    @property
    def num_rows(self) -> int:
        n = self.input_shape[0]
        return n * self.out_h * self.out_w

    def fill(self, x: np.ndarray) -> np.ndarray:
        """Unfold ``x`` into the plan's column buffer and return it.

        The returned array is the plan's reusable buffer: it is overwritten by
        the next ``fill`` call.
        """
        if x.shape != self.input_shape:
            raise ValueError(
                f"im2col plan built for input shape {self.input_shape}, got {x.shape}"
            )
        self._interior[...] = x
        if self._use_slabs:
            for dst, src in self._slab_pairs:
                np.copyto(dst, src)
        else:
            np.copyto(self._cols6, self._windows)
        return self.cols


class DirectConvPlan:
    """Stride-1 direct-convolution plan over a padded NHWC halo buffer.

    The im2col form materialises a ``(N·out_h·out_w, C·K·K)`` column matrix
    every step — ``K·K`` times the input's size in writes alone, which is what
    dominates the spiking-conv step at bench scale.  This plan instead keeps
    the padded input in channels-last layout and runs one *accumulating GEMM
    per kernel tap* over a contiguous flat window of the halo buffer:

    for tap ``(ky, kx)`` the flat element range starting at
    ``(ky·PW + kx)·C`` of a padded image, viewed as ``(L, C)`` rows with
    ``L = (out_h−1)·PW + out_w``, has row ``r = y·PW + x`` aligned with output
    position ``(y, x)`` *independently of the tap* — so all ``K·K`` GEMMs
    accumulate into one ``(N, out_h·PW, out_c)`` buffer whose rows with
    ``x < out_w`` are the convolution result (rows in the halo margin receive
    garbage and are never read).  Total traffic is one input transpose plus
    ``K·K`` reads of the (cache-resident) halo, ~3× cheaper than the column
    fill at VGG geometries.

    The per-tap accumulation reassociates the reduction relative to the
    canonical ``(c, ky, kx)`` im2col ordering, so results match
    :class:`Im2colPlan` + GEMM only to rounding; the simulation engine
    therefore uses this plan on its tolerance-based (float32) path and keeps
    the canonical plan for the float64 exact-match path (see
    :mod:`repro.utils.sparsity`).

    Channel packing (the sparse-column path): ``run(..., active_channels=)``
    lifts only the spike-carrying input channels into a narrower halo buffer
    and multiplies the matching rows of each tap matrix, skipping the silent
    channels entirely.
    """

    def __init__(
        self,
        batch_size: int,
        channels: int,
        height: int,
        width: int,
        kernel: int,
        padding: int,
        out_channels: int,
        dtype: "np.dtype | type" = np.float32,
    ) -> None:
        if batch_size <= 0 or channels <= 0 or height <= 0 or width <= 0:
            raise ValueError(
                f"invalid input geometry ({batch_size}, {channels}, {height}, {width})"
            )
        self.input_shape = (batch_size, channels, height, width)
        self.kernel = int(kernel)
        self.padding = int(padding)
        self.out_channels = int(out_channels)
        self.dtype = np.dtype(dtype)
        self.out_h = conv_output_size(height, kernel, 1, padding)
        self.out_w = conv_output_size(width, kernel, 1, padding)
        self.padded_h = height + 2 * padding
        self.padded_w = width + 2 * padding

        n = batch_size
        #: flat halo scratch, reinterpreted as (N, PH, PW, C') per channel count
        self._halo_flat = np.zeros(n * self.padded_h * self.padded_w * channels, dtype=self.dtype)
        self._halo_channels: Optional[int] = None
        self._halo: Optional[np.ndarray] = None
        self._interior: Optional[np.ndarray] = None

        #: window row count: output row r = y·PW + x for y < out_h, x < out_w
        self.window_rows = (self.out_h - 1) * self.padded_w + self.out_w
        self._zbuf = np.empty((n, self.out_h * self.padded_w, self.out_channels), dtype=self.dtype)
        self._tap_z = np.empty((n, self.window_rows, self.out_channels), dtype=self.dtype)
        # (N, out_c, out_h, out_w) view of the valid zbuf rows, built once
        self._z_view = self._zbuf.reshape(
            n, self.out_h, self.padded_w, self.out_channels
        )[:, :, : self.out_w, :].transpose(0, 3, 1, 2)
        # BLAS-accumulating variant (scipy): one flat window per tap across
        # the whole batch (inter-image halo rows are garbage, never read) and
        # gemm(beta=1) accumulates in place — no per-tap add pass.  The output
        # buffer must span the full halo so window and output rows align.
        self._engine: Optional[str] = None
        self._gemm = _ACCUMULATING_GEMM.get(self.dtype)
        if self._gemm is not None:
            self._zfull = np.empty((n * self.padded_h * self.padded_w, self.out_channels), dtype=self.dtype)
            self._zfull_view = self._zfull.reshape(
                n, self.padded_h, self.padded_w, self.out_channels
            )[:, : self.out_h, : self.out_w, :].transpose(0, 3, 1, 2)

    @property
    def z_view(self) -> np.ndarray:
        """The (N, out_c, out_h, out_w) output view over the plan's buffer."""
        return self._z_view

    def _halo_view(self, channels: int) -> Tuple[np.ndarray, np.ndarray]:
        """(halo, interior) views for ``channels`` packed channels, zeroing the
        halo margin whenever the packed width changes."""
        if self._halo_channels == channels and self._halo is not None:
            return self._halo, self._interior
        n, _, h, w = self.input_shape
        size = n * self.padded_h * self.padded_w * channels
        halo = self._halo_flat[:size].reshape(n, self.padded_h, self.padded_w, channels)
        halo.fill(0.0)
        pad = self.padding
        interior = halo[:, pad : pad + h, pad : pad + w, :] if pad else halo
        self._halo_channels = channels
        self._halo = halo
        self._interior = interior
        return halo, interior

    def run(
        self,
        x: np.ndarray,
        taps: np.ndarray,
        bias: Optional[np.ndarray] = None,
        active_channels: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Convolve ``x`` (N, C, H, W) with per-tap matrices ``taps``.

        Parameters
        ----------
        x:
            Input batch in the engine's channels-first layout.
        taps:
            ``(K·K, C', out_c)`` stack of tap matrices (``weight[o, c, ky, kx]``
            transposed to ``taps[ky·K + kx, c, o]``), already gathered to the
            active channels when ``active_channels`` is given.
        bias:
            Optional per-output-channel bias added once.
        active_channels:
            Indices of the input channels to lift (the sparse-column path);
            ``None`` lifts all of them.

        Returns
        -------
        The plan's reusable ``(N, out_c, out_h, out_w)`` output view — valid
        until the next ``run``.
        """
        if x.shape != self.input_shape:
            raise ValueError(
                f"direct conv plan built for input shape {self.input_shape}, got {x.shape}"
            )
        n, c, h, w = self.input_shape
        packed = c if active_channels is None else int(len(active_channels))
        if taps.shape != (self.kernel * self.kernel, packed, self.out_channels):
            raise ValueError(
                f"taps shape {taps.shape} does not match "
                f"({self.kernel * self.kernel}, {packed}, {self.out_channels})"
            )
        halo, interior = self._halo_view(packed)
        if active_channels is None:
            # transpose builds the NHWC view directly (moveaxis pays an extra
            # normalisation pass on this hot path)
            interior[...] = x.transpose(0, 2, 3, 1)
        else:
            for packed_index, channel in enumerate(active_channels):
                interior[..., packed_index] = x[:, channel]

        if self._select_engine() == "accumulate":
            return self._run_accumulate(halo, taps, bias, packed)
        return self._run_stacked(halo, taps, bias, packed)

    def _select_engine(self) -> str:
        """Pick the per-geometry GEMM engine (timed once, cached process-wide).

        The two engines differ only in rounding (both accumulate taps in the
        same order), and the choice is cached per geometry+dtype — probed at
        the full channel width on a throwaway halo — so repeated runs in one
        process stay bit-identical to each other.  Sparse-packed calls reuse
        the full-width verdict (the engines scale together in the packed
        width).
        """
        if self._engine is not None:
            return self._engine
        key = (self.input_shape, self.kernel, self.padding, self.out_channels, str(self.dtype))
        cached = _DIRECT_ENGINE_CACHE.get(key)
        if cached is None:
            if self._gemm is None:
                cached = "stacked"
            else:
                import time as _time

                n, c, _, _ = self.input_shape
                probe_halo = np.zeros(
                    (n, self.padded_h, self.padded_w, c), dtype=self.dtype
                )
                probe_taps = np.zeros(
                    (self.kernel * self.kernel, c, self.out_channels), dtype=self.dtype
                )

                def _once(fn) -> float:
                    fn()  # warm
                    best = float("inf")
                    for _ in range(2):
                        start = _time.perf_counter()
                        fn()
                        best = min(best, _time.perf_counter() - start)
                    return best

                t_acc = _once(lambda: self._run_accumulate(probe_halo, probe_taps, None, c))
                t_stack = _once(lambda: self._run_stacked(probe_halo, probe_taps, None, c))
                cached = "accumulate" if t_acc < t_stack else "stacked"
            _DIRECT_ENGINE_CACHE[key] = cached
        self._engine = cached
        return cached

    def _run_accumulate(
        self, halo: np.ndarray, taps: np.ndarray, bias: Optional[np.ndarray], packed: int
    ) -> np.ndarray:
        """One flat window per tap spanning the whole batch; ``gemm(beta=1)``
        accumulates into the (transposed view of the) output in place."""
        n = self.input_shape[0]
        total_rows = (n - 1) * self.padded_h * self.padded_w + self.window_rows
        flat_all = halo.reshape(-1)
        z_rows = self._zfull[:total_rows]
        z_t = z_rows.T
        for tap_index in range(self.kernel * self.kernel):
            ky, kx = divmod(tap_index, self.kernel)
            offset = (ky * self.padded_w + kx) * packed
            window = flat_all[offset : offset + total_rows * packed].reshape(
                total_rows, packed
            )
            self._gemm(
                1.0,
                taps[tap_index].T,
                window.T,
                beta=0.0 if tap_index == 0 else 1.0,
                c=z_t,
                overwrite_c=1,
            )
        if bias is not None:
            z_rows += bias
        return self._zfull_view

    def _run_stacked(
        self, halo: np.ndarray, taps: np.ndarray, bias: Optional[np.ndarray], packed: int
    ) -> np.ndarray:
        """Per-image stacked matmul per tap, accumulated via an add pass."""
        n = self.input_shape[0]
        flat = halo.reshape(n, self.padded_h * self.padded_w * packed)
        rows = self.window_rows
        zbuf = self._zbuf[:, :rows]
        tap_z = self._tap_z
        tap_index = 0
        for ky in range(self.kernel):
            for kx in range(self.kernel):
                offset = (ky * self.padded_w + kx) * packed
                window = flat[:, offset : offset + rows * packed].reshape(n, rows, packed)
                if tap_index == 0:
                    np.matmul(window, taps[tap_index], out=zbuf)
                else:
                    np.matmul(window, taps[tap_index], out=tap_z)
                    zbuf += tap_z
                tap_index += 1
        if bias is not None:
            zbuf += bias
        return self._z_view


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold columns back to an image batch, accumulating overlapping regions.

    This is the adjoint of :func:`im2col` and is used by the convolution and
    pooling backward passes.
    """
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)
    padded_h = h + 2 * padding
    padded_w = w + 2 * padding

    cols_reshaped = cols.reshape(n, out_h, out_w, c, kernel_h, kernel_w).transpose(0, 3, 4, 5, 1, 2)
    x_padded = np.zeros((n, c, padded_h, padded_w), dtype=np.float64)
    for ky in range(kernel_h):
        y_max = ky + stride * out_h
        for kx in range(kernel_w):
            x_max = kx + stride * out_w
            x_padded[:, :, ky:y_max:stride, kx:x_max:stride] += cols_reshaped[:, :, ky, kx, :, :]
    if padding > 0:
        return x_padded[:, :, padding:-padding, padding:-padding]
    return x_padded
