"""``numpy-blocked``: the reference kernels with GEMM tiled over batch shards.

One large GEMM can under-utilise multi-core machines when the BLAS build is
single-threaded (common for pip wheels in containers), and on very large
column matrices a monolithic ``matmul`` churns the cache.  This backend
inherits every kernel from the numpy reference backend and overrides only the
propagation GEMM: the left operand's rows (the batch / unfolded-position
dimension) are split into contiguous shards, each multiplied into the matching
slice of the output buffer — optionally on a thread pool (BLAS releases the
GIL, so shards genuinely overlap on multi-core machines).

Because each output row is the same dot-product reduction regardless of the
shard it lands in, results agree with the reference backend to rounding (and
in practice bit-for-bit on the common BLAS builds); the engine's backend
contract only requires prediction-level agreement, which the parity suite
asserts.

Tuning knobs (environment variables, read once per process):

* ``REPRO_BLOCKED_MIN_ROWS`` — the smallest shard worth splitting off
  (default 64; GEMMs with fewer than two shards run unsplit).
* ``REPRO_BLOCKED_THREADS`` — thread-pool width (default: CPU count capped at
  4; ``1`` tiles sequentially, which is the automatic choice on 1-CPU
  machines).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

import numpy as np

from repro.backends.numpy_backend import NumpyBackend
from repro.backends.registry import register_backend


def _env_int(name: str, default: int, minimum: int = 1) -> int:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return max(minimum, int(raw))
    except ValueError:
        return default


class BlockedNumpyBackend(NumpyBackend):
    """Numpy kernels with the propagation GEMM tiled over row shards."""

    name = "numpy-blocked"
    description = "numpy kernels with GEMM tiled over batch shards (threaded on multi-core)"

    def __init__(
        self, min_rows: Optional[int] = None, threads: Optional[int] = None
    ) -> None:
        self.min_rows = (
            _env_int("REPRO_BLOCKED_MIN_ROWS", 64) if min_rows is None else int(min_rows)
        )
        if threads is None:
            threads = _env_int("REPRO_BLOCKED_THREADS", min(os.cpu_count() or 1, 4))
        self.threads = max(1, int(threads))
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    def _executor(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.threads, thread_name_prefix="repro-blocked-gemm"
                )
            return self._pool

    def matmul(self, a: np.ndarray, b: np.ndarray, out: np.ndarray) -> np.ndarray:
        rows = a.shape[0]
        if a.ndim != 2 or rows < 2 * self.min_rows:
            return np.matmul(a, b, out=out)
        shards = min(max(rows // self.min_rows, 1), max(self.threads, 2))
        per_shard = -(-rows // shards)
        bounds = [
            (start, min(start + per_shard, rows))
            for start in range(0, rows, per_shard)
        ]
        if self.threads > 1 and len(bounds) > 1:
            futures = [
                self._executor().submit(np.matmul, a[lo:hi], b, out=out[lo:hi])
                for lo, hi in bounds
            ]
            for future in futures:
                future.result()
        else:
            for lo, hi in bounds:
                np.matmul(a[lo:hi], b, out=out[lo:hi])
        return out


@register_backend(
    "numpy-blocked",
    description=BlockedNumpyBackend.description,
)
def _build_blocked_backend() -> BlockedNumpyBackend:
    return BlockedNumpyBackend()
