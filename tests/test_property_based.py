"""Property-based tests (hypothesis) for the core data structures and
simulation invariants.

These cover the invariants the whole reproduction rests on:

* charge conservation of reset-by-subtraction IF neurons,
* exactness of the input encoders' long-run transmission,
* the burst function's algebraic behaviour (Eq. 8–9),
* ISI / burst statistics consistency,
* im2col/col2im adjointness,
* energy-model normalisation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis.burst_stats import burst_lengths, burst_statistics
from repro.analysis.firing import firing_rate, firing_regularity
from repro.analysis.isi import inter_spike_intervals, isi_histogram
from repro.ann.activations import softmax
from repro.ann.im2col import col2im, im2col
from repro.data.dataset import one_hot
from repro.energy.architectures import SPINNAKER, TRUENORTH
from repro.energy.estimator import EnergyWorkload, estimate_energy
from repro.snn.encoding import PhaseEncoder, RateEncoder
from repro.snn.neurons import IFNeuronState
from repro.snn.thresholds import BurstThreshold, PhaseThreshold

# Small deadline-free profile: simulations inside properties can be slow-ish.
SETTINGS = settings(max_examples=25, deadline=None)


# ---------------------------------------------------------------------------
# numpy / data helpers
# ---------------------------------------------------------------------------
class TestDataProperties:
    @given(labels=st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=50))
    @SETTINGS
    def test_one_hot_rows_sum_to_one(self, labels):
        encoded = one_hot(np.asarray(labels), 10)
        assert np.allclose(encoded.sum(axis=1), 1.0)
        assert np.array_equal(encoded.argmax(axis=1), labels)

    @given(
        x=arrays(
            np.float64,
            shape=st.tuples(st.integers(1, 4), st.integers(1, 6)),
            elements=st.floats(-50, 50),
        )
    )
    @SETTINGS
    def test_softmax_is_probability_distribution(self, x):
        probs = softmax(x)
        assert np.all(probs >= 0)
        assert np.allclose(probs.sum(axis=-1), 1.0)


class TestIm2ColProperties:
    @given(
        n=st.integers(1, 2),
        c=st.integers(1, 3),
        size=st.integers(4, 8),
        kernel=st.integers(1, 3),
        stride=st.integers(1, 2),
        padding=st.integers(0, 1),
        seed=st.integers(0, 1000),
    )
    @SETTINGS
    def test_adjointness(self, n, c, size, kernel, stride, padding, seed):
        """<im2col(x), y> == <x, col2im(y)> for every geometry."""
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, c, size, size))
        cols, _, _ = im2col(x, kernel, kernel, stride, padding)
        y = rng.normal(size=cols.shape)
        lhs = float(np.sum(cols * y))
        rhs = float(np.sum(x * col2im(y, x.shape, kernel, kernel, stride, padding)))
        assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9)


# ---------------------------------------------------------------------------
# IF neuron and threshold dynamics
# ---------------------------------------------------------------------------
class TestNeuronProperties:
    @given(
        drives=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=100),
        threshold=st.floats(0.05, 2.0),
    )
    @SETTINGS
    def test_charge_conservation(self, drives, threshold):
        """Reset-by-subtraction: injected = transmitted + residual, and the
        residual stays below the threshold when inputs are non-negative.

        Exact-arithmetic property: pin float64 (the policy default is float32)."""
        state = IFNeuronState((1, 1), reset_mode="subtract", dtype=np.float64)
        transmitted = 0.0
        for drive in drives:
            _, amplitude = state.step(np.array([[drive]]), np.asarray(threshold))
            transmitted += float(amplitude.sum())
        injected = float(np.sum(drives))
        residual = float(state.v_mem[0, 0])
        assert injected == pytest.approx(transmitted + residual, abs=1e-9)
        assert residual >= -1e-12
        if all(drive <= threshold for drive in drives):
            # when the per-step drive never exceeds the threshold no backlog
            # can build up, so the residual stays below one threshold
            assert residual < threshold + 1e-12

    @given(
        drives=st.lists(st.floats(-1.0, 1.0), min_size=1, max_size=60),
        threshold=st.floats(0.1, 1.5),
    )
    @SETTINGS
    def test_at_most_one_spike_per_step(self, drives, threshold):
        state = IFNeuronState((1, 1))
        for drive in drives:
            spikes, _ = state.step(np.array([[drive]]), np.asarray(threshold))
            assert int(spikes.sum()) in (0, 1)

    @given(
        spike_pattern=st.lists(st.booleans(), min_size=1, max_size=40),
        beta=st.floats(1.1, 4.0),
        v_th=st.floats(0.01, 1.0),
    )
    @SETTINGS
    def test_burst_function_value(self, spike_pattern, beta, v_th):
        """After n consecutive spikes the burst function equals β^n; after any
        silent step it is exactly 1 (Eq. 8).

        Exact-arithmetic property: pin float64 (the policy default is float32)."""
        threshold = BurstThreshold(v_th=v_th, beta=beta)
        threshold.reset((1, 1), dtype=np.float64)
        consecutive = 0
        for spiked in spike_pattern:
            threshold.update(np.array([[spiked]]))
            consecutive = consecutive + 1 if spiked else 0
            expected = beta**consecutive
            assert threshold.burst_function[0, 0] == pytest.approx(expected, rel=1e-9)
            assert threshold.thresholds(0)[0, 0] == pytest.approx(v_th * expected, rel=1e-9)

    @given(period=st.integers(1, 16), v_th=st.floats(0.1, 4.0), t=st.integers(0, 200))
    @SETTINGS
    def test_phase_threshold_bounds_and_periodicity(self, period, v_th, t):
        threshold = PhaseThreshold(v_th=v_th, period=period)
        # exact bound `value <= v_th / 2`: pin float64 (policy default is float32)
        threshold.reset((1,), dtype=np.float64)
        value = float(threshold.thresholds(t))
        assert 0 < value <= v_th / 2
        assert value == pytest.approx(float(threshold.thresholds(t + period)))


# ---------------------------------------------------------------------------
# encoders
# ---------------------------------------------------------------------------
class TestEncoderProperties:
    @given(
        values=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=8),
        steps=st.integers(10, 120),
    )
    @SETTINGS
    def test_rate_encoder_transmission_error_bounded(self, values, steps):
        """The deterministic rate encoder's cumulative transmission never lags
        x·t by more than one threshold.

        Exact-arithmetic property: pin float64 (the policy default is float32)."""
        x = np.asarray(values)[None, :]
        encoder = RateEncoder(v_th=1.0)
        encoder.reset(x, dtype=np.float64)
        total = np.zeros_like(x)
        for t in range(steps):
            total += encoder.step(t).values
        assert np.all(total <= x * steps + 1e-9)
        assert np.all(total >= x * steps - 1.0 - 1e-9)

    @given(
        values=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=8),
        period=st.integers(2, 10),
    )
    @SETTINGS
    def test_phase_encoder_period_exactness(self, values, period):
        """One phase period transmits the `period`-bit quantisation of x.

        The quantisation boundary depends on the input precision: pin float64."""
        x = np.asarray(values)[None, :]
        encoder = PhaseEncoder(v_th=1.0, period=period)
        encoder.reset(x, dtype=np.float64)
        total = np.zeros_like(x)
        for t in range(period):
            total += encoder.step(t).values
        quantised = np.clip(np.round(x * 2**period), 0, 2**period - 1) / 2**period
        assert np.allclose(total, quantised, atol=1e-12)

    @given(values=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=6))
    @SETTINGS
    def test_encoders_never_emit_negative_amplitudes(self, values):
        x = np.asarray(values)[None, :]
        for encoder in (RateEncoder(), PhaseEncoder()):
            encoder.reset(x)
            for t in range(12):
                step = encoder.step(t)
                assert np.all(step.values >= 0.0)
                assert step.spike_count <= x.size


# ---------------------------------------------------------------------------
# spike-train analyses
# ---------------------------------------------------------------------------
def _spike_train_strategy(max_t=60, max_n=6):
    return arrays(
        np.bool_,
        shape=st.tuples(st.integers(2, max_t), st.integers(1, max_n)),
        elements=st.booleans(),
    )


class TestAnalysisProperties:
    @given(trains=_spike_train_strategy())
    @SETTINGS
    def test_isi_count_matches_spikes(self, trains):
        """Every neuron with k ≥ 1 spikes contributes exactly k−1 ISIs."""
        spikes_per_neuron = trains.sum(axis=0)
        expected = int(np.sum(np.maximum(spikes_per_neuron - 1, 0)))
        assert inter_spike_intervals(trains).size == expected

    @given(trains=_spike_train_strategy())
    @SETTINGS
    def test_isi_histogram_total(self, trains):
        _, counts = isi_histogram(trains, max_isi=80)
        assert counts.sum() == inter_spike_intervals(trains).size

    @given(trains=_spike_train_strategy())
    @SETTINGS
    def test_burst_lengths_sum_to_spike_count(self, trains):
        """The lengths of all runs sum to the total number of spikes."""
        assert int(burst_lengths(trains).sum()) == int(trains.sum())

    @given(trains=_spike_train_strategy())
    @SETTINGS
    def test_burst_fraction_in_unit_interval(self, trains):
        stats = burst_statistics(trains)
        assert 0.0 <= stats.burst_fraction <= 1.0
        assert stats.burst_spikes <= stats.total_spikes
        assert sum(stats.composition.values()) == pytest.approx(stats.burst_fraction, abs=1e-9)

    @given(isis=st.lists(st.integers(1, 50), min_size=1, max_size=30))
    @SETTINGS
    def test_firing_rate_and_regularity_ranges(self, isis):
        isis = np.asarray(isis, dtype=float)
        rate = firing_rate(isis)
        assert 0.0 < rate <= 1.0
        assert firing_regularity(isis) >= 0.0


# ---------------------------------------------------------------------------
# energy model
# ---------------------------------------------------------------------------
class TestEnergyProperties:
    @given(
        spikes=st.floats(1e2, 1e8),
        density=st.floats(1e-4, 10.0),
        latency=st.floats(1.0, 5000.0),
        scale=st.floats(0.1, 10.0),
    )
    @SETTINGS
    def test_scaling_every_statistic_scales_energy(self, spikes, density, latency, scale):
        baseline = EnergyWorkload(spikes, density, latency, label="base")
        scaled = EnergyWorkload(spikes * scale, density * scale, latency * scale, label="scaled")
        for architecture in (TRUENORTH, SPINNAKER):
            assert estimate_energy(baseline, baseline, architecture).total == pytest.approx(1.0)
            assert estimate_energy(scaled, baseline, architecture).total == pytest.approx(scale)

    @given(
        spikes=st.floats(1e2, 1e6),
        density=st.floats(1e-4, 1.0),
        latency=st.floats(1.0, 2000.0),
    )
    @SETTINGS
    def test_energy_non_negative(self, spikes, density, latency):
        baseline = EnergyWorkload(1e4, 0.02, 100.0, label="base")
        workload = EnergyWorkload(spikes, density, latency, label="w")
        for architecture in (TRUENORTH, SPINNAKER):
            estimate = estimate_energy(workload, baseline, architecture)
            assert estimate.total >= 0.0
            assert estimate.computation >= 0 and estimate.routing >= 0 and estimate.static >= 0
