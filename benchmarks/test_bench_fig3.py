"""Benchmark regenerating Fig. 3: latency and number of spikes needed to reach
three target accuracies, per coding combination.

Paper shape to reproduce: burst coding in the hidden layers reaches the
targets the fastest, and ``phase-burst`` needs among the fewest spikes; the
configurations that fail a target are reported as "not reached".
"""

from collections import defaultdict

from repro.experiments.fig3 import FIG3_TARGET_FRACTIONS, format_fig3, run_fig3


def test_bench_fig3(benchmark, save_result, scheme_sweep):
    entries = benchmark.pedantic(
        lambda: run_fig3(runs=scheme_sweep, target_fractions=FIG3_TARGET_FRACTIONS),
        rounds=1,
        iterations=1,
    )
    save_result("fig3_latency_and_spikes_to_target", format_fig3(entries))

    # organise by target fraction
    by_target = defaultdict(dict)
    for entry in entries:
        by_target[entry.target_fraction][entry.scheme] = entry

    # for the loosest target, burst hidden coding reaches it and is at least
    # as fast as rate hidden coding with the same input
    loose = by_target[min(FIG3_TARGET_FRACTIONS)]
    for input_coding in ("real", "phase"):
        burst = loose[f"{input_coding}-burst"]
        rate = loose[f"{input_coding}-rate"]
        assert burst.reached
        if rate.reached:
            assert burst.latency <= rate.latency * 1.5

    # the proposed phase-burst scheme uses fewer spikes to reach the loose
    # target than the phase-phase baseline (Kim et al.)
    if loose["phase-phase"].reached and loose["phase-burst"].reached:
        assert loose["phase-burst"].spikes <= loose["phase-phase"].spikes
