#!/usr/bin/env python
"""Quickstart: train a DNN, convert it to a spiking network with the paper's
phase-burst hybrid coding, and compare SNN accuracy / spikes against the DNN.

Run with:  python examples/quickstart.py
Runtime:   a few seconds (CPU only).
"""

from repro import (
    HybridCodingScheme,
    PipelineConfig,
    SNNInferencePipeline,
    build_mlp,
    make_mnist_like,
)


def main() -> None:
    # 1. A synthetic MNIST-like task (the real dataset is not bundled; see
    #    DESIGN.md for the substitution rationale).
    data = make_mnist_like(samples_per_class=40, seed=0)
    print(f"dataset: {len(data.train)} train / {len(data.test)} test images, "
          f"{data.num_classes} classes, shape {data.input_shape}")

    # 2. Train a small ReLU MLP — the source network of the conversion.
    model = build_mlp(data.input_shape, hidden_sizes=[128], num_classes=data.num_classes, seed=0)
    history = model.fit(data.train.x, data.train.y, epochs=15, batch_size=32, seed=0)
    dnn_accuracy = model.evaluate(data.test.x, data.test.y)
    print(f"DNN trained: final loss {history.loss[-1]:.4f}, test accuracy {dnn_accuracy:.3f}")

    # 3. Convert to an SNN and run it under the paper's proposed hybrid coding
    #    (phase coding in the input layer, burst coding in the hidden layers).
    pipeline = SNNInferencePipeline(
        model,
        data,
        PipelineConfig(time_steps=120, batch_size=32),
    )
    scheme = HybridCodingScheme.from_notation("phase-burst", v_th=0.125)
    run = pipeline.run_scheme(scheme)

    # 4. Report the paper's headline metrics.
    metrics = run.metrics(target_accuracy=dnn_accuracy)
    print()
    print(f"coding scheme         : {scheme.describe()}")
    print(f"SNN accuracy          : {run.accuracy:.3f}  (DNN {dnn_accuracy:.3f})")
    print(f"latency to DNN acc.   : {metrics.latency if metrics.latency else 'not reached'} time steps")
    print(f"spikes per image      : {run.spikes_per_image:.0f}")
    print(f"spiking density       : {metrics.density:.4f} spikes/neuron/step")
    print(f"spiking neurons       : {run.num_neurons}")


if __name__ == "__main__":
    main()
