"""Firing rate and firing regularity (Eq. 11–12, Fig. 5).

The paper characterises each coding scheme's spike patterns by two numbers
averaged over sampled neurons:

* firing rate ``λ = n / Σ ISI`` where ``n`` is the number of ISIs (Eq. 11),
* firing regularity ``κ = std(ISI) / mean(ISI)``, the coefficient of
  variation of the ISIs (Eq. 12).

Fig. 5 plots ``<log λ>`` against ``<κ>`` for every input-hidden coding
combination; the cluster structure of that scatter is the paper's evidence
that burst coding in hidden layers adapts to the input coding while phase
coding does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.analysis.isi import isi_per_neuron


def firing_rate(isis: np.ndarray) -> float:
    """Firing rate of one neuron from its ISIs (Eq. 11).

    ``λ = n / Σ_i I_i`` where ``I_i`` is the duration of the i-th ISI.
    Returns 0 when the neuron has fewer than two spikes (no ISIs).
    """
    isis = np.asarray(isis, dtype=np.float64)
    if isis.size == 0:
        return 0.0
    total = float(isis.sum())
    if total <= 0:
        return 0.0
    return float(isis.size / total)


def firing_regularity(isis: np.ndarray) -> float:
    """Firing regularity of one neuron (Eq. 12): the CV of its ISIs.

    ``κ = std(I) / mean(I)``.  Returns 0 for neurons with fewer than two ISIs
    (a single interval has zero standard deviation).
    """
    isis = np.asarray(isis, dtype=np.float64)
    if isis.size == 0:
        return 0.0
    mean = float(isis.mean())
    if mean <= 0:
        return 0.0
    return float(isis.std() / mean)


@dataclass
class FiringStatistics:
    """Population-level firing characteristics (one point of Fig. 5).

    Attributes
    ----------
    mean_log_rate:
        ``<log λ>`` averaged over neurons with at least two spikes (natural
        logarithm, as the paper's axis spans roughly -6 … 0).
    mean_regularity:
        ``<κ>`` averaged over the same neurons.
    num_neurons:
        Number of neurons included in the averages.
    rates, regularities:
        The per-neuron values (useful for richer plots and tests).
    """

    mean_log_rate: float
    mean_regularity: float
    num_neurons: int
    rates: np.ndarray
    regularities: np.ndarray


def firing_statistics(trains: np.ndarray, min_spikes: int = 2) -> FiringStatistics:
    """Compute per-neuron firing rate / regularity and their population means.

    Parameters
    ----------
    trains:
        Boolean spike trains of shape ``(T, neurons)``.
    min_spikes:
        Neurons with fewer spikes than this are excluded (they have no defined
        ISI statistics), mirroring the paper's sampling of active neurons.
    """
    if min_spikes < 2:
        raise ValueError(f"min_spikes must be >= 2 to define ISIs, got {min_spikes}")
    per_neuron = isi_per_neuron(trains)
    rates: List[float] = []
    regularities: List[float] = []
    for isis in per_neuron:
        if isis.size < min_spikes - 1:
            continue
        rates.append(firing_rate(isis))
        regularities.append(firing_regularity(isis))
    rates_array = np.asarray(rates, dtype=np.float64)
    regularity_array = np.asarray(regularities, dtype=np.float64)
    if rates_array.size == 0:
        return FiringStatistics(
            mean_log_rate=float("nan"),
            mean_regularity=float("nan"),
            num_neurons=0,
            rates=rates_array,
            regularities=regularity_array,
        )
    positive = rates_array[rates_array > 0]
    mean_log = float(np.mean(np.log(positive))) if positive.size else float("nan")
    return FiringStatistics(
        mean_log_rate=mean_log,
        mean_regularity=float(regularity_array.mean()),
        num_neurons=int(rates_array.size),
        rates=rates_array,
        regularities=regularity_array,
    )


def mean_log_firing_rate(trains: np.ndarray) -> float:
    """Convenience wrapper returning only ``<log λ>`` of :func:`firing_statistics`."""
    return firing_statistics(trains).mean_log_rate
