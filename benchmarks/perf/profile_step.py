"""Per-kernel seam profile of one simulation step: composed vs fused.

Run from the repo root with::

    PYTHONPATH=src python benchmarks/perf/profile_step.py

Drives one step of a representative layer stack (conv → avgpool → maxpool →
flatten → dense → output, burst thresholds) through an
:class:`~repro.backends.instrument.InstrumentedBackend` twice — once on the
composed per-kernel path, once on the fused step programs — and writes the
per-primitive call counts and wall-clock seconds to
``benchmarks/results/BENCH_step_profile.json``.

This makes the backend-seam tax visible per primitive: the composed column
shows where the 5–8 crossings per layer go, the fused column shows what is
left after program compilation (GEMMs, gathers and scans still cross the
seam; the elementwise IF/threshold chains are inlined and count zero).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

HERE = Path(__file__).resolve().parent
RESULTS_PATH = HERE.parent / "results" / "BENCH_step_profile.json"

#: steps timed per path (per-step figures are averaged over these)
PROFILE_STEPS = 20


def build_stack(rng: np.random.Generator):
    from repro.snn.layers import (
        OutputAccumulator,
        SpikingAvgPool2D,
        SpikingConv2D,
        SpikingDense,
        SpikingFlatten,
        SpikingMaxPool2D,
    )
    from repro.snn.thresholds import BurstThreshold

    return [
        SpikingConv2D(
            rng.normal(scale=0.1, size=(16, 16, 3, 3)),
            rng.normal(scale=0.1, size=16),
            BurstThreshold(v_th=0.125),
            padding=1,
            input_shape=(16, 16, 16),
            name="conv",
        ),
        SpikingAvgPool2D(2, name="avgpool"),
        SpikingMaxPool2D(2, name="maxpool"),
        SpikingFlatten(name="flatten"),
        SpikingDense(
            rng.normal(scale=0.05, size=(16 * 4 * 4, 128)),
            rng.normal(scale=0.05, size=128),
            BurstThreshold(v_th=0.125),
            name="dense",
        ),
        OutputAccumulator(
            rng.normal(scale=0.05, size=(128, 10)),
            rng.normal(scale=0.05, size=10),
            name="output",
        ),
    ]


def profile_path(fused: bool, batch: int = 8) -> dict:
    from repro.backends import fused_scope, get_backend
    from repro.backends.instrument import InstrumentedBackend
    from repro.utils.dtypes import simulation_dtype

    rng = np.random.default_rng(0)
    dtype = simulation_dtype()
    backend = InstrumentedBackend(get_backend("numpy"))
    layers = build_stack(rng)
    x = np.asarray(
        (rng.random((batch, 16, 16, 16)) < 0.3) * 0.125, dtype=dtype
    )

    with fused_scope(fused):
        for layer in layers:
            layer.reset(batch, dtype=dtype, backend=backend)
        programs = [layer.ensure_step_program() for layer in layers]

        def one_step(t: int) -> None:
            values = x
            hint = None
            for layer, program in zip(layers, programs):
                layer.output_nonzero = None
                values = program.run(values, t, hint)
                hint = layer.output_nonzero

        one_step(0)  # build lazy buffers outside the profiled region
        backend.recorder.reset()
        start = time.perf_counter()
        for t in range(1, 1 + PROFILE_STEPS):
            one_step(t)
        elapsed = time.perf_counter() - start

    snapshot = backend.recorder.snapshot()
    kernels = {k: v for k, v in snapshot.items() if not k.startswith("program:")}
    program_calls = {k: v for k, v in snapshot.items() if k.startswith("program:")}
    seam_calls = sum(entry["calls"] for entry in kernels.values())
    return {
        "fused": fused,
        "steps": PROFILE_STEPS,
        "layers": len(layers),
        "seconds_total": elapsed,
        "seam_calls_per_step": seam_calls / PROFILE_STEPS,
        "seam_calls_per_layer_per_step": seam_calls / PROFILE_STEPS / len(layers),
        "kernels": kernels,
        "programs": program_calls,
    }


def main() -> None:
    composed = profile_path(fused=False)
    fused = profile_path(fused=True)
    report = {
        "description": (
            "per-kernel backend-seam profile of one simulation step "
            "(composed per-kernel path vs fused step programs)"
        ),
        "composed": composed,
        "fused": fused,
        "seam_call_reduction": (
            composed["seam_calls_per_step"] / max(fused["seam_calls_per_step"], 1e-9)
        ),
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"composed: {composed['seam_calls_per_step']:.1f} seam calls/step, "
        f"{composed['seconds_total']:.4f}s total"
    )
    print(
        f"fused:    {fused['seam_calls_per_step']:.1f} seam calls/step, "
        f"{fused['seconds_total']:.4f}s total"
    )
    print(f"seam-call reduction: {report['seam_call_reduction']:.1f}x")
    print(f"[BENCH_step_profile written to {RESULTS_PATH}]")


if __name__ == "__main__":
    main()
