"""Tests for the micro-batching scheduler (repro.serving.scheduler)."""

import threading
import time

import pytest

from repro.serving.metrics import ServerMetrics, percentile
from repro.serving.scheduler import (
    BatcherClosedError,
    MicroBatcher,
    QueueFullError,
)


def _echo_handler(payloads, info):
    """Return each payload tagged with the batch size it rode in."""
    return [(payload, info.size) for payload in payloads]


class FakeClock:
    """Monotonic clock that jumps ``step`` seconds on every read."""

    def __init__(self, step: float) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class TestCoalescing:
    def test_batches_coalesce_under_load(self):
        metrics = ServerMetrics()
        with MicroBatcher(
            _echo_handler, max_batch_size=4, max_wait_ms=50.0, metrics=metrics
        ) as batcher:
            futures = [batcher.submit(i) for i in range(20)]
            results = [f.result(timeout=10) for f in futures]
        # every request answered, in submission order
        assert [payload for payload, _ in results] == list(range(20))
        # the histogram accounts for every request...
        histogram = metrics.batch_size_histogram()
        assert sum(size * count for size, count in histogram.items()) == 20
        # ...and at least one executed batch actually coalesced requests
        assert metrics.max_batch_size_seen() > 1
        assert max(size for _, size in results) > 1
        assert metrics.requests_total == 20
        assert metrics.rejected_total == 0

    def test_full_batch_flushes_without_waiting(self):
        # max_wait_ms is huge: only the size trigger can flush, so a prompt
        # result proves the flush-on-max_batch_size path
        with MicroBatcher(
            _echo_handler, max_batch_size=3, max_wait_ms=60_000.0, start=False
        ) as batcher:
            futures = [batcher.submit(i) for i in range(3)]
            batcher.start()
            results = [f.result(timeout=10) for f in futures]
            assert [size for _, size in results] == [3, 3, 3]


class TestMaxWaitFlush:
    def test_partial_batch_flushes_on_deadline_with_fake_clock(self):
        # the wait window is a minute of *fake* time: the injected clock
        # expires it deterministically, no real sleeping involved
        clock = FakeClock(step=30.0)
        batcher = MicroBatcher(
            _echo_handler,
            max_batch_size=8,
            max_wait_ms=60_000.0,
            clock=clock,
            start=False,
        )
        futures = [batcher.submit(i) for i in range(2)]
        started = time.monotonic()
        batcher.start()
        results = [f.result(timeout=10) for f in futures]
        elapsed = time.monotonic() - started
        batcher.close()
        # the batch never filled (2 of 8) yet still flushed — on the fake
        # deadline, and in real milliseconds rather than the fake minute
        assert [size for _, size in results] == [2, 2]
        assert elapsed < 5.0

    def test_lone_request_pays_at_most_the_window(self):
        with MicroBatcher(_echo_handler, max_batch_size=8, max_wait_ms=20.0) as batcher:
            payload, size = batcher.submit("solo").result(timeout=10)
        assert payload == "solo"
        assert size == 1


class TestAdmissionControl:
    def test_bounded_queue_rejects_when_full(self):
        release = threading.Event()
        entered = threading.Event()

        def blocking_handler(payloads, info):
            entered.set()
            assert release.wait(timeout=10)
            return list(payloads)

        metrics = ServerMetrics()
        batcher = MicroBatcher(
            blocking_handler,
            max_batch_size=1,
            max_wait_ms=0.0,
            max_queue=3,
            metrics=metrics,
        )
        first = batcher.submit("in-flight")
        assert entered.wait(timeout=10)  # the worker is now stuck in the handler
        queued = [batcher.submit(i) for i in range(3)]  # fills the bounded queue
        with pytest.raises(QueueFullError):
            batcher.submit("overflow")
        assert metrics.rejected_total == 1
        assert batcher.queue_depth == 3
        release.set()
        assert first.result(timeout=10) == "in-flight"
        assert [f.result(timeout=10) for f in queued] == [0, 1, 2]
        batcher.close()

    def test_submit_after_close_raises(self):
        batcher = MicroBatcher(_echo_handler)
        batcher.close()
        with pytest.raises(BatcherClosedError):
            batcher.submit("late")


class TestGracefulDrain:
    def test_drain_resolves_every_in_flight_future(self):
        def slow_handler(payloads, info):
            time.sleep(0.02)
            return list(payloads)

        batcher = MicroBatcher(slow_handler, max_batch_size=2, max_wait_ms=5.0)
        futures = [batcher.submit(i) for i in range(7)]
        batcher.close()  # graceful: flush the queue, then join the worker
        assert all(f.done() for f in futures)
        assert [f.result(timeout=0) for f in futures] == list(range(7))
        assert batcher.closed
        batcher.close()  # idempotent

    def test_handler_error_propagates_to_every_future_of_the_batch(self):
        def failing_handler(payloads, info):
            raise RuntimeError("boom")

        metrics = ServerMetrics()
        with MicroBatcher(
            failing_handler, max_batch_size=4, max_wait_ms=5.0, metrics=metrics
        ) as batcher:
            futures = [batcher.submit(i) for i in range(2)]
            for future in futures:
                with pytest.raises(RuntimeError, match="boom"):
                    future.result(timeout=10)
        assert metrics.snapshot()["errors_total"] == 2

    def test_wrong_result_count_is_an_error(self):
        with MicroBatcher(
            lambda payloads, info: [], max_batch_size=1, max_wait_ms=0.0
        ) as batcher:
            with pytest.raises(RuntimeError, match="results"):
                batcher.submit("x").result(timeout=10)


class TestValidationAndMetrics:
    @pytest.mark.parametrize(
        "kwargs",
        [{"max_batch_size": 0}, {"max_wait_ms": -1.0}, {"max_queue": 0}],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            MicroBatcher(_echo_handler, start=False, **kwargs)

    def test_percentile_helper(self):
        assert percentile([], 50) == 0.0
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50) == 51.0  # nearest rank on 0-based index
        assert percentile(values, 95) == 95.0
        assert percentile([7.0], 95) == 7.0

    def test_snapshot_shape(self):
        metrics = ServerMetrics()
        metrics.record_submit()
        metrics.record_batch(3, latencies_ms=[1.0, 2.0, 3.0])
        snapshot = metrics.snapshot(queue_depth=5)
        assert snapshot["requests_total"] == 1
        assert snapshot["batches_total"] == 1
        assert snapshot["images_total"] == 3
        assert snapshot["queue_depth"] == 5
        assert snapshot["batch_size_histogram"] == {"3": 1}
        assert snapshot["latency_ms"]["count"] == 3
        assert snapshot["latency_ms"]["p50"] == 2.0
