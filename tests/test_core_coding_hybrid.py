"""Tests for the neural coding vocabulary and the hybrid coding scheme."""

import pytest

from repro.core.coding import CodingParams, NeuralCoding
from repro.core.hybrid import HybridCodingScheme, standard_schemes, table1_schemes
from repro.snn.encoding import BurstEncoder, PhaseEncoder, PoissonRateEncoder, RealEncoder
from repro.snn.thresholds import BurstThreshold, ConstantThreshold, PhaseThreshold


class TestNeuralCoding:
    def test_from_string(self):
        assert NeuralCoding.from_value("burst") is NeuralCoding.BURST
        assert NeuralCoding.from_value("REAL") is NeuralCoding.REAL

    def test_from_enum(self):
        assert NeuralCoding.from_value(NeuralCoding.PHASE) is NeuralCoding.PHASE

    def test_invalid(self):
        with pytest.raises(ValueError):
            NeuralCoding.from_value("analog")

    def test_hidden_validity(self):
        assert not NeuralCoding.REAL.valid_for_hidden
        assert NeuralCoding.BURST.valid_for_hidden


class TestCodingParams:
    def test_defaults(self):
        params = CodingParams()
        assert params.beta == 2.0
        assert params.phase_period == 8

    def test_resolved_v_th_defaults(self):
        params = CodingParams()
        assert params.resolved_v_th(NeuralCoding.BURST) == 0.125
        assert params.resolved_v_th(NeuralCoding.RATE) == 1.0
        assert params.resolved_v_th(NeuralCoding.PHASE) == 1.0

    def test_resolved_v_th_explicit(self):
        assert CodingParams(v_th=0.5).resolved_v_th(NeuralCoding.BURST) == 0.5

    @pytest.mark.parametrize(
        "kwargs", [{"v_th": 0.0}, {"beta": 1.0}, {"phase_period": 0}, {"max_burst_length": 0}]
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            CodingParams(**kwargs)


class TestHybridCodingScheme:
    def test_default_is_phase_burst(self):
        scheme = HybridCodingScheme()
        assert scheme.notation == "phase-burst"

    def test_from_notation(self):
        scheme = HybridCodingScheme.from_notation("real-rate")
        assert scheme.input_coding is NeuralCoding.REAL
        assert scheme.hidden_coding is NeuralCoding.RATE

    def test_from_notation_invalid_format(self):
        with pytest.raises(ValueError):
            HybridCodingScheme.from_notation("phaseburst")

    def test_from_notation_unknown_coding(self):
        with pytest.raises(ValueError):
            HybridCodingScheme.from_notation("phase-magic")

    def test_real_hidden_rejected(self):
        with pytest.raises(ValueError):
            HybridCodingScheme.from_notation("phase-real")

    def test_describe_mentions_parameters(self):
        text = HybridCodingScheme.from_notation("phase-burst", v_th=0.0625).describe()
        assert "phase-burst" in text and "0.0625" in text

    def test_encoder_types(self):
        assert isinstance(HybridCodingScheme.from_notation("real-burst").make_encoder(), RealEncoder)
        assert isinstance(HybridCodingScheme.from_notation("phase-burst").make_encoder(), PhaseEncoder)
        assert isinstance(HybridCodingScheme.from_notation("burst-burst").make_encoder(), BurstEncoder)

    def test_rate_input_is_poisson_by_default(self):
        """Rate input coding follows Diehl et al. (Poisson spike trains)."""
        encoder = HybridCodingScheme.from_notation("rate-burst").make_encoder(seed=0)
        assert isinstance(encoder, PoissonRateEncoder)

    def test_threshold_factory_types(self):
        factory = HybridCodingScheme.from_notation("phase-burst", v_th=0.0625).make_threshold_factory()
        threshold = factory(0, "layer")
        assert isinstance(threshold, BurstThreshold)
        assert threshold.v_th == 0.0625

        factory = HybridCodingScheme.from_notation("real-rate").make_threshold_factory()
        assert isinstance(factory(0, "layer"), ConstantThreshold)

        factory = HybridCodingScheme.from_notation("real-phase").make_threshold_factory()
        assert isinstance(factory(0, "layer"), PhaseThreshold)

    def test_threshold_factory_returns_fresh_objects(self):
        """Burst adaptation state must not be shared between layers."""
        factory = HybridCodingScheme.from_notation("phase-burst").make_threshold_factory()
        assert factory(0, "a") is not factory(1, "b")

    def test_phase_period_propagates(self):
        scheme = HybridCodingScheme.from_notation("phase-phase", phase_period=4)
        assert scheme.make_encoder().period == 4
        assert scheme.make_threshold_factory()(0, "x").period == 4


class TestSchemeCollections:
    def test_table1_covers_the_registry_product(self):
        from repro.core import registry

        schemes = table1_schemes()
        expected = registry.expand_scheme_specs(["all"])
        assert [s.notation for s in schemes] == expected
        # the paper's nine combinations are always a subset
        for input_coding in ("real", "rate", "phase"):
            for hidden_coding in ("rate", "phase", "burst"):
                assert f"{input_coding}-{hidden_coding}" in expected
        # registered extensions appear in the sweep automatically (TTFS)
        assert "ttfs-burst" in expected
        # the specs parameter narrows the sweep through the same registry
        narrowed = table1_schemes(specs=["phase:all"])
        assert all(s.notation.startswith("phase-") for s in narrowed)

    def test_table1_v_th_only_applies_to_burst(self):
        schemes = table1_schemes(v_th=0.0625)
        for scheme in schemes:
            resolved = scheme.hidden_params.resolved_v_th(scheme.hidden_coding)
            if scheme.hidden_coding is NeuralCoding.BURST:
                assert resolved == 0.0625
            else:
                assert resolved == 1.0

    def test_standard_schemes_include_proposed(self):
        notations = {s.notation for s in standard_schemes()}
        assert "phase-burst" in notations
        assert "rate-rate" in notations
