"""Spike recording during SNN simulation.

Two levels of detail are supported:

* **counts** — number of spikes per layer per time step (always recorded);
  this is all that Table 1 / Table 2 (spike counts, spiking density, energy)
  need.
* **trains** — full boolean spike trains for a sampled subset of neurons per
  layer; needed by the spike-pattern analyses (ISI histograms of Fig. 1,
  burst-length composition of Fig. 2, the firing rate / regularity scatter of
  Fig. 5).  Sampling mirrors the paper, which analyses 10% of the neurons of
  each layer.

Storage strategy
----------------
When the simulation horizon is known up front the engine calls
:meth:`SpikeRecord.preallocate` and every :class:`LayerRecord` records into
arrays sized to ``time_steps`` (an int64 count vector and, when trains are
recorded, one ``(T, batch, n_sampled)`` boolean block) — no per-step list
appends or allocations.  Records used standalone (without ``preallocate``)
fall back to growable Python lists with identical semantics.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.utils.rng import SeedLike, as_rng


class LayerRecord:
    """Recorded spiking activity of one layer.

    Parameters
    ----------
    name, num_neurons, is_spiking:
        Identity of the recorded layer.
    """

    def __init__(self, name: str, num_neurons: int, is_spiking: bool) -> None:
        self.name = name
        self.num_neurons = int(num_neurons)
        self.is_spiking = bool(is_spiking)
        #: flat indices (within a sample's neuron array) of the sampled neurons
        self.sampled_indices: Optional[np.ndarray] = None
        #: batch size of the recorded simulation (set by :meth:`preallocate`)
        self.batch_size: int = 1
        # growable fallback storage (standalone use)
        self._count_list: List[int] = []
        self._train_steps: List[np.ndarray] = []
        # preallocated storage (engine use)
        self._counts: Optional[np.ndarray] = None
        self._trains: Optional[np.ndarray] = None
        self._cursor = 0

    # -- setup -----------------------------------------------------------
    def preallocate(self, time_steps: int, batch_size: int, record_trains: bool) -> None:
        """Switch to preallocated storage for a run of known length."""
        if time_steps <= 0:
            raise ValueError(f"time_steps must be positive, got {time_steps}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.batch_size = int(batch_size)
        self._counts = np.zeros(time_steps, dtype=np.int64)
        self._cursor = 0
        self._count_list = []
        self._train_steps = []
        n_sampled = 0 if self.sampled_indices is None else int(self.sampled_indices.size)
        if record_trains and n_sampled:
            self._trains = np.zeros((time_steps, batch_size, n_sampled), dtype=bool)
        else:
            self._trains = None

    # -- recording -------------------------------------------------------
    def record_step(
        self,
        spikes: Optional[np.ndarray],
        record_trains: bool,
        batch_indices: Optional[np.ndarray] = None,
        count: Optional[int] = None,
    ) -> None:
        """Record one simulation step given the layer's boolean spike array.

        ``batch_indices`` maps the rows of ``spikes`` back to the original
        batch when the engine's early exit has shrunk the simulated batch;
        frozen images keep their (all-zero) train rows.  ``count`` is an
        optional precomputed ``np.count_nonzero(spikes)`` (the engine already
        counts spikes for its dispatch hints), skipping a recount here.
        """
        record_train = record_trains and self.sampled_indices is not None and self.sampled_indices.size
        if self._counts is not None:
            t = self._cursor
            if t >= self._counts.shape[0]:
                raise RuntimeError(
                    f"{self.name}: recorded more steps than the preallocated "
                    f"{self._counts.shape[0]}"
                )
            if spikes is not None:
                self._counts[t] = count if count is not None else np.count_nonzero(spikes)
                if record_train and self._trains is not None:
                    flat = spikes.reshape(spikes.shape[0], -1)
                    if batch_indices is None or flat.shape[0] == self._trains.shape[1]:
                        np.take(flat, self.sampled_indices, axis=1, out=self._trains[t])
                    else:
                        self._trains[t, batch_indices] = flat[:, self.sampled_indices]
            # a None / non-spiking step leaves the preallocated zeros in place
            self._cursor = t + 1
            return
        # growable fallback (standalone LayerRecord use)
        if spikes is None:
            self._count_list.append(0)
            if record_train:
                self._train_steps.append(
                    np.zeros((self.batch_size, len(self.sampled_indices)), dtype=bool)
                )
            return
        self._count_list.append(
            int(count) if count is not None else int(np.count_nonzero(spikes))
        )
        if record_train:
            flat = spikes.reshape(spikes.shape[0], -1)
            if batch_indices is None or flat.shape[0] == self.batch_size:
                self._train_steps.append(flat[:, self.sampled_indices].copy())
            else:
                step_trains = np.zeros((self.batch_size, len(self.sampled_indices)), dtype=bool)
                step_trains[batch_indices] = flat[:, self.sampled_indices]
                self._train_steps.append(step_trains)

    # -- block recording (whole-network step programs) -------------------
    def open_block(self, t0: int, n: int):
        """Views of the preallocated storage for steps ``t0 … t0+n-1``.

        The network step program records a whole block of steps per seam
        crossing: it fills the returned ``(counts, trains)`` views in place
        (``trains`` is ``None`` when trains are not recorded for this layer)
        and commits the cursor once with :meth:`record_steps`.  Requires
        :meth:`preallocate`; ``t0`` must equal the current cursor.
        """
        if self._counts is None:
            raise RuntimeError(
                f"{self.name}: open_block requires preallocated storage"
            )
        if t0 != self._cursor:
            raise ValueError(
                f"{self.name}: block starts at step {t0} but the record "
                f"cursor is at {self._cursor}"
            )
        if n < 0 or t0 + n > self._counts.shape[0]:
            raise RuntimeError(
                f"{self.name}: block [{t0}, {t0 + n}) exceeds the "
                f"preallocated {self._counts.shape[0]} steps"
            )
        counts = self._counts[t0 : t0 + n]
        trains = None if self._trains is None else self._trains[t0 : t0 + n]
        return counts, trains

    def record_steps(self, n: int) -> None:
        """Commit ``n`` steps recorded through an :meth:`open_block` view."""
        self._cursor += int(n)

    # -- views -----------------------------------------------------------
    @property
    def spike_counts(self) -> "np.ndarray | List[int]":
        """Spikes emitted by the whole layer at each recorded step, length T."""
        if self._counts is not None:
            return self._counts[: self._cursor]
        return self._count_list

    @property
    def total_spikes(self) -> int:
        if self._counts is not None:
            return int(self._counts[: self._cursor].sum())
        return int(sum(self._count_list))

    def spike_trains(self) -> np.ndarray:
        """Sampled spike trains as a boolean array of shape (T, batch, n_sampled)."""
        if self._trains is not None:
            return self._trains[: self._cursor]
        if not self._train_steps:
            return np.zeros((0, 0, 0), dtype=bool)
        return np.stack(self._train_steps, axis=0)

    def spike_trains_flat(self) -> np.ndarray:
        """Sampled spike trains as shape (T, batch * n_sampled) boolean array."""
        trains = self.spike_trains()
        if trains.size == 0:
            return np.zeros((0, 0), dtype=bool)
        return trains.reshape(trains.shape[0], -1)


class SpikeRecord:
    """Container aggregating :class:`LayerRecord` objects for one simulation.

    Parameters
    ----------
    sample_fraction:
        Fraction of each spiking layer's neurons whose full spike trains are
        recorded (only when ``record_trains`` is enabled on the network run).
    """

    def __init__(
        self,
        sample_fraction: float = 0.1,
        record_trains: bool = False,
        seed: SeedLike = 0,
    ) -> None:
        if not 0.0 < sample_fraction <= 1.0:
            raise ValueError(f"sample_fraction must be in (0, 1], got {sample_fraction}")
        self.sample_fraction = sample_fraction
        self.record_trains = record_trains
        self._rng = as_rng(seed)
        self.layers: List[LayerRecord] = []
        self.input_record: Optional[LayerRecord] = None
        self.time_steps = 0

    # -- setup -----------------------------------------------------------
    def register_input(self, num_neurons: int) -> LayerRecord:
        """Register the input layer (encoder spikes)."""
        record = LayerRecord(name="input", num_neurons=num_neurons, is_spiking=True)
        record.sampled_indices = self._sample_indices(num_neurons)
        self.input_record = record
        return record

    def register_layer(self, name: str, num_neurons: int, is_spiking: bool) -> LayerRecord:
        """Register one network layer and return its record."""
        record = LayerRecord(name=name, num_neurons=num_neurons, is_spiking=is_spiking)
        if is_spiking and num_neurons > 0:
            record.sampled_indices = self._sample_indices(num_neurons)
        self.layers.append(record)
        return record

    def preallocate(self, time_steps: int, batch_size: int) -> None:
        """Preallocate every registered record for a run of ``time_steps``."""
        for record in self.all_records:
            record.preallocate(time_steps, batch_size, self.record_trains)

    def _sample_indices(self, num_neurons: int) -> np.ndarray:
        if not self.record_trains or num_neurons == 0:
            return np.array([], dtype=np.int64)
        count = max(1, int(round(num_neurons * self.sample_fraction)))
        return np.sort(self._rng.choice(num_neurons, size=count, replace=False))

    # -- aggregation -----------------------------------------------------
    def advance(self) -> None:
        """Mark the end of one simulation time step."""
        self.time_steps += 1

    def record_steps(self, n: int) -> None:
        """Mark the end of ``n`` simulation steps (block execution)."""
        self.time_steps += int(n)

    @property
    def all_records(self) -> List[LayerRecord]:
        records = list(self.layers)
        if self.input_record is not None:
            records = [self.input_record] + records
        return records

    def total_spikes(self, include_input: bool = True) -> int:
        """Total number of spikes across the run."""
        records = self.all_records if include_input else self.layers
        return int(sum(record.total_spikes for record in records))

    def total_neurons(self, include_input: bool = True) -> int:
        """Total number of spiking neurons per sample."""
        records = self.all_records if include_input else self.layers
        return int(sum(record.num_neurons for record in records if record.is_spiking))

    def spikes_per_step(self, include_input: bool = True) -> np.ndarray:
        """Network-wide spike counts per time step, shape ``(T,)``."""
        records = self.all_records if include_input else self.layers
        if not records or self.time_steps == 0:
            return np.zeros(0, dtype=np.int64)
        totals = np.zeros(self.time_steps, dtype=np.int64)
        for record in records:
            counts = np.asarray(record.spike_counts[: self.time_steps], dtype=np.int64)
            if counts.size:
                totals[: counts.size] += counts
        return totals

    def cumulative_spikes(self, include_input: bool = True) -> np.ndarray:
        """Cumulative network-wide spike counts, shape ``(T,)``."""
        return np.cumsum(self.spikes_per_step(include_input=include_input))

    def per_layer_totals(self) -> Dict[str, int]:
        """Mapping layer name → total spikes (includes the input layer)."""
        return {record.name: record.total_spikes for record in self.all_records}
