"""Plain-text table rendering for the experiment harness.

The benchmark scripts print the same rows the paper's tables report; this
module renders them with aligned columns so the output is readable in a
terminal or a CI log without any plotting dependency.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence


def format_float(value: float, digits: int = 3) -> str:
    """Format ``value`` with fixed decimals, handling None/NaN gracefully."""
    if value is None:
        return "-"
    try:
        if value != value:  # NaN
            return "nan"
    except TypeError:
        return str(value)
    return f"{value:.{digits}f}"


def format_int(value: Optional[int]) -> str:
    """Format an integer with thousands separators."""
    if value is None:
        return "-"
    return f"{int(value):,}"


def format_si(value: Optional[float], digits: int = 2) -> str:
    """Format ``value`` using k/M/G suffixes (e.g. spike counts)."""
    if value is None:
        return "-"
    value = float(value)
    for factor, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= factor:
            return f"{value / factor:.{digits}f}{suffix}"
    return f"{value:.{digits}f}"


class Table:
    """A simple column-aligned text table.

    Examples
    --------
    >>> t = Table(["coding", "accuracy"])
    >>> t.add_row({"coding": "phase-burst", "accuracy": 0.91})
    >>> print(t.render())  # doctest: +ELLIPSIS
    coding       | accuracy
    ...
    """

    def __init__(self, columns: Sequence[str], title: Optional[str] = None) -> None:
        if not columns:
            raise ValueError("Table requires at least one column")
        self.columns = list(columns)
        self.title = title
        self.rows: List[Dict[str, Any]] = []

    def add_row(self, row: Dict[str, Any]) -> None:
        """Add a row; missing columns render as '-'. Extra keys are ignored."""
        self.rows.append(dict(row))

    def add_rows(self, rows: Iterable[Dict[str, Any]]) -> None:
        for row in rows:
            self.add_row(row)

    def _cell(self, row: Dict[str, Any], column: str) -> str:
        value = row.get(column, "-")
        if isinstance(value, float):
            return format_float(value, 4)
        return str(value)

    def render(self) -> str:
        """Render the table as an aligned plain-text block."""
        header = list(self.columns)
        body = [[self._cell(row, c) for c in self.columns] for row in self.rows]
        widths = [len(h) for h in header]
        for line in body:
            for i, cell in enumerate(line):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

        lines = []
        if self.title:
            lines.append(self.title)
            lines.append("=" * max(len(self.title), sum(widths) + 3 * (len(widths) - 1)))
        lines.append(fmt(header))
        lines.append("-+-".join("-" * w for w in widths))
        lines.extend(fmt(line) for line in body)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
