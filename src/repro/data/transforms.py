"""Input transforms applied before DNN training / SNN encoding.

DNN-to-SNN conversion with rate/phase/burst input coding assumes inputs are
bounded in ``[0, 1]`` (Section 3.2 of the paper: "The input values, in many
cases, are static and bounded").  These helpers enforce that convention.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def normalize_minmax(x: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Rescale ``x`` linearly to ``[0, 1]`` over the whole array."""
    x = np.asarray(x, dtype=np.float64)
    lo = x.min()
    hi = x.max()
    if hi - lo < eps:
        return np.zeros_like(x)
    return (x - lo) / (hi - lo)


def standardize(x: np.ndarray, eps: float = 1e-12) -> Tuple[np.ndarray, float, float]:
    """Standardise to zero mean / unit variance; returns ``(x, mean, std)``."""
    x = np.asarray(x, dtype=np.float64)
    mean = float(x.mean())
    std = float(x.std())
    if std < eps:
        std = 1.0
    return (x - mean) / std, mean, std


def clip01(x: np.ndarray) -> np.ndarray:
    """Clip values into ``[0, 1]`` (used after augmentation noise)."""
    return np.clip(np.asarray(x, dtype=np.float64), 0.0, 1.0)


def flatten_images(x: np.ndarray) -> np.ndarray:
    """Flatten ``(N, C, H, W)`` images to ``(N, C*H*W)`` feature rows."""
    x = np.asarray(x)
    if x.ndim == 2:
        return x
    if x.ndim != 4:
        raise ValueError(f"expected (N, C, H, W) images, got shape {x.shape}")
    return x.reshape(x.shape[0], -1)
