"""Pluggable registry of neural coding schemes.

The paper treats coding schemes (real, rate, phase, burst, …) as
interchangeable policies over one conversion + simulation substrate.  This
module is the single place where a coding *name* is resolved into the
factories that implement it:

* an **encoder factory** builds the input-layer
  :class:`~repro.snn.encoding.InputEncoder` (``None`` when the coding cannot
  drive the input layer),
* a **threshold factory** builds the hidden-layer
  :class:`~repro.snn.thresholds.ThresholdDynamics` (``None`` when the coding
  is input-only, e.g. real or TTFS coding).

``NeuralCoding.from_value``, ``make_encoder``, ``make_threshold`` and
``HybridCodingScheme.from_notation`` all resolve through this registry, so a
new scheme plugs in without touching any of those call sites.

Adding a scheme in one file
---------------------------
Write a module that defines the encoder (and/or threshold dynamics) and
registers it::

    from repro.core.registry import register_encoder

    @register_encoder("my-coding", default_v_th=1.0, description="…")
    def _build_my_encoder(params, seed=None):
        return MyEncoder(v_th=params.v_th, period=params.phase_period)

Import the module once (anywhere before first use — the built-in extension
:mod:`repro.snn.ttfs` is imported by :func:`_ensure_builtins`) and the scheme
is available everywhere: ``HybridCodingScheme.from_notation("my-coding-burst")``,
the pipeline, the CLI (``repro --list-schemes``) and the experiments.

The registry itself is runtime-import-free (it only imports the standard
library at module level), so the encoder/threshold modules can safely import
it while ``repro.core`` is still initialising.
"""

from __future__ import annotations

import difflib
import itertools
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.core.coding import CodingParams
    from repro.snn.encoding import InputEncoder
    from repro.snn.thresholds import ThresholdDynamics
    from repro.utils.rng import SeedLike

#: builds an input encoder from the scheme parameters (and an optional seed
#: for stochastic encoders)
EncoderFactory = Callable[["CodingParams", "SeedLike"], "InputEncoder"]
#: builds hidden-layer threshold dynamics from the scheme parameters
ThresholdFactory = Callable[["CodingParams"], "ThresholdDynamics"]


class UnknownCodingError(ValueError):
    """Raised when a coding name is not registered (with a did-you-mean hint)."""


class CodingDefinition:
    """One registered coding scheme: name, factories and defaults."""

    __slots__ = ("name", "description", "default_v_th", "encoder_factory", "threshold_factory")

    def __init__(self, name: str) -> None:
        self.name = name
        self.description = ""
        self.default_v_th = 1.0
        self.encoder_factory: Optional[EncoderFactory] = None
        self.threshold_factory: Optional[ThresholdFactory] = None

    @property
    def valid_for_input(self) -> bool:
        """Whether the coding can drive the input layer."""
        return self.encoder_factory is not None

    @property
    def valid_for_hidden(self) -> bool:
        """Whether the coding can drive hidden layers (they receive spikes)."""
        return self.threshold_factory is not None

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"CodingDefinition({self.name!r}, input={self.valid_for_input}, "
            f"hidden={self.valid_for_hidden}, default_v_th={self.default_v_th})"
        )


class CodingTag(str):
    """A registry-backed coding name mimicking the ``NeuralCoding`` enum API.

    ``NeuralCoding.from_value`` returns the enum member for the paper's four
    built-in codings and a :class:`CodingTag` for registry extensions (e.g.
    TTFS), so downstream code can use ``coding.value`` /
    ``coding.valid_for_hidden`` uniformly without the enum having to know
    about every pluggable scheme.
    """

    __slots__ = ()

    @property
    def value(self) -> str:
        return str(self)

    @property
    def valid_for_hidden(self) -> bool:
        return get(self).valid_for_hidden


_REGISTRY: Dict[str, CodingDefinition] = {}
_BUILTINS_LOADED = False


def _definition(name: str) -> CodingDefinition:
    """Create-or-get the definition for ``name`` (registration-time helper)."""
    key = str(name).strip().lower()
    if not key:
        raise ValueError("coding name must be a non-empty string")
    definition = _REGISTRY.get(key)
    if definition is None:
        definition = CodingDefinition(key)
        _REGISTRY[key] = definition
    return definition


def register_encoder(
    name: str, *, default_v_th: Optional[float] = None, description: str = ""
) -> Callable[[EncoderFactory], EncoderFactory]:
    """Decorator registering an input-encoder factory for coding ``name``.

    The factory is called as ``factory(params, seed)`` with a
    :class:`~repro.core.coding.CodingParams` whose ``v_th`` has already been
    resolved (``default_v_th`` substituted when the caller left it unset).
    ``default_v_th=None`` leaves the coding's current default untouched (1.0
    unless another registration for the same name set it), so encoder and
    threshold registrations of one coding cannot clobber each other.
    """

    def decorator(factory: EncoderFactory) -> EncoderFactory:
        definition = _definition(name)
        definition.encoder_factory = factory
        if default_v_th is not None:
            definition.default_v_th = float(default_v_th)
        if description:
            definition.description = description
        return factory

    return decorator


def register_threshold(
    name: str, *, default_v_th: Optional[float] = None, description: str = ""
) -> Callable[[ThresholdFactory], ThresholdFactory]:
    """Decorator registering a hidden-layer threshold factory for ``name``.

    The factory is called as ``factory(params)`` with resolved ``v_th``.
    ``default_v_th=None`` leaves the coding's current default untouched (see
    :func:`register_encoder`).
    """

    def decorator(factory: ThresholdFactory) -> ThresholdFactory:
        definition = _definition(name)
        definition.threshold_factory = factory
        if default_v_th is not None:
            definition.default_v_th = float(default_v_th)
        if not definition.description and description:
            definition.description = description
        return factory

    return decorator


def _ensure_builtins() -> None:
    """Import the modules that register the built-in codings (idempotent).

    The loaded flag is only set after every import succeeds, so a transient
    import failure surfaces again on the next call instead of leaving the
    registry permanently empty behind ``UnknownCodingError``s.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    # imported for their registration side effects
    import repro.snn.encoding  # noqa: F401  (real / rate / phase / burst encoders)
    import repro.snn.thresholds  # noqa: F401  (rate / phase / burst thresholds)
    import repro.snn.ttfs  # noqa: F401  (the registry-extension proof: TTFS)

    _BUILTINS_LOADED = True


def get(name: str) -> CodingDefinition:
    """Resolve a coding name, raising :class:`UnknownCodingError` with a
    did-you-mean hint and the list of registered codings on a miss."""
    _ensure_builtins()
    key = str(name).strip().lower()
    definition = _REGISTRY.get(key)
    if definition is None:
        available = sorted(_REGISTRY)
        close = difflib.get_close_matches(key, available, n=1)
        hint = f"did you mean {close[0]!r}? " if close else ""
        raise UnknownCodingError(
            f"unknown neural coding {name!r}; {hint}available: {', '.join(available)}"
        )
    return definition


def is_registered(name: str) -> bool:
    """Whether ``name`` resolves to a registered coding."""
    _ensure_builtins()
    return str(name).strip().lower() in _REGISTRY


def definitions() -> List[CodingDefinition]:
    """All registered codings, sorted by name (for listings and docs)."""
    _ensure_builtins()
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]


def input_codings() -> List[str]:
    """Names of the codings that can drive the input layer."""
    return [d.name for d in definitions() if d.valid_for_input]


def hidden_codings() -> List[str]:
    """Names of the codings that can drive hidden layers."""
    return [d.name for d in definitions() if d.valid_for_hidden]


def default_v_th(name: str) -> float:
    """The per-coding default firing threshold (e.g. 0.125 for burst)."""
    return get(name).default_v_th


def scheme_metadata() -> List[Dict[str, object]]:
    """Registry introspection rows: one plain dict per registered coding.

    The single source of truth for scheme metadata listings — the CLI's
    ``--list-schemes`` table and the serving API's ``/v1/schemes`` response
    are both rendered from these rows, so they can never drift apart.
    """
    return [
        {
            "coding": definition.name,
            "input": definition.valid_for_input,
            "hidden": definition.valid_for_hidden,
            "default_v_th": definition.default_v_th,
            "description": definition.description,
        }
        for definition in definitions()
    ]


def notation_help() -> str:
    """One-paragraph explanation of the ``input-hidden`` notation with the
    currently registered coding names (shared by the CLI and the HTTP API)."""
    return (
        "combine as '<input>-<hidden>', e.g. phase-burst (the paper's proposal) "
        "or ttfs-burst (a registry extension);"
        f"\ninput codings : {', '.join(input_codings())}"
        f"\nhidden codings: {', '.join(hidden_codings())}"
    )


def _expand_side(spec: str, *, side: str) -> List[str]:
    """Resolve one side of a product spec to concrete coding names."""
    wildcard = ("all", f"all-{side}")
    if spec in wildcard:
        return input_codings() if side == "input" else hidden_codings()
    definition = get(spec)  # raises UnknownCodingError with a did-you-mean hint
    valid = definition.valid_for_input if side == "input" else definition.valid_for_hidden
    if not valid:
        pool = input_codings() if side == "input" else hidden_codings()
        raise UnknownCodingError(
            f"{definition.name!r} coding is not valid for the {side} side; "
            f"{side} codings: {', '.join(pool)}"
        )
    return [definition.name]


def expand_scheme_specs(specs: Sequence[str]) -> List[str]:
    """Expand scheme *specs* into concrete ``input-hidden`` notations.

    A spec is either a plain notation (``phase-burst`` — passed through
    untouched, validated downstream by ``HybridCodingScheme.from_notation``)
    or a registry product resolved by querying the registry:

    * ``all`` — every registered input coding × every hidden coding,
    * ``<lhs>:<rhs>`` — the product of two sides, where each side is a coding
      name, ``all``, or the explicit ``all-input`` / ``all-hidden``
      (e.g. ``all-input:burst`` = every input coding driving burst hidden
      layers, ``phase:all`` = phase input against every hidden coding).

    The expansion preserves first-seen order and drops duplicates, so
    ``--schemes all-input:burst phase-burst`` lists ``phase-burst`` once.
    """
    notations: List[str] = []
    seen = set()
    for spec in specs:
        spec = str(spec).strip().lower()
        if spec == "all":
            expanded = [
                f"{i}-{h}"
                for i, h in itertools.product(input_codings(), hidden_codings())
            ]
        elif ":" in spec:
            lhs, rhs = spec.split(":", 1)
            expanded = [
                f"{i}-{h}"
                for i, h in itertools.product(
                    _expand_side(lhs, side="input"), _expand_side(rhs, side="hidden")
                )
            ]
        else:
            expanded = [spec]
        for notation in expanded:
            if notation not in seen:
                seen.add(notation)
                notations.append(notation)
    return notations


def _resolved_params(
    definition: CodingDefinition, params: Optional["CodingParams"]
) -> "CodingParams":
    from repro.core.coding import CodingParams

    if params is None:
        params = CodingParams()
    if params.v_th is None:
        params = params.replace(v_th=definition.default_v_th)
    return params


def build_encoder(
    name: str, params: Optional["CodingParams"] = None, seed: "SeedLike" = None
) -> "InputEncoder":
    """Build the input encoder for coding ``name`` via its registered factory."""
    definition = get(name)
    if definition.encoder_factory is None:
        raise ValueError(
            f"{definition.name!r} coding cannot drive the input layer; "
            f"input codings: {', '.join(input_codings())}"
        )
    return definition.encoder_factory(_resolved_params(definition, params), seed)


def build_threshold(
    name: str, params: Optional["CodingParams"] = None
) -> "ThresholdDynamics":
    """Build the hidden-layer threshold dynamics for coding ``name``."""
    definition = get(name)
    if definition.threshold_factory is None:
        raise ValueError(
            f"{definition.name!r} coding delivers analog or one-shot values and is only "
            f"valid for the input layer; hidden codings: {', '.join(hidden_codings())}"
        )
    return definition.threshold_factory(_resolved_params(definition, params))
