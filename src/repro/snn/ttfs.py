"""Time-to-first-spike (TTFS) input coding — a registry-only extension.

This module is the proof of the scheme registry's extension contract: a new
coding lands as one self-contained file.  Nothing else in the code base names
"ttfs" — ``NeuralCoding.from_value``, ``make_encoder``,
``HybridCodingScheme.from_notation``, the pipeline, the CLI
(``repro --list-schemes`` / ``repro compare --schemes ttfs-burst``) and the
experiments all resolve it through :mod:`repro.core.registry`.

Coding model
------------
Classic TTFS transmits a value as the *latency* of a single spike: brighter
inputs fire earlier.  Within each window of ``window`` steps (the scheme's
``phase_period`` parameter doubles as the window length), the input ``x`` in
``[0, 1]`` is quantised to ``q = round(x · (window − 1))`` and a single spike
of amplitude ``x · v_th`` is emitted at phase ``window − 1 − q``; ``x = 0``
stays silent.  The value therefore arrives once per window — a throughput of
``1/window`` per step, matching phase coding — ordered by intensity, which is
what makes TTFS the sparsest of the classic input codings (at most one spike
per input neuron per window).

Like the phase and real encoders, the TTFS output is strictly periodic
(:attr:`TTFSEncoder.steady_period` equals the window), so it inherits the
engine's per-phase synaptic-input caching, plan reuse, sparsity dispatch and
converged-image early exit without any code of its own — every scheme that
registers gets the substrate for free.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.registry import register_encoder
from repro.snn.encoding import EncodedStep, InputEncoder
from repro.utils.config import validate_positive
from repro.utils.dtypes import DTypeLike
from repro.utils.rng import SeedLike


class TTFSEncoder(InputEncoder):
    """Time-to-first-spike input coding: one spike per window, earlier = brighter.

    Parameters
    ----------
    v_th:
        Amplitude scale; a spike carries ``x · v_th`` (the full analog value,
        delivered once per window).
    window:
        Window length in steps (the quantisation resolution of the spike
        latency); reuses the scheme's ``phase_period`` parameter.
    """

    coding = "ttfs"
    #: one spike per input neuron per window, never co-located with zeros
    values_nonzero_tracks_spikes = True

    def __init__(self, v_th: float = 1.0, window: int = 8) -> None:
        validate_positive("v_th", v_th)
        if window <= 0 or window > 1024:
            raise ValueError(f"window must be in [1, 1024], got {window}")
        self.v_th = float(v_th)
        self.window = int(window)
        self._fire_phase: Optional[np.ndarray] = None
        self._amplitudes: Optional[np.ndarray] = None
        self._spikes: Optional[np.ndarray] = None
        self._values: Optional[np.ndarray] = None

    @property
    def throughput_factor(self) -> float:  # type: ignore[override]
        return 1.0 / self.window

    @property
    def steady_period(self) -> Optional[int]:
        return self.window  # one spike per neuron, at the same phase each window

    def reset(self, x: np.ndarray, dtype: DTypeLike = None) -> None:
        super().reset(x, dtype)
        # Latency quantisation in float64 (like the phase encoder's bit
        # planes) so the firing phase is dtype-independent.
        quantised = np.round(
            np.asarray(self._x, dtype=np.float64) * (self.window - 1)
        ).astype(np.int64)
        self._fire_phase = (self.window - 1) - quantised
        # exact zeros never fire (no spike can carry amplitude 0)
        self._fire_phase[np.asarray(self._x, dtype=np.float64) == 0.0] = -1
        self._amplitudes = np.multiply(self._x, self.v_th).astype(self.dtype, copy=False)
        self._spikes = np.empty(self._x.shape, dtype=bool)
        self._values = np.empty(self._x.shape, dtype=self.dtype)

    def shrink_batch(self, keep: np.ndarray) -> None:
        super().shrink_batch(keep)
        keep = np.asarray(keep, dtype=np.intp)
        if self._fire_phase is not None:
            self._fire_phase = np.ascontiguousarray(self._fire_phase[keep])
            self._amplitudes = np.ascontiguousarray(self._amplitudes[keep])
            self._spikes = np.empty(self._x.shape, dtype=bool)
            self._values = np.empty(self._x.shape, dtype=self.dtype)

    def step(self, t: int) -> EncodedStep:
        if self._fire_phase is None or self._spikes is None or self._values is None:
            raise RuntimeError("encoder.reset(x) must be called before step()")
        np.equal(self._fire_phase, t % self.window, out=self._spikes)
        np.multiply(self._spikes, self._amplitudes, out=self._values)
        return EncodedStep(values=self._values, spikes=self._spikes)

    def describe(self) -> str:
        return f"TTFSEncoder(v_th={self.v_th}, window={self.window})"


@register_encoder(
    "ttfs",
    default_v_th=1.0,
    description="time-to-first-spike: one spike per window, earlier = brighter (input-only)",
)
def _build_ttfs_encoder(params, seed: SeedLike = None) -> InputEncoder:
    del seed
    return TTFSEncoder(v_th=params.v_th, window=params.phase_period)
