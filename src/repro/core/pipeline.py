"""End-to-end inference pipeline: train → convert → simulate → measure.

Every experiment in the paper follows the same workflow:

1. train a DNN on the task (or reuse a trained one),
2. convert it to an SNN with data-based weight normalisation,
3. attach a hybrid coding scheme (input encoder + hidden threshold dynamics),
4. simulate the SNN over the test set for a time budget,
5. report accuracy / latency / spike count / density / energy.

:class:`SNNInferencePipeline` packages steps 2–5 so that Table 1, Table 2 and
Figures 2–5 are all driven through one code path, with the weight
normalisation shared across coding schemes (so every scheme sees identical
weights, as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.metrics import InferenceMetrics, compute_inference_metrics
from repro.ann.model import Sequential
from repro.conversion.converter import ConversionConfig, convert_to_snn
from repro.conversion.normalization import NormalizationResult, normalize_weights
from repro.core.hybrid import HybridCodingScheme
from repro.data.dataset import DataSplit
from repro.snn.network import SimulationConfig, SimulationResult, SpikingNetwork
from repro.utils.config import FrozenConfig, validate_positive
from repro.utils.logging import get_logger

logger = get_logger("core.pipeline")


@dataclass(frozen=True)
class PipelineConfig(FrozenConfig):
    """Configuration of one pipeline evaluation.

    Attributes
    ----------
    time_steps:
        Simulation horizon (the paper's latency budget, e.g. 1,500).
    batch_size:
        Test images simulated together (memory/speed trade-off only).
    record_outputs_every:
        Snapshot the output scores every N steps (1 = full inference curve).
    record_trains:
        Record sampled spike trains (needed by Fig. 1/2/5 analyses).
    sample_fraction:
        Fraction of neurons per layer whose trains are recorded (paper: 10%).
    max_test_images:
        Evaluate only the first N test images (None = all).
    calibration_images:
        Number of training images used for data-based weight normalisation.
    conversion:
        DNN→SNN conversion options.
    seed:
        Seed for neuron sampling and any stochastic encoder.
    """

    time_steps: int = 200
    batch_size: int = 32
    record_outputs_every: int = 1
    record_trains: bool = False
    sample_fraction: float = 0.1
    max_test_images: Optional[int] = None
    calibration_images: int = 128
    conversion: ConversionConfig = field(default_factory=ConversionConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        validate_positive("time_steps", self.time_steps)
        validate_positive("batch_size", self.batch_size)
        validate_positive("record_outputs_every", self.record_outputs_every)
        validate_positive("calibration_images", self.calibration_images)
        if self.max_test_images is not None:
            validate_positive("max_test_images", self.max_test_images)


@dataclass
class AggregatedRun:
    """Result of evaluating one coding scheme over the whole test set.

    The per-batch simulation results are merged into test-set-wide curves:
    ``accuracy_curve`` over the recorded steps and ``cumulative_spikes`` over
    every simulation step (summed over all evaluated images).
    """

    scheme: str
    recorded_steps: np.ndarray
    accuracy_curve: np.ndarray
    cumulative_spikes: np.ndarray
    time_steps: int
    num_images: int
    num_neurons: int
    dnn_accuracy: float
    labels: np.ndarray
    outputs_final: np.ndarray
    batch_results: List[SimulationResult] = field(default_factory=list)

    @property
    def accuracy(self) -> float:
        """Final SNN accuracy after the full time budget."""
        return float(self.accuracy_curve[-1]) if self.accuracy_curve.size else 0.0

    @property
    def total_spikes(self) -> int:
        return int(self.cumulative_spikes[-1]) if self.cumulative_spikes.size else 0

    @property
    def spikes_per_image(self) -> float:
        return self.total_spikes / self.num_images if self.num_images else 0.0

    def metrics(self, target_accuracy: Optional[float] = None) -> InferenceMetrics:
        """Summarise the run as one table row (optionally against a target)."""
        return compute_inference_metrics(
            scheme=self.scheme,
            accuracy_curve=self.accuracy_curve,
            recorded_steps=self.recorded_steps,
            cumulative_spikes=self.cumulative_spikes,
            num_neurons=self.num_neurons,
            num_images=self.num_images,
            dnn_accuracy=self.dnn_accuracy,
            time_steps=self.time_steps,
            target_accuracy=target_accuracy,
        )


class SNNInferencePipeline:
    """Convert a trained DNN and evaluate coding schemes on a dataset.

    Parameters
    ----------
    model:
        Trained :class:`~repro.ann.model.Sequential` ANN.
    data:
        Train/test split; the train subset provides calibration images for
        weight normalisation, the test subset is what the SNN classifies.
    config:
        Pipeline configuration (see :class:`PipelineConfig`).
    """

    def __init__(
        self,
        model: Sequential,
        data: DataSplit,
        config: Optional[PipelineConfig] = None,
    ) -> None:
        self.model = model
        self.data = data
        self.config = config or PipelineConfig()
        self._dnn_accuracy: Optional[float] = None
        self._normalization: Optional[NormalizationResult] = None

    # -- cached intermediate results --------------------------------------
    @property
    def dnn_accuracy(self) -> float:
        """Accuracy of the source DNN on the evaluated test images."""
        if self._dnn_accuracy is None:
            x, y = self._test_arrays()
            self._dnn_accuracy = self.model.evaluate(x, y, batch_size=self.config.batch_size)
        return self._dnn_accuracy

    @property
    def normalization(self) -> NormalizationResult:
        """Weight normalisation shared by every coding scheme."""
        if self._normalization is None:
            calibration = self.data.train.x[: self.config.calibration_images]
            conversion = self.config.conversion
            self._normalization = normalize_weights(
                self.model,
                calibration_x=calibration,
                percentile=conversion.percentile,
                method=conversion.normalization,
            )
            logger.info(
                "weight normalisation (%s): %d layers scaled",
                conversion.normalization,
                len(self._normalization.scales),
            )
        return self._normalization

    def _test_arrays(self):
        x = self.data.test.x
        y = self.data.test.y
        if self.config.max_test_images is not None:
            x = x[: self.config.max_test_images]
            y = y[: self.config.max_test_images]
        if x.shape[0] == 0:
            raise ValueError("no test images to evaluate")
        return x, y

    # -- building and running ---------------------------------------------
    def build_snn(self, scheme: HybridCodingScheme) -> SpikingNetwork:
        """Convert the DNN into an SNN configured for ``scheme``."""
        encoder = scheme.make_encoder(seed=self.config.seed)
        return convert_to_snn(
            self.model,
            encoder=encoder,
            threshold_factory=scheme.make_threshold_factory(),
            config=self.config.conversion,
            normalization_result=self.normalization,
            name=f"{self.model.name}-{scheme.notation}",
        )

    def run_scheme(
        self,
        scheme: HybridCodingScheme,
        time_steps: Optional[int] = None,
        keep_batch_results: bool = False,
    ) -> AggregatedRun:
        """Simulate ``scheme`` over the test set and aggregate the curves."""
        config = self.config
        time_steps = time_steps or config.time_steps
        x, y = self._test_arrays()
        snn = self.build_snn(scheme)
        sim_config = SimulationConfig(
            time_steps=time_steps,
            record_outputs_every=config.record_outputs_every,
            record_trains=config.record_trains,
            sample_fraction=config.sample_fraction,
            seed=config.seed,
        )

        correct_per_step: Optional[np.ndarray] = None
        recorded_steps: Optional[np.ndarray] = None
        cumulative_spikes = np.zeros(time_steps, dtype=np.float64)
        outputs_final: List[np.ndarray] = []
        batch_results: List[SimulationResult] = []
        total_images = 0

        for start in range(0, x.shape[0], config.batch_size):
            batch_x = x[start : start + config.batch_size]
            batch_y = y[start : start + config.batch_size]
            result = snn.run(batch_x, sim_config, labels=batch_y)
            if recorded_steps is None:
                recorded_steps = result.recorded_steps
                correct_per_step = np.zeros(len(recorded_steps), dtype=np.float64)
            predicted = result.output_history.argmax(axis=2)
            correct_per_step += (predicted == batch_y[None, :]).sum(axis=1)
            cumulative_spikes += result.record.cumulative_spikes()
            outputs_final.append(result.final_outputs)
            total_images += batch_x.shape[0]
            if keep_batch_results:
                batch_results.append(result)

        assert recorded_steps is not None and correct_per_step is not None
        accuracy_curve = correct_per_step / total_images
        run = AggregatedRun(
            scheme=scheme.notation,
            recorded_steps=recorded_steps,
            accuracy_curve=accuracy_curve,
            cumulative_spikes=cumulative_spikes,
            time_steps=time_steps,
            num_images=total_images,
            num_neurons=snn.num_neurons(),
            dnn_accuracy=self.dnn_accuracy,
            labels=y[:total_images],
            outputs_final=np.concatenate(outputs_final, axis=0),
            batch_results=batch_results,
        )
        logger.info(
            "scheme %-12s accuracy=%.4f (DNN %.4f) spikes/image=%.1f",
            scheme.notation,
            run.accuracy,
            self.dnn_accuracy,
            run.spikes_per_image,
        )
        return run

    def compare(
        self,
        schemes: Sequence[HybridCodingScheme],
        target_accuracy: Optional[float] = None,
        time_steps: Optional[int] = None,
    ) -> Dict[str, InferenceMetrics]:
        """Evaluate several schemes and return one metrics row per scheme."""
        results: Dict[str, InferenceMetrics] = {}
        for scheme in schemes:
            run = self.run_scheme(scheme, time_steps=time_steps)
            results[scheme.notation] = run.metrics(target_accuracy=target_accuracy)
        return results
