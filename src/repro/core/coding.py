"""Neural coding vocabulary and per-scheme parameters."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.utils.config import FrozenConfig, validate_positive


class NeuralCoding(str, enum.Enum):
    """The neural coding schemes discussed in the paper.

    ``REAL`` is only meaningful for the input layer (it injects the analog
    value directly); ``RATE``, ``PHASE`` and ``BURST`` can be used both as
    input coding and as hidden-layer coding.

    The enum enumerates the paper's four built-ins; additional schemes plug
    in through :mod:`repro.core.registry` and resolve via
    :meth:`from_value` to a :class:`~repro.core.registry.CodingTag` carrying
    the same ``value`` / ``valid_for_hidden`` API.
    """

    REAL = "real"
    RATE = "rate"
    PHASE = "phase"
    BURST = "burst"

    @classmethod
    def from_value(cls, value: "NeuralCoding | str") -> "NeuralCoding":
        """Resolve a coding name to an enum member or a registered extension.

        Built-in names return the matching enum member (so identity checks
        like ``coding is NeuralCoding.BURST`` keep working); names known only
        to the scheme registry return a
        :class:`~repro.core.registry.CodingTag`.  Unknown names raise
        ``ValueError`` with a did-you-mean hint.
        """
        if isinstance(value, NeuralCoding):
            return value
        from repro.core import registry

        if not isinstance(value, str):
            raise ValueError(
                f"unknown neural coding {value!r}; expected one of "
                f"{[c.value for c in cls]} or a registered coding name"
            )
        try:
            return cls(value.lower())
        except ValueError:
            # fall through to the registry (raises UnknownCodingError, a
            # ValueError, with suggestions when the name is not registered)
            return registry.CodingTag(registry.get(value).name)

    @property
    def valid_for_hidden(self) -> bool:
        """Real coding cannot drive hidden layers (they receive spikes)."""
        return self is not NeuralCoding.REAL


@dataclass(frozen=True)
class CodingParams(FrozenConfig):
    """Parameters shared by the coding implementations.

    Attributes
    ----------
    v_th:
        Base firing threshold; ``None`` selects the per-coding default
        (1.0 for rate/phase, 0.125 for burst — the paper's main setting).
    beta:
        Burst constant β > 1 of Eq. 8 (the paper uses 2).
    phase_period:
        Period ``k`` of the phase oscillation (Eq. 6); also the bit depth of
        phase input coding.  The paper uses 8 (8-bit pixels).
    max_burst_length:
        Optional cap on consecutive burst spikes (``None`` = uncapped).
    stochastic_input:
        Use the Poisson variant of rate input coding (Diehl et al. [11] drive
        the input layer with Poisson spike trains, which is what makes rate
        input coding the slowest, noisiest choice in Table 1).  Set to False
        for the deterministic integrate-and-fire encoder.
    """

    v_th: Optional[float] = None
    beta: float = 2.0
    phase_period: int = 8
    max_burst_length: Optional[int] = None
    stochastic_input: bool = True

    def __post_init__(self) -> None:
        if self.v_th is not None:
            validate_positive("v_th", self.v_th)
        if self.beta <= 1.0:
            raise ValueError(f"beta must be > 1, got {self.beta}")
        validate_positive("phase_period", self.phase_period)
        if self.max_burst_length is not None:
            validate_positive("max_burst_length", self.max_burst_length)

    def resolved_v_th(self, coding: "NeuralCoding | str") -> float:
        """The effective threshold for ``coding`` (default if ``v_th`` unset).

        The per-coding default (1.0 for rate/phase, 0.125 for burst) comes
        from the scheme registry, so registered extensions resolve too.
        """
        if self.v_th is not None:
            return float(self.v_th)
        from repro.core import registry

        return registry.default_v_th(getattr(coding, "value", coding))
