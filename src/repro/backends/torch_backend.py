"""Optional ``torch`` backend: GEMM/gather/neuron kernels on PyTorch.

The module imports cleanly without PyTorch installed — the registered factory
performs the lazy import and raises
:class:`~repro.backends.registry.BackendUnavailableError` with an actionable
message when it is missing, so ``repro --list-backends`` reports the backend
as unavailable instead of the process failing at import time.

Implementation notes
--------------------
The engine's buffers are numpy arrays owned by the layers;
``torch.from_numpy`` wraps them zero-copy on CPU, so the torch kernels write
straight into the engine's preallocated buffers and the zero-allocation
contract holds.  The first iteration keeps the cached im2col / direct-conv
*plans* from the numpy reference backend (their fills are strided copies, not
GEMMs) and moves the GEMM, gather and integrate-and-fire kernels to torch —
the pieces a GPU build accelerates.  Like every non-reference backend it is
held to prediction-level agreement with the numpy backend, not bit-identity.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.backends.numpy_backend import NumpyBackend
from repro.backends.registry import BackendUnavailableError, register_backend


class TorchBackend(NumpyBackend):
    """PyTorch CPU kernels over the engine's numpy buffers (zero-copy)."""

    name = "torch"
    description = (
        "PyTorch kernels with fused on-device step programs "
        "(F.conv2d convolutions, fused IF/threshold + burst updates) "
        "driven in whole-network step blocks; requires torch"
    )

    def __init__(self) -> None:
        import torch

        self._torch = torch

    def compile_step_program(self, layer):
        """Fused torch programs for the neuron layers (the full synaptic +
        IF + threshold chain on tensor views, convolutions via
        ``torch.nn.functional.conv2d``); other layers fall back to the numpy
        fused programs over this backend's overridden primitives."""
        from repro.backends.torch_programs import compile_torch_program

        program = compile_torch_program(layer, self)
        if program is not None:
            return program
        # explicit base call (not zero-arg super): the instrumented proxy
        # invokes this method unbound with itself as ``self``
        return NumpyBackend.compile_step_program(self, layer)

    def matmul(self, a: np.ndarray, b: np.ndarray, out: np.ndarray) -> np.ndarray:
        torch = self._torch
        torch.matmul(
            torch.from_numpy(np.ascontiguousarray(a)),
            torch.from_numpy(np.ascontiguousarray(b)),
            out=torch.from_numpy(out),
        )
        return out

    def take(
        self, a: np.ndarray, indices: np.ndarray, axis: int, out: np.ndarray
    ) -> np.ndarray:
        torch = self._torch
        torch.index_select(
            torch.from_numpy(np.ascontiguousarray(a)),
            axis,
            torch.from_numpy(np.ascontiguousarray(indices)),
            out=torch.from_numpy(out),
        )
        return out

    def take_flat(
        self, a: np.ndarray, flat_indices: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        torch = self._torch
        torch.take(
            torch.from_numpy(np.ascontiguousarray(a)),
            torch.from_numpy(np.ascontiguousarray(flat_indices)),
            out=torch.from_numpy(out),
        )
        return out

    def if_step(
        self,
        v_mem: np.ndarray,
        z: np.ndarray,
        threshold: np.ndarray,
        spikes: np.ndarray,
        signals: np.ndarray,
        amplitudes: np.ndarray,
        subtract_reset: bool,
        v_rest: float,
        allow_negative: bool,
    ) -> int:
        torch = self._torch
        v_t = torch.from_numpy(v_mem)
        th_t = torch.from_numpy(np.ascontiguousarray(threshold, dtype=v_mem.dtype))
        sig_t = torch.from_numpy(signals)
        amp_t = torch.from_numpy(amplitudes)
        spikes_t = torch.from_numpy(spikes)
        v_t += torch.from_numpy(np.ascontiguousarray(z, dtype=v_mem.dtype))
        torch.ge(v_t, th_t, out=spikes_t)
        sig_t.copy_(spikes_t)
        torch.mul(th_t, sig_t, out=amp_t)
        if subtract_reset:
            v_t -= amp_t
        else:
            v_t.masked_fill_(spikes_t, v_rest)
        if not allow_negative:
            torch.clamp_(v_t, min=v_rest)
        return int(torch.count_nonzero(spikes_t).item())

    def count_nonzero(self, x: np.ndarray) -> int:
        return int(self._torch.count_nonzero(self._torch.from_numpy(x)).item())


@register_backend(
    "torch",
    description=TorchBackend.description,
)
def _build_torch_backend() -> TorchBackend:
    try:
        import torch  # noqa: F401
    except ImportError as exc:
        raise BackendUnavailableError(
            "the 'torch' backend requires PyTorch, which is not installed in "
            "this environment (pip install torch); the 'numpy' and "
            "'numpy-blocked' backends are always available"
        ) from exc
    return TorchBackend()
