"""Energy-model parameters of the two neuromorphic architectures.

The paper's model (Section 4.2) splits inference energy into three parts and
scales them with different workload statistics:

* **computation** energy — proportional to the number of spikes (every spike
  triggers synaptic updates in the event-driven cores);
* **routing** energy — proportional to the spiking density (how busy the
  on-chip network is per neuron per time step, following [26]);
* **static** energy — proportional to the latency (leakage and idle power are
  paid for every time step regardless of activity).

The per-architecture *fractions* below describe how a baseline workload's
energy splits across the three parts.  They are calibrated so that the
normalised-energy columns of Table 2 are reproduced to first order
(TrueNorth's energy is dominated by static/leakage at these utilisations,
SpiNNaker's ARM cores add a large per-spike software cost), and they are the
quantities a user would re-fit when targeting different hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.config import FrozenConfig


@dataclass(frozen=True)
class ArchitectureEnergyModel(FrozenConfig):
    """Proportional energy model of one neuromorphic architecture.

    Attributes
    ----------
    name:
        Architecture name used in reports.
    computation_fraction:
        Share of a baseline workload's energy spent on spike-driven
        computation (scales with the number of spikes).
    routing_fraction:
        Share spent on the interconnect (scales with spiking density).
    static_fraction:
        Share spent on leakage / idle power (scales with latency).
    """

    name: str
    computation_fraction: float
    routing_fraction: float
    static_fraction: float

    def __post_init__(self) -> None:
        total = self.computation_fraction + self.routing_fraction + self.static_fraction
        for label, value in (
            ("computation_fraction", self.computation_fraction),
            ("routing_fraction", self.routing_fraction),
            ("static_fraction", self.static_fraction),
        ):
            if value < 0:
                raise ValueError(f"{label} must be non-negative, got {value}")
        if abs(total - 1.0) > 1e-6:
            raise ValueError(
                f"energy fractions must sum to 1 (got {total:.6f}) so that the baseline "
                "workload has normalised energy 1"
            )


#: IBM TrueNorth [6]: fully event-driven digital cores with very low dynamic
#: energy per spike; at the utilisations of Table 2 the chip's energy is
#: dominated by leakage (static) with a modest routing contribution.
TRUENORTH = ArchitectureEnergyModel(
    name="TrueNorth",
    computation_fraction=0.05,
    routing_fraction=0.06,
    static_fraction=0.89,
)

#: SpiNNaker [7]: ARM-core based; every spike costs software processing
#: (larger computation share) and the always-on cores keep a large static
#: share, while the packet-switched NoC contributes a small density term.
SPINNAKER = ArchitectureEnergyModel(
    name="SpiNNaker",
    computation_fraction=0.35,
    routing_fraction=0.05,
    static_fraction=0.60,
)

_ARCHITECTURES = {
    "truenorth": TRUENORTH,
    "spinnaker": SPINNAKER,
}


def get_architecture(name: str) -> ArchitectureEnergyModel:
    """Look an architecture energy model up by (case-insensitive) name."""
    key = name.lower()
    if key not in _ARCHITECTURES:
        raise ValueError(
            f"unknown architecture {name!r}; expected one of {sorted(_ARCHITECTURES)}"
        )
    return _ARCHITECTURES[key]
