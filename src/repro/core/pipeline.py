"""End-to-end inference pipeline: train → convert → simulate → measure.

Every experiment in the paper follows the same workflow:

1. train a DNN on the task (or reuse a trained one),
2. convert it to an SNN with data-based weight normalisation,
3. attach a hybrid coding scheme (input encoder + hidden threshold dynamics),
4. simulate the SNN over the test set for a time budget,
5. report accuracy / latency / spike count / density / energy.

:class:`SNNInferencePipeline` packages steps 2–5 so that Table 1, Table 2 and
Figures 2–5 are all driven through one code path, with the weight
normalisation shared across coding schemes (so every scheme sees identical
weights, as in the paper).

The heavy lifting is delegated to the layered engine (:mod:`repro.engine`):
conversion goes through the *build* stage, every batch is served through a
reusable :class:`~repro.engine.session.InferenceSession` (*plan* + *run*),
and sharded evaluation fans out through the engine's shard orchestration —
the pipeline itself only owns dataset slicing, caching policy and the
statistics merge.

Sharded evaluation
------------------
``PipelineConfig(num_workers=N)`` splits the test set into contiguous shards
of whole batches and simulates them in worker processes, merging the
per-shard statistics deterministically: shards are reduced in order, each
shard runs the exact sequential code path, and the parent's kernel
calibrations (timing-probed crossovers and conv-engine choices) are fixed
before the fan-out and shipped to every worker, so the workers dispatch to
the same kernels a sequential run would.  In float64 the merged
:class:`AggregatedRun` is bit-identical to a sequential run by construction;
in float32 it is bit-identical whenever the calibration state covers every
shard's geometry (always, for uniform batches) and within the engine's
documented float32 tolerance otherwise.  On single-CPU machines the pipeline
logs a note and falls back to in-process execution instead of spawning
workers that would only add overhead (``REPRO_FORCE_SHARDING=1`` overrides
the guard, for tests).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.metrics import InferenceMetrics, compute_inference_metrics
from repro.ann.model import Sequential
from repro.conversion.converter import ConversionConfig
from repro.conversion.normalization import NormalizationResult, normalize_weights
from repro.core.hybrid import HybridCodingScheme
from repro.data.dataset import DataSplit
from repro.engine.build import build_network
from repro.engine.run import resolve_worker_count, run_sharded, shard_ranges
from repro.engine.session import InferenceSession
from repro.snn.network import SimulationConfig, SimulationResult, SpikingNetwork
from repro.utils.config import FrozenConfig, validate_positive
from repro.utils.logging import get_logger

logger = get_logger("core.pipeline")


@dataclass(frozen=True)
class PipelineConfig(FrozenConfig):
    """Configuration of one pipeline evaluation.

    Attributes
    ----------
    time_steps:
        Simulation horizon (the paper's latency budget, e.g. 1,500).
    batch_size:
        Test images simulated together (memory/speed trade-off only).
    record_outputs_every:
        Snapshot the output scores every N steps (1 = full inference curve).
    record_trains:
        Record sampled spike trains (needed by Fig. 1/2/5 analyses).
    sample_fraction:
        Fraction of neurons per layer whose trains are recorded (paper: 10%).
    max_test_images:
        Evaluate only the first N test images (None = all).
    calibration_images:
        Number of training images used for data-based weight normalisation.
    conversion:
        DNN→SNN conversion options.
    seed:
        Seed for neuron sampling and any stochastic encoder.
    early_exit_patience:
        Forwarded to :class:`~repro.snn.network.SimulationConfig`: freeze
        images whose output argmax has been stable for this many steps
        (``None`` disables, leaving results identical to the seed engine).
    early_exit_margin:
        Forwarded to :class:`~repro.snn.network.SimulationConfig`: with the
        adaptive criterion, images additionally need their per-step output
        margin at or above this threshold throughout the patience window
        (requires ``early_exit_patience``; ``None`` keeps the fixed
        argmax-stability count).
    backend:
        Compute backend for every simulation of this pipeline (a registered
        :mod:`repro.backends` name; ``None`` = the backend policy default).
    num_workers:
        Shard batch evaluation across this many worker processes (``None`` or
        1 = sequential).  Falls back to in-process execution on single-CPU
        machines.
    """

    time_steps: int = 200
    batch_size: int = 32
    record_outputs_every: int = 1
    record_trains: bool = False
    sample_fraction: float = 0.1
    max_test_images: Optional[int] = None
    calibration_images: int = 128
    conversion: ConversionConfig = field(default_factory=ConversionConfig)
    seed: int = 0
    early_exit_patience: Optional[int] = None
    early_exit_margin: Optional[float] = None
    backend: Optional[str] = None
    num_workers: Optional[int] = None

    def __post_init__(self) -> None:
        validate_positive("time_steps", self.time_steps)
        validate_positive("batch_size", self.batch_size)
        validate_positive("record_outputs_every", self.record_outputs_every)
        validate_positive("calibration_images", self.calibration_images)
        if self.max_test_images is not None:
            validate_positive("max_test_images", self.max_test_images)
        if self.early_exit_patience is not None:
            validate_positive("early_exit_patience", self.early_exit_patience)
        if self.early_exit_margin is not None:
            validate_positive("early_exit_margin", self.early_exit_margin)
            if self.early_exit_patience is None:
                raise ValueError(
                    "early_exit_margin requires early_exit_patience (the margin "
                    "must hold for a patience window to freeze an image)"
                )
        if self.backend is not None:
            from repro.backends import validate_backend_name

            validate_backend_name(self.backend)
        if self.num_workers is not None:
            validate_positive("num_workers", self.num_workers)


@dataclass
class AggregatedRun:
    """Result of evaluating one coding scheme over the whole test set.

    The per-batch simulation results are merged into test-set-wide curves:
    ``accuracy_curve`` over the recorded steps and ``cumulative_spikes`` over
    every simulation step (summed over all evaluated images).
    """

    scheme: str
    recorded_steps: np.ndarray
    accuracy_curve: np.ndarray
    cumulative_spikes: np.ndarray
    time_steps: int
    num_images: int
    num_neurons: int
    dnn_accuracy: float
    labels: np.ndarray
    outputs_final: np.ndarray
    batch_results: List[SimulationResult] = field(default_factory=list)

    @property
    def accuracy(self) -> float:
        """Final SNN accuracy after the full time budget."""
        return float(self.accuracy_curve[-1]) if self.accuracy_curve.size else 0.0

    @property
    def total_spikes(self) -> int:
        return int(self.cumulative_spikes[-1]) if self.cumulative_spikes.size else 0

    @property
    def spikes_per_image(self) -> float:
        return self.total_spikes / self.num_images if self.num_images else 0.0

    def metrics(self, target_accuracy: Optional[float] = None) -> InferenceMetrics:
        """Summarise the run as one table row (optionally against a target)."""
        return compute_inference_metrics(
            scheme=self.scheme,
            accuracy_curve=self.accuracy_curve,
            recorded_steps=self.recorded_steps,
            cumulative_spikes=self.cumulative_spikes,
            num_neurons=self.num_neurons,
            num_images=self.num_images,
            dnn_accuracy=self.dnn_accuracy,
            time_steps=self.time_steps,
            target_accuracy=target_accuracy,
        )


@dataclass
class _ShardResult:
    """Statistics of one contiguous shard of test batches (merge-ready)."""

    recorded_steps: np.ndarray
    correct_per_step: np.ndarray
    cumulative_spikes: np.ndarray
    outputs_final: np.ndarray
    num_images: int
    batch_results: List[SimulationResult]


class SNNInferencePipeline:
    """Convert a trained DNN and evaluate coding schemes on a dataset.

    Parameters
    ----------
    model:
        Trained :class:`~repro.ann.model.Sequential` ANN.
    data:
        Train/test split; the train subset provides calibration images for
        weight normalisation, the test subset is what the SNN classifies.
    config:
        Pipeline configuration (see :class:`PipelineConfig`).
    """

    def __init__(
        self,
        model: Sequential,
        data: DataSplit,
        config: Optional[PipelineConfig] = None,
    ) -> None:
        self.model = model
        self.data = data
        self.config = config or PipelineConfig()
        self._dnn_accuracy: Optional[float] = None
        self._normalization: Optional[NormalizationResult] = None
        # built SNNs are cached per scheme: the conversion and the engine's
        # per-geometry plans/buffers survive across run_scheme calls (state is
        # re-initialised by every run's reset)
        self._snn_cache: Dict[str, SpikingNetwork] = {}

    def __getstate__(self):
        # the SNN cache holds large reusable buffers and strided views; drop
        # it when the pipeline is shipped to shard workers
        state = self.__dict__.copy()
        state["_snn_cache"] = {}
        return state

    # -- cached intermediate results --------------------------------------
    @property
    def dnn_accuracy(self) -> float:
        """Accuracy of the source DNN on the evaluated test images."""
        if self._dnn_accuracy is None:
            x, y = self._test_arrays()
            self._dnn_accuracy = self.model.evaluate(x, y, batch_size=self.config.batch_size)
        return self._dnn_accuracy

    @property
    def normalization(self) -> NormalizationResult:
        """Weight normalisation shared by every coding scheme."""
        if self._normalization is None:
            calibration = self.data.train.x[: self.config.calibration_images]
            conversion = self.config.conversion
            self._normalization = normalize_weights(
                self.model,
                calibration_x=calibration,
                percentile=conversion.percentile,
                method=conversion.normalization,
            )
            logger.info(
                "weight normalisation (%s): %d layers scaled",
                conversion.normalization,
                len(self._normalization.scales),
            )
        return self._normalization

    def _test_arrays(self):
        x = self.data.test.x
        y = self.data.test.y
        if self.config.max_test_images is not None:
            x = x[: self.config.max_test_images]
            y = y[: self.config.max_test_images]
        if x.shape[0] == 0:
            raise ValueError("no test images to evaluate")
        return x, y

    # -- building and running ---------------------------------------------
    def build_snn(self, scheme: HybridCodingScheme) -> SpikingNetwork:
        """Convert the DNN into an SNN configured for ``scheme`` (cached).

        The converted network (and, with it, the engine's per-geometry plans
        and buffers) is reused across ``run_scheme`` calls; ``reset``
        re-initialises all dynamic state on every simulation run.  Networks
        built around a *stochastic* encoder are rebuilt each call instead, so
        every ``run_scheme`` starts from the identically seeded RNG the
        pre-cache pipeline gave it.
        """
        key = repr(scheme)
        cached = self._snn_cache.get(key)
        if cached is not None:
            return cached
        snn = build_network(
            self.model,
            scheme,
            conversion=self.config.conversion,
            normalization=self.normalization,
            seed=self.config.seed,
            name=f"{self.model.name}-{scheme.notation}",
        )
        if getattr(snn.encoder, "deterministic", True):
            self._snn_cache[key] = snn
        return snn

    def _sim_config(self, time_steps: int) -> SimulationConfig:
        config = self.config
        return SimulationConfig(
            time_steps=time_steps,
            record_outputs_every=config.record_outputs_every,
            record_trains=config.record_trains,
            sample_fraction=config.sample_fraction,
            seed=config.seed,
            backend=config.backend,
            early_exit_patience=config.early_exit_patience,
            early_exit_margin=config.early_exit_margin,
        )

    def _simulate_range(
        self,
        snn: SpikingNetwork,
        sim_config: SimulationConfig,
        x: np.ndarray,
        y: np.ndarray,
        start: int,
        stop: int,
        keep_batch_results: bool,
    ) -> _ShardResult:
        """Simulate the image range ``[start, stop)`` batch by batch.

        Every batch is served through one reusable
        :class:`~repro.engine.session.InferenceSession`, so the simulation
        plan and the layers' cached kernel plans/buffers are amortised across
        the range.  The per-range final outputs are written into one
        preallocated array sized from the known image count (instead of an
        ever-growing list of batch arrays), capping peak memory on large test
        sets.
        """
        config = self.config
        time_steps = sim_config.time_steps
        session = InferenceSession(snn, sim_config)
        recorded_steps: Optional[np.ndarray] = None
        correct_per_step: Optional[np.ndarray] = None
        cumulative_spikes = np.zeros(time_steps, dtype=np.float64)
        outputs_final: Optional[np.ndarray] = None
        batch_results: List[SimulationResult] = []
        count = 0

        for batch_start in range(start, stop, config.batch_size):
            batch_stop = min(batch_start + config.batch_size, stop)
            batch_x = x[batch_start:batch_stop]
            batch_y = y[batch_start:batch_stop]
            result = session.run(batch_x, labels=batch_y)
            if recorded_steps is None:
                recorded_steps = result.recorded_steps
                correct_per_step = np.zeros(len(recorded_steps), dtype=np.float64)
                outputs_final = np.empty(
                    (stop - start, result.final_outputs.shape[1]),
                    dtype=result.final_outputs.dtype,
                )
            predicted = result.output_history.argmax(axis=2)
            correct_per_step += (predicted == batch_y[None, :]).sum(axis=1)
            batch_cumulative = result.record.cumulative_spikes()
            if batch_cumulative.size < time_steps:
                # early exit froze the whole batch before the horizon: the
                # cumulative spike count stays flat for the remaining steps
                padded = np.empty(time_steps, dtype=batch_cumulative.dtype)
                padded[: batch_cumulative.size] = batch_cumulative
                padded[batch_cumulative.size :] = (
                    batch_cumulative[-1] if batch_cumulative.size else 0
                )
                batch_cumulative = padded
            cumulative_spikes += batch_cumulative
            outputs_final[count : count + batch_x.shape[0]] = result.final_outputs
            count += batch_x.shape[0]
            if keep_batch_results:
                batch_results.append(result)

        assert recorded_steps is not None and outputs_final is not None
        return _ShardResult(
            recorded_steps=recorded_steps,
            correct_per_step=correct_per_step,
            cumulative_spikes=cumulative_spikes,
            outputs_final=outputs_final,
            num_images=count,
            batch_results=batch_results,
        )

    def _resolve_workers(self, num_batches: int) -> int:
        """Effective worker count, guarding the shard path on 1-CPU machines."""
        return resolve_worker_count(self.config.num_workers, num_batches, log=logger)

    def _shard_ranges(self, num_images: int, workers: int) -> List[Tuple[int, int]]:
        """Split the test range into ``workers`` contiguous whole-batch shards."""
        return shard_ranges(num_images, self.config.batch_size, workers)

    def _simulate_shard(
        self,
        scheme: HybridCodingScheme,
        time_steps: int,
        keep_batch_results: bool,
        start: int,
        stop: int,
    ) -> _ShardResult:
        """Simulate one shard of the test set (worker-process entry point).

        Bound-method pickling ships the pipeline with its normalisation cache
        warm (and the SNN cache dropped, see ``__getstate__``), so the worker
        only converts and simulates.
        """
        snn = self.build_snn(scheme)
        sim_config = self._sim_config(time_steps)
        x, y = self._test_arrays()
        return self._simulate_range(snn, sim_config, x, y, start, stop, keep_batch_results)

    def run_scheme(
        self,
        scheme: HybridCodingScheme,
        time_steps: Optional[int] = None,
        keep_batch_results: bool = False,
    ) -> AggregatedRun:
        """Simulate ``scheme`` over the test set and aggregate the curves.

        With ``PipelineConfig(num_workers > 1)`` the batches are sharded
        across worker processes; the merge is deterministic and identical to
        the sequential result (shards run the same code on the same slices
        and are reduced in shard order).
        """
        config = self.config
        time_steps = time_steps or config.time_steps
        x, y = self._test_arrays()
        num_images = x.shape[0]
        sim_config = self._sim_config(time_steps)
        snn = self.build_snn(scheme)

        num_batches = -(-num_images // config.batch_size)
        workers = self._resolve_workers(num_batches)
        if workers > 1 and not getattr(snn.encoder, "deterministic", True):
            logger.info(
                "scheme %s uses a stochastic encoder; sharding would re-split its "
                "random stream across workers — running sequentially",
                scheme.notation,
            )
            workers = 1
        if workers <= 1:
            shards = [
                self._simulate_range(snn, sim_config, x, y, 0, num_images, keep_batch_results)
            ]
        else:
            # warm the shared caches so every worker inherits them via pickle,
            # and reset the parent's SNN once so the kernel calibrations
            # (timing-probed, process-wide) are fixed here rather than probed
            # independently — and possibly differently — inside each worker
            self.dnn_accuracy
            self.normalization
            from repro.backends import resolve_backend
            from repro.utils.dtypes import resolve_dtype

            reset_dtype = resolve_dtype(sim_config.dtype)
            reset_backend = resolve_backend(sim_config.backend)
            for layer in snn.layers:
                layer.reset(
                    min(config.batch_size, num_images),
                    dtype=reset_dtype,
                    backend=reset_backend,
                )
            shards = self._run_sharded(scheme, time_steps, num_images, workers, keep_batch_results)

        recorded_steps = shards[0].recorded_steps
        correct_per_step = np.zeros(len(recorded_steps), dtype=np.float64)
        cumulative_spikes = np.zeros(time_steps, dtype=np.float64)
        outputs_final = np.empty(
            (num_images, shards[0].outputs_final.shape[1]),
            dtype=shards[0].outputs_final.dtype,
        )
        batch_results: List[SimulationResult] = []
        total_images = 0
        for shard in shards:
            correct_per_step += shard.correct_per_step
            cumulative_spikes += shard.cumulative_spikes
            outputs_final[total_images : total_images + shard.num_images] = shard.outputs_final
            batch_results.extend(shard.batch_results)
            total_images += shard.num_images

        accuracy_curve = correct_per_step / total_images
        run = AggregatedRun(
            scheme=scheme.notation,
            recorded_steps=recorded_steps,
            accuracy_curve=accuracy_curve,
            cumulative_spikes=cumulative_spikes,
            time_steps=time_steps,
            num_images=total_images,
            num_neurons=snn.num_neurons(),
            dnn_accuracy=self.dnn_accuracy,
            labels=y[:total_images],
            outputs_final=outputs_final,
            batch_results=batch_results,
        )
        logger.info(
            "scheme %-12s accuracy=%.4f (DNN %.4f) spikes/image=%.1f",
            scheme.notation,
            run.accuracy,
            self.dnn_accuracy,
            run.spikes_per_image,
        )
        return run

    def _run_sharded(
        self,
        scheme: HybridCodingScheme,
        time_steps: int,
        num_images: int,
        workers: int,
        keep_batch_results: bool,
    ) -> List[_ShardResult]:
        """Fan the shards out via the engine's orchestration layer.

        :func:`repro.engine.run.run_sharded` snapshots the parent's kernel
        calibrations and installs them in every worker, so the merged result
        is deterministic and identical to the sequential run.
        """
        ranges = self._shard_ranges(num_images, workers)
        logger.info(
            "sharding %d images over %d workers (%d shards)",
            num_images, workers, len(ranges),
        )
        worker = functools.partial(
            self._simulate_shard, scheme, time_steps, keep_batch_results
        )
        return run_sharded(worker, ranges, workers)

    def compare(
        self,
        schemes: Sequence[HybridCodingScheme],
        target_accuracy: Optional[float] = None,
        time_steps: Optional[int] = None,
    ) -> Dict[str, InferenceMetrics]:
        """Evaluate several schemes and return one metrics row per scheme."""
        results: Dict[str, InferenceMetrics] = {}
        for scheme in schemes:
            run = self.run_scheme(scheme, time_steps=time_steps)
            results[scheme.notation] = run.metrics(target_accuracy=target_accuracy)
        return results
