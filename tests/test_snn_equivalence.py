"""DNN ↔ SNN equivalence across architectures, codings and converter options.

The fundamental soundness property of the whole reproduction is that a
converted SNN, given enough time steps, classifies like its source DNN.
These tests check that property over a grid of architectures (MLP, CNN with
average and max pooling, with and without biases) and coding schemes, and
check the converse too: configurations the paper identifies as pathological
(rate-phase) degrade.
"""

import numpy as np
import pytest

from repro.ann.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU
from repro.ann.model import Sequential
from repro.ann.optimizers import Adam
from repro.conversion.converter import ConversionConfig, convert_to_snn
from repro.core.hybrid import HybridCodingScheme
from repro.data.synthetic import SyntheticImageConfig, make_classification_images
from repro.data.dataset import train_test_split
from repro.models.cnn import build_cnn
from repro.models.mlp import build_mlp
from repro.snn.network import SimulationConfig
from repro.utils.rng import as_rng


@pytest.fixture(scope="module")
def task():
    """A small 3-class image task with enough structure to need real weights."""
    config = SyntheticImageConfig(
        num_classes=3,
        image_shape=(1, 10, 10),
        samples_per_class=24,
        noise_std=0.06,
        max_shift=1,
        occlusion_probability=0.0,
    )
    dataset = make_classification_images(config, seed=21, name="equivalence")
    return train_test_split(dataset, test_fraction=0.25, seed=21)


def _train(model, data, epochs=12):
    model.fit(
        data.train.x,
        data.train.y,
        epochs=epochs,
        batch_size=12,
        optimizer=Adam(2e-3),
        seed=0,
    )
    return model


def _agreement(snn, model, x, time_steps=80):
    result = snn.run(x, SimulationConfig(time_steps=time_steps))
    return float(np.mean(result.predictions() == model.predict(x)))


class TestArchitectureGrid:
    @pytest.mark.parametrize("use_bias", [True, False])
    def test_mlp_agreement(self, task, use_bias):
        model = _train(
            build_mlp(task.input_shape, [24], task.num_classes, use_bias=use_bias, seed=1), task
        )
        scheme = HybridCodingScheme.from_notation("real-rate")
        snn = convert_to_snn(
            model,
            encoder=scheme.make_encoder(seed=0),
            threshold_factory=scheme.make_threshold_factory(),
            calibration_x=task.train.x[:24],
        )
        assert _agreement(snn, model, task.test.x[:12]) >= 0.8

    @pytest.mark.parametrize("pool", ["avg", "max"])
    def test_cnn_agreement_with_pooling(self, task, pool):
        model = _train(
            build_cnn(
                task.input_shape,
                task.num_classes,
                conv_channels=(6,),
                kernel_size=3,
                dense_size=24,
                pool=pool,
                seed=2,
            ),
            task,
        )
        scheme = HybridCodingScheme.from_notation("real-burst", v_th=0.125)
        snn = convert_to_snn(
            model,
            encoder=scheme.make_encoder(seed=0),
            threshold_factory=scheme.make_threshold_factory(),
            calibration_x=task.train.x[:24],
        )
        assert _agreement(snn, model, task.test.x[:12]) >= 0.75

    def test_max_pool_average_replacement_still_agrees(self, task):
        """Replacing max pooling by average pooling at conversion (the Cao et
        al. policy) still yields a usable SNN, though agreement may be a bit
        lower than with spiking max pooling."""
        model = Sequential(
            [
                Conv2D(1, 6, kernel_size=3, padding=1, seed=3),
                ReLU(),
                MaxPool2D(2),
                Flatten(),
                Dense(6 * 5 * 5, task.num_classes, seed=4),
            ],
            input_shape=task.input_shape,
        )
        _train(model, task)
        scheme = HybridCodingScheme.from_notation("real-rate")
        snn = convert_to_snn(
            model,
            encoder=scheme.make_encoder(seed=0),
            threshold_factory=scheme.make_threshold_factory(),
            config=ConversionConfig(max_pool_policy="average"),
            calibration_x=task.train.x[:24],
        )
        assert _agreement(snn, model, task.test.x[:12]) >= 0.6


class TestCodingGrid:
    @pytest.fixture(scope="class")
    def trained(self, task):
        return _train(build_mlp(task.input_shape, [32], task.num_classes, seed=5), task)

    @pytest.mark.parametrize(
        "notation", ["real-rate", "real-burst", "phase-burst", "phase-phase", "rate-burst"]
    )
    def test_working_schemes_agree_with_dnn(self, task, trained, notation):
        scheme = HybridCodingScheme.from_notation(notation)
        snn = convert_to_snn(
            trained,
            encoder=scheme.make_encoder(seed=0),
            threshold_factory=scheme.make_threshold_factory(),
            calibration_x=task.train.x[:24],
        )
        assert _agreement(snn, trained, task.test.x[:12], time_steps=100) >= 0.75

    def test_longer_horizon_does_not_degrade_agreement(self, task, trained):
        scheme = HybridCodingScheme.from_notation("phase-burst")
        snn = convert_to_snn(
            trained,
            encoder=scheme.make_encoder(seed=0),
            threshold_factory=scheme.make_threshold_factory(),
            calibration_x=task.train.x[:24],
        )
        x = task.test.x[:12]
        short = _agreement(snn, trained, x, time_steps=30)
        snn_long = convert_to_snn(
            trained,
            encoder=scheme.make_encoder(seed=0),
            threshold_factory=scheme.make_threshold_factory(),
            calibration_x=task.train.x[:24],
        )
        long = _agreement(snn_long, trained, x, time_steps=150)
        assert long >= short - 0.1

    def test_spike_budget_ordering_phase_vs_burst(self, task, trained):
        """Phase hidden coding spends more spikes than burst hidden coding on
        the same inputs and horizon (Table 1's ordering, at unit-test scale)."""
        totals = {}
        for notation in ("phase-phase", "phase-burst"):
            scheme = HybridCodingScheme.from_notation(notation)
            snn = convert_to_snn(
                trained,
                encoder=scheme.make_encoder(seed=0),
                threshold_factory=scheme.make_threshold_factory(),
                calibration_x=task.train.x[:24],
            )
            result = snn.run(task.test.x[:8], SimulationConfig(time_steps=80))
            totals[notation] = result.total_spikes(include_input=False)
        assert totals["phase-phase"] > totals["phase-burst"]


class TestDeterminism:
    def test_identical_runs_are_bitwise_identical(self, task):
        model = _train(build_mlp(task.input_shape, [16], task.num_classes, seed=7), task, epochs=6)
        scheme = HybridCodingScheme.from_notation("rate-burst")
        outputs = []
        for _ in range(2):
            snn = convert_to_snn(
                model,
                encoder=scheme.make_encoder(seed=11),
                threshold_factory=scheme.make_threshold_factory(),
                calibration_x=task.train.x[:20],
            )
            result = snn.run(task.test.x[:6], SimulationConfig(time_steps=40, seed=11))
            outputs.append(result.final_outputs)
        assert np.array_equal(outputs[0], outputs[1])

    def test_different_poisson_seeds_differ(self, task):
        model = _train(build_mlp(task.input_shape, [16], task.num_classes, seed=7), task, epochs=6)
        scheme = HybridCodingScheme.from_notation("rate-burst")
        outputs = []
        for seed in (1, 2):
            snn = convert_to_snn(
                model,
                encoder=scheme.make_encoder(seed=seed),
                threshold_factory=scheme.make_threshold_factory(),
                calibration_x=task.train.x[:20],
            )
            result = snn.run(task.test.x[:6], SimulationConfig(time_steps=40, seed=seed))
            outputs.append(result.final_outputs)
        assert not np.array_equal(outputs[0], outputs[1])


class TestEdgeCases:
    def test_single_image_batch(self, task):
        model = _train(build_mlp(task.input_shape, [16], task.num_classes, seed=9), task, epochs=4)
        scheme = HybridCodingScheme.from_notation("phase-burst")
        snn = convert_to_snn(
            model,
            encoder=scheme.make_encoder(seed=0),
            threshold_factory=scheme.make_threshold_factory(),
            calibration_x=task.train.x[:10],
        )
        result = snn.run(task.test.x[:1], SimulationConfig(time_steps=20))
        assert result.final_outputs.shape == (1, task.num_classes)

    def test_all_black_and_all_white_images(self, task):
        model = _train(build_mlp(task.input_shape, [16], task.num_classes, seed=9), task, epochs=4)
        scheme = HybridCodingScheme.from_notation("phase-burst")
        snn = convert_to_snn(
            model,
            encoder=scheme.make_encoder(seed=0),
            threshold_factory=scheme.make_threshold_factory(),
            calibration_x=task.train.x[:10],
        )
        extremes = np.stack(
            [np.zeros(task.input_shape), np.ones(task.input_shape)], axis=0
        )
        result = snn.run(extremes, SimulationConfig(time_steps=25))
        assert np.all(np.isfinite(result.final_outputs))

    def test_single_time_step(self, task):
        model = _train(build_mlp(task.input_shape, [16], task.num_classes, seed=9), task, epochs=4)
        scheme = HybridCodingScheme.from_notation("real-rate")
        snn = convert_to_snn(
            model,
            encoder=scheme.make_encoder(seed=0),
            threshold_factory=scheme.make_threshold_factory(),
            calibration_x=task.train.x[:10],
        )
        result = snn.run(task.test.x[:4], SimulationConfig(time_steps=1))
        assert result.output_history.shape == (1, 4, task.num_classes)
