"""The layered inference engine: build → plan → run.

The paper's coding schemes are interchangeable policies over one
conversion + simulation substrate; this package is that substrate, factored
into three explicit stages so every scheme — built-in or registered through
:mod:`repro.core.registry` — inherits it unchanged:

* :mod:`repro.engine.build` — ANN → converted SNN (weight normalisation,
  encoder / threshold resolution through the scheme registry),
* :mod:`repro.engine.plan` — per-network preparation: dtype resolution, the
  snapshot schedule, per-batch state reset driving the cached kernel plans,
  sparsity calibrations and buffer preallocation inside the layers,
* :mod:`repro.engine.run` — the time-stepped simulation loop with recording
  and converged-image early exit, plus shard orchestration across worker
  processes.

:mod:`repro.engine.session` stacks the three into a reusable
:class:`InferenceSession` — prepare once, serve many batches — which the
pipeline, the experiments and the CLI all route through.
"""

from repro.engine.build import build_network
from repro.engine.plan import (
    PreparedBatch,
    SimulationPlan,
    plan_simulation,
    recorded_step_schedule,
)
from repro.engine.run import (
    execute,
    resolve_worker_count,
    run_sharded,
    shard_ranges,
    simulate,
)
from repro.engine.session import InferenceSession

__all__ = [
    "build_network",
    "PreparedBatch",
    "SimulationPlan",
    "plan_simulation",
    "recorded_step_schedule",
    "execute",
    "simulate",
    "resolve_worker_count",
    "run_sharded",
    "shard_ranges",
    "InferenceSession",
]
