"""Request queue and micro-batching scheduler.

A :class:`MicroBatcher` coalesces individual requests from many concurrent
clients into batches handed to one handler:

* **submit** is non-blocking: the request joins a bounded queue and the
  caller gets a :class:`concurrent.futures.Future` that resolves to the
  handler's per-request result.  A full queue raises
  :class:`QueueFullError` immediately (admission control — the HTTP layer
  maps it to *429 Too Many Requests*).
* one **worker thread** drains the queue: it starts a batch at the first
  queued request and flushes when either ``max_batch_size`` requests have
  been collected or ``max_wait_ms`` has elapsed since the batch opened —
  whichever comes first.  Under load batches fill instantly; a lone request
  pays at most the wait window.
* **close** performs a graceful drain: no new submissions are admitted,
  every queued request is still executed (flushed immediately, without
  waiting out the batch window), and every in-flight future resolves.

Time is read through an injectable ``clock`` (default
:func:`time.monotonic`), so tests can drive the ``max_wait_ms`` flush with a
fake clock instead of sleeping.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, List, Optional

from repro.serving.metrics import ServerMetrics
from repro.utils.logging import get_logger

logger = get_logger("serving.scheduler")


class QueueFullError(RuntimeError):
    """Raised by :meth:`MicroBatcher.submit` when admission control rejects a
    request because the bounded queue is at capacity."""


class BatcherClosedError(RuntimeError):
    """Raised by :meth:`MicroBatcher.submit` after the batcher was closed."""


@dataclass
class BatchInfo:
    """Context handed to the batch handler alongside the payloads."""

    size: int
    #: per-request milliseconds spent waiting in the queue, aligned with the
    #: payload list
    queue_ms: List[float] = field(default_factory=list)


#: executes one micro-batch; must return one result per payload, in order
BatchHandler = Callable[[List[Any], BatchInfo], List[Any]]


class _Item:
    __slots__ = ("payload", "future", "enqueued_at")

    def __init__(self, payload: Any, enqueued_at: float) -> None:
        self.payload = payload
        self.future: Future = Future()
        self.enqueued_at = enqueued_at


class MicroBatcher:
    """Coalesce submitted requests into batches executed by one worker.

    Parameters
    ----------
    handler:
        ``handler(payloads, info) -> results`` executing one micro-batch;
        must return exactly one result per payload, in submission order.
    max_batch_size:
        Flush as soon as this many requests are collected.
    max_wait_ms:
        Flush a non-full batch this many milliseconds after it opened.
    max_queue:
        Admission-control bound on queued (not yet collected) requests.
    metrics:
        Optional shared :class:`~repro.serving.metrics.ServerMetrics`.
    clock:
        Monotonic time source in seconds (injectable for fake-clock tests).
    """

    def __init__(
        self,
        handler: BatchHandler,
        *,
        max_batch_size: int = 8,
        max_wait_ms: float = 5.0,
        max_queue: int = 64,
        metrics: Optional[ServerMetrics] = None,
        clock: Callable[[], float] = time.monotonic,
        name: str = "batcher",
        start: bool = True,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self._handler = handler
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_ms) / 1000.0
        self.max_queue = int(max_queue)
        self.metrics = metrics or ServerMetrics()
        self._clock = clock
        self.name = name
        self._queue: Deque[_Item] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self._thread = threading.Thread(
            target=self._worker, name=f"repro-serve-{name}", daemon=True
        )
        if start:
            self._thread.start()

    def start(self) -> "MicroBatcher":
        """Start the worker thread (for batchers created with ``start=False``,
        e.g. tests that want to queue submissions before collection begins)."""
        if not self._thread.is_alive():
            self._thread.start()
        return self

    # -- client side -------------------------------------------------------
    def submit(self, payload: Any) -> Future:
        """Enqueue one request; returns the future of its handler result."""
        with self._not_empty:
            if self._closed:
                raise BatcherClosedError(f"batcher {self.name!r} is closed")
            if len(self._queue) >= self.max_queue:
                self.metrics.record_reject()
                raise QueueFullError(
                    f"batcher {self.name!r} queue is full "
                    f"({self.max_queue} requests waiting)"
                )
            item = _Item(payload, self._clock())
            self._queue.append(item)
            self.metrics.record_submit()
            self._not_empty.notify()
        return item.future

    @property
    def queue_depth(self) -> int:
        """Requests admitted but not yet collected into a batch."""
        with self._lock:
            return len(self._queue)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    # -- worker side -------------------------------------------------------
    def _worker(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            self._execute(batch)

    def _next_batch(self) -> Optional[List[_Item]]:
        """Block until a batch is ready; ``None`` when closed and drained.

        A batch opens at the first queued request; it flushes when full, when
        ``max_wait_ms`` has elapsed since it opened, or immediately when the
        batcher is draining.  The wait loop re-reads the clock every
        iteration, so an injected fake clock deterministically expires the
        window without real sleeping.
        """
        with self._not_empty:
            while not self._queue:
                if self._closed:
                    return None
                self._not_empty.wait(0.05)
            batch = [self._queue.popleft()]
            deadline = self._clock() + self.max_wait_s
            while len(batch) < self.max_batch_size:
                if self._queue:
                    batch.append(self._queue.popleft())
                    continue
                remaining = deadline - self._clock()
                if remaining <= 0 or self._closed:
                    break
                self._not_empty.wait(min(remaining, 0.05))
            return batch

    def _execute(self, batch: List[_Item]) -> None:
        started = self._clock()
        queue_ms = [(started - item.enqueued_at) * 1000.0 for item in batch]
        info = BatchInfo(size=len(batch), queue_ms=queue_ms)
        try:
            results = self._handler([item.payload for item in batch], info)
        except BaseException as exc:  # noqa: BLE001 - forwarded to the futures
            logger.warning("batcher %s: batch of %d failed: %s", self.name, len(batch), exc)
            self.metrics.record_batch(len(batch), error=True)
            for item in batch:
                item.future.set_exception(exc)
            return
        if len(results) != len(batch):
            exc = RuntimeError(
                f"batch handler returned {len(results)} results for {len(batch)} requests"
            )
            self.metrics.record_batch(len(batch), error=True)
            for item in batch:
                item.future.set_exception(exc)
            return
        elapsed_ms = (self._clock() - started) * 1000.0
        self.metrics.record_batch(
            len(batch), latencies_ms=[q + elapsed_ms for q in queue_ms]
        )
        for item, result in zip(batch, results):
            item.future.set_result(result)

    # -- lifecycle ---------------------------------------------------------
    def close(self, timeout: Optional[float] = 30.0) -> None:
        """Graceful drain: reject new work, flush the queue, join the worker.

        Every request admitted before the close is still executed (the wait
        window is skipped) and its future resolves — callers blocked on
        results are released, never abandoned.  Idempotent.
        """
        with self._not_empty:
            already = self._closed
            self._closed = True
            self._not_empty.notify_all()
        if not already:
            logger.info("batcher %s: draining (%d queued)", self.name, self.queue_depth)
        if self._thread.is_alive() and threading.current_thread() is not self._thread:
            self._thread.join(timeout)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
