"""Serving scale-out benchmark: measured load-test curve over replica counts.

Boots real :class:`~repro.serving.http.ServingHTTPServer` instances (HTTP
over sockets, not in-process shortcuts) at increasing ``num_replicas`` and
drives each with the same open-loop bursty schedule (``loadgen``), recording
throughput and p50/p95/p99 latency per ``(num_replicas, scheme, backend)``
into ``benchmarks/results/BENCH_serving.json`` (rows keyed by
``(git_rev, scale, scheme, backend, num_replicas)`` — re-running a revision
updates its rows in place).

Acceptance: on a multi-core machine (>= 4 CPUs) the 4-replica server must
sustain >= 1.5x the single-replica throughput on the same workload — with
*unchanged answers* (a float64 identity pass compares scores across replica
counts, request for request).  On smaller runners the scaling assertion is
skipped (recorded in the report) while the curve is still measured.

Scale knobs: ``REPRO_BENCH_SERVING_REQUESTS`` / ``_BURST`` / ``_REPLICAS``
(comma list) / ``_TIME_STEPS``; e.g.
``REPRO_BENCH_SERVING_REQUESTS=8 pytest benchmarks/serving -q`` for a CI
smoke burst.  Deselect with ``-m "not perf"``.

``REPRO_BENCH_PIN_BLAS=1`` runs the load-test with BLAS pinned to a single
thread (``OMP_NUM_THREADS=1``, applied to the already-loaded OpenBLAS pool
via its runtime control as well), so the measured curve isolates replica
scaling from BLAS threading; the pin state is part of each row's scale key.
"""

import ctypes
import json
import os
import subprocess
from pathlib import Path

import numpy as np
import pytest

import loadgen
from repro.backends import default_backend_name
from repro.experiments.workloads import build_workload
from repro.serving.engine import ServingConfig, ServingEngine
from repro.serving.http import ServingHTTPServer
from repro.utils.timing import load_bench_json, write_bench_json

pytestmark = pytest.mark.perf

HERE = Path(__file__).resolve().parent
BENCH_SERVING_PATH = HERE.parent / "results" / "BENCH_serving.json"

NUM_REQUESTS = int(os.environ.get("REPRO_BENCH_SERVING_REQUESTS", "24"))
BURST_SIZE = int(os.environ.get("REPRO_BENCH_SERVING_BURST", "8"))
BURST_INTERVAL_S = float(os.environ.get("REPRO_BENCH_SERVING_BURST_INTERVAL_S", "0.05"))
TIME_STEPS = int(os.environ.get("REPRO_BENCH_SERVING_TIME_STEPS", "20"))
REPLICA_COUNTS = [
    int(count)
    for count in os.environ.get("REPRO_BENCH_SERVING_REPLICAS", "1,4").split(",")
]
SCHEME = "phase-burst"
IDENTITY_IMAGES = 6
#: acceptance floor: 4 replicas vs 1 on a multi-core machine
MIN_SCALING = 1.5
SCALING_MIN_CPUS = 4
#: REPRO_BENCH_PIN_BLAS=1 → load-test with single-threaded BLAS, so the
#: replica-scaling curve is not confounded by BLAS-internal threading
PIN_BLAS = os.environ.get("REPRO_BENCH_PIN_BLAS", "").strip().lower() in (
    "1", "true", "on", "yes"
)


def _loaded_openblas_controls():
    """(set_num_threads, get_num_threads) of the OpenBLAS numpy loaded,
    or ``None`` — environment variables alone cannot retune a BLAS pool
    that initialised before this module ran."""
    try:
        maps = Path(f"/proc/{os.getpid()}/maps").read_text()
    except OSError:
        return None
    paths = {
        line.split()[-1]
        for line in maps.splitlines()
        if "openblas" in line.rsplit("/", 1)[-1].lower()
    }
    for path in sorted(paths):
        try:
            lib = ctypes.CDLL(path)
        except OSError:
            continue
        for prefix in ("scipy_openblas_", "openblas_"):
            for suffix in ("64_", "_", ""):
                setter = getattr(lib, f"{prefix}set_num_threads{suffix}", None)
                getter = getattr(lib, f"{prefix}get_num_threads{suffix}", None)
                if setter is not None and getter is not None:
                    return setter, getter
    return None


@pytest.fixture(scope="module")
def blas_pin():
    """Apply (and on teardown undo) the single-thread BLAS pin when
    ``REPRO_BENCH_PIN_BLAS=1``; yields whether the pin is in effect."""
    if not PIN_BLAS:
        yield False
        return
    previous_env = {}
    for name in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS"):
        previous_env[name] = os.environ.get(name)
        os.environ[name] = "1"
    controls = _loaded_openblas_controls()
    previous_threads = None
    if controls is not None:
        setter, getter = controls
        previous_threads = int(getter())
        setter(1)
    yield True
    if controls is not None and previous_threads is not None:
        controls[0](previous_threads)
    for name, value in previous_env.items():
        if value is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = value


def _git_revision() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=HERE,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def _scale() -> dict:
    return {
        "requests": NUM_REQUESTS,
        "burst_size": BURST_SIZE,
        "burst_interval_s": BURST_INTERVAL_S,
        "time_steps": TIME_STEPS,
        # part of the row key: pinned and unpinned curves are separate rows
        "pin_blas": PIN_BLAS,
    }


def _upsert_rows(rows: list) -> None:
    """Keyed upsert into BENCH_serving.json (one row per measured
    (git_rev, scale, scheme, backend, num_replicas))."""
    history = load_bench_json(BENCH_SERVING_PATH) or {
        "description": (
            "serving load-test curve: open-loop bursty HTTP load vs "
            "replica count (see benchmarks/serving/)"
        ),
        "runs": [],
    }
    runs = history.setdefault("runs", [])
    for row in rows:
        key = (
            row["git_rev"], json.dumps(row["scale"], sort_keys=True),
            row["scheme"], row["backend"], row["num_replicas"],
        )
        for index, existing in enumerate(runs):
            existing_key = (
                existing.get("git_rev"),
                json.dumps(existing.get("scale", {}), sort_keys=True),
                existing.get("scheme"),
                existing.get("backend"),
                existing.get("num_replicas"),
            )
            if existing_key == key:
                runs[index] = row
                break
        else:
            runs.append(row)
    write_bench_json(BENCH_SERVING_PATH, history)


@pytest.fixture(scope="module")
def serving_workload():
    """Tiny MNIST MLP workload: fast to train, fast to serve, deterministic."""
    return build_workload(
        dataset="mnist", model="mlp", seed=0, samples_per_class=8, epochs=3
    )


@pytest.fixture(scope="module")
def load_curve(serving_workload, blas_pin):
    """Measure every configured replica count once; shared by the tests."""
    test_images = serving_workload.data.test.x
    pool = [test_images[i % len(test_images)].tolist() for i in range(BURST_SIZE)]
    identity_images = [
        test_images[i % len(test_images)].tolist() for i in range(IDENTITY_IMAGES)
    ]
    curve = {}
    for num_replicas in REPLICA_COUNTS:
        engine = ServingEngine(
            serving_workload.model,
            serving_workload.data.train.x,
            ServingConfig(
                max_batch_size=BURST_SIZE,
                max_wait_ms=5.0,
                max_queue=max(64, NUM_REQUESTS),
                num_replicas=num_replicas,
                time_steps=TIME_STEPS,
                dtype="float64",  # the identity pass compares exact bits
                seed=0,
            ),
        )
        server = ServingHTTPServer(engine, port=0, default_scheme=SCHEME).start()
        try:
            engine.warm(SCHEME)  # measure serving, not conversion
            result = loadgen.run_load(
                server.url,
                pool,
                num_requests=NUM_REQUESTS,
                burst_size=BURST_SIZE,
                burst_interval_s=BURST_INTERVAL_S,
                scheme=SCHEME,
            )
            summary = result.summarise()
            # identity pass: sequential single requests ride in batches of
            # one, so the coalescing (and hence the float64 summation order)
            # is identical at every replica count
            scores = []
            for image in identity_images:
                status, body = loadgen._post_classify(
                    server.url, {"image": image, "scheme": SCHEME}, timeout_s=120.0
                )
                assert status == 200, f"identity request failed: {body}"
                scores.append(body["scores"])
            stats = engine.stats()
            curve[num_replicas] = {
                "summary": summary,
                "identity_scores": np.asarray(scores, dtype=np.float64),
                "replica_utilisation": stats["sessions"][SCHEME]["replica_utilisation"],
                "batches_per_replica": stats["sessions"][SCHEME]["batches_per_replica"],
            }
        finally:
            server.close()
    return curve


def test_load_curve_measured_and_recorded(load_curve):
    """Every configured replica count served the full burst schedule; the
    per-(num_replicas, scheme, backend) rows land in BENCH_serving.json."""
    rows = []
    backend = default_backend_name()
    for num_replicas, entry in sorted(load_curve.items()):
        summary = entry["summary"]
        assert summary["requests"] == NUM_REQUESTS
        assert summary["ok"] == NUM_REQUESTS, (
            f"{summary['requests'] - summary['ok']} request(s) failed at "
            f"num_replicas={num_replicas}: {summary['status_counts']}"
        )
        assert summary["throughput_rps"] > 0
        assert summary["latency_ms"]["p50"] <= summary["latency_ms"]["p95"]
        assert summary["latency_ms"]["p95"] <= summary["latency_ms"]["p99"]
        rows.append(
            {
                "git_rev": _git_revision(),
                "scale": _scale(),
                "scheme": SCHEME,
                "backend": backend,
                "num_replicas": num_replicas,
                "cpu_count": os.cpu_count(),
                "throughput_rps": summary["throughput_rps"],
                "latency_ms": summary["latency_ms"],
                "status_counts": summary["status_counts"],
                "wall_s": summary["wall_s"],
                "replica_utilisation": entry["replica_utilisation"],
                "batches_per_replica": entry["batches_per_replica"],
            }
        )
    _upsert_rows(rows)
    print(f"\n[BENCH_serving rows written to {BENCH_SERVING_PATH}]")
    for row in rows:
        print(
            f"  num_replicas={row['num_replicas']}: "
            f"{row['throughput_rps']} req/s, "
            f"p50={row['latency_ms']['p50']}ms p99={row['latency_ms']['p99']}ms"
        )


def test_answers_are_identical_across_replica_counts(load_curve):
    """Scaling out must not change a single bit of any answer (float64)."""
    reference_count = min(load_curve)
    reference = load_curve[reference_count]["identity_scores"]
    for num_replicas, entry in load_curve.items():
        assert np.array_equal(entry["identity_scores"], reference), (
            f"num_replicas={num_replicas} answers diverged from "
            f"num_replicas={reference_count}"
        )


def test_replica_scaling_on_multicore(load_curve):
    """The tentpole acceptance: >= 1.5x throughput at 4 replicas vs 1.

    Only meaningful with real parallel hardware — skipped (but the curve is
    still recorded by the test above) on machines with < 4 CPUs.
    """
    cpus = os.cpu_count() or 1
    if cpus < SCALING_MIN_CPUS:
        pytest.skip(f"scaling assertion needs >= {SCALING_MIN_CPUS} CPUs, have {cpus}")
    if 1 not in load_curve or 4 not in load_curve:
        pytest.skip(f"need replica counts 1 and 4, measured {sorted(load_curve)}")
    single = load_curve[1]["summary"]["throughput_rps"]
    quad = load_curve[4]["summary"]["throughput_rps"]
    assert quad >= MIN_SCALING * single, (
        f"4-replica throughput {quad} req/s is below {MIN_SCALING}x the "
        f"single-replica {single} req/s"
    )


def test_burst_overload_is_shed_with_429(serving_workload):
    """Under a deliberately undersized queue the server answers what it can
    and bounces the rest with 429 — it never hangs or drops connections."""
    engine = ServingEngine(
        serving_workload.model,
        serving_workload.data.train.x,
        ServingConfig(
            max_batch_size=2,
            max_wait_ms=0.0,
            max_queue=2,
            time_steps=TIME_STEPS,
            seed=0,
        ),
    )
    server = ServingHTTPServer(engine, port=0, default_scheme=SCHEME).start()
    try:
        engine.warm(SCHEME)
        image = serving_workload.data.test.x[0].tolist()
        result = loadgen.run_load(
            server.url,
            [image],
            num_requests=16,
            burst_size=16,  # one big burst against a queue of 2
            burst_interval_s=0.0,
            scheme=SCHEME,
        )
        summary = result.summarise()
        statuses = set(summary["status_counts"])
        assert statuses <= {"200", "429"}, summary["status_counts"]
        assert summary["ok"] >= 1
        # every rejection carried machine-readable retry guidance
        for record in result.records:
            if record.status == 429:
                assert record.body is not None
                assert record.body["retry_after_s"] > 0
    finally:
        server.close()
