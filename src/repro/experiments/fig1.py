"""Figure 1: spike train, PSP and ISI histogram of a single IF neuron under
rate, phase and burst coding.

The figure in the paper is illustrative: one neuron driven by a constant
input, shown under the three coding schemes.  ``run_fig1`` reproduces the
three panels quantitatively — the spike train (A), the transmitted spike
amplitudes which play the role of the post-synaptic potentiation (B), and the
ISI histogram (C) — so the qualitative claims can be checked:

* rate coding: evenly spaced unit-amplitude spikes, ISI mass away from 1;
* phase coding: spikes locked to the oscillation phases, very short ISIs;
* burst coding: groups of consecutive spikes with growing amplitudes,
  a clear peak at ISI = 1 that rate coding lacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.analysis.isi import isi_histogram, short_isi_fraction
from repro.snn.neurons import IFNeuronState, ResetMode
from repro.snn.thresholds import make_threshold
from repro.utils.config import validate_positive


@dataclass
class SingleNeuronTrace:
    """Recorded activity of the single demonstration neuron."""

    coding: str
    spike_train: np.ndarray
    amplitudes: np.ndarray
    membrane: np.ndarray
    isih_bins: np.ndarray
    isih_counts: np.ndarray
    short_isi_fraction: float
    total_spikes: int


def run_single_neuron(
    coding: str,
    drive: float = 0.3,
    time_steps: int = 200,
    v_th: Optional[float] = None,
    beta: float = 2.0,
    phase_period: int = 8,
    max_isi: int = 50,
) -> SingleNeuronTrace:
    """Simulate one IF neuron with constant input ``drive`` under ``coding``."""
    validate_positive("time_steps", time_steps)
    if not 0.0 <= drive:
        raise ValueError(f"drive must be non-negative, got {drive}")
    threshold = make_threshold(coding, v_th=v_th, beta=beta, phase_period=phase_period)
    # single-neuron traces are precision-sensitive, not a hot path: pin float64
    state = IFNeuronState((1, 1), reset_mode=ResetMode.SUBTRACT, dtype=np.float64)
    threshold.reset((1, 1), dtype=np.float64)

    spikes = np.zeros(time_steps, dtype=bool)
    amplitudes = np.zeros(time_steps, dtype=np.float64)
    membrane = np.zeros(time_steps, dtype=np.float64)
    for t in range(time_steps):
        th = threshold.thresholds(t)
        spike, amplitude = state.step(np.asarray([[drive]]), th)
        threshold.update(spike)
        spikes[t] = bool(spike[0, 0])
        amplitudes[t] = float(amplitude[0, 0])
        membrane[t] = float(state.v_mem[0, 0])

    bins, counts = isi_histogram(spikes[:, None], max_isi=max_isi)
    return SingleNeuronTrace(
        coding=coding,
        spike_train=spikes,
        amplitudes=amplitudes,
        membrane=membrane,
        isih_bins=bins,
        isih_counts=counts,
        short_isi_fraction=short_isi_fraction(spikes[:, None]),
        total_spikes=int(spikes.sum()),
    )


def run_fig1(
    drive: float = 0.3,
    time_steps: int = 200,
    burst_v_th: float = 0.125,
    beta: float = 2.0,
    phase_period: int = 8,
) -> Dict[str, SingleNeuronTrace]:
    """Reproduce the three columns of Fig. 1 (rate, phase, burst)."""
    return {
        "rate": run_single_neuron("rate", drive, time_steps, v_th=1.0),
        "phase": run_single_neuron(
            "phase", drive, time_steps, v_th=1.0, phase_period=phase_period
        ),
        "burst": run_single_neuron(
            "burst", drive, time_steps, v_th=burst_v_th, beta=beta
        ),
    }


def format_fig1(traces: Dict[str, SingleNeuronTrace], show_bins: int = 8) -> str:
    """Render Fig. 1 as text: spike counts, amplitudes and ISIH head per coding."""
    lines = ["Fig. 1 — single-neuron spike patterns per coding scheme"]
    for coding, trace in traces.items():
        amplitudes = trace.amplitudes[trace.spike_train]
        amp_summary = (
            f"min={amplitudes.min():.3f} max={amplitudes.max():.3f}" if amplitudes.size else "n/a"
        )
        isih = ", ".join(
            f"{int(b)}:{int(c)}" for b, c in zip(trace.isih_bins[:show_bins], trace.isih_counts[:show_bins])
        )
        lines.append(
            f"  {coding:<6} spikes={trace.total_spikes:<4d} short-ISI frac={trace.short_isi_fraction:.2f} "
            f"amplitudes[{amp_summary}] ISIH[{isih}]"
        )
    return "\n".join(lines)
