"""Fused torch step programs: the whole per-layer step on device tensors.

Only imported by :meth:`TorchBackend.compile_step_program`, so the module —
like the backend itself — needs PyTorch at import time but never earlier.

The composed torch path crosses the numpy↔torch boundary once per kernel
call (5–8 wraps per layer per step); these programs wrap each engine buffer
in a tensor **once at compile time** and run the full synaptic + IF +
threshold chain in torch in-place ops over those views.  On CPU
``torch.from_numpy`` is zero-copy, so the engine's numpy buffers stay the
single source of truth (recording, early exit and the parity suite read them
directly) while the step loop itself makes no per-step host transfers.

The convolution path replaces the im2col / direct-conv plans with
``torch.nn.functional.conv2d`` on a weight tensor built once at compile —
the on-device conv the issue's tentpole asks for.  Sparse gather paths
delegate to the layer's channel-packed kernels (already single plan calls on
torch primitives); like every non-reference backend, results are held to
prediction-level agreement with the numpy reference, not bit-identity.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import torch
import torch.nn.functional as F

from repro.backends.programs import (
    DENSE,
    EMPTY,
    SPARSE,
    StepProgram,
    _BurstThresholdOps,
    _env_sparse_mode,
    _resolve_forced,
    _threshold_ops_for,
)

__all__ = ["compile_torch_program"]


class _TorchBurstOps:
    """Burst grow/cap/commit on zero-copy tensor views of the threshold state.

    The reference :class:`_BurstThresholdOps` runs the per-step threshold
    dynamics in numpy, which made it the one remaining numpy round-trip in
    the fused torch step.  This wrapper runs the same chain through torch
    in-place ops over views of the *same* buffers (``torch.from_numpy`` is
    zero-copy on CPU), so the engine, the parity suite and interleaved direct
    ``thresholds()`` / ``update()`` calls keep observing identical state —
    the ``_th_valid`` / ``_g_uniform`` / ``_updates`` flags stay on the
    :class:`~repro.snn.thresholds.BurstThreshold` object.  Only the
    ``max_burst_length`` consecutive-spike bookkeeping stays on the numpy
    kernels (tiny boolean scans, already backend-dispatched).
    """

    def __init__(self, inner: _BurstThresholdOps) -> None:
        self._inner = inner
        th = inner._threshold
        self._th = th
        self._beta = float(inner._beta)
        self._v_th = float(inner._v_th)
        self._max_burst = inner._max_burst
        self._ceiling = float(th._ceiling)
        self._g_t = torch.from_numpy(th._g)
        self._grown_t = torch.from_numpy(th._grown)
        self._silent_t = torch.from_numpy(th._silent_signal)
        self._th_buf_t = torch.from_numpy(th._th_buf)

    def thresholds_t(self, t: int) -> torch.Tensor:
        """The per-neuron threshold tensor for step ``t`` (shared memory)."""
        th = self._th
        if not th._th_valid:
            torch.mul(self._g_t, self._v_th, out=self._th_buf_t)
            th._th_valid = True
        return self._th_buf_t

    def update_t(self, spikes_np: np.ndarray, signals_t: torch.Tensor, count: int) -> None:
        """Commit one step of burst dynamics without leaving torch."""
        th = self._th
        if count == 0 and th._g_uniform and self._max_burst is None:
            th._updates += 1
            return
        grown_t = self._grown_t
        torch.mul(self._g_t, self._beta, out=grown_t)
        if th._updates >= th._clamp_after:
            torch.clamp_(grown_t, max=self._ceiling)
        th._updates += 1
        if self._max_burst is not None:
            self._inner._backend.burst_cap(
                th._grown, th._g, spikes_np, th._consecutive,
                th._cons_scratch, th._capped, self._max_burst,
            )
        grown_t *= signals_t
        silent_t = self._silent_t
        torch.neg(signals_t, out=silent_t)
        silent_t += 1.0
        torch.add(grown_t, silent_t, out=self._g_t)
        th._th_valid = False
        th._g_uniform = count == 0


class _TorchNeuronProgram(StepProgram):
    """Shared fused dense/conv machinery on torch tensor views."""

    fused = True

    def __init__(self, layer, backend, threshold_ops, env_mode: Optional[str]) -> None:
        super().__init__(layer)
        self.backend = backend
        self._threshold_ops = threshold_ops
        self._env_mode = env_mode
        state = layer.state
        self._state = state
        # one-time zero-copy tensor views over the engine's numpy buffers
        self._v_mem_t = torch.from_numpy(state.v_mem)
        self._spikes_np = state._spikes
        self._spikes_t = torch.from_numpy(state._spikes)
        self._signals_t = torch.from_numpy(state._spike_signals)
        self._amplitudes_np = state._amplitudes
        self._amplitudes_t = torch.from_numpy(state._amplitudes)
        self._subtract_reset = state.reset_mode.value == "subtract"
        self._v_rest = float(state.v_rest)
        self._allow_negative = state.allow_negative_membrane
        # burst thresholds get the fully on-device dynamics; static/phase
        # thresholds stay on their (0-d, update-free) numpy tables
        self._burst_ops_t = (
            _TorchBurstOps(threshold_ops)
            if type(threshold_ops) is _BurstThresholdOps
            else None
        )
        state._threshold_validated = True

    def _forced_mode(self) -> Optional[str]:
        layer = self.layer
        return _resolve_forced(layer.name, layer.dispatcher.force, self._env_mode)

    def _synaptic_t(self, incoming: np.ndarray, hint: Optional[int]):
        """Return the synaptic input as a tensor (or ``None`` for numpy z)."""
        raise NotImplementedError

    def run(
        self, incoming: np.ndarray, t: int, incoming_nonzero: Optional[int] = None
    ) -> np.ndarray:
        layer = self.layer
        incoming = np.asarray(incoming)
        cache = layer._z_cache
        if cache is not None:
            phase = t % layer._input_period
            z = cache[phase]
            if z is None:
                z = np.array(self._as_numpy(self._synaptic_t(incoming, incoming_nonzero)))
                cache[phase] = z
            z_t = torch.from_numpy(z)
        else:
            z_t = self._synaptic_t(incoming, incoming_nonzero)
        return self._neuron_step(z_t, t)

    @staticmethod
    def _as_numpy(z) -> np.ndarray:
        return z.numpy() if isinstance(z, torch.Tensor) else np.asarray(z)

    def _neuron_step(self, z_t, t: int) -> np.ndarray:
        threshold_ops = self._threshold_ops
        burst_t = self._burst_ops_t
        if burst_t is not None:
            th_t = burst_t.thresholds_t(t)  # shared-memory tensor view
        else:
            threshold = threshold_ops.thresholds(t)  # numpy (0-d table entry)
            th_t = torch.from_numpy(
                np.ascontiguousarray(threshold, dtype=self._state.dtype)
            )
        v_t = self._v_mem_t
        spikes_t = self._spikes_t
        sig_t = self._signals_t
        amp_t = self._amplitudes_t
        if not isinstance(z_t, torch.Tensor):
            z_t = torch.from_numpy(np.ascontiguousarray(z_t, dtype=self._state.dtype))
        v_t += z_t
        torch.ge(v_t, th_t, out=spikes_t)
        sig_t.copy_(spikes_t)
        torch.mul(th_t, sig_t, out=amp_t)
        if self._subtract_reset:
            v_t -= amp_t
        else:
            v_t.masked_fill_(spikes_t, self._v_rest)
        if not self._allow_negative:
            torch.clamp_(v_t, min=self._v_rest)
        count = int(torch.count_nonzero(spikes_t).item())
        state = self._state
        state.last_spike_count = count
        state.total_spikes += count
        if burst_t is not None:
            # grow/cap/commit in-place on the shared tensor views — the step
            # makes no numpy round-trip for the threshold dynamics
            burst_t.update_t(self._spikes_np, sig_t, count)
        else:
            threshold_ops.update(self._spikes_np, state._spike_signals, count)
        layer = self.layer
        layer.last_spikes = self._spikes_np
        layer.output_nonzero = count
        return self._amplitudes_np


class TorchFusedDenseProgram(_TorchNeuronProgram):
    """Fused dense step: ``torch.matmul`` into the layer's z buffer."""

    def __init__(self, layer, backend, threshold_ops, env_mode) -> None:
        super().__init__(layer, backend, threshold_ops, env_mode)
        self._w_t = torch.from_numpy(np.ascontiguousarray(layer._w_sim))
        self._bias_t = (
            None
            if layer._scaled_bias is None
            else torch.from_numpy(np.ascontiguousarray(layer._scaled_bias))
        )
        self._z_np = layer._z
        self._z_t = torch.from_numpy(layer._z)
        self._z_empty_t = torch.from_numpy(layer._z_empty)
        self._in_features = layer.in_features

    def _synaptic_t(self, incoming: np.ndarray, hint: Optional[int]):
        layer = self.layer
        if incoming.ndim != 2 or incoming.shape[1] != self._in_features:
            raise ValueError(
                f"{layer.name}: expected incoming shape (N, {self._in_features}), "
                f"got {incoming.shape}"
            )
        dispatcher = layer.dispatcher
        forced = self._forced_mode()
        decision = None
        active = None
        if hint is not None and forced is None:
            if hint == 0:
                decision = dispatcher.choose_resolved(None, 0.0)
            else:
                fraction = hint / incoming.size
                if dispatcher.exact_only or fraction >= dispatcher.crossover:
                    decision = dispatcher.choose_resolved(None, fraction)
        if decision is None:
            active = self.backend.active_features(incoming)
            decision = dispatcher.choose_resolved(
                forced, active.size / self._in_features
            )
        if decision == EMPTY:
            return self._z_empty_t
        if decision == SPARSE:
            # the gather kernels already run on this backend's primitives
            return torch.from_numpy(np.asarray(layer._sparse_input(incoming, active)))
        x_t = torch.from_numpy(np.ascontiguousarray(incoming))
        torch.matmul(x_t, self._w_t, out=self._z_t)
        if self._bias_t is not None:
            self._z_t += self._bias_t
        return self._z_t


class TorchFusedConvProgram(_TorchNeuronProgram):
    """Fused conv step on ``torch.nn.functional.conv2d`` — no im2col fill,
    no per-step host↔device crossings for the dense path."""

    def __init__(self, layer, backend, threshold_ops, env_mode) -> None:
        super().__init__(layer, backend, threshold_ops, env_mode)
        self._weight_t = torch.from_numpy(
            np.ascontiguousarray(np.asarray(layer.weight, dtype=layer.dtype))
        )
        scaled = layer._scaled_bias
        self._bias_t = (
            None if scaled is None else torch.from_numpy(np.ascontiguousarray(scaled))
        )
        self._stride = layer.stride
        self._padding = layer.padding
        self._z_empty_t = torch.from_numpy(layer._z_empty)
        self._channels = layer.input_shape[0]
        self._sparse_available = layer._direct_available

    def _synaptic_t(self, incoming: np.ndarray, hint: Optional[int]):
        layer = self.layer
        if incoming.ndim != 4 or incoming.shape[1] != self._channels:
            raise ValueError(
                f"{layer.name}: expected incoming shape (N, {self._channels}, H, W), "
                f"got {incoming.shape}"
            )
        dispatcher = layer.dispatcher
        forced = self._forced_mode()
        decision = None
        active = None
        if hint is not None and forced is None:
            if hint == 0:
                decision = dispatcher.choose_resolved(None, 0.0)
            else:
                fraction = hint / incoming.size
                if dispatcher.exact_only or fraction >= dispatcher.crossover:
                    decision = dispatcher.choose_resolved(None, fraction)
        if decision is None:
            active = self.backend.active_channels(incoming)
            decision = dispatcher.choose_resolved(
                forced, active.size / self._channels,
                sparse_available=self._sparse_available,
            )
        if decision == EMPTY:
            return self._z_empty_t
        if decision == SPARSE:
            return torch.from_numpy(np.asarray(layer._sparse_input(incoming, active)))
        x_t = torch.from_numpy(np.ascontiguousarray(incoming))
        return F.conv2d(
            x_t, self._weight_t, self._bias_t,
            stride=self._stride, padding=self._padding,
        )


def compile_torch_program(layer, backend) -> Optional[StepProgram]:
    """Compile a fused torch program for ``layer``, or ``None`` to fall back.

    Dense and conv layers get the on-device fused chain; pooling, flatten and
    output layers keep the numpy-family fused programs (their kernels are
    strided copies and one small GEMM — the numpy programs already run them
    through this backend's overridden primitives).
    """
    from repro.snn import layers as snn_layers

    kind = type(layer)
    if kind is not snn_layers.SpikingDense and kind is not snn_layers.SpikingConv2D:
        return None
    if layer.state is None or layer.dispatcher is None:
        return None
    try:
        env_mode = _env_sparse_mode()
    except ValueError:
        return None
    threshold_ops = _threshold_ops_for(layer, backend)
    if threshold_ops is None:
        return None
    if kind is snn_layers.SpikingDense:
        if layer._z is None or layer._z_empty is None:
            return None
        return TorchFusedDenseProgram(layer, backend, threshold_ops, env_mode)
    if layer._z_empty is None:
        return None
    return TorchFusedConvProgram(layer, backend, threshold_ops, env_mode)
