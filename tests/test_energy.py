"""Tests for the TrueNorth / SpiNNaker normalized-energy model."""

import pytest

from repro.energy.architectures import (
    SPINNAKER,
    TRUENORTH,
    ArchitectureEnergyModel,
    get_architecture,
)
from repro.energy.estimator import EnergyWorkload, estimate_energy, normalized_energy


class TestArchitectureEnergyModel:
    def test_fractions_sum_to_one(self):
        for arch in (TRUENORTH, SPINNAKER):
            total = arch.computation_fraction + arch.routing_fraction + arch.static_fraction
            assert total == pytest.approx(1.0)

    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            ArchitectureEnergyModel("x", 0.5, 0.5, 0.5)
        with pytest.raises(ValueError):
            ArchitectureEnergyModel("x", -0.1, 0.6, 0.5)

    def test_lookup(self):
        assert get_architecture("truenorth") is TRUENORTH
        assert get_architecture("SpiNNaker") is SPINNAKER

    def test_lookup_unknown(self):
        with pytest.raises(ValueError):
            get_architecture("loihi")


class TestEnergyWorkload:
    def test_valid(self):
        EnergyWorkload(spikes_per_image=1e6, density=0.02, latency=1500)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"spikes_per_image": -1, "density": 0.1, "latency": 10},
            {"spikes_per_image": 1, "density": -0.1, "latency": 10},
            {"spikes_per_image": 1, "density": 0.1, "latency": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            EnergyWorkload(**kwargs)


class TestEstimateEnergy:
    def _baseline(self):
        return EnergyWorkload(spikes_per_image=1e5, density=0.02, latency=200, label="baseline")

    def test_baseline_normalises_to_one(self):
        baseline = self._baseline()
        for arch in (TRUENORTH, SPINNAKER):
            estimate = estimate_energy(baseline, baseline, arch)
            assert estimate.total == pytest.approx(1.0)

    def test_components_scale_with_ratios(self):
        baseline = self._baseline()
        workload = EnergyWorkload(
            spikes_per_image=2e5, density=0.04, latency=400, label="double"
        )
        estimate = estimate_energy(workload, baseline, TRUENORTH)
        assert estimate.total == pytest.approx(2.0)
        assert estimate.computation == pytest.approx(TRUENORTH.computation_fraction * 2)
        assert estimate.routing == pytest.approx(TRUENORTH.routing_fraction * 2)
        assert estimate.static == pytest.approx(TRUENORTH.static_fraction * 2)

    def test_lower_latency_reduces_energy(self):
        baseline = self._baseline()
        faster = EnergyWorkload(spikes_per_image=1e5, density=0.02, latency=100, label="fast")
        assert estimate_energy(faster, baseline, TRUENORTH).total < 1.0

    def test_monotone_in_each_statistic(self):
        baseline = self._baseline()
        more_spikes = EnergyWorkload(2e5, 0.02, 200, label="spikes")
        more_density = EnergyWorkload(1e5, 0.04, 200, label="density")
        more_latency = EnergyWorkload(1e5, 0.02, 400, label="latency")
        for workload in (more_spikes, more_density, more_latency):
            for arch in (TRUENORTH, SPINNAKER):
                assert estimate_energy(workload, baseline, arch).total > 1.0

    def test_spinnaker_penalises_spikes_more_than_truenorth(self):
        """SpiNNaker's software per-spike cost makes spike-heavy workloads
        relatively more expensive than on TrueNorth."""
        baseline = self._baseline()
        spike_heavy = EnergyWorkload(1e6, 0.02, 200, label="heavy")
        tn = estimate_energy(spike_heavy, baseline, TRUENORTH).total
        sp = estimate_energy(spike_heavy, baseline, SPINNAKER).total
        assert sp > tn

    def test_zero_baseline_spikes_rejected_when_workload_spikes(self):
        baseline = EnergyWorkload(0.0, 0.02, 200)
        workload = EnergyWorkload(10.0, 0.02, 200)
        with pytest.raises(ValueError):
            estimate_energy(workload, baseline, TRUENORTH)


class TestNormalizedEnergy:
    def test_table_structure(self):
        baseline = EnergyWorkload(1e5, 0.02, 200, label="Diehl")
        ours = EnergyWorkload(7.7e4, 0.12, 27, label="Ours")
        kim = EnergyWorkload(3e6, 8.2, 16, label="Kim")
        table = normalized_energy([baseline, kim, ours], baseline, [TRUENORTH, SPINNAKER])
        assert set(table) == {"Diehl", "Kim", "Ours"}
        assert set(table["Ours"]) == {"TrueNorth", "SpiNNaker"}
        assert table["Diehl"]["TrueNorth"] == pytest.approx(1.0)

    def test_paper_shape_ours_cheapest_kim_most_expensive(self):
        """Reproduces the qualitative ordering of Table 2 (MNIST block):
        burst coding < rate baseline < weighted-spike phase coding."""
        baseline = EnergyWorkload(1e5, 0.0219, 200, label="Diehl")
        kim = EnergyWorkload(3e6, 8.2468, 16, label="Kim")
        ours = EnergyWorkload(7.7e4, 0.1245, 27, label="Ours")
        table = normalized_energy([kim, ours], baseline, [TRUENORTH, SPINNAKER])
        for arch in ("TrueNorth", "SpiNNaker"):
            assert table["Ours"][arch] < 1.0 < table["Kim"][arch]
