"""Time-stepped SNN simulation engine.

A :class:`SpikingNetwork` is an ordered list of spiking layers terminated by
an :class:`~repro.snn.layers.OutputAccumulator`, together with an input
encoder.  ``run`` simulates the network for a fixed number of time steps on a
batch of static inputs and returns a :class:`SimulationResult` containing the
accumulated class scores over time and the recorded spiking activity.

The simulation itself lives in the layered engine: ``run`` delegates to
:func:`repro.engine.run.simulate` (plan preparation in
:mod:`repro.engine.plan`, the step loop in :mod:`repro.engine.run`), so this
module only defines the network structure, the configuration and the result
container.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.snn.encoding import InputEncoder
from repro.snn.layers import OutputAccumulator, SpikingLayer
from repro.snn.recording import SpikeRecord
from repro.utils.config import FrozenConfig, validate_positive
from repro.utils.dtypes import resolve_dtype


@dataclass(frozen=True)
class SimulationConfig(FrozenConfig):
    """Parameters of one SNN simulation run.

    Attributes
    ----------
    time_steps:
        Number of discrete simulation steps (the paper's "latency" axis).
    record_outputs_every:
        Store the accumulated output scores every this many steps (1 gives the
        full inference curve of Fig. 4; larger values save memory).
    record_trains:
        Record full spike trains for a sampled subset of neurons (needed by
        the ISI / firing-pattern analyses).
    sample_fraction:
        Fraction of neurons per layer whose trains are recorded (paper: 10%).
    seed:
        Seed for neuron sampling (and stochastic encoders if any).
    dtype:
        Simulation precision: ``"float32"``, ``"float64"`` or ``None`` to use
        the project dtype policy (float32 by default; see
        :mod:`repro.utils.dtypes`).  Float64 runs reproduce the original
        engine's outputs bit for bit.
    backend:
        Compute backend running the kernel hot paths: a registered
        :mod:`repro.backends` name (``"numpy"``, ``"numpy-blocked"``,
        ``"torch"``, …) or ``None`` for the backend policy (the
        ``repro --backend`` flag / ``REPRO_BACKEND`` environment variable /
        the ``numpy`` reference backend).
    early_exit_patience:
        Converged-image early exit: freeze an image once its output argmax
        has been stable for this many consecutive steps, dropping it from the
        simulated batch (its spikes stop; its recorded scores repeat the
        converged values for the rest of the run).  ``None`` (default)
        disables the mechanism entirely, leaving results identical to the
        seed engine.
    early_exit_margin:
        Adaptive early exit: additionally require the image's *per-step
        output margin* — the gap between its top-two accumulated class
        scores, divided by the steps simulated so far — to stay at or above
        this threshold throughout the ``early_exit_patience`` window, so
        images only freeze once the decision is confidently separated rather
        than merely unchanged.  Requires ``early_exit_patience``; ``None``
        (default) keeps the pure argmax-stability criterion, leaving results
        identical to runs without the mechanism.
    """

    time_steps: int = 100
    record_outputs_every: int = 1
    record_trains: bool = False
    sample_fraction: float = 0.1
    seed: int = 0
    dtype: Optional[str] = None
    backend: Optional[str] = None
    early_exit_patience: Optional[int] = None
    early_exit_margin: Optional[float] = None

    def __post_init__(self) -> None:
        validate_positive("time_steps", self.time_steps)
        validate_positive("record_outputs_every", self.record_outputs_every)
        if not 0.0 < self.sample_fraction <= 1.0:
            raise ValueError(
                f"sample_fraction must be in (0, 1], got {self.sample_fraction}"
            )
        if self.early_exit_patience is not None:
            validate_positive("early_exit_patience", self.early_exit_patience)
        if self.early_exit_margin is not None:
            validate_positive("early_exit_margin", self.early_exit_margin)
            if self.early_exit_patience is None:
                raise ValueError(
                    "early_exit_margin requires early_exit_patience (the margin "
                    "must hold for a patience window to freeze an image)"
                )
        resolve_dtype(self.dtype)  # fail fast on unsupported dtypes
        if self.backend is not None:
            from repro.backends import validate_backend_name

            # fail fast on unknown backend names (with a did-you-mean hint);
            # availability of optional dependencies is checked at plan time
            validate_backend_name(self.backend)


@dataclass
class SimulationResult:
    """Outcome of one :meth:`SpikingNetwork.run` call.

    Attributes
    ----------
    output_history:
        Accumulated class scores at the recorded steps, shape
        ``(num_records, batch, classes)``.
    recorded_steps:
        1-based time steps at which ``output_history`` snapshots were taken.
    record:
        The :class:`~repro.snn.recording.SpikeRecord` with per-layer activity.
    """

    output_history: np.ndarray
    recorded_steps: np.ndarray
    record: SpikeRecord
    time_steps: int
    batch_size: int
    num_neurons: int
    labels: Optional[np.ndarray] = None
    #: per-image step at which early exit froze the image (-1 = never frozen;
    #: None when early exit was disabled)
    frozen_at: Optional[np.ndarray] = None

    @property
    def final_outputs(self) -> np.ndarray:
        """Accumulated class scores after the final step, shape (batch, classes)."""
        return self.output_history[-1]

    def predictions(self, step_index: int = -1) -> np.ndarray:
        """Predicted class per sample at a recorded step (default: last)."""
        return self.output_history[step_index].argmax(axis=1)

    def accuracy(self, labels: Optional[np.ndarray] = None, step_index: int = -1) -> float:
        """Top-1 accuracy at a recorded step against ``labels``."""
        labels = self._resolve_labels(labels)
        predicted = self.predictions(step_index)
        if labels.size == 0:
            return 0.0
        return float(np.mean(predicted == labels))

    def accuracy_curve(self, labels: Optional[np.ndarray] = None) -> np.ndarray:
        """Accuracy at every recorded step, shape ``(num_records,)``."""
        labels = self._resolve_labels(labels)
        if labels.size == 0:
            return np.zeros(self.output_history.shape[0])
        predicted = self.output_history.argmax(axis=2)
        return (predicted == labels[None, :]).mean(axis=1)

    def total_spikes(self, include_input: bool = True) -> int:
        """Total spikes emitted across the whole run."""
        return self.record.total_spikes(include_input=include_input)

    def spikes_per_sample(self, include_input: bool = True) -> float:
        """Average number of spikes per input sample."""
        if self.batch_size == 0:
            return 0.0
        return self.total_spikes(include_input=include_input) / self.batch_size

    def spiking_density(self, latency: Optional[int] = None, include_input: bool = True) -> float:
        """Spiking density as defined in Table 2 of the paper.

        ``density = spikes per image / (num_neurons · latency)`` — the expected
        number of spikes a neuron emits per time step.
        """
        latency = self.time_steps if latency is None else latency
        neurons = self.record.total_neurons(include_input=include_input)
        if latency <= 0 or neurons <= 0:
            return 0.0
        cumulative = self.record.cumulative_spikes(include_input=include_input)
        upto = int(min(latency, len(cumulative)))
        spikes = float(cumulative[upto - 1]) if upto > 0 else 0.0
        return spikes / self.batch_size / (neurons * latency)

    def _resolve_labels(self, labels: Optional[np.ndarray]) -> np.ndarray:
        if labels is None:
            labels = self.labels
        if labels is None:
            raise ValueError("labels are required (pass them or set result.labels)")
        return np.asarray(labels)


class SpikingNetwork:
    """A converted spiking network plus its input encoder.

    Parameters
    ----------
    layers:
        Ordered spiking layers; the last one must be an
        :class:`~repro.snn.layers.OutputAccumulator`.
    encoder:
        The input-layer :class:`~repro.snn.encoding.InputEncoder`.
    input_shape:
        Per-sample input shape (used for validation and neuron counting).
    """

    def __init__(
        self,
        layers: Sequence[SpikingLayer],
        encoder: InputEncoder,
        input_shape: Tuple[int, ...],
        name: str = "snn",
    ) -> None:
        if not layers:
            raise ValueError("SpikingNetwork requires at least one layer")
        if not isinstance(layers[-1], OutputAccumulator):
            raise ValueError("the final layer must be an OutputAccumulator")
        self.layers: List[SpikingLayer] = list(layers)
        self.encoder = encoder
        self.input_shape = tuple(int(v) for v in input_shape)
        self.name = name
        self.validate_shapes()

    # -- structure -------------------------------------------------------
    def validate_shapes(self) -> Tuple[int, ...]:
        """Propagate the input shape through every layer, raising on mismatch."""
        shape = self.input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
        return shape

    @property
    def output_layer(self) -> OutputAccumulator:
        return self.layers[-1]  # type: ignore[return-value]

    @property
    def num_classes(self) -> int:
        return self.output_layer.num_classes

    def num_input_neurons(self) -> int:
        size = 1
        for dim in self.input_shape:
            size *= dim
        return size

    def num_neurons(self, include_input: bool = True) -> int:
        """Total IF neurons per sample (the paper's "# of neurons" column)."""
        total = sum(layer.num_neurons for layer in self.layers if layer.is_spiking)
        if include_input:
            total += self.num_input_neurons()
        return int(total)

    def summary(self) -> str:
        """Human-readable per-layer summary."""
        lines = [f"SpikingNetwork {self.name!r} (encoder={self.encoder.describe()})"]
        shape = self.input_shape
        lines.append(f"  input               shape={shape} neurons={self.num_input_neurons()}")
        for layer in self.layers:
            shape = layer.output_shape(shape)
            lines.append(
                f"  {layer.name:<20} shape={str(shape):<18} neurons={layer.num_neurons}"
            )
        lines.append(f"  total spiking neurons: {self.num_neurons()}")
        return "\n".join(lines)

    # -- simulation ------------------------------------------------------
    def run(
        self,
        x: np.ndarray,
        config: Optional[SimulationConfig] = None,
        labels: Optional[np.ndarray] = None,
    ) -> SimulationResult:
        """Simulate the network on a batch of static inputs.

        Delegates to the layered engine — :func:`repro.engine.run.simulate`
        (plan + step loop); callers serving many batches should hold a
        :class:`repro.engine.session.InferenceSession` instead, which reuses
        the plan across requests.

        Parameters
        ----------
        x:
            Input batch of shape ``(N,) + input_shape`` with values in [0, 1].
        config:
            Simulation parameters (defaults to ``SimulationConfig()``).
        labels:
            Optional ground-truth labels stored on the result for convenience.
        """
        from repro.engine.run import simulate

        return simulate(self, x, config=config, labels=labels)

    def simulate(
        self,
        x: np.ndarray,
        config: Optional[SimulationConfig] = None,
        labels: Optional[np.ndarray] = None,
    ) -> SimulationResult:
        """Alias of :meth:`run`, matching the engine's build/plan/run vocabulary."""
        return self.run(x, config=config, labels=labels)
