"""The paper's primary contribution: burst coding and the hybrid coding scheme.

* :mod:`repro.core.coding` — the :class:`NeuralCoding` vocabulary and the
  per-scheme parameters (``v_th``, burst constant β, phase period k).
* :mod:`repro.core.hybrid` — :class:`HybridCodingScheme`, the layer-wise
  "input-hidden" coding combination (e.g. ``phase-burst``) together with the
  factories that build the matching input encoder and hidden-layer threshold
  dynamics.
* :mod:`repro.core.registry` — the pluggable coding-scheme registry: encoders
  and threshold dynamics register via decorator, and every name-based call
  site (``NeuralCoding.from_value``, ``make_encoder``,
  ``HybridCodingScheme.from_notation``, the CLI) resolves through it.
* :mod:`repro.core.pipeline` — :class:`SNNInferencePipeline`, the end-to-end
  train → convert → simulate → measure workflow that every experiment and
  benchmark uses (delegating to the layered engine in :mod:`repro.engine`).
"""

from repro.core import registry
from repro.core.coding import NeuralCoding, CodingParams
from repro.core.hybrid import HybridCodingScheme, standard_schemes, table1_schemes
from repro.core.pipeline import (
    AggregatedRun,
    PipelineConfig,
    SNNInferencePipeline,
)

__all__ = [
    "registry",
    "NeuralCoding",
    "CodingParams",
    "HybridCodingScheme",
    "standard_schemes",
    "table1_schemes",
    "AggregatedRun",
    "PipelineConfig",
    "SNNInferencePipeline",
]
