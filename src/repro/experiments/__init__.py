"""Experiment harness: one module per paper table / figure.

Every module exposes a ``run_*`` function returning plain data structures and
a ``format_*`` function rendering the same rows/series the paper reports, so
the benchmark suite can both measure runtime and print the reproduced table.

| Paper item | Module | Entry point |
|------------|--------|-------------|
| Fig. 1     | :mod:`repro.experiments.fig1`   | ``run_fig1``   |
| Fig. 2     | :mod:`repro.experiments.fig2`   | ``run_fig2``   |
| Table 1    | :mod:`repro.experiments.table1` | ``run_table1`` |
| Fig. 3     | :mod:`repro.experiments.fig3`   | ``run_fig3``   |
| Fig. 4     | :mod:`repro.experiments.fig4`   | ``run_fig4``   |
| Table 2    | :mod:`repro.experiments.table2` | ``run_table2`` |
| Fig. 5     | :mod:`repro.experiments.fig5`   | ``run_fig5``   |

Workloads (dataset + trained DNN) are built and cached by
:mod:`repro.experiments.workloads`.
"""

from repro.experiments.workloads import (
    Workload,
    WorkloadSpec,
    build_workload,
    clear_workload_cache,
    cifar10_workload,
    cifar100_workload,
    mnist_workload,
)
from repro.experiments.fig1 import run_fig1, format_fig1
from repro.experiments.fig2 import run_fig2, format_fig2
from repro.experiments.table1 import run_table1, format_table1
from repro.experiments.fig3 import run_fig3, format_fig3
from repro.experiments.fig4 import run_fig4, format_fig4
from repro.experiments.table2 import run_table2, format_table2
from repro.experiments.fig5 import run_fig5, format_fig5
from repro.experiments.runner import EXPERIMENT_NAMES, RunnerConfig, run_all, run_experiment

__all__ = [
    "EXPERIMENT_NAMES",
    "RunnerConfig",
    "run_all",
    "run_experiment",
    "Workload",
    "WorkloadSpec",
    "build_workload",
    "clear_workload_cache",
    "cifar10_workload",
    "cifar100_workload",
    "mnist_workload",
    "run_fig1",
    "format_fig1",
    "run_fig2",
    "format_fig2",
    "run_table1",
    "format_table1",
    "run_fig3",
    "format_fig3",
    "run_fig4",
    "format_fig4",
    "run_table2",
    "format_table2",
    "run_fig5",
    "format_fig5",
]
