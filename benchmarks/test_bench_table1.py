"""Benchmark regenerating Table 1: accuracy / latency / spikes for the nine
input-hidden coding combinations on the CIFAR-10-like VGG workload.

Paper shape to reproduce:

* burst coding in the hidden layers reaches the DNN accuracy for every input
  coding and is the best hidden coding overall,
* phase coding in the hidden layers is the most spike-hungry configuration,
* ``rate-phase`` is the worst combination,
* the proposed ``phase-burst`` reaches the DNN accuracy with few spikes.
"""

from repro.experiments.table1 import format_table1, run_table1


def test_bench_table1(benchmark, save_result, scheme_sweep):
    rows = benchmark.pedantic(
        lambda: run_table1(runs=scheme_sweep, target_fraction=1.0),
        rounds=1,
        iterations=1,
    )
    save_result("table1_coding_combinations", format_table1(rows))

    by_combo = {(row.input_coding, row.hidden_coding): row for row in rows}
    dnn = rows[0].dnn_accuracy

    # burst hidden coding reaches (or nearly reaches) the DNN accuracy for
    # real and phase input coding
    assert by_combo[("real", "burst")].accuracy >= dnn - 0.05
    assert by_combo[("phase", "burst")].accuracy >= dnn - 0.05

    # phase coding in the hidden layers produces the most spikes over the
    # full budget for each input coding
    for input_coding in ("real", "rate", "phase"):
        phase_spikes = by_combo[(input_coding, "phase")].total_spikes_per_image
        burst_spikes = by_combo[(input_coding, "burst")].total_spikes_per_image
        assert phase_spikes > burst_spikes

    # rate-phase is the worst configuration (paper: 36.39% vs >= 82% elsewhere)
    accuracies = {combo: row.accuracy for combo, row in by_combo.items()}
    assert accuracies[("rate", "phase")] <= max(accuracies.values()) - 0.05
