"""Tests for the CLI (repro.cli) and the experiment runner
(repro.experiments.runner)."""

import pytest

from repro.cli import build_parser, main
from repro.experiments.runner import EXPERIMENT_NAMES, RunnerConfig, run_all, run_experiment
from repro.experiments.workloads import clear_workload_cache


@pytest.fixture(autouse=True, scope="module")
def _small_cached_workloads():
    """Experiments in this module run at the fast preset; clear the cache
    afterwards so other test modules rebuild their own workloads."""
    clear_workload_cache()
    yield
    clear_workload_cache()


def _tiny_config():
    return RunnerConfig(
        time_steps=25, num_images=6, samples_per_class=8, table2_datasets=("mnist",), seed=0
    )


class TestRunnerConfig:
    def test_fast_preset_smaller_than_default(self):
        fast = RunnerConfig.fast()
        default = RunnerConfig()
        assert fast.time_steps < default.time_steps
        assert fast.num_images < default.num_images


class TestRunExperiment:
    def test_unknown_experiment(self):
        with pytest.raises(ValueError):
            run_experiment("fig9")

    def test_fig1_runs_without_workload(self):
        text = run_experiment("fig1", _tiny_config())
        assert "Fig. 1" in text

    @pytest.mark.parametrize("name", ["fig2", "fig5", "table2"])
    def test_mnist_experiments(self, name):
        text = run_experiment(name, _tiny_config())
        assert name.replace("fig", "Fig. ").replace("table", "Table ") in text

    def test_table1_runs(self):
        text = run_experiment("table1", _tiny_config())
        assert "Table 1" in text
        assert "phase" in text


class TestRunAll:
    def test_selected_experiments_share_sweep(self):
        seen = []
        outputs = run_all(
            _tiny_config(),
            experiments=("fig1", "table1", "fig4"),
            on_result=lambda name, text: seen.append(name),
        )
        assert set(outputs) == {"fig1", "table1", "fig4"}
        assert seen == ["fig1", "table1", "fig4"]
        assert "Fig. 4" in outputs["fig4"]

    def test_experiment_names_constant_covers_all(self):
        assert set(EXPERIMENT_NAMES) == {
            "fig1", "fig2", "table1", "fig3", "fig4", "table2", "fig5"
        }


class TestCliParser:
    def test_experiment_subcommand_parses(self):
        args = build_parser().parse_args(["experiment", "fig1", "--fast"])
        assert args.command == "experiment"
        assert args.name == "fig1"
        assert args.fast

    def test_experiment_rejects_unknown_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.command == "compare"
        assert "phase-burst" in args.schemes

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert "repro" in capsys.readouterr().out

    def test_serve_subcommand_parses(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--max-batch-size", "4", "--max-wait-ms", "2.5",
             "--scheme", "phase-burst", "real-rate"]
        )
        assert args.command == "serve"
        assert args.port == 0
        assert args.max_batch_size == 4
        assert args.max_wait_ms == 2.5
        assert args.schemes == ["phase-burst", "real-rate"]

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.schemes == ["phase-burst"]
        assert args.max_queue == 64


class TestCliMain:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_info_command(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "phase-burst" in out
        assert "experiments" in out

    def test_experiment_fig1_to_file(self, tmp_path, capsys):
        output = tmp_path / "fig1.txt"
        code = main(["experiment", "fig1", "--fast", "--output", str(output)])
        assert code == 0
        assert output.exists()
        assert "Fig. 1" in output.read_text()
        assert "Fig. 1" in capsys.readouterr().out

    def test_compare_command_small(self, capsys):
        code = main(
            [
                "compare",
                "--schemes", "real-burst", "real-rate",
                "--dataset", "mnist",
                "--model", "mlp",
                "--time-steps", "20",
                "--images", "6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "real-burst" in out and "real-rate" in out

    def test_list_schemes_flag(self, capsys):
        assert main(["--list-schemes"]) == 0
        out = capsys.readouterr().out
        # the registry listing includes the built-ins and the TTFS extension
        for name in ("real", "rate", "phase", "burst", "ttfs"):
            assert name in out
        assert "phase-burst" in out

    def test_compare_unknown_scheme_fails_helpfully(self, capsys):
        # exits with a did-you-mean error before building any workload
        assert main(["compare", "--schemes", "phse-burst"]) == 2
        err = capsys.readouterr().err
        assert "did you mean 'phase'" in err
        assert "--list-schemes" in err

    def test_compare_registry_product_schemes(self, capsys):
        """`--schemes all-input:burst` resolves through the registry instead
        of any hard-coded notation tuple (covers the TTFS extension too)."""
        code = main(
            [
                "compare",
                "--schemes", "all-input:burst",
                "--dataset", "mnist",
                "--model", "mlp",
                "--time-steps", "10",
                "--images", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        from repro.core.registry import input_codings

        for coding in input_codings():
            assert f"{coding}-burst" in out

    def test_compare_product_spec_typo_fails_helpfully(self, capsys):
        assert main(["compare", "--schemes", "phse:burst"]) == 2
        err = capsys.readouterr().err
        assert "did you mean 'phase'" in err

    def test_compare_product_invalid_side_fails_helpfully(self, capsys):
        # 'real' has no hidden-layer dynamics: not a valid rhs for a product
        assert main(["compare", "--schemes", "all:real"]) == 2
        err = capsys.readouterr().err
        assert "not valid for the hidden side" in err

    def test_compare_registry_extension_scheme(self, capsys):
        """TTFS reaches the CLI purely through the registry."""
        code = main(
            [
                "compare",
                "--schemes", "ttfs-burst",
                "--dataset", "mnist",
                "--model", "mlp",
                "--time-steps", "16",
                "--images", "6",
            ]
        )
        assert code == 0
        assert "ttfs-burst" in capsys.readouterr().out


class TestCliBackends:
    def test_list_backends_flag(self, capsys):
        assert main(["--list-backends"]) == 0
        out = capsys.readouterr().out
        assert "numpy (default)" in out
        assert "numpy-blocked" in out
        assert "torch" in out
        assert "effective backend" in out

    def test_unknown_backend_fails_helpfully(self, capsys):
        assert main(["--backend", "nmpy", "info"]) == 2
        err = capsys.readouterr().err
        assert "did you mean 'numpy'" in err
        assert "--list-backends" in err

    def test_backend_flag_sets_process_default(self, capsys):
        from repro.backends import default_backend_name, set_default_backend

        try:
            assert main(["--backend", "numpy-blocked", "info"]) == 0
            assert default_backend_name() == "numpy-blocked"
        finally:
            set_default_backend(None)

    def test_compare_on_blocked_backend(self, capsys):
        from repro.backends import set_default_backend

        try:
            code = main(
                [
                    "--backend", "numpy-blocked",
                    "compare",
                    "--schemes", "real-burst",
                    "--dataset", "mnist",
                    "--model", "mlp",
                    "--time-steps", "15",
                    "--images", "4",
                ]
            )
        finally:
            set_default_backend(None)
        assert code == 0
        assert "real-burst" in capsys.readouterr().out

    def test_early_exit_margin_flag_parses(self):
        parser = build_parser()
        args = parser.parse_args(
            ["compare", "--early-exit-patience", "10", "--early-exit-margin", "0.05"]
        )
        assert args.early_exit_patience == 10
        assert args.early_exit_margin == pytest.approx(0.05)
