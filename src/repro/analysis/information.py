"""Information-transmission analysis of the neural codings.

The paper's central argument is about how *efficiently* a coding scheme
transmits a neuron's activation downstream: rate coding needs ``2^k`` steps
for ``k`` bits, phase coding needs ``k`` steps but a fixed spike budget per
period, and burst coding adapts its spike budget to the value being sent.
This module quantifies that argument directly on a single neuron:

* :func:`transmission_trace` drives one IF neuron with a constant value under
  a chosen coding and records, per time step, the cumulative transmitted
  amount and the cumulative number of spikes;
* :func:`reconstruction_error` measures how far the per-step average of the
  transmitted amount is from the true value (the decoding error a downstream
  neuron would see);
* :func:`transmission_efficiency` summarises the trade-off as the number of
  spikes and time steps needed to reach a target relative precision, plus an
  effective bits-per-spike figure;
* :func:`compare_codings` produces one summary per coding for a set of input
  values — the quantitative version of the paper's Fig. 1 argument.

These metrics are used by the ``examples/`` scripts and by tests; they are an
extension of the paper (which argues the point qualitatively).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.snn.neurons import IFNeuronState, ResetMode
from repro.snn.thresholds import make_threshold
from repro.utils.config import validate_positive


@dataclass
class TransmissionTrace:
    """Per-step record of one neuron transmitting a constant value."""

    coding: str
    value: float
    #: cumulative transmitted amplitude after each step, shape (T,)
    cumulative_transmitted: np.ndarray
    #: cumulative spike count after each step, shape (T,)
    cumulative_spikes: np.ndarray

    @property
    def time_steps(self) -> int:
        return int(self.cumulative_transmitted.shape[0])

    def estimate_at(self, step: int) -> float:
        """The downstream estimate of the value after ``step`` steps
        (cumulative transmitted amount divided by elapsed steps)."""
        if not 1 <= step <= self.time_steps:
            raise ValueError(f"step must be in [1, {self.time_steps}], got {step}")
        return float(self.cumulative_transmitted[step - 1] / step)


@dataclass
class TransmissionSummary:
    """Efficiency summary of one coding for one value (see
    :func:`transmission_efficiency`)."""

    coding: str
    value: float
    target_error: float
    steps_to_target: Optional[int]
    spikes_to_target: Optional[int]
    final_error: float
    total_spikes: int
    bits_per_spike: float


def transmission_trace(
    coding: str,
    value: float,
    time_steps: int = 256,
    v_th: Optional[float] = None,
    beta: float = 2.0,
    phase_period: int = 8,
) -> TransmissionTrace:
    """Drive one IF neuron with constant input ``value`` under ``coding``.

    The neuron uses reset-by-subtraction and weighted spikes, exactly as a
    hidden neuron of a converted SNN; the trace records what it passes on.
    """
    validate_positive("time_steps", time_steps)
    if not 0.0 <= value:
        raise ValueError(f"value must be non-negative, got {value}")
    threshold = make_threshold(coding, v_th=v_th, beta=beta, phase_period=phase_period)
    # single-neuron analysis is precision-sensitive, not a hot path: pin float64
    state = IFNeuronState((1, 1), reset_mode=ResetMode.SUBTRACT, dtype=np.float64)
    threshold.reset((1, 1), dtype=np.float64)

    transmitted = np.zeros(time_steps, dtype=np.float64)
    spikes = np.zeros(time_steps, dtype=np.int64)
    running_amount = 0.0
    running_spikes = 0
    for t in range(time_steps):
        spike, amplitude = state.step(np.array([[value]]), threshold.thresholds(t))
        threshold.update(spike)
        running_amount += float(amplitude.sum())
        running_spikes += int(spike.sum())
        transmitted[t] = running_amount
        spikes[t] = running_spikes
    return TransmissionTrace(
        coding=coding,
        value=value,
        cumulative_transmitted=transmitted,
        cumulative_spikes=spikes,
    )


def reconstruction_error(trace: TransmissionTrace) -> np.ndarray:
    """Absolute decoding error after each step: ``|transmitted/t − value|``."""
    steps = np.arange(1, trace.time_steps + 1, dtype=np.float64)
    estimates = trace.cumulative_transmitted / steps
    return np.abs(estimates - trace.value)


def transmission_efficiency(
    trace: TransmissionTrace, target_error: float = 0.01
) -> TransmissionSummary:
    """Summarise how quickly / cheaply a trace reaches a target precision.

    Parameters
    ----------
    target_error:
        Absolute error on the transmitted value considered "precise enough";
        0.01 corresponds to ~7 bits for values in [0, 1].

    Notes
    -----
    ``bits_per_spike`` is the effective information delivered per spike at the
    end of the trace: ``log2(1 / max(final_error, eps)) / total_spikes`` for
    values in (0, 1]; it is 0 when the neuron never spikes.
    """
    if target_error <= 0:
        raise ValueError(f"target_error must be positive, got {target_error}")
    errors = reconstruction_error(trace)
    reached = np.flatnonzero(errors <= target_error)
    steps_to_target = int(reached[0]) + 1 if reached.size else None
    spikes_to_target = (
        int(trace.cumulative_spikes[reached[0]]) if reached.size else None
    )
    final_error = float(errors[-1])
    total_spikes = int(trace.cumulative_spikes[-1])
    if total_spikes > 0:
        bits = float(np.log2(1.0 / max(final_error, 1e-12)))
        bits_per_spike = max(bits, 0.0) / total_spikes
    else:
        bits_per_spike = 0.0
    return TransmissionSummary(
        coding=trace.coding,
        value=trace.value,
        target_error=target_error,
        steps_to_target=steps_to_target,
        spikes_to_target=spikes_to_target,
        final_error=final_error,
        total_spikes=total_spikes,
        bits_per_spike=bits_per_spike,
    )


def compare_codings(
    values: Sequence[float],
    codings: Iterable[str] = ("rate", "phase", "burst"),
    time_steps: int = 256,
    target_error: float = 0.01,
    burst_v_th: float = 0.125,
    v_th: Optional[float] = None,
) -> Dict[str, Dict[float, TransmissionSummary]]:
    """Transmission-efficiency summaries for several codings and values.

    Returns a nested mapping ``coding → value → summary``.  The paper's
    qualitative ranking (burst transmits precisely with few spikes, rate needs
    many steps, phase needs a fixed spike budget) can be read directly off the
    ``steps_to_target`` / ``spikes_to_target`` entries.

    Parameters
    ----------
    burst_v_th:
        Base threshold of the burst coding when ``v_th`` is not given.
    v_th:
        If set, use this base threshold for *every* coding.  This is the
        apples-to-apples comparison of the paper's Section 3.1: with the same
        quantum, rate coding's throughput is capped at ``v_th`` per step
        (bounded transmission) while burst coding's is unbounded.
    """
    results: Dict[str, Dict[float, TransmissionSummary]] = {}
    for coding in codings:
        coding_v_th = v_th if v_th is not None else (burst_v_th if coding == "burst" else None)
        per_value: Dict[float, TransmissionSummary] = {}
        for value in values:
            trace = transmission_trace(
                coding, float(value), time_steps=time_steps, v_th=coding_v_th
            )
            per_value[float(value)] = transmission_efficiency(trace, target_error=target_error)
        results[coding] = per_value
    return results
