"""Figure 4: inference curves (accuracy vs time step) per coding combination.

The qualitative shape to reproduce: schemes with rate input coding converge
slowly; burst coding in the hidden layers converges fastest; ``rate-phase``
is the worst configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.pipeline import AggregatedRun
from repro.experiments.reporting import render_series, sparkline
from repro.experiments.sweep import run_all_schemes
from repro.experiments.workloads import Workload, cifar10_workload


@dataclass
class Fig4Curve:
    """One inference curve of Fig. 4."""

    scheme: str
    recorded_steps: np.ndarray
    accuracy_curve: np.ndarray
    dnn_accuracy: float

    @property
    def final_accuracy(self) -> float:
        return float(self.accuracy_curve[-1]) if self.accuracy_curve.size else 0.0

    def accuracy_at(self, step: int) -> float:
        """Accuracy at the closest recorded step ≤ ``step`` (0 before the first)."""
        indices = np.flatnonzero(self.recorded_steps <= step)
        if indices.size == 0:
            return 0.0
        return float(self.accuracy_curve[indices[-1]])

    def area_under_curve(self) -> float:
        """Normalised area under the inference curve (higher = faster convergence)."""
        if self.accuracy_curve.size == 0:
            return 0.0
        trapezoid = getattr(np, "trapezoid", None) or np.trapz  # numpy 2.x renamed trapz
        area = trapezoid(self.accuracy_curve, self.recorded_steps)
        return float(area / self.recorded_steps[-1])


def run_fig4(
    workload: Optional[Workload] = None,
    runs: Optional[Dict[str, AggregatedRun]] = None,
    time_steps: int = 150,
    num_images: int = 24,
    v_th: float = 0.125,
    seed: int = 0,
) -> List[Fig4Curve]:
    """Reproduce Fig. 4 (per-scheme inference curves)."""
    if runs is None:
        workload = workload or cifar10_workload()
        runs = run_all_schemes(
            workload, time_steps=time_steps, num_images=num_images, v_th=v_th, seed=seed
        )
    return [
        Fig4Curve(
            scheme=notation,
            recorded_steps=run.recorded_steps,
            accuracy_curve=run.accuracy_curve,
            dnn_accuracy=run.dnn_accuracy,
        )
        for notation, run in runs.items()
    ]


def format_fig4(curves: List[Fig4Curve], max_points: int = 10) -> str:
    """Render Fig. 4 as a sub-sampled table of curves plus sparklines."""
    if not curves:
        return "Fig. 4 — no curves"
    steps = curves[0].recorded_steps
    series = {curve.scheme: curve.accuracy_curve for curve in curves}
    table = render_series(
        "Fig. 4 — inference curves (accuracy vs time step)",
        steps,
        series,
        x_label="step",
        max_points=max_points,
    )
    sparks = "\n".join(
        f"  {curve.scheme:<12} {sparkline(curve.accuracy_curve)} final={curve.final_accuracy:.3f}"
        for curve in curves
    )
    return f"{table}\n{sparks}"
