"""Sequential model container with training, evaluation and activation capture.

The converter needs two things beyond plain inference:

* access to the ordered list of layers and their weights, and
* the per-layer *activations* over a calibration set, which drive the
  data-based weight normalisation of Diehl et al. [11] and the outlier-robust
  percentile variant of Rueckauer et al. [12, 13].

``Sequential.forward_collect`` provides the latter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ann.layers import Layer
from repro.ann.losses import Loss, SoftmaxCrossEntropy
from repro.ann.metrics import accuracy
from repro.ann.optimizers import Optimizer, SGD
from repro.data.dataset import iterate_minibatches
from repro.utils.logging import get_logger
from repro.utils.rng import SeedLike

logger = get_logger("ann.model")


@dataclass
class TrainingHistory:
    """Per-epoch training curves recorded by :meth:`Sequential.fit`."""

    loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)

    def last(self) -> Dict[str, float]:
        """Return the most recent value of each recorded curve."""
        summary: Dict[str, float] = {}
        if self.loss:
            summary["loss"] = self.loss[-1]
        if self.train_accuracy:
            summary["train_accuracy"] = self.train_accuracy[-1]
        if self.val_accuracy:
            summary["val_accuracy"] = self.val_accuracy[-1]
        return summary


class Sequential:
    """An ordered stack of layers trained with backpropagation.

    Parameters
    ----------
    layers:
        Layers applied in order.  The final layer should produce class logits;
        the softmax lives inside :class:`~repro.ann.losses.SoftmaxCrossEntropy`.
    input_shape:
        Per-sample input shape, e.g. ``(1, 28, 28)`` or ``(784,)``.  Providing
        it enables shape validation of the whole stack at construction time.
    name:
        Identifier used in logs.
    """

    def __init__(
        self,
        layers: Sequence[Layer],
        input_shape: Optional[Tuple[int, ...]] = None,
        name: str = "model",
    ) -> None:
        if not layers:
            raise ValueError("Sequential requires at least one layer")
        self.layers: List[Layer] = list(layers)
        self.name = name
        self.input_shape = tuple(input_shape) if input_shape is not None else None
        if self.input_shape is not None:
            self.validate_shapes(self.input_shape)

    # -- structure -------------------------------------------------------
    def validate_shapes(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Propagate ``input_shape`` through every layer, raising on mismatch."""
        shape = tuple(input_shape)
        for layer in self.layers:
            shape = layer.output_shape(shape)
        return shape

    def layer_shapes(self, input_shape: Optional[Tuple[int, ...]] = None) -> List[Tuple[int, ...]]:
        """Per-layer output shapes (index 0 is the first layer's output)."""
        shape = tuple(input_shape or self.input_shape or ())
        if not shape:
            raise ValueError("input_shape required (pass it or set it on the model)")
        shapes = []
        for layer in self.layers:
            shape = layer.output_shape(shape)
            shapes.append(shape)
        return shapes

    def num_params(self) -> int:
        """Total number of trainable scalar parameters."""
        return sum(layer.num_params() for layer in self.layers)

    def summary(self) -> str:
        """Human-readable per-layer summary (name, output shape, #params)."""
        lines = [f"Sequential {self.name!r}"]
        shape = self.input_shape
        for layer in self.layers:
            if shape is not None:
                shape = layer.output_shape(shape)
                shape_text = str(shape)
            else:
                shape_text = "?"
            lines.append(f"  {layer.name:<20} out={shape_text:<20} params={layer.num_params()}")
        lines.append(f"  total params: {self.num_params()}")
        return "\n".join(lines)

    # -- inference -------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the full stack and return the final-layer output (logits)."""
        out = np.asarray(x, dtype=np.float64)
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def predict(self, x: np.ndarray, batch_size: int = 128) -> np.ndarray:
        """Predict class indices for ``x`` in batches."""
        scores = self.predict_scores(x, batch_size=batch_size)
        return scores.argmax(axis=1)

    def predict_scores(self, x: np.ndarray, batch_size: int = 128) -> np.ndarray:
        """Return raw logits for ``x`` in batches."""
        x = np.asarray(x, dtype=np.float64)
        outputs = []
        for start in range(0, x.shape[0], batch_size):
            outputs.append(self.forward(x[start : start + batch_size], training=False))
        return np.concatenate(outputs, axis=0) if outputs else np.empty((0, 0))

    def forward_collect(self, x: np.ndarray) -> List[np.ndarray]:
        """Run inference and return the output of *every* layer.

        Used by the data-based weight normalisation: the maximum (or a high
        percentile) of each layer's activation over a calibration set becomes
        the layer's normalisation factor.
        """
        out = np.asarray(x, dtype=np.float64)
        activations = []
        for layer in self.layers:
            out = layer.forward(out, training=False)
            activations.append(out)
        return activations

    # -- training --------------------------------------------------------
    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Back-propagate a gradient through the stack (training use only)."""
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 10,
        batch_size: int = 32,
        loss: Optional[Loss] = None,
        optimizer: Optional[Optimizer] = None,
        validation_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        shuffle: bool = True,
        seed: SeedLike = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train with minibatch SGD and return the training history.

        Parameters
        ----------
        x, y:
            Training inputs and integer labels.
        loss:
            Loss object; defaults to softmax cross-entropy.
        optimizer:
            Optimizer; defaults to SGD with momentum 0.9.
        validation_data:
            Optional ``(x_val, y_val)`` evaluated after every epoch.
        """
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        loss = loss or SoftmaxCrossEntropy()
        optimizer = optimizer or SGD(learning_rate=0.01, momentum=0.9)
        history = TrainingHistory()
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y)

        for epoch in range(epochs):
            epoch_losses = []
            correct = 0
            seen = 0
            for bx, by in iterate_minibatches(x, y, batch_size, shuffle=shuffle, seed=seed):
                logits = self.forward(bx, training=True)
                value, grad = loss(logits, by)
                self.backward(grad)
                optimizer.step(self.layers)
                epoch_losses.append(value)
                correct += int((logits.argmax(axis=1) == by).sum())
                seen += bx.shape[0]
            epoch_loss = float(np.mean(epoch_losses)) if epoch_losses else 0.0
            train_acc = correct / max(seen, 1)
            history.loss.append(epoch_loss)
            history.train_accuracy.append(train_acc)
            if validation_data is not None:
                val_acc = self.evaluate(*validation_data, batch_size=batch_size)
                history.val_accuracy.append(val_acc)
                if verbose:
                    logger.info(
                        "%s epoch %d/%d loss=%.4f train_acc=%.4f val_acc=%.4f",
                        self.name, epoch + 1, epochs, epoch_loss, train_acc, val_acc,
                    )
            elif verbose:
                logger.info(
                    "%s epoch %d/%d loss=%.4f train_acc=%.4f",
                    self.name, epoch + 1, epochs, epoch_loss, train_acc,
                )
        return history

    def evaluate(self, x: np.ndarray, y: np.ndarray, batch_size: int = 128) -> float:
        """Top-1 accuracy of the model on ``(x, y)``."""
        scores = self.predict_scores(x, batch_size=batch_size)
        return accuracy(scores, y)

    # -- persistence helpers ---------------------------------------------
    def get_weights(self) -> List[Dict[str, np.ndarray]]:
        """Copy of each layer's parameter dictionary (empty for no-param layers)."""
        return [{k: v.copy() for k, v in layer.params.items()} for layer in self.layers]

    def set_weights(self, weights: List[Dict[str, np.ndarray]]) -> None:
        """Load parameters previously produced by :meth:`get_weights`."""
        if len(weights) != len(self.layers):
            raise ValueError(
                f"expected weights for {len(self.layers)} layers, got {len(weights)}"
            )
        for layer, layer_weights in zip(self.layers, weights):
            for key, value in layer_weights.items():
                if key not in layer.params:
                    raise KeyError(f"layer {layer.name} has no parameter {key!r}")
                if layer.params[key].shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {layer.name}.{key}: "
                        f"{layer.params[key].shape} vs {value.shape}"
                    )
                layer.params[key] = value.copy()
