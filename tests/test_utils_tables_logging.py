"""Tests for repro.utils.tables and repro.utils.logging."""

import logging

import pytest

from repro.utils.logging import RunLogger, get_logger
from repro.utils.tables import Table, format_float, format_int, format_si


class TestFormatters:
    def test_format_float_basic(self):
        assert format_float(1.23456, 2) == "1.23"

    def test_format_float_none(self):
        assert format_float(None) == "-"

    def test_format_float_nan(self):
        assert format_float(float("nan")) == "nan"

    def test_format_int(self):
        assert format_int(1234567) == "1,234,567"

    def test_format_int_none(self):
        assert format_int(None) == "-"

    def test_format_si_millions(self):
        assert format_si(6_920_000) == "6.92M"

    def test_format_si_thousands(self):
        assert format_si(1500) == "1.50k"

    def test_format_si_small(self):
        assert format_si(12.3) == "12.30"

    def test_format_si_billions(self):
        assert format_si(2.5e9) == "2.50G"


class TestTable:
    def test_requires_columns(self):
        with pytest.raises(ValueError):
            Table([])

    def test_render_contains_header_and_rows(self):
        table = Table(["scheme", "accuracy"], title="Results")
        table.add_row({"scheme": "phase-burst", "accuracy": 0.9141})
        text = table.render()
        assert "Results" in text
        assert "scheme" in text
        assert "phase-burst" in text
        assert "0.9141" in text

    def test_missing_cell_renders_dash(self):
        table = Table(["a", "b"])
        table.add_row({"a": 1})
        assert "-" in table.render().splitlines()[-1]

    def test_add_rows_bulk(self):
        table = Table(["x"])
        table.add_rows([{"x": i} for i in range(3)])
        assert len(table.rows) == 3

    def test_columns_are_aligned(self):
        table = Table(["name", "value"])
        table.add_row({"name": "a", "value": 1})
        table.add_row({"name": "longer-name", "value": 2})
        lines = table.render().splitlines()
        # header and the two data rows all have the same width
        assert len(lines[-1]) == len(lines[-2])


class TestLogging:
    def test_get_logger_returns_logger(self):
        assert isinstance(get_logger(), logging.Logger)

    def test_get_logger_child(self):
        child = get_logger("sub")
        assert child.name.endswith("sub")

    def test_run_logger_records(self):
        run = RunLogger("test")
        run.log(accuracy=0.9, scheme="phase-burst")
        run.log(accuracy=0.8, scheme="rate-rate")
        assert len(run) == 2
        assert run.column("accuracy") == [0.9, 0.8]

    def test_run_logger_elapsed_added(self):
        run = RunLogger("test")
        record = run.log(value=1)
        assert "elapsed_s" in record

    def test_run_logger_iterates(self):
        run = RunLogger("test")
        run.log(a=1)
        assert [r["a"] for r in run] == [1]
