"""Weight initialisers for the numpy ANN framework.

ReLU networks destined for DNN→SNN conversion are normally initialised with
He/Kaiming schemes; Xavier is provided for completeness.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute fan-in / fan-out for dense ``(in, out)`` or conv
    ``(out_channels, in_channels, kh, kw)`` weight shapes."""
    if len(shape) == 2:
        fan_in, fan_out = shape[0], shape[1]
    elif len(shape) == 4:
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        raise ValueError(f"unsupported weight shape {shape}")
    return int(fan_in), int(fan_out)


def he_normal(shape: Tuple[int, ...], seed: SeedLike = None) -> np.ndarray:
    """He (Kaiming) normal initialisation: std = sqrt(2 / fan_in)."""
    rng = as_rng(seed)
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape)


def he_uniform(shape: Tuple[int, ...], seed: SeedLike = None) -> np.ndarray:
    """He uniform initialisation: limit = sqrt(6 / fan_in)."""
    rng = as_rng(seed)
    fan_in, _ = _fan_in_out(shape)
    limit = np.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(-limit, limit, size=shape)


def xavier_uniform(shape: Tuple[int, ...], seed: SeedLike = None) -> np.ndarray:
    """Xavier/Glorot uniform initialisation: limit = sqrt(6 / (fan_in+fan_out))."""
    rng = as_rng(seed)
    fan_in, fan_out = _fan_in_out(shape)
    limit = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-limit, limit, size=shape)


def zeros_init(shape: Tuple[int, ...], seed: SeedLike = None) -> np.ndarray:
    """All-zero initialisation (biases)."""
    del seed  # deterministic
    return np.zeros(shape, dtype=np.float64)


INITIALIZERS = {
    "he_normal": he_normal,
    "he_uniform": he_uniform,
    "xavier_uniform": xavier_uniform,
    "zeros": zeros_init,
}


def get_initializer(name: str):
    """Look an initialiser up by name (raises ``ValueError`` if unknown)."""
    if name not in INITIALIZERS:
        raise ValueError(f"unknown initializer {name!r}; expected one of {sorted(INITIALIZERS)}")
    return INITIALIZERS[name]
