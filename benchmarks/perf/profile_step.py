"""Per-kernel seam profile of the simulation step: composed vs layer vs network.

Run from the repo root with::

    PYTHONPATH=src python benchmarks/perf/profile_step.py

Drives a short simulation of a representative network (conv → avgpool →
maxpool → flatten → dense → output, burst thresholds, phase encoder) through
an :class:`~repro.backends.instrument.InstrumentedBackend` once per program
tier — the composed per-kernel path, the PR 6 per-layer fused programs, and
the whole-network block programs — and writes the per-primitive call counts
and wall-clock seconds to ``benchmarks/results/BENCH_step_profile.json``.

This makes the backend-seam tax visible per primitive: the composed column
shows where the 5–8 crossings per layer go; the layer column shows what
per-layer fusion leaves (GEMMs, gathers and scans still cross the seam, one
``program:<layer>`` orchestration call per layer per step); the network
column collapses the orchestration to ~one ``network_program`` call per
block of steps.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

HERE = Path(__file__).resolve().parent
RESULTS_PATH = HERE.parent / "results" / "BENCH_step_profile.json"

#: simulated steps per profiled run (per-step figures are averaged over these)
PROFILE_STEPS = 20

#: the three program tiers REPRO_FUSED selects between
MODES = ("composed", "layer", "network")


def build_network():
    from repro.snn.encoding import make_encoder
    from repro.snn.layers import (
        OutputAccumulator,
        SpikingAvgPool2D,
        SpikingConv2D,
        SpikingDense,
        SpikingFlatten,
        SpikingMaxPool2D,
    )
    from repro.snn.network import SpikingNetwork
    from repro.snn.thresholds import BurstThreshold

    rng = np.random.default_rng(0)
    layers = [
        SpikingConv2D(
            rng.normal(scale=0.1, size=(16, 16, 3, 3)),
            rng.normal(scale=0.1, size=16),
            BurstThreshold(v_th=0.125),
            padding=1,
            input_shape=(16, 16, 16),
            name="conv",
        ),
        SpikingAvgPool2D(2, name="avgpool"),
        SpikingMaxPool2D(2, name="maxpool"),
        SpikingFlatten(name="flatten"),
        SpikingDense(
            rng.normal(scale=0.05, size=(16 * 4 * 4, 128)),
            rng.normal(scale=0.05, size=128),
            BurstThreshold(v_th=0.125),
            name="dense",
        ),
        OutputAccumulator(
            rng.normal(scale=0.05, size=(128, 10)),
            rng.normal(scale=0.05, size=10),
            name="output",
        ),
    ]
    encoder = make_encoder("phase", v_th=0.125)
    return SpikingNetwork(layers, encoder, (16, 16, 16))


def profile_mode(mode: str, batch: int = 8) -> dict:
    from repro.backends import fused_scope, get_backend
    from repro.backends.instrument import InstrumentedBackend
    from repro.engine.plan import SimulationPlan, recorded_step_schedule
    from repro.engine.run import execute
    from repro.snn.network import SimulationConfig
    from repro.utils.dtypes import resolve_dtype, simulation_dtype

    rng = np.random.default_rng(1)
    dtype = simulation_dtype()
    backend = InstrumentedBackend(get_backend("numpy"))
    network = build_network()
    x = np.asarray(rng.random((batch, 16, 16, 16)), dtype=dtype)
    config = SimulationConfig(time_steps=PROFILE_STEPS)

    with fused_scope(mode):
        plan = SimulationPlan(
            network=network,
            config=config,
            dtype=resolve_dtype(dtype),
            backend=backend,
            recorded_steps=recorded_step_schedule(config),
        )
        execute(plan.prepare(x))  # warm-up: lazy builds and calibrations
        prepared = plan.prepare(x)
        backend.recorder.reset()
        start = time.perf_counter()
        execute(prepared)
        elapsed = time.perf_counter() - start

    snapshot = backend.recorder.snapshot()
    kernels = {
        k: v
        for k, v in snapshot.items()
        if not k.startswith("program:") and k != "network_program"
    }
    orchestration = {
        k: v
        for k, v in snapshot.items()
        if k.startswith("program:") or k == "network_program"
    }
    kernel_calls = sum(entry["calls"] for entry in kernels.values())
    orchestration_calls = sum(entry["calls"] for entry in orchestration.values())
    layer_count = len(network.layers)
    return {
        "mode": mode,
        "steps": PROFILE_STEPS,
        "layers": layer_count,
        "seconds_total": elapsed,
        "seam_calls_per_step": kernel_calls / PROFILE_STEPS,
        "seam_calls_per_layer_per_step": kernel_calls / PROFILE_STEPS / layer_count,
        "orchestration_calls_per_step": orchestration_calls / PROFILE_STEPS,
        "kernels": kernels,
        "programs": orchestration,
    }


def main() -> None:
    results = {mode: profile_mode(mode) for mode in MODES}
    report = {
        "description": (
            "per-kernel backend-seam profile of the simulation step "
            "(composed per-kernel path vs per-layer fused programs vs "
            "whole-network block programs)"
        ),
        **results,
        "seam_call_reduction": (
            results["composed"]["seam_calls_per_step"]
            / max(results["layer"]["seam_calls_per_step"], 1e-9)
        ),
        "orchestration_call_reduction": (
            results["layer"]["orchestration_calls_per_step"]
            / max(results["network"]["orchestration_calls_per_step"], 1e-9)
        ),
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(report, indent=2) + "\n")
    for mode in MODES:
        row = results[mode]
        print(
            f"{mode:>8}: {row['seam_calls_per_step']:6.1f} kernel seam calls/step, "
            f"{row['orchestration_calls_per_step']:5.2f} orchestration calls/step, "
            f"{row['seconds_total']:.4f}s total"
        )
    print(f"kernel seam-call reduction (composed → layer): {report['seam_call_reduction']:.1f}x")
    print(
        "orchestration-call reduction (layer → network): "
        f"{report['orchestration_call_reduction']:.1f}x"
    )
    print(f"[BENCH_step_profile written to {RESULTS_PATH}]")


if __name__ == "__main__":
    main()
