"""Convolutional network builders (the paper's "CNN" model rows).

The MNIST CNN in Table 2 (Diehl et al. / Kim et al. rows, 22,736 neurons) is a
small conv-pool-conv-pool-dense network; :func:`build_cnn` follows that shape.
:func:`build_small_cnn` is a narrower variant used in fast tests.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.ann.layers import AvgPool2D, Conv2D, Dense, Dropout, Flatten, MaxPool2D, ReLU
from repro.ann.model import Sequential
from repro.utils.rng import SeedLike, spawn_rngs


def build_cnn(
    input_shape: Tuple[int, int, int],
    num_classes: int,
    conv_channels: Sequence[int] = (12, 64),
    kernel_size: int = 5,
    dense_size: int = 128,
    pool: str = "avg",
    use_bias: bool = True,
    dropout: float = 0.0,
    seed: SeedLike = 0,
    name: str = "cnn",
) -> Sequential:
    """Build a conv-pool stack followed by a dense classifier.

    Parameters
    ----------
    input_shape:
        Channel-first per-sample shape, e.g. ``(1, 28, 28)``.
    conv_channels:
        Output channels of each conv block (each block = Conv + ReLU + Pool).
    pool:
        ``"avg"`` (conversion-friendly, used by Cao et al. [10]) or ``"max"``.
    dropout:
        Dropout rate applied before the final classifier (0 disables it).
    """
    if len(input_shape) != 3:
        raise ValueError(f"input_shape must be (C, H, W), got {input_shape}")
    if pool not in ("avg", "max"):
        raise ValueError(f"pool must be 'avg' or 'max', got {pool!r}")
    conv_channels = list(conv_channels)
    rngs = spawn_rngs(seed, len(conv_channels) + 2)

    layers = []
    channels, height, width = input_shape
    for index, out_channels in enumerate(conv_channels):
        layers.append(
            Conv2D(
                channels,
                out_channels,
                kernel_size=kernel_size,
                stride=1,
                padding=kernel_size // 2,
                use_bias=use_bias,
                seed=rngs[index],
                name=f"conv_{index}",
            )
        )
        layers.append(ReLU(name=f"relu_conv_{index}"))
        pool_layer = AvgPool2D(2, name=f"pool_{index}") if pool == "avg" else MaxPool2D(2, name=f"pool_{index}")
        layers.append(pool_layer)
        channels = out_channels
        height //= 2
        width //= 2
        if height < 1 or width < 1:
            raise ValueError(
                f"too many pooling stages for input {input_shape}: spatial size vanished"
            )

    layers.append(Flatten(name="flatten"))
    flat = channels * height * width
    layers.append(Dense(flat, dense_size, use_bias=use_bias, seed=rngs[-2], name="dense_hidden"))
    layers.append(ReLU(name="relu_dense"))
    if dropout > 0:
        layers.append(Dropout(dropout, seed=seed, name="dropout"))
    layers.append(Dense(dense_size, num_classes, use_bias=use_bias, seed=rngs[-1], name="dense_out"))
    return Sequential(layers, input_shape=tuple(input_shape), name=name)


def build_small_cnn(
    input_shape: Tuple[int, int, int],
    num_classes: int,
    seed: SeedLike = 0,
    name: str = "small-cnn",
) -> Sequential:
    """A narrow CNN (8→16 channels, 3x3 kernels) for fast tests and examples."""
    return build_cnn(
        input_shape=input_shape,
        num_classes=num_classes,
        conv_channels=(8, 16),
        kernel_size=3,
        dense_size=64,
        pool="avg",
        seed=seed,
        name=name,
    )
