"""Benchmark regenerating Fig. 4: accuracy-vs-time-step inference curves per
coding combination.

Paper shape to reproduce: rate input coding converges slowly; burst coding in
the hidden layers converges fastest (largest area under the curve among
hidden codings); ``rate-phase`` is the worst curve.
"""

from repro.experiments.fig4 import format_fig4, run_fig4


def test_bench_fig4(benchmark, save_result, scheme_sweep):
    curves = benchmark.pedantic(
        lambda: run_fig4(runs=scheme_sweep), rounds=1, iterations=1
    )
    save_result("fig4_inference_curves", format_fig4(curves, max_points=12))

    by_scheme = {curve.scheme: curve for curve in curves}

    # burst hidden coding converges at least as fast as phase hidden coding
    # for real and phase input (area under the inference curve)
    for input_coding in ("real", "phase"):
        burst_auc = by_scheme[f"{input_coding}-burst"].area_under_curve()
        phase_auc = by_scheme[f"{input_coding}-phase"].area_under_curve()
        assert burst_auc >= phase_auc * 0.95

    # rate-phase is the worst configuration by final accuracy (paper Fig. 4)
    finals = {scheme: curve.final_accuracy for scheme, curve in by_scheme.items()}
    assert finals["rate-phase"] <= max(finals.values()) - 0.05

    # rate input coding is slower than real input coding with the same hidden
    # coding (Poisson input is the information bottleneck)
    assert (
        by_scheme["real-burst"].area_under_curve()
        >= by_scheme["rate-burst"].area_under_curve() * 0.95
    )
