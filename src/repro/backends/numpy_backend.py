"""The numpy reference backend: the seed engine's kernels behind the seam.

This backend *is* the code the engine ran before the backend layer existed —
the kernel bodies were relocated here (not rewritten), so its float64 results
remain bit-identical to the golden seed reference
(``benchmarks/perf/seed_reference.json``), and its float32 results are
byte-for-byte what PR 1/2 shipped.  Every other backend is measured against
this one by the parity suite (``tests/test_backends.py``).

The conv plans are the cached :class:`~repro.ann.im2col.Im2colPlan` (canonical
/ exact path) and :class:`~repro.ann.im2col.DirectConvPlan` (stride-1 halo
fast path) objects unchanged.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.ann.im2col import DirectConvPlan, Im2colPlan
from repro.backends.base import KernelBackend
from repro.backends.registry import register_backend


class NumpyBackend(KernelBackend):
    """Reference kernels on plain numpy (the project's golden implementation)."""

    name = "numpy"
    description = (
        "reference numpy kernels with fused step programs and whole-network "
        "block execution (float64 bit-identical to the seed engine)"
    )

    # -- fused step programs -----------------------------------------------
    def compile_step_program(self, layer):
        from repro.backends.programs import compile_numpy_program

        return compile_numpy_program(layer, self)

    def compile_network_program(self, prepared):
        """Whole-network block execution: compose the layers' compiled step
        programs (plus encoder replay and spike recording) into one
        ``run_block`` program.  Inherited by the blocked and torch backends,
        whose per-layer programs slot straight into the generic driver."""
        from repro.backends.programs import compile_network_step_program

        return compile_network_step_program(prepared)

    # -- buffer allocation -------------------------------------------------
    def empty(self, shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        return np.empty(shape, dtype=dtype)

    def zeros(self, shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        return np.zeros(shape, dtype=dtype)

    def fill(self, array: np.ndarray, value: float) -> np.ndarray:
        array.fill(value)
        return array

    # -- GEMM family -------------------------------------------------------
    def matmul(self, a: np.ndarray, b: np.ndarray, out: np.ndarray) -> np.ndarray:
        return np.matmul(a, b, out=out)

    def add_inplace(self, target: np.ndarray, addend: np.ndarray) -> np.ndarray:
        target += addend
        return target

    def scale(self, a: np.ndarray, scalar: float, out: np.ndarray) -> np.ndarray:
        return np.multiply(a, scalar, out=out)

    def take(
        self, a: np.ndarray, indices: np.ndarray, axis: int, out: np.ndarray
    ) -> np.ndarray:
        return np.take(a, indices, axis=axis, out=out)

    def take_flat(
        self, a: np.ndarray, flat_indices: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        return np.take(a.reshape(-1), flat_indices, out=out)

    # -- activity scans ----------------------------------------------------
    def active_features(self, x: np.ndarray) -> np.ndarray:
        return np.flatnonzero(x.any(axis=0))

    def active_channels(self, x: np.ndarray) -> np.ndarray:
        return np.flatnonzero(x.any(axis=(0, 2, 3)))

    def count_nonzero(self, x: np.ndarray) -> int:
        return int(np.count_nonzero(x))

    # -- convolution plans -------------------------------------------------
    def im2col_plan(
        self,
        batch_size: int,
        channels: int,
        height: int,
        width: int,
        kernel_h: int,
        kernel_w: int,
        stride: int,
        padding: int,
        dtype: np.dtype,
    ) -> Im2colPlan:
        return Im2colPlan(
            batch_size, channels, height, width,
            kernel_h, kernel_w, stride, padding, dtype=dtype,
        )

    def direct_conv_plan(
        self,
        batch_size: int,
        channels: int,
        height: int,
        width: int,
        kernel: int,
        padding: int,
        out_channels: int,
        dtype: np.dtype,
    ) -> DirectConvPlan:
        return DirectConvPlan(
            batch_size, channels, height, width,
            kernel, padding, out_channels, dtype=dtype,
        )

    # -- pooling kernels ---------------------------------------------------
    def avgpool2x2(self, incoming: np.ndarray, out: np.ndarray) -> np.ndarray:
        oh, ow = out.shape[2], out.shape[3]
        # window-column order (0,0), (0,1), (1,0), (1,1) — the same
        # sequential reduction order as cols.mean(axis=1)
        np.add(
            incoming[:, :, 0 : oh * 2 : 2, 0 : ow * 2 : 2],
            incoming[:, :, 0 : oh * 2 : 2, 1 : ow * 2 : 2],
            out=out,
        )
        out += incoming[:, :, 1 : oh * 2 : 2, 0 : ow * 2 : 2]
        out += incoming[:, :, 1 : oh * 2 : 2, 1 : ow * 2 : 2]
        out /= 4
        return out

    def mean_columns(self, cols: np.ndarray, out_flat: np.ndarray) -> np.ndarray:
        return cols.mean(axis=1, out=out_flat)

    def argmax_columns(self, cols: np.ndarray, out: np.ndarray) -> np.ndarray:
        return np.argmax(cols, axis=1, out=out)

    # -- integrate-and-fire neuron kernel ----------------------------------
    def if_step(
        self,
        v_mem: np.ndarray,
        z: np.ndarray,
        threshold: np.ndarray,
        spikes: np.ndarray,
        signals: np.ndarray,
        amplitudes: np.ndarray,
        subtract_reset: bool,
        v_rest: float,
        allow_negative: bool,
    ) -> int:
        v_mem += z
        np.greater_equal(v_mem, threshold, out=spikes)
        # the same comparison as a 0.0/1.0 float array: float·float ufuncs are
        # markedly faster than bool→float converting ones, and every value is
        # exact, so th·signal ≡ th·spike bit for bit in both dtypes
        np.greater_equal(v_mem, threshold, out=signals)
        np.multiply(threshold, signals, out=amplitudes)

        if subtract_reset:
            v_mem -= amplitudes
        else:
            np.copyto(v_mem, v_mem.dtype.type(v_rest), where=spikes)

        if not allow_negative:
            np.maximum(v_mem, v_rest, out=v_mem)
        return int(np.count_nonzero(spikes))

    # -- burst-threshold kernels -------------------------------------------
    def burst_grow(
        self, g: np.ndarray, grown: np.ndarray, beta: float, ceiling: Optional[float]
    ) -> np.ndarray:
        np.multiply(g, beta, out=grown)
        if ceiling is not None:
            np.minimum(grown, ceiling, out=grown)
        return grown

    def burst_cap(
        self,
        grown: np.ndarray,
        g: np.ndarray,
        spikes: np.ndarray,
        consecutive: np.ndarray,
        cons_scratch: np.ndarray,
        capped: np.ndarray,
        max_burst_length: int,
    ) -> None:
        # stop growing once the burst reaches the cap
        np.add(consecutive, 1, out=cons_scratch)
        np.greater_equal(cons_scratch, max_burst_length, out=capped)
        np.copyto(grown, g, where=capped)
        np.multiply(cons_scratch, spikes, out=consecutive)

    def burst_commit_signals(
        self,
        grown: np.ndarray,
        spike_signals: np.ndarray,
        silent_signal: np.ndarray,
        g: np.ndarray,
    ) -> None:
        # g ← spikes ? grown : 1, as three unmasked passes (masked copyto is
        # far slower).  Exact for finite grown: x·1 = x, x·0 = 0, 0+1 = 1.
        np.multiply(grown, spike_signals, out=grown)
        np.subtract(1.0, spike_signals, out=silent_signal)
        np.add(grown, silent_signal, out=g)

    def burst_commit_bool(
        self,
        grown: np.ndarray,
        spikes: np.ndarray,
        silent: np.ndarray,
        g: np.ndarray,
    ) -> None:
        np.logical_not(spikes, out=silent)
        np.multiply(grown, spikes, out=grown)
        np.add(grown, silent, out=g)


@register_backend(
    "numpy",
    description=NumpyBackend.description,
)
def _build_numpy_backend() -> NumpyBackend:
    return NumpyBackend()
