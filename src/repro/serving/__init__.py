"""Concurrent batching inference serving.

The serving subsystem turns the layered engine's *prepare once, serve many
batches* seam (:class:`~repro.engine.session.InferenceSession`) into an
actual server: many concurrent clients share one prepared network per coding
scheme, with their individual requests coalesced into micro-batches.

* :mod:`repro.serving.scheduler` — the request queue + micro-batching
  scheduler (:class:`MicroBatcher`): flush on ``max_batch_size`` or
  ``max_wait_ms``, bounded-queue admission control, graceful drain;
* :mod:`repro.serving.engine` — the embeddable :class:`ServingEngine`:
  per-scheme sessions built lazily through the scheme registry behind an
  LRU-bounded cache, shared weight normalisation, per-request futures;
* :mod:`repro.serving.http` — the stdlib-only JSON front end
  (:class:`ServingHTTPServer`): ``/v1/classify``, ``/v1/schemes``,
  ``/healthz``, ``/metrics``;
* :mod:`repro.serving.protocol` / :mod:`repro.serving.metrics` — wire types
  and thread-safe serving statistics.

``repro serve`` (the CLI subcommand) wires a trained workload into these
pieces; tests and examples drive :class:`ServingEngine` in-process without
sockets.
"""

from repro.serving.engine import ServingConfig, ServingEngine
from repro.serving.http import ServingHTTPServer
from repro.serving.metrics import ServerMetrics
from repro.serving.protocol import ClassifyResult, parse_image, scheme_listing
from repro.serving.scheduler import (
    BatcherClosedError,
    BatchInfo,
    MicroBatcher,
    QueueFullError,
)

__all__ = [
    "ServingConfig",
    "ServingEngine",
    "ServingHTTPServer",
    "ServerMetrics",
    "ClassifyResult",
    "parse_image",
    "scheme_listing",
    "MicroBatcher",
    "BatchInfo",
    "QueueFullError",
    "BatcherClosedError",
]
