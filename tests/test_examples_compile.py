"""Sanity checks on the example scripts.

The examples are exercised end-to-end manually (their runtimes range from a
few seconds to a couple of minutes); here we verify that every script
compiles, has a ``main`` entry point guarded by ``__main__``, and only
imports public ``repro`` API that actually exists.
"""

import ast
import importlib
import py_compile
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_expected_scripts():
    names = {path.name for path in EXAMPLE_FILES}
    assert "quickstart.py" in names
    assert len(names) >= 3, "the paper reproduction ships at least three examples"


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_compiles(path, tmp_path):
    py_compile.compile(str(path), cfile=str(tmp_path / (path.name + "c")), doraise=True)


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_has_main_guard_and_docstring(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path.name} is missing a module docstring"
    has_main = any(isinstance(node, ast.FunctionDef) and node.name == "main" for node in tree.body)
    assert has_main, f"{path.name} has no main() function"
    guard = any(
        isinstance(node, ast.If)
        and isinstance(node.test, ast.Compare)
        and getattr(node.test.left, "id", "") == "__name__"
        for node in tree.body
    )
    assert guard, f"{path.name} has no __main__ guard"


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    """Every `from repro... import X` in an example refers to a real attribute."""
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and node.module.startswith("repro"):
            module = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"{path.name} imports {alias.name} from {node.module}, which does not exist"
                )
