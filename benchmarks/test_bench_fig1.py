"""Benchmark regenerating Fig. 1: single-neuron spike train / PSP / ISIH per
coding scheme.

Paper shape to reproduce: rate coding produces evenly spaced unit spikes
(no ISI-1 mass), phase coding produces densely packed weighted spikes, and
burst coding produces groups of consecutive spikes with growing amplitudes
(a clear ISI-1 peak that rate coding lacks).
"""

from repro.experiments.fig1 import format_fig1, run_fig1


def test_bench_fig1(benchmark, save_result):
    traces = benchmark.pedantic(
        lambda: run_fig1(drive=0.3, time_steps=500, burst_v_th=0.125),
        rounds=1,
        iterations=1,
    )
    text = format_fig1(traces)
    save_result("fig1_single_neuron", text)

    # qualitative checks mirroring Fig. 1
    assert traces["burst"].short_isi_fraction > traces["rate"].short_isi_fraction
    assert traces["phase"].short_isi_fraction >= traces["burst"].short_isi_fraction
    burst_amplitudes = traces["burst"].amplitudes[traces["burst"].spike_train]
    assert burst_amplitudes.max() > burst_amplitudes.min()
