"""Per-client admission control: token-bucket rate limits and quotas.

The serving engine guards its queues with a :class:`ClientRateLimiter`:
every classify request names a client (the ``X-API-Key`` header or a
``client_id`` field; anonymous traffic shares one identity) and must pass

* a **token bucket** — ``max_rps`` tokens refill per second up to a
  ``burst`` capacity, one token per request.  Short bursts ride on banked
  tokens; sustained overload drains the bucket and requests bounce until it
  refills.
* a **windowed quota** — at most ``quota`` admitted requests per client per
  ``quota_window_s`` seconds (a fixed window), independent of pacing.

Violations raise :class:`RateLimitedError` carrying ``retry_after_s`` — the
exact time until the bucket holds a token again, or until the quota window
resets — which the HTTP layer surfaces as *429 Too Many Requests* with a
``Retry-After`` header.

Per-client state is LRU-bounded (``max_clients``), so an open endpoint
churning through client ids cannot grow the limiter without bound.  Time is
read through an injectable ``clock`` (default :func:`time.monotonic`), so
refill and window-reset behaviour is tested with a fake clock instead of
sleeps.
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, Optional

#: identity assigned to requests that present no API key / client id
ANONYMOUS_CLIENT = "anonymous"


class RateLimitedError(RuntimeError):
    """A request bounced by a per-client rate limit or quota.

    ``retry_after_s`` is when the client may usefully retry (token refill or
    quota-window reset); the HTTP layer rounds it up into a ``Retry-After``
    header on the 429 response.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class TokenBucket:
    """The classic token bucket: ``rate`` tokens/second up to ``capacity``.

    Not thread-safe on its own — :class:`ClientRateLimiter` serialises
    access; standalone users must provide their own locking.
    """

    __slots__ = ("rate", "capacity", "tokens", "updated_at")

    def __init__(self, rate: float, capacity: float, now: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.rate = float(rate)
        self.capacity = float(capacity)
        self.tokens = float(capacity)  # a fresh client may burst immediately
        self.updated_at = float(now)

    def try_acquire(self, now: float, cost: float = 1.0) -> Optional[float]:
        """Take ``cost`` tokens; ``None`` on success, else seconds until the
        bucket will hold enough tokens to retry."""
        elapsed = max(0.0, now - self.updated_at)
        self.tokens = min(self.capacity, self.tokens + elapsed * self.rate)
        self.updated_at = now
        if self.tokens >= cost:
            self.tokens -= cost
            return None
        return (cost - self.tokens) / self.rate


class _ClientState:
    __slots__ = ("bucket", "window_start", "window_count")

    def __init__(self, bucket: Optional[TokenBucket], now: float) -> None:
        self.bucket = bucket
        self.window_start = now
        self.window_count = 0


class ClientRateLimiter:
    """Admission control keyed by client id (API key), LRU-bounded.

    Parameters
    ----------
    max_rps:
        Sustained per-client request rate (token-bucket refill); ``None``
        disables pacing.
    burst:
        Bucket capacity — how many requests a quiet client may fire at once
        (defaults to ``max(1, ceil(max_rps))``).
    quota:
        Maximum admitted requests per client per window; ``None`` disables
        quotas.
    quota_window_s:
        Fixed quota window length in seconds.
    clock:
        Monotonic time source (injectable for fake-clock tests).
    max_clients:
        Per-client states kept; the least recently seen client is evicted
        beyond this (an evicted client restarts with a full bucket).
    """

    def __init__(
        self,
        max_rps: Optional[float] = None,
        *,
        burst: Optional[float] = None,
        quota: Optional[int] = None,
        quota_window_s: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
        max_clients: int = 1024,
    ) -> None:
        if max_rps is not None and max_rps <= 0:
            raise ValueError(f"max_rps must be positive, got {max_rps}")
        if burst is not None and burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        if quota is not None and quota < 1:
            raise ValueError(f"quota must be >= 1, got {quota}")
        if quota_window_s <= 0:
            raise ValueError(f"quota_window_s must be positive, got {quota_window_s}")
        if max_clients < 1:
            raise ValueError(f"max_clients must be >= 1, got {max_clients}")
        self.max_rps = max_rps
        self.burst = (
            None if max_rps is None
            else float(burst) if burst is not None
            else float(max(1, math.ceil(max_rps)))
        )
        self.quota = quota
        self.quota_window_s = float(quota_window_s)
        self.max_clients = int(max_clients)
        self._clock = clock
        self._clients: "OrderedDict[str, _ClientState]" = OrderedDict()
        self._lock = threading.Lock()
        self._limited_total = 0

    @property
    def enabled(self) -> bool:
        """Whether any limit is actually configured."""
        return self.max_rps is not None or self.quota is not None

    def admit(self, client_id: Optional[str]) -> None:
        """Admit one request for ``client_id`` or raise :class:`RateLimitedError`.

        The quota is charged only when the request passes both checks, so a
        paced-out request does not consume quota.
        """
        if not self.enabled:
            return
        key = client_id or ANONYMOUS_CLIENT
        now = self._clock()
        with self._lock:
            state = self._clients.get(key)
            if state is None:
                bucket = (
                    None if self.max_rps is None
                    else TokenBucket(self.max_rps, self.burst, now)
                )
                state = _ClientState(bucket, now)
                self._clients[key] = state
                if len(self._clients) > self.max_clients:
                    self._clients.popitem(last=False)
            else:
                self._clients.move_to_end(key)
            if self.quota is not None:
                if now - state.window_start >= self.quota_window_s:
                    state.window_start = now
                    state.window_count = 0
                if state.window_count >= self.quota:
                    retry_after = state.window_start + self.quota_window_s - now
                    self._limited_total += 1
                    raise RateLimitedError(
                        f"client {key!r} exceeded its quota of {self.quota} requests "
                        f"per {self.quota_window_s:g}s window",
                        retry_after_s=max(0.001, retry_after),
                    )
            if state.bucket is not None:
                retry_after = state.bucket.try_acquire(now)
                if retry_after is not None:
                    self._limited_total += 1
                    raise RateLimitedError(
                        f"client {key!r} exceeded its rate limit of "
                        f"{self.max_rps:g} requests/s (burst {self.burst:g})",
                        retry_after_s=max(0.001, retry_after),
                    )
            if self.quota is not None:
                state.window_count += 1

    # -- introspection (``/metrics``) --------------------------------------
    @property
    def limited_total(self) -> int:
        with self._lock:
            return self._limited_total

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready limiter view for the ``/metrics`` response."""
        with self._lock:
            return {
                "max_rps": self.max_rps,
                "burst": self.burst,
                "quota": self.quota,
                "quota_window_s": self.quota_window_s if self.quota is not None else None,
                "clients_tracked": len(self._clients),
                "rate_limited_total": self._limited_total,
            }
