"""Tests for the ANN layers, including numerical gradient checks."""

import numpy as np
import pytest

from repro.ann.layers import (
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    ReLU,
)


def _loss_and_grad(output):
    """A simple quadratic 'loss' and its gradient used for gradient checks."""
    return 0.5 * float(np.sum(output**2)), output


class TestDense:
    def test_forward_shape(self):
        layer = Dense(4, 3, seed=0)
        assert layer.forward(np.zeros((2, 4))).shape == (2, 3)

    def test_output_shape(self):
        assert Dense(4, 3, seed=0).output_shape((4,)) == (3,)

    def test_output_shape_mismatch(self):
        with pytest.raises(ValueError):
            Dense(4, 3, seed=0).output_shape((5,))

    def test_forward_matches_manual(self):
        layer = Dense(2, 2, seed=0)
        layer.params["weight"] = np.array([[1.0, 2.0], [3.0, 4.0]])
        layer.params["bias"] = np.array([0.5, -0.5])
        out = layer.forward(np.array([[1.0, 1.0]]))
        assert np.allclose(out, [[4.5, 5.5]])

    def test_no_bias(self):
        layer = Dense(3, 2, use_bias=False, seed=0)
        assert "bias" not in layer.params
        assert layer.forward(np.zeros((1, 3))).shape == (1, 2)

    def test_bad_input_shape_raises(self):
        with pytest.raises(ValueError):
            Dense(3, 2, seed=0).forward(np.zeros((2, 4)))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            Dense(3, 2, seed=0).backward(np.zeros((2, 2)))

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Dense(0, 2)

    def test_num_params(self):
        assert Dense(4, 3, seed=0).num_params() == 4 * 3 + 3

    def test_weight_gradient_numeric(self, grad_checker):
        rng = np.random.default_rng(0)
        layer = Dense(4, 3, seed=1)
        x = rng.normal(size=(5, 4))

        def forward_loss():
            return _loss_and_grad(layer.forward(x, training=True))[0]

        out = layer.forward(x, training=True)
        _, grad_out = _loss_and_grad(out)
        layer.backward(grad_out)
        numeric_w = grad_checker(forward_loss, layer.params["weight"])
        numeric_b = grad_checker(forward_loss, layer.params["bias"])
        assert np.allclose(layer.grads["weight"], numeric_w, atol=1e-5)
        assert np.allclose(layer.grads["bias"], numeric_b, atol=1e-5)

    def test_input_gradient_numeric(self, grad_checker):
        rng = np.random.default_rng(1)
        layer = Dense(3, 2, seed=2)
        x = rng.normal(size=(4, 3))
        out = layer.forward(x, training=True)
        _, grad_out = _loss_and_grad(out)
        grad_in = layer.backward(grad_out)
        numeric = grad_checker(
            lambda: _loss_and_grad(layer.forward(x, training=True))[0], x
        )
        assert np.allclose(grad_in, numeric, atol=1e-5)


class TestReLULayer:
    def test_forward(self):
        layer = ReLU()
        assert np.array_equal(layer.forward(np.array([[-1.0, 2.0]])), [[0.0, 2.0]])

    def test_backward_masks_negative(self):
        layer = ReLU()
        layer.forward(np.array([[-1.0, 2.0]]), training=True)
        grad = layer.backward(np.array([[5.0, 5.0]]))
        assert np.array_equal(grad, [[0.0, 5.0]])

    def test_shape_preserved(self):
        assert ReLU().output_shape((3, 4, 4)) == (3, 4, 4)


class TestConv2D:
    def test_forward_shape(self):
        layer = Conv2D(3, 8, kernel_size=3, padding=1, seed=0)
        assert layer.forward(np.zeros((2, 3, 10, 10))).shape == (2, 8, 10, 10)

    def test_output_shape_stride(self):
        layer = Conv2D(1, 4, kernel_size=3, stride=2, padding=1, seed=0)
        assert layer.output_shape((1, 8, 8)) == (4, 4, 4)

    def test_wrong_channels(self):
        with pytest.raises(ValueError):
            Conv2D(3, 4, 3, seed=0).forward(np.zeros((1, 2, 8, 8)))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Conv2D(1, 1, kernel_size=0)
        with pytest.raises(ValueError):
            Conv2D(1, 1, kernel_size=3, padding=-1)

    def test_known_convolution_value(self):
        layer = Conv2D(1, 1, kernel_size=2, use_bias=False, seed=0)
        layer.params["weight"] = np.ones((1, 1, 2, 2))
        x = np.arange(9, dtype=float).reshape(1, 1, 3, 3)
        out = layer.forward(x)
        # sum of each 2x2 window
        assert np.allclose(out[0, 0], [[0 + 1 + 3 + 4, 1 + 2 + 4 + 5], [3 + 4 + 6 + 7, 4 + 5 + 7 + 8]])

    def test_gradients_numeric(self, grad_checker):
        rng = np.random.default_rng(2)
        layer = Conv2D(2, 3, kernel_size=3, stride=1, padding=1, seed=3)
        x = rng.normal(size=(2, 2, 5, 5))

        def forward_loss():
            return _loss_and_grad(layer.forward(x, training=True))[0]

        out = layer.forward(x, training=True)
        _, grad_out = _loss_and_grad(out)
        grad_in = layer.backward(grad_out)

        numeric_w = grad_checker(forward_loss, layer.params["weight"])
        numeric_b = grad_checker(forward_loss, layer.params["bias"])
        numeric_x = grad_checker(forward_loss, x)
        assert np.allclose(layer.grads["weight"], numeric_w, atol=1e-4)
        assert np.allclose(layer.grads["bias"], numeric_b, atol=1e-4)
        assert np.allclose(grad_in, numeric_x, atol=1e-4)


class TestPooling:
    def test_avg_pool_values(self):
        layer = AvgPool2D(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        assert np.allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_max_pool_values(self):
        layer = MaxPool2D(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        assert np.allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_pool_output_shapes(self):
        assert AvgPool2D(2).output_shape((3, 8, 8)) == (3, 4, 4)
        assert MaxPool2D(2).output_shape((3, 8, 8)) == (3, 4, 4)

    def test_avg_pool_gradient_numeric(self, grad_checker):
        rng = np.random.default_rng(3)
        layer = AvgPool2D(2)
        x = rng.normal(size=(1, 2, 4, 4))
        out = layer.forward(x, training=True)
        _, grad_out = _loss_and_grad(out)
        grad_in = layer.backward(grad_out)
        numeric = grad_checker(
            lambda: _loss_and_grad(layer.forward(x, training=True))[0], x
        )
        assert np.allclose(grad_in, numeric, atol=1e-5)

    def test_max_pool_gradient_numeric(self, grad_checker):
        rng = np.random.default_rng(4)
        layer = MaxPool2D(2)
        # well-separated values avoid ties that break the numerical gradient
        x = rng.permutation(np.arange(32, dtype=float)).reshape(1, 2, 4, 4)
        out = layer.forward(x, training=True)
        _, grad_out = _loss_and_grad(out)
        grad_in = layer.backward(grad_out)
        numeric = grad_checker(
            lambda: _loss_and_grad(layer.forward(x, training=True))[0], x
        )
        assert np.allclose(grad_in, numeric, atol=1e-4)

    def test_invalid_pool_size(self):
        with pytest.raises(ValueError):
            AvgPool2D(0)
        with pytest.raises(ValueError):
            MaxPool2D(0)


class TestFlattenDropout:
    def test_flatten_roundtrip(self):
        layer = Flatten()
        x = np.random.default_rng(0).normal(size=(2, 3, 4, 4))
        out = layer.forward(x, training=True)
        assert out.shape == (2, 48)
        assert layer.backward(out).shape == x.shape

    def test_flatten_output_shape(self):
        assert Flatten().output_shape((3, 4, 4)) == (48,)

    def test_dropout_inference_identity(self):
        layer = Dropout(0.5, seed=0)
        x = np.ones((4, 10))
        assert np.array_equal(layer.forward(x, training=False), x)

    def test_dropout_training_scales(self):
        layer = Dropout(0.5, seed=0)
        x = np.ones((2000, 10))
        out = layer.forward(x, training=True)
        # inverted dropout keeps the expectation at 1
        assert abs(out.mean() - 1.0) < 0.05
        assert set(np.unique(out)).issubset({0.0, 2.0})

    def test_dropout_backward_uses_mask(self):
        layer = Dropout(0.5, seed=1)
        x = np.ones((10, 10))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(out))
        assert np.array_equal(grad == 0.0, out == 0.0)

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestBatchNorm:
    def test_training_normalises(self):
        layer = BatchNorm(4)
        x = np.random.default_rng(0).normal(3.0, 2.0, size=(256, 4))
        out = layer.forward(x, training=True)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-7)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-3)

    def test_running_stats_updated(self):
        layer = BatchNorm(2, momentum=0.0)
        x = np.random.default_rng(1).normal(5.0, 1.0, size=(64, 2))
        layer.forward(x, training=True)
        assert np.allclose(layer.running_mean, x.mean(axis=0))

    def test_inference_uses_running_stats(self):
        layer = BatchNorm(2, momentum=0.0)
        x = np.random.default_rng(2).normal(size=(32, 2))
        layer.forward(x, training=True)
        out = layer.forward(x, training=False)
        expected = (x - layer.running_mean) / np.sqrt(layer.running_var + layer.eps)
        assert np.allclose(out, expected)

    def test_conv_input_shape(self):
        layer = BatchNorm(3)
        x = np.random.default_rng(3).normal(size=(4, 3, 5, 5))
        assert layer.forward(x, training=True).shape == x.shape

    def test_gradients_numeric(self, grad_checker):
        rng = np.random.default_rng(4)
        layer = BatchNorm(3)
        x = rng.normal(size=(8, 3))

        def forward_loss():
            return _loss_and_grad(layer.forward(x, training=True))[0]

        out = layer.forward(x, training=True)
        _, grad_out = _loss_and_grad(out)
        grad_in = layer.backward(grad_out)
        numeric_gamma = grad_checker(forward_loss, layer.params["gamma"])
        numeric_beta = grad_checker(forward_loss, layer.params["beta"])
        numeric_x = grad_checker(forward_loss, x)
        assert np.allclose(layer.grads["gamma"], numeric_gamma, atol=1e-4)
        assert np.allclose(layer.grads["beta"], numeric_beta, atol=1e-4)
        assert np.allclose(grad_in, numeric_x, atol=1e-4)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BatchNorm(0)
        with pytest.raises(ValueError):
            BatchNorm(3, momentum=1.5)
