"""Thread-safe serving metrics: counters, batch-size histogram, latencies.

One :class:`ServerMetrics` instance is shared by every micro-batcher of a
:class:`~repro.serving.engine.ServingEngine`; the HTTP front end renders
:meth:`ServerMetrics.snapshot` as the ``/metrics`` response.  Latency
quantiles are computed over a bounded reservoir of the most recent
observations (default 2048) so a long-lived server neither grows without
bound nor loses recency.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List, Optional


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100])."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1)))))
    return float(ordered[rank])


class ServerMetrics:
    """Aggregated serving statistics, safe to update from batcher threads."""

    def __init__(self, latency_window: int = 2048) -> None:
        self._lock = threading.Lock()
        self._requests_total = 0
        self._rejected_total = 0
        self._errors_total = 0
        self._batches_total = 0
        self._images_total = 0
        self._batch_size_histogram: Dict[int, int] = {}
        self._latencies_ms: Deque[float] = deque(maxlen=latency_window)

    # -- recording (called by the scheduler) -------------------------------
    def record_submit(self) -> None:
        """One request admitted to a queue."""
        with self._lock:
            self._requests_total += 1

    def record_reject(self) -> None:
        """One request turned away by admission control (bounded queue full)."""
        with self._lock:
            self._rejected_total += 1

    def record_batch(
        self, size: int, latencies_ms: Optional[List[float]] = None, error: bool = False
    ) -> None:
        """One executed micro-batch of ``size`` requests.

        ``latencies_ms`` are the per-request end-to-end latencies (queue wait
        plus batch execution) feeding the p50/p95 estimates.
        """
        with self._lock:
            self._batches_total += 1
            self._images_total += size
            self._batch_size_histogram[size] = self._batch_size_histogram.get(size, 0) + 1
            if error:
                self._errors_total += size
            for latency in latencies_ms or ():
                self._latencies_ms.append(float(latency))

    # -- reading -----------------------------------------------------------
    @property
    def requests_total(self) -> int:
        with self._lock:
            return self._requests_total

    @property
    def rejected_total(self) -> int:
        with self._lock:
            return self._rejected_total

    def batch_size_histogram(self) -> Dict[int, int]:
        """Copy of the ``{batch_size: count}`` histogram."""
        with self._lock:
            return dict(self._batch_size_histogram)

    def max_batch_size_seen(self) -> int:
        """Largest micro-batch executed so far (0 before the first batch)."""
        with self._lock:
            return max(self._batch_size_histogram) if self._batch_size_histogram else 0

    def snapshot(self, queue_depth: int = 0) -> Dict[str, object]:
        """JSON-ready metrics view (the ``/metrics`` response body)."""
        with self._lock:
            latencies = list(self._latencies_ms)
            return {
                "requests_total": self._requests_total,
                "rejected_total": self._rejected_total,
                "errors_total": self._errors_total,
                "batches_total": self._batches_total,
                "images_total": self._images_total,
                "queue_depth": int(queue_depth),
                "batch_size_histogram": {
                    str(size): count
                    for size, count in sorted(self._batch_size_histogram.items())
                },
                "latency_ms": {
                    "count": len(latencies),
                    "p50": round(percentile(latencies, 50.0), 3),
                    "p95": round(percentile(latencies, 95.0), 3),
                },
            }
