"""Shared builders for the perf benchmark harness.

The perf suite measures two things:

* **component throughput** — encoder / layer / neuron step times on fixed
  synthetic geometries (no training involved), catching regressions in the
  engine's inner loops;
* **end-to-end speed** — the Table 2 VGG workload (the same scale the seed
  baseline in ``seed_baseline.json`` was recorded at), proving the engine's
  speedup against the seed engine on identical work.

Scale knobs (environment variables, same convention as ``benchmarks/``):

* ``REPRO_BENCH_TIME_STEPS`` / ``REPRO_BENCH_NUM_IMAGES`` /
  ``REPRO_BENCH_SAMPLES_PER_CLASS`` — the end-to-end workload scale; the
  defaults match the recorded seed baseline, so the measured speedup is
  directly comparable.
* ``REPRO_BENCH_PERF_FULL=1`` — additionally time the full five-method
  Table 2 CIFAR-10 block (roughly 4× the single-scheme cost).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.hybrid import HybridCodingScheme
from repro.core.pipeline import AggregatedRun, SNNInferencePipeline
from repro.experiments.sweep import make_pipeline
from repro.experiments.workloads import Workload
from repro.snn.layers import SpikingConv2D, SpikingDense, SpikingMaxPool2D
from repro.snn.encoding import PhaseEncoder
from repro.snn.neurons import IFNeuronState
from repro.snn.thresholds import BurstThreshold
from repro.utils.dtypes import simulation_dtype
from repro.utils.timing import Timer, TimingResult, load_bench_json, time_callable

HERE = Path(__file__).resolve().parent
SEED_BASELINE_PATH = HERE / "seed_baseline.json"

BENCH_TIME_STEPS = int(os.environ.get("REPRO_BENCH_TIME_STEPS", "150"))
BENCH_NUM_IMAGES = int(os.environ.get("REPRO_BENCH_NUM_IMAGES", "24"))
BENCH_SAMPLES_PER_CLASS = int(os.environ.get("REPRO_BENCH_SAMPLES_PER_CLASS", "30"))
PERF_FULL = bool(os.environ.get("REPRO_BENCH_PERF_FULL"))


def current_scale() -> Dict[str, int]:
    return {
        "time_steps": BENCH_TIME_STEPS,
        "num_images": min(16, BENCH_NUM_IMAGES),
        "samples_per_class": BENCH_SAMPLES_PER_CLASS,
    }


def load_seed_baseline() -> Optional[dict]:
    return load_bench_json(SEED_BASELINE_PATH)


def baseline_is_comparable(baseline: Optional[dict]) -> bool:
    """The recorded seed baseline is only a fair yardstick at the same scale."""
    if baseline is None:
        return False
    return baseline.get("scale") == current_scale()


# --------------------------------------------------------------------------
# component micro-benchmarks (synthetic, no training)
# --------------------------------------------------------------------------

def _steady_state(layer, x: np.ndarray, batch: int) -> None:
    layer.reset(batch)
    layer.step(x, 0)  # builds any lazy buffers


def component_timings(repeats: int = 5) -> Dict[str, TimingResult]:
    """Time the engine's inner loops on fixed geometries (current dtype policy)."""
    rng = np.random.default_rng(0)
    batch = 8
    dtype = simulation_dtype()
    results: Dict[str, TimingResult] = {}

    x_img = rng.random((batch, 3, 32, 32))
    encoder = PhaseEncoder()
    encoder.reset(x_img)
    results["encoder_phase_step"] = time_callable(
        lambda: encoder.step(0), "encoder_phase_step", repeats=repeats
    )

    conv = SpikingConv2D(
        rng.normal(scale=0.1, size=(16, 16, 3, 3)),
        rng.normal(scale=0.1, size=16),
        BurstThreshold(v_th=0.125),
        padding=1,
        input_shape=(16, 16, 16),
    )
    x_conv = np.asarray(rng.random((batch, 16, 16, 16)), dtype=dtype)
    _steady_state(conv, x_conv, batch)
    results["conv_layer_step"] = time_callable(
        lambda: conv.step(x_conv, 1), "conv_layer_step", repeats=repeats
    )

    dense = SpikingDense(
        rng.normal(scale=0.05, size=(512, 256)),
        rng.normal(scale=0.05, size=256),
        BurstThreshold(v_th=0.125),
    )
    x_dense = np.asarray(rng.random((batch, 512)), dtype=dtype)
    _steady_state(dense, x_dense, batch)
    results["dense_layer_step"] = time_callable(
        lambda: dense.step(x_dense, 1), "dense_layer_step", repeats=repeats
    )

    pool = SpikingMaxPool2D(2)
    x_pool = np.asarray(rng.random((batch, 16, 16, 16)), dtype=dtype)
    _steady_state(pool, x_pool, batch)
    results["maxpool_layer_step"] = time_callable(
        lambda: pool.step(x_pool, 1), "maxpool_layer_step", repeats=repeats
    )

    state = IFNeuronState((batch, 32768))
    z = np.asarray(rng.random((batch, 32768)), dtype=dtype)
    threshold = np.asarray(0.125, dtype=dtype)
    state.step(z, threshold)
    results["neuron_state_step"] = time_callable(
        lambda: state.step(z, threshold), "neuron_state_step", repeats=repeats
    )
    return results


# --------------------------------------------------------------------------
# end-to-end Table 2 VGG measurements
# --------------------------------------------------------------------------

def build_vgg_pipeline(workload: Workload) -> SNNInferencePipeline:
    scale = current_scale()
    pipeline = make_pipeline(
        workload, time_steps=scale["time_steps"], num_images=scale["num_images"], seed=0
    )
    # warm the normalisation / DNN-accuracy caches outside any timed region,
    # mirroring how the seed baseline was recorded
    pipeline.dnn_accuracy
    pipeline.normalization
    return pipeline


def time_vgg_scheme_run(
    pipeline: SNNInferencePipeline, repeats: int = 1
) -> Tuple[float, AggregatedRun]:
    """Time the end-to-end phase-burst scheme run (the paper's proposal).

    ``repeats > 1`` reports the best-of-N wall clock (the same protocol the
    component micro-benchmarks use, robust to scheduler noise on the shared
    bench machine); the returned run is from the last repeat.
    """
    scheme = HybridCodingScheme.from_notation("phase-burst", v_th=0.125)
    best = float("inf")
    run: Optional[AggregatedRun] = None
    for _ in range(max(1, repeats)):
        with Timer() as timer:
            run = pipeline.run_scheme(scheme)
        best = min(best, timer.seconds)
    assert run is not None
    return best, run


def time_table2_block(workload: Workload) -> Tuple[float, int]:
    """Time the full five-method Table 2 CIFAR-10 block (full mode only)."""
    from repro.experiments.table2 import run_table2

    scale = current_scale()
    with Timer() as timer:
        rows = run_table2(
            datasets=("cifar10",),
            workloads={"cifar10": workload},
            time_steps=scale["time_steps"],
            num_images=scale["num_images"],
            target_fraction=0.99,
        )
    return timer.seconds, len(rows)
