"""Build a :class:`~repro.snn.network.SpikingNetwork` from a trained ANN.

The converter walks the ANN layer list, replaces every Dense/Conv2D + ReLU
pair by a spiking layer carrying the (normalised) weights, maps pooling and
flatten layers onto their spiking counterparts, folds BatchNorm into the
preceding weights, drops Dropout, and turns the final Dense layer into a
non-spiking output accumulator.

The neural coding of the hidden layers is injected through a
``threshold_factory`` callback so the converter stays independent of the
hybrid-coding logic in :mod:`repro.core`.

Precision: conversion (BatchNorm folding, weight normalisation) always runs
in float64 on the ANN's float64 weights, and the spiking layers keep those
float64 masters.  The *simulation* precision is chosen per run — the engine
casts the masters once per ``reset`` to the dtype resolved from
``SimulationConfig.dtype`` / the project policy (float32 by default, see
:mod:`repro.utils.dtypes`) — so one converted network can be simulated at
either precision without reconversion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.ann.layers import (
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    Layer,
    MaxPool2D,
    ReLU,
)
from repro.ann.model import Sequential
from repro.conversion.normalization import NormalizationResult, normalize_weights
from repro.snn.encoding import InputEncoder
from repro.snn.layers import (
    OutputAccumulator,
    SpikingAvgPool2D,
    SpikingConv2D,
    SpikingDense,
    SpikingFlatten,
    SpikingLayer,
    SpikingMaxPool2D,
)
from repro.snn.network import SpikingNetwork
from repro.snn.neurons import ResetMode
from repro.snn.thresholds import ThresholdDynamics
from repro.utils.config import FrozenConfig, validate_in

#: signature of the callback creating hidden-layer threshold dynamics;
#: arguments are (hidden_layer_index, layer_name).
ThresholdFactory = Callable[[int, str], ThresholdDynamics]


@dataclass(frozen=True)
class ConversionConfig(FrozenConfig):
    """Options of the DNN→SNN conversion.

    Attributes
    ----------
    normalization:
        ``"data"`` (max-based, Diehl et al.), ``"robust"`` (percentile,
        Rueckauer et al.), ``"model"`` (weight bound) or ``"none"``.
    percentile:
        Percentile for robust normalisation (ignored otherwise).
    reset_mode:
        ``"subtract"`` (reset-by-subtraction, Eq. 4 — the paper's choice) or
        ``"zero"`` (Eq. 3).
    max_pool_policy:
        ``"spiking"`` keeps max pooling with cumulative-evidence gating,
        ``"average"`` replaces it with average pooling (Cao et al. [10]).
    keep_bias:
        Whether biases are carried into the SNN (injected each step).
    """

    normalization: str = "data"
    percentile: float = 99.9
    reset_mode: str = "subtract"
    max_pool_policy: str = "spiking"
    keep_bias: bool = True

    def __post_init__(self) -> None:
        validate_in("normalization", self.normalization, ("data", "robust", "model", "none"))
        validate_in("reset_mode", self.reset_mode, ("subtract", "zero"))
        validate_in("max_pool_policy", self.max_pool_policy, ("spiking", "average"))
        if not 0.0 < self.percentile <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {self.percentile}")


def fold_batch_norm(model: Sequential) -> List[Dict[str, np.ndarray]]:
    """Fold BatchNorm layers into the preceding Dense/Conv2D weights.

    Returns a weight list (same structure as ``model.get_weights()``) in which
    each BatchNorm's inference-time affine transform (scale by
    ``gamma / sqrt(running_var + eps)``, shift by the matching offset) has been
    absorbed into the previous weight layer.  The folded weights are meant to
    be used in a network *without* the BatchNorm layers — which is exactly how
    the converter consumes them (BatchNorm layers are dropped from the SNN).
    The BatchNorm entries of the returned list are set to identity
    gamma/beta for bookkeeping only.
    """
    weights = model.get_weights()
    previous_weight_index: Optional[int] = None
    for index, layer in enumerate(model.layers):
        if isinstance(layer, (Dense, Conv2D)):
            previous_weight_index = index
        elif isinstance(layer, BatchNorm):
            if previous_weight_index is None:
                raise ValueError(
                    f"BatchNorm layer {layer.name} has no preceding Dense/Conv2D to fold into"
                )
            gamma = layer.params["gamma"]
            beta = layer.params["beta"]
            mean = layer.running_mean
            var = layer.running_var
            scale = gamma / np.sqrt(var + layer.eps)
            shift = beta - mean * scale

            target = weights[previous_weight_index]
            prev_layer = model.layers[previous_weight_index]
            if isinstance(prev_layer, Dense):
                target["weight"] = target["weight"] * scale[None, :]
            else:  # Conv2D: scale applies per output channel
                target["weight"] = target["weight"] * scale[:, None, None, None]
            bias = target.get("bias")
            if bias is None:
                target["bias"] = shift.copy()
            else:
                target["bias"] = bias * scale + shift
            # Neutralise the BatchNorm so it becomes the identity.
            weights[index]["gamma"] = np.ones_like(gamma)
            weights[index]["beta"] = np.zeros_like(beta)
    return weights


def _contains_batch_norm(model: Sequential) -> bool:
    return any(isinstance(layer, BatchNorm) for layer in model.layers)


def _neutralize_batch_norm_stats(model: Sequential) -> Dict[int, Tuple[np.ndarray, np.ndarray]]:
    """Temporarily make every BatchNorm an identity map (running stats 0 / 1).

    Returns the saved statistics so :func:`_restore_batch_norm_stats` can put
    them back.  Used while measuring activation scales on folded weights.
    """
    saved: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
    for index, layer in enumerate(model.layers):
        if isinstance(layer, BatchNorm):
            saved[index] = (layer.running_mean.copy(), layer.running_var.copy())
            layer.running_mean = np.zeros_like(layer.running_mean)
            layer.running_var = np.ones_like(layer.running_var) - layer.eps
    return saved


def _restore_batch_norm_stats(
    model: Sequential, saved: Dict[int, Tuple[np.ndarray, np.ndarray]]
) -> None:
    """Undo :func:`_neutralize_batch_norm_stats`."""
    for index, (mean, var) in saved.items():
        layer = model.layers[index]
        if isinstance(layer, BatchNorm):
            layer.running_mean = mean
            layer.running_var = var


def convert_to_snn(
    model: Sequential,
    encoder: InputEncoder,
    threshold_factory: ThresholdFactory,
    config: Optional[ConversionConfig] = None,
    calibration_x: Optional[np.ndarray] = None,
    normalization_result: Optional[NormalizationResult] = None,
    bias_scale: Optional[float] = None,
    input_shape: Optional[Tuple[int, ...]] = None,
    name: Optional[str] = None,
) -> SpikingNetwork:
    """Convert a trained ANN into a spiking network.

    Parameters
    ----------
    model:
        The trained :class:`~repro.ann.model.Sequential` ANN.
    encoder:
        Input encoder implementing the input-layer coding scheme.
    threshold_factory:
        Callback returning the threshold dynamics (hidden-layer coding) for
        each hidden spiking layer; called as ``factory(hidden_index, name)``.
    config:
        Conversion options (defaults to :class:`ConversionConfig`).
    calibration_x:
        Calibration inputs for data-based / robust normalisation.  Required
        unless ``normalization_result`` is given or normalisation is
        ``"model"`` / ``"none"``.
    normalization_result:
        Pre-computed normalisation (e.g. shared across coding schemes so every
        scheme sees identical weights).
    bias_scale:
        Per-step bias scaling; defaults to the encoder's throughput factor so
        biases stay proportionate to how fast evidence arrives.
    input_shape:
        Per-sample input shape; defaults to ``model.input_shape``.
    """
    config = config or ConversionConfig()
    input_shape = tuple(input_shape or model.input_shape or ())
    if not input_shape:
        raise ValueError("input_shape is required (set it on the model or pass it explicitly)")
    if bias_scale is None:
        bias_scale = float(encoder.throughput_factor)

    # 1. fold BatchNorm, 2. normalise weights.
    if normalization_result is None:
        if _contains_batch_norm(model):
            folded = fold_batch_norm(model)
            original = model.get_weights()
            saved_stats = _neutralize_batch_norm_stats(model)
            model.set_weights(folded)
            try:
                # With folded weights and neutralised BatchNorm statistics the
                # model's forward pass equals the BN-free folded network, so
                # the activation scales are measured on the right activations.
                normalization_result = normalize_weights(
                    model,
                    calibration_x=calibration_x,
                    percentile=config.percentile,
                    method=config.normalization,
                )
            finally:
                model.set_weights(original)
                _restore_batch_norm_stats(model, saved_stats)
        else:
            normalization_result = normalize_weights(
                model,
                calibration_x=calibration_x,
                percentile=config.percentile,
                method=config.normalization,
            )
    weights = normalization_result.weights

    weight_layer_indices = [
        i for i, layer in enumerate(model.layers) if isinstance(layer, (Dense, Conv2D))
    ]
    if not weight_layer_indices:
        raise ValueError("model has no Dense/Conv2D layers to convert")
    last_weight_index = weight_layer_indices[-1]
    if not isinstance(model.layers[last_weight_index], Dense):
        raise ValueError("the final weight layer must be Dense (the classifier head)")

    reset_mode = ResetMode.from_value(config.reset_mode)
    spiking_layers: List[SpikingLayer] = []
    shape = input_shape
    hidden_index = 0

    for index, layer in enumerate(model.layers):
        layer_weights = weights[index]
        if isinstance(layer, Dense):
            weight = layer_weights["weight"]
            bias = layer_weights.get("bias") if config.keep_bias else None
            if index == last_weight_index:
                spiking_layers.append(
                    OutputAccumulator(weight, bias, bias_scale=bias_scale, name=f"{layer.name}_out")
                )
            else:
                threshold = threshold_factory(hidden_index, layer.name)
                hidden_index += 1
                spiking_layers.append(
                    SpikingDense(
                        weight,
                        bias,
                        threshold,
                        reset_mode=reset_mode,
                        bias_scale=bias_scale,
                        name=f"{layer.name}_snn",
                    )
                )
        elif isinstance(layer, Conv2D):
            weight = layer_weights["weight"]
            bias = layer_weights.get("bias") if config.keep_bias else None
            threshold = threshold_factory(hidden_index, layer.name)
            hidden_index += 1
            spiking_layers.append(
                SpikingConv2D(
                    weight,
                    bias,
                    threshold,
                    stride=layer.stride,
                    padding=layer.padding,
                    reset_mode=reset_mode,
                    bias_scale=bias_scale,
                    input_shape=shape,
                    name=f"{layer.name}_snn",
                )
            )
        elif isinstance(layer, AvgPool2D):
            spiking_layers.append(
                SpikingAvgPool2D(layer.pool_size, layer.stride, name=f"{layer.name}_snn")
            )
        elif isinstance(layer, MaxPool2D):
            if config.max_pool_policy == "average":
                spiking_layers.append(
                    SpikingAvgPool2D(layer.pool_size, layer.stride, name=f"{layer.name}_avg")
                )
            else:
                spiking_layers.append(
                    SpikingMaxPool2D(layer.pool_size, layer.stride, name=f"{layer.name}_snn")
                )
        elif isinstance(layer, Flatten):
            spiking_layers.append(SpikingFlatten(name=f"{layer.name}_snn"))
        elif isinstance(layer, (ReLU, Dropout, BatchNorm)):
            # ReLU is absorbed into the IF neuron, Dropout is inference-identity,
            # BatchNorm has been folded into the preceding weights.
            pass
        else:
            raise TypeError(
                f"layer {layer.name} of type {type(layer).__name__} is not supported by the converter"
            )
        shape = layer.output_shape(shape)

    return SpikingNetwork(
        spiking_layers,
        encoder=encoder,
        input_shape=input_shape,
        name=name or f"{model.name}-snn",
    )
