"""Benchmark regenerating Fig. 5: the firing rate vs firing regularity scatter
for every input-hidden coding combination.

Paper shape to reproduce: phase coding in the hidden layers sits at the
highest firing rates regardless of the input coding (low flexibility), while
burst coding's firing rate spreads widely with the input coding (high
flexibility / adaptability).
"""

import numpy as np

from repro.experiments.fig5 import format_fig5, run_fig5


def test_bench_fig5(benchmark, save_result, mnist_cnn_workload):
    points = benchmark.pedantic(
        lambda: run_fig5(
            workload=mnist_cnn_workload,
            time_steps=150,
            num_images=6,
            v_th=0.125,
            sample_fraction=0.1,
        ),
        rounds=1,
        iterations=1,
    )
    save_result("fig5_firing_rate_regularity", format_fig5(points))

    by_hidden = {}
    for point in points:
        by_hidden.setdefault(point.hidden_coding, []).append(point.mean_log_rate)

    phase_rates = [r for r in by_hidden["phase"] if np.isfinite(r)]
    burst_rates = [r for r in by_hidden["burst"] if np.isfinite(r)]
    rate_rates = [r for r in by_hidden["rate"] if np.isfinite(r)]

    # phase hidden coding has the highest mean firing rate
    assert np.mean(phase_rates) > np.mean(burst_rates)
    assert np.mean(phase_rates) > np.mean(rate_rates)

    # burst hidden coding spreads more with the input coding than phase does
    # (the "flexibility" argument of Section 5)
    assert (max(burst_rates) - min(burst_rates)) > (max(phase_rates) - min(phase_rates)) * 0.8
