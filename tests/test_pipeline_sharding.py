"""Sharded pipeline evaluation (``PipelineConfig(num_workers=...)``).

The pipeline splits the test set into contiguous whole-batch shards, runs
them in worker processes and merges the statistics in shard order — the
merged run must be *identical* to the sequential one.  On 1-CPU machines the
shard request falls back to in-process execution with a logged note
(``REPRO_FORCE_SHARDING=1`` overrides the guard so the real worker path is
exercised even here).
"""

import logging
import os

import numpy as np
import pytest

from repro.core.hybrid import HybridCodingScheme
from repro.core.pipeline import PipelineConfig, SNNInferencePipeline


@pytest.fixture(scope="module")
def scheme():
    return HybridCodingScheme.from_notation("phase-burst", v_th=0.125)


def _pipeline(model, data, **overrides):
    defaults = dict(time_steps=25, batch_size=4, max_test_images=8, seed=0)
    defaults.update(overrides)
    return SNNInferencePipeline(model, data, PipelineConfig(**defaults))


def _runs_equal(a, b) -> None:
    assert np.array_equal(a.recorded_steps, b.recorded_steps)
    assert np.array_equal(a.accuracy_curve, b.accuracy_curve)
    assert np.array_equal(a.cumulative_spikes, b.cumulative_spikes)
    assert np.array_equal(a.outputs_final, b.outputs_final)
    assert a.num_images == b.num_images
    assert a.total_spikes == b.total_spikes


class TestShardRanges:
    def test_whole_batch_contiguous_split(self, trained_cnn, tiny_color_split):
        pipeline = _pipeline(trained_cnn, tiny_color_split, batch_size=4)
        assert pipeline._shard_ranges(8, 2) == [(0, 4), (4, 8)]
        assert pipeline._shard_ranges(8, 1) == [(0, 8)]
        # 3 batches over 2 workers: 2 + 1
        assert pipeline._shard_ranges(12, 2) == [(0, 8), (8, 12)]
        # ragged tail stays in the last shard
        assert pipeline._shard_ranges(10, 2) == [(0, 8), (8, 10)]

    def test_resolve_workers_guards(self, trained_cnn, tiny_color_split, monkeypatch, caplog):
        pipeline = _pipeline(trained_cnn, tiny_color_split, num_workers=4)
        monkeypatch.delenv("REPRO_FORCE_SHARDING", raising=False)
        # the project logger does not propagate by default; let caplog see it
        monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
        if (os.cpu_count() or 1) <= 1:
            with caplog.at_level(logging.INFO, logger="repro.core.pipeline"):
                assert pipeline._resolve_workers(num_batches=4) == 1
            assert any("single CPU" in message for message in caplog.messages)
            monkeypatch.setenv("REPRO_FORCE_SHARDING", "1")
            assert pipeline._resolve_workers(num_batches=4) > 1
        else:
            assert pipeline._resolve_workers(num_batches=4) > 1
        # a single batch never shards
        assert pipeline._resolve_workers(num_batches=1) == 1

    def test_sequential_when_unset(self, trained_cnn, tiny_color_split):
        pipeline = _pipeline(trained_cnn, tiny_color_split)
        assert pipeline._resolve_workers(num_batches=4) == 1


class TestShardedEquality:
    def test_single_cpu_fallback_matches_sequential(
        self, trained_cnn, tiny_color_split, scheme, monkeypatch, caplog
    ):
        monkeypatch.delenv("REPRO_FORCE_SHARDING", raising=False)
        monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)
        sequential = _pipeline(trained_cnn, tiny_color_split).run_scheme(scheme)
        with caplog.at_level(logging.INFO, logger="repro.core.pipeline"):
            fallback = _pipeline(trained_cnn, tiny_color_split, num_workers=2).run_scheme(scheme)
        _runs_equal(sequential, fallback)
        if (os.cpu_count() or 1) <= 1:
            assert any("single CPU" in message for message in caplog.messages)

    def test_forced_worker_processes_match_sequential(
        self, trained_cnn, tiny_color_split, scheme, monkeypatch
    ):
        """Real worker processes (forced past the 1-CPU guard) reproduce the
        sequential statistics exactly — the merge is deterministic."""
        monkeypatch.setenv("REPRO_FORCE_SHARDING", "1")
        sequential = _pipeline(trained_cnn, tiny_color_split).run_scheme(scheme)
        sharded = _pipeline(trained_cnn, tiny_color_split, num_workers=2).run_scheme(scheme)
        _runs_equal(sequential, sharded)

    def test_sharded_with_early_exit(self, trained_cnn, tiny_color_split, scheme, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_SHARDING", "1")
        dense = _pipeline(trained_cnn, tiny_color_split, time_steps=40).run_scheme(scheme)
        fast = _pipeline(
            trained_cnn,
            tiny_color_split,
            time_steps=40,
            num_workers=2,
            early_exit_patience=12,
        ).run_scheme(scheme)
        assert fast.accuracy == pytest.approx(dense.accuracy, abs=1.0 / dense.num_images)
        assert fast.total_spikes <= dense.total_spikes
        assert fast.cumulative_spikes.shape == dense.cumulative_spikes.shape


class TestStochasticEncoders:
    def test_stochastic_scheme_not_cached_and_not_sharded(
        self, trained_cnn, tiny_color_split, monkeypatch
    ):
        """A Poisson-input scheme must behave exactly as it did before the SNN
        cache and sharding existed: every run_scheme starts from the same
        seeded RNG, and the shard request runs sequentially."""
        from repro.core.hybrid import CodingParams

        monkeypatch.setenv("REPRO_FORCE_SHARDING", "1")
        scheme = HybridCodingScheme(
            input_coding="rate",
            hidden_coding="burst",
            input_params=CodingParams(stochastic_input=True),
            hidden_params=CodingParams(v_th=0.125),
        )
        pipeline = _pipeline(trained_cnn, tiny_color_split)
        first = pipeline.run_scheme(scheme)
        assert pipeline._snn_cache == {}  # stochastic encoders are not cached
        second = pipeline.run_scheme(scheme)
        _runs_equal(first, second)
        sharded = _pipeline(trained_cnn, tiny_color_split, num_workers=2).run_scheme(scheme)
        _runs_equal(first, sharded)


class TestMemoryFootprint:
    def test_outputs_final_preallocated(self, trained_cnn, tiny_color_split, scheme):
        run = _pipeline(trained_cnn, tiny_color_split).run_scheme(scheme)
        assert run.outputs_final.shape == (run.num_images, 3)
        assert run.outputs_final.flags.c_contiguous
        assert run.batch_results == []  # not kept unless requested

    def test_batch_results_kept_on_request(self, trained_cnn, tiny_color_split, scheme):
        run = _pipeline(trained_cnn, tiny_color_split).run_scheme(
            scheme, keep_batch_results=True
        )
        assert len(run.batch_results) == 2  # 8 images / batch_size 4
        stitched = np.concatenate([r.final_outputs for r in run.batch_results])
        assert np.array_equal(stitched, run.outputs_final)

    def test_snn_cache_not_pickled(self, trained_cnn, tiny_color_split, scheme):
        import pickle

        pipeline = _pipeline(trained_cnn, tiny_color_split)
        pipeline.run_scheme(scheme)
        assert pipeline._snn_cache
        clone = pickle.loads(pickle.dumps(pipeline))
        assert clone._snn_cache == {}
