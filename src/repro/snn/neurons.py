"""Integrate-and-fire neuron populations.

Implements the membrane dynamics of Eqs. 1–4 of the paper for a whole layer at
once (vectorised over the batch and the neuron dimensions):

* Eq. 2 — a neuron fires when its membrane potential reaches the (possibly
  time-varying, possibly per-neuron) threshold ``V_th(t)``.
* Eq. 3 — *reset-to-zero*: after a spike the membrane returns to the resting
  potential (0).
* Eq. 4 — *reset-by-subtraction*: the threshold value is subtracted instead,
  which preserves the residual charge and avoids the information loss that
  plagues reset-to-zero in converted SNNs (Rueckauer et al. [12, 13]).

The spike *amplitude* transmitted downstream equals the neuron's threshold at
firing time (weighted spikes, Eq. 5), which is what makes phase and burst
coding transmit more than one "unit" of information per spike.

Performance contract
--------------------
:meth:`IFNeuronState.step` is the innermost loop of the simulation engine and
is allocation-free in the steady state: the membrane is updated in place and
the spike / amplitude arrays returned are preallocated scratch buffers owned
by the state.  **The returned arrays are only valid until the next**
``step()`` **call** — callers that need to keep them across steps must copy.
Precision follows the project dtype policy (:mod:`repro.utils.dtypes`):
float32 by default, float64 opt-in, with float64 results bit-identical to the
original non-in-place implementation.

The elementwise update itself runs on the resolved
:class:`~repro.backends.base.KernelBackend` (``ops.if_step`` — one fused
integrate / compare / reset kernel); the numpy reference backend is the
relocated original code, so the bit-identity guarantee is unchanged.

Threshold positivity is validated once per simulation (on the first step
after ``reset``) rather than every step; the threshold dynamics classes
already guarantee positivity structurally (``v_th > 0`` at construction,
burst/phase modulation factors are positive).  Scalar (0-d) thresholds are
cheap enough to check every step and still are.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

import numpy as np

from repro.backends import resolve_backend
from repro.utils.dtypes import DTypeLike, resolve_dtype


class ResetMode(str, enum.Enum):
    """Membrane reset behaviour after a spike."""

    #: Reset the membrane to the resting potential (Eq. 3).
    ZERO = "zero"
    #: Subtract the firing threshold from the membrane (Eq. 4).
    SUBTRACT = "subtract"

    @classmethod
    def from_value(cls, value: "ResetMode | str") -> "ResetMode":
        if isinstance(value, ResetMode):
            return value
        try:
            return cls(value)
        except ValueError as exc:
            raise ValueError(
                f"reset mode must be one of {[m.value for m in cls]}, got {value!r}"
            ) from exc


class IFNeuronState:
    """Vectorised membrane state of one spiking layer.

    Parameters
    ----------
    shape:
        Full state shape including the batch dimension, e.g. ``(N, units)`` or
        ``(N, C, H, W)``.
    reset_mode:
        :class:`ResetMode` or its string value.
    v_rest:
        Resting potential used by reset-to-zero (default 0).
    allow_negative_membrane:
        If False the membrane is clamped at ``v_rest`` from below, which some
        neuromorphic hardware enforces.  The paper's model allows negative
        potentials, so the default is True.
    dtype:
        Simulation precision; ``None`` resolves through the project dtype
        policy (float32 default, see :mod:`repro.utils.dtypes`).
    ops:
        The :class:`~repro.backends.base.KernelBackend` running the update
        kernel (name, instance, or ``None`` for the backend policy default).
    """

    def __init__(
        self,
        shape: Tuple[int, ...],
        reset_mode: "ResetMode | str" = ResetMode.SUBTRACT,
        v_rest: float = 0.0,
        allow_negative_membrane: bool = True,
        dtype: DTypeLike = None,
        ops=None,
    ) -> None:
        if not shape or any(int(dim) <= 0 for dim in shape):
            raise ValueError(f"shape must contain positive dimensions, got {shape}")
        self.shape = tuple(int(dim) for dim in shape)
        self.reset_mode = ResetMode.from_value(reset_mode)
        self.v_rest = float(v_rest)
        self.allow_negative_membrane = allow_negative_membrane
        self.dtype = resolve_dtype(dtype)
        self.ops = resolve_backend(ops)
        self.v_mem = np.full(self.shape, self.v_rest, dtype=self.dtype)
        self.total_spikes = 0
        #: spikes emitted at the most recent step (int; kept for fast dispatch)
        self.last_spike_count = 0
        # Preallocated per-step scratch buffers (returned by step()).
        self._spikes = self.ops.zeros(self.shape, np.dtype(bool))
        self._spike_signals = self.ops.zeros(self.shape, self.dtype)
        self._amplitudes = self.ops.zeros(self.shape, self.dtype)
        self._threshold_validated = False

    def reset(self) -> None:
        """Return the membrane to the resting potential and clear counters."""
        self.v_mem.fill(self.v_rest)
        self.total_spikes = 0
        self.last_spike_count = 0
        self._threshold_validated = False

    def shrink_batch(self, keep: np.ndarray) -> None:
        """Keep only the batch rows ``keep`` (converged-image early exit).

        Membrane potentials of the surviving rows carry over; the per-step
        scratch buffers are rebuilt for the smaller batch.  ``total_spikes``
        keeps counting across the shrink.
        """
        keep = np.asarray(keep, dtype=np.intp)
        if keep.size == 0:
            raise ValueError("shrink_batch requires at least one kept row")
        self.v_mem = np.ascontiguousarray(self.v_mem[keep])
        self.shape = self.v_mem.shape
        self._spikes = self.ops.zeros(self.shape, np.dtype(bool))
        self._spike_signals = self.ops.zeros(self.shape, self.dtype)
        self._amplitudes = self.ops.zeros(self.shape, self.dtype)

    def step(self, z: np.ndarray, threshold: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Advance the population by one time step (in place, allocation-free).

        Parameters
        ----------
        z:
            Post-synaptic potential (Eq. 1/5) accumulated this step; must be
            broadcastable to the state shape.
        threshold:
            Firing threshold ``V_th(t)`` per neuron (broadcastable).

        Returns
        -------
        spikes:
            Boolean array of emitted spikes (Eq. 2).
        amplitudes:
            Weighted spike amplitudes (``spikes * threshold``) transmitted to
            the next layer.

        Both returned arrays are scratch buffers owned by this state and are
        overwritten by the next ``step()`` call.
        """
        z = np.asarray(z, dtype=self.dtype)
        threshold = np.asarray(threshold, dtype=self.dtype)
        if threshold.ndim == 0 or not self._threshold_validated:
            if np.any(threshold <= 0):
                raise ValueError("thresholds must be strictly positive")
            self._threshold_validated = True

        spikes = self._spikes
        amplitudes = self._amplitudes
        self.last_spike_count = self.ops.if_step(
            self.v_mem,
            z,
            threshold,
            spikes,
            self._spike_signals,
            amplitudes,
            self.reset_mode is ResetMode.SUBTRACT,
            self.v_rest,
            self.allow_negative_membrane,
        )
        self.total_spikes += self.last_spike_count
        return spikes, amplitudes

    @property
    def spike_signals(self) -> np.ndarray:
        """The most recent spikes as an exact 0.0/1.0 array in the state dtype.

        Scratch buffer semantics as for :meth:`step`'s return values: valid
        only until the next ``step`` call.
        """
        return self._spike_signals

    @property
    def num_neurons(self) -> int:
        """Number of neurons per sample (state size without the batch dim)."""
        size = 1
        for dim in self.shape[1:]:
            size *= dim
        return size

    def membrane_copy(self) -> np.ndarray:
        """A copy of the current membrane potentials (for tests / analysis)."""
        return self.v_mem.copy()


def expected_rate_spike_count(value: float, threshold: float, time_steps: int) -> int:
    """Number of spikes an IF neuron with constant input ``value`` and constant
    threshold emits in ``time_steps`` steps under reset-by-subtraction.

    Used by tests as an analytic reference: the neuron accumulates ``value``
    per step and emits ``floor(total / threshold)`` spikes overall, capped at
    one spike per time step.
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    if time_steps < 0:
        raise ValueError("time_steps must be non-negative")
    if value <= 0:
        return 0
    return int(min(time_steps, np.floor(value * time_steps / threshold + 1e-12)))
